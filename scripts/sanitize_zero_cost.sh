#!/usr/bin/env bash
# Zero-cost check for the reclamation sanitizer: a release build WITHOUT the
# `sanitize` feature must contain none of the sanitizer's machinery. The
# cheapest observable is its diagnostic strings — every check site funnels
# into `fail()`, whose message literals live in the sanitizing crates'
# rodata; if no diagnostic survived into any artifact, neither did a check.
#
# As a self-test, the script first confirms the same strings ARE present in
# a `--features sanitize` build, so a renamed diagnostic cannot silently
# turn the check into a tautology.
#
# Usage: scripts/sanitize_zero_cost.sh

set -euo pipefail
cd "$(dirname "$0")/.."

# Literals from crates/smr/src/sanitize.rs check sites.
# Note the colon on the last needle: it pins the runtime diagnostic prefix,
# not the crate docs' prose mention of unprotected reads (doc comments on
# public items ride along in rlib metadata even with the feature off).
NEEDLES=("use after dispose" "double retire on the dispose channel" "unprotected read:")

scan() {
    # Greps the smr rlibs of the given target dir for any needle.
    local dir=$1 found=1
    for f in "$dir"/deps/libsmr-*.rlib; do
        [[ -e "$f" ]] || continue
        for n in "${NEEDLES[@]}"; do
            if grep -qF "$n" "$f"; then
                found=0
            fi
        done
    done
    return $found
}

echo "sanitize_zero_cost: building WITH the feature (self-test)..."
cargo build --release --features sanitize -p smr
if ! scan target/release; then
    echo "sanitize_zero_cost: FAILED (self-test): no sanitizer diagnostics in a"
    echo "  --features sanitize build; the needles have gone stale — update them."
    exit 1
fi

echo "sanitize_zero_cost: building WITHOUT the feature..."
cargo clean --release -p smr
cargo build --release -p smr
if scan target/release; then
    echo "sanitize_zero_cost: FAILED: sanitizer diagnostics present in a release"
    echo "  build without the sanitize feature — the cfg gate leaks."
    exit 1
fi

echo "sanitize_zero_cost: ok"
