#!/usr/bin/env bash
# Memory-ordering lint, two checks:
#
# 1. Facade bypass — all workspace code reaches atomics through the
#    `smr::sync` facade (cfg-switched between `std::sync::atomic` and the
#    vendored `interleave` model checker), so a direct `std::sync::atomic`
#    (or `core::sync::atomic`) path anywhere else would silently escape
#    model checking. The file set is discovered, not enumerated: every .rs
#    file in the repo is checked except the facade itself and the vendored
#    shims. Doc/line comments may mention the std path anywhere.
#
# 2. Ordering justification — every non-SeqCst ordering at a call site in
#    the protocol crates (crates/core, crates/smr, crates/sticky,
#    crates/lockfree) must sit within a few lines of a `// Ordering:`
#    comment explaining why the relaxation is sound (the policy established
#    with the fence-discipline audit and now cross-checked by the
#    model-check suite; see README "Memory-ordering policy"). Test modules
#    are exempt — tests assert behaviour, they do not carry protocol
#    invariants. bench-harness stays exempt too: it is measurement
#    scaffolding, not protocol code.
#
# Usage: scripts/ordering_lint.sh   (exits nonzero listing offending lines)

set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- Check 1: facade bypass -------------------------------------------------
bypass=$(find . -name '*.rs' \
    -not -path './target/*' -not -path './.git/*' \
    -not -path './crates/shims/*' -not -path './crates/smr/src/sync.rs' \
    -print0 \
    | xargs -0 awk '
    {
        line = $0
        sub(/\/\/.*/, "", line)
        if (line ~ /(std|core)::sync::atomic/)
            printf "%s:%d: %s\n", FILENAME, FNR, $0
    }' || true)
if [[ -n "$bypass" ]]; then
    echo "ordering_lint: std::sync::atomic outside the smr::sync facade:"
    echo "$bypass" | sed 's/^/  /'
    fail=1
fi

# --- Check 2: non-SeqCst sites carry an // Ordering: comment ----------------
WINDOW=14
missing=$(find crates/core/src crates/smr/src crates/sticky/src crates/lockfree/src \
    -name '*.rs' ! -path '*/sync.rs' -print0 \
    | xargs -0 awk -v win=$WINDOW '
    FNR == 1 { last = -1000; skip = 0 }
    # Test modules close out the files in this codebase; stop checking there.
    /^#\[cfg\(test\)\]/ || /^mod tests/ { skip = 1 }
    skip { next }
    /\/\/ Ordering:/ { last = FNR }
    {
        line = $0
        sub(/\/\/.*/, "", line)
        if (line ~ /Ordering::(Relaxed|Acquire|Release|AcqRel)/ \
            && line !~ /^[[:space:]]*use /) {
            if (FNR - last > win)
                printf "%s:%d: %s\n", FILENAME, FNR, $0
        }
    }')
if [[ -n "$missing" ]]; then
    echo "ordering_lint: non-SeqCst ordering without a nearby // Ordering: comment:"
    echo "$missing" | sed 's/^/  /'
    fail=1
fi

if [[ $fail -ne 0 ]]; then
    echo "ordering_lint: FAILED"
    exit 1
fi
echo "ordering_lint: ok"
