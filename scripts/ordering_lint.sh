#!/usr/bin/env bash
# Memory-ordering lint, two checks:
#
# 1. Facade bypass — all workspace code reaches atomics through the
#    `smr::sync` facade (cfg-switched between `std::sync::atomic` and the
#    vendored `interleave` model checker), so a direct `std::sync::atomic`
#    path anywhere else would silently escape model checking. Only the
#    facade itself and the vendored shims may name the std path in code;
#    doc comments may mention it anywhere.
#
# 2. Ordering justification — every non-SeqCst ordering at a call site in
#    the protocol crates (crates/core, crates/smr) must sit within a few
#    lines of a `// Ordering:` comment explaining why the relaxation is
#    sound (the policy established with the fence-discipline audit and now
#    cross-checked by the model-check suite; see README "Memory-ordering
#    policy"). Test modules are exempt — tests assert behaviour, they do
#    not carry protocol invariants.
#
# Usage: scripts/ordering_lint.sh   (exits nonzero listing offending lines)

set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- Check 1: facade bypass -------------------------------------------------
bypass=$(grep -rn --include='*.rs' 'std::sync::atomic' \
    crates/core crates/smr crates/sticky crates/lockfree \
    crates/bench-harness crates/bench src tests 2>/dev/null \
    | grep -v '^crates/smr/src/sync\.rs:' \
    | grep -vE ':[0-9]+:[[:space:]]*//' || true)
if [[ -n "$bypass" ]]; then
    echo "ordering_lint: std::sync::atomic outside the smr::sync facade:"
    echo "$bypass" | sed 's/^/  /'
    fail=1
fi

# --- Check 2: non-SeqCst sites carry an // Ordering: comment ----------------
WINDOW=14
missing=$(find crates/core/src crates/smr/src -name '*.rs' ! -path '*/sync.rs' -print0 \
    | xargs -0 awk -v win=$WINDOW '
    FNR == 1 { last = -1000; skip = 0 }
    # Test modules close out the files in this codebase; stop checking there.
    /^#\[cfg\(test\)\]/ || /^mod tests/ { skip = 1 }
    skip { next }
    /\/\/ Ordering:/ { last = FNR }
    {
        line = $0
        sub(/\/\/.*/, "", line)
        if (line ~ /Ordering::(Relaxed|Acquire|Release|AcqRel)/ \
            && line !~ /^[[:space:]]*use /) {
            if (FNR - last > win)
                printf "%s:%d: %s\n", FILENAME, FNR, $0
        }
    }')
if [[ -n "$missing" ]]; then
    echo "ordering_lint: non-SeqCst ordering without a nearby // Ordering: comment:"
    echo "$missing" | sed 's/^/  /'
    fail=1
fi

if [[ $fail -ne 0 ]]; then
    echo "ordering_lint: FAILED"
    exit 1
fi
echo "ordering_lint: ok"
