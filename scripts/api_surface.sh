#!/usr/bin/env bash
# Public-API surface check: lists every `pub fn` / `pub struct` / `pub enum`
# / `pub trait` / `pub type` / `pub const` declared in the workspace's
# library crates and diffs the listing against the committed snapshot
# (scripts/api_surface.txt), so API drift is reviewed deliberately rather
# than slipping through a refactor.
#
# Usage:
#   scripts/api_surface.sh            # check against the snapshot (CI mode)
#   scripts/api_surface.sh --bless    # regenerate the snapshot
#
# The listing is intentionally line-based (no rustdoc/cargo dependency): a
# signature *change* that keeps the name shows up via the full declaration
# line, and moves between files show up via the path prefix.

set -euo pipefail
cd "$(dirname "$0")/.."

SNAPSHOT=scripts/api_surface.txt
CRATES=(crates/core/src crates/smr/src crates/sticky/src crates/lockfree/src crates/bench-harness/src)

generate() {
    # One line per public item: "<file>: <declaration>", with bodies,
    # trailing braces/semicolons and generic-bound tails stripped so
    # formatting churn doesn't dirty the snapshot. Test modules are skipped
    # (their `pub fn`s are not API).
    grep -rn --include='*.rs' -E '^[[:space:]]*pub (unsafe )?(fn|struct|enum|trait|type|const|mod) ' \
        "${CRATES[@]}" \
        | grep -v '/tests/' \
        | sed -E 's/^([^:]+):[0-9]+:[[:space:]]*/\1: /' \
        | sed -E 's/[[:space:]]*\{?[[:space:]]*$//' \
        | sed -E 's/;$//' \
        | LC_ALL=C sort
}

if [[ "${1:-}" == "--bless" ]]; then
    generate > "$SNAPSHOT"
    echo "api_surface: snapshot regenerated ($(wc -l < "$SNAPSHOT") items)"
    exit 0
fi

if [[ ! -f "$SNAPSHOT" ]]; then
    echo "api_surface: missing $SNAPSHOT — run scripts/api_surface.sh --bless" >&2
    exit 1
fi

if diff -u "$SNAPSHOT" <(generate); then
    echo "api_surface: OK ($(wc -l < "$SNAPSHOT") public items, no drift)"
else
    cat >&2 <<'EOF'

api_surface: public API surface drifted from scripts/api_surface.txt.
If the change is intentional, regenerate the snapshot with

    scripts/api_surface.sh --bless

and commit it together with the API change.
EOF
    exit 1
fi
