//! Umbrella crate for the CDRC reproduction suite.
//!
//! Re-exports the workspace crates so examples and integration tests can use
//! a single dependency. See the [`cdrc`] crate for the reference-counted
//! pointer library (the paper's primary contribution), [`smr`] for the
//! manual reclamation substrate, [`lockfree`] for the evaluation data
//! structures and [`bench_harness`] for workload drivers.

pub use bench_harness;
pub use cdrc;
pub use lockfree;
pub use smr;
pub use sticky;
