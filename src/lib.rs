//! Umbrella crate for the CDRC reproduction suite.
//!
//! Re-exports the workspace crates so examples and integration tests can use
//! a single dependency. See the [`cdrc`] crate for the reference-counted
//! pointer library (the paper's primary contribution), [`smr`] for the
//! manual reclamation substrate, [`lockfree`] for the evaluation data
//! structures and [`bench_harness`] for workload drivers.
//!
//! ```
//! use cdrc_suite::cdrc::{EbrScheme, Scheme, SharedPtr};
//! use cdrc_suite::lockfree::{rc, ConcurrentMap};
//!
//! let p: SharedPtr<u32, EbrScheme> = SharedPtr::new(1);
//! assert_eq!(p.as_ref(), Some(&1));
//!
//! let map: rc::RcHarrisMichaelList<u64, u64, EbrScheme> = rc::RcHarrisMichaelList::new();
//! assert!(map.insert(7, 7));
//! assert_eq!(map.get(&7), Some(7));
//!
//! let t = cdrc_suite::smr::current_tid();
//! EbrScheme::global_domain().process_deferred(t);
//! ```

pub use bench_harness;
pub use cdrc;
pub use lockfree;
pub use smr;
pub use sticky;
