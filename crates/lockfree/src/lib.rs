//! Lock-free data structures from the CDRC paper's evaluation (§5), each in
//! two variants:
//!
//! * [`manual`] — classic implementations over the generalized
//!   acquire-retire interface of the [`smr`] crate, where `retire` is a
//!   *delayed free* and the programmer is responsible for retiring every
//!   unlinked node (the error-prone code the paper's Fig. 1a highlights);
//! * [`rc`] — automatic implementations over the reference-counted pointer
//!   types of the [`cdrc`] crate, where a single pointer swing reclaims
//!   whole unlinked subtrees (Fig. 1b).
//!
//! Structures: Harris-Michael linked list, Michael hash table,
//! Natarajan-Mittal external BST (with the paper's sequential range query),
//! and the Ramalhete-Correia DoubleLink queue (whose `prev` edges become
//! atomic *weak* pointers in the RC variant — Fig. 10). [`locked`] provides
//! the lock-based `atomic<shared_ptr>/atomic<weak_ptr>` baseline standing in
//! for the commercial `just::thread` library.

#![warn(missing_docs)]

pub mod locked;
pub mod manual;
pub mod rc;

use std::sync::atomic::{AtomicU64, Ordering};

/// The uniform map interface the benchmark harness drives.
///
/// Implementations are linearizable for point operations; `range` may be
/// sequentially (non-linearizably) collected, as in the paper (§5.1,
/// footnote 5).
pub trait ConcurrentMap<K, V>: Send + Sync {
    /// Inserts `k → v`; `false` if `k` was already present.
    fn insert(&self, k: K, v: V) -> bool;
    /// Removes `k`; `false` if absent.
    fn remove(&self, k: &K) -> bool;
    /// Looks up `k`.
    fn get(&self, k: &K) -> Option<V>;
    /// Collects up to `limit` keys in `[from, to)`, returning how many were
    /// seen. Returns `None` if the structure does not support range queries.
    fn range(&self, _from: &K, _to: &K, _limit: usize) -> Option<usize> {
        None
    }
    /// Nodes currently allocated and not yet freed (live + deferred
    /// garbage) — the paper's "extra nodes" metric is this minus the live
    /// count.
    fn in_flight_nodes(&self) -> u64;
}

/// The uniform queue interface for the Fig. 12 benchmark.
pub trait ConcurrentQueue<V>: Send + Sync {
    /// Appends `v` at the tail.
    fn enqueue(&self, v: V);
    /// Removes the head element, if any.
    fn dequeue(&self) -> Option<V>;
}

/// Allocation / free counters for the manual structures (the RC variants
/// read their domain's counters instead).
#[derive(Debug, Default)]
pub struct NodeStats {
    allocs: AtomicU64,
    frees: AtomicU64,
}

impl NodeStats {
    /// Fresh counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one allocation.
    #[inline]
    pub fn on_alloc(&self) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one free.
    #[inline]
    pub fn on_free(&self) {
        self.frees.fetch_add(1, Ordering::Relaxed);
    }

    /// Allocated − freed.
    pub fn in_flight(&self) -> u64 {
        self.allocs
            .load(Ordering::Relaxed)
            .saturating_sub(self.frees.load(Ordering::Relaxed))
    }
}
