//! Lock-free data structures from the CDRC paper's evaluation (§5), each in
//! two variants:
//!
//! * [`manual`] — classic implementations over the generalized
//!   acquire-retire interface of the [`smr`] crate, where `retire` is a
//!   *delayed free* and the programmer is responsible for retiring every
//!   unlinked node (the error-prone code the paper's Fig. 1a highlights);
//! * [`rc`] — automatic implementations over the reference-counted pointer
//!   types of the [`cdrc`] crate, where a single pointer swing reclaims
//!   whole unlinked subtrees (Fig. 1b).
//!
//! Structures: Harris-Michael linked list, Michael hash table,
//! Natarajan-Mittal external BST (with the paper's sequential range query),
//! and the Ramalhete-Correia DoubleLink queue (whose `prev` edges become
//! atomic *weak* pointers in the RC variant — Fig. 10). [`locked`] provides
//! the lock-based `atomic<shared_ptr>/atomic<weak_ptr>` baseline standing in
//! for the commercial `just::thread` library.

#![warn(missing_docs)]

pub mod locked;
pub mod manual;
pub mod rc;

use smr::sync::atomic::{AtomicU64, Ordering};

use smr::{registered_high_water_mark, Tid, MAX_THREADS};

/// The uniform map interface the benchmark harness drives.
///
/// Implementations are linearizable for point operations; `range` may be
/// sequentially (non-linearizably) collected, as in the paper (§5.1,
/// footnote 5).
///
/// # Guard-centric operation API
///
/// Every operation exists in two forms: a guard-taking variant (`get_with`,
/// `insert_with`, …) that runs under a caller-held [`Guard`](Self::Guard),
/// and a guard-free convenience wrapper (`get`, `insert`, …) that opens a
/// section internally for its own duration. The per-critical-section fence
/// (one SeqCst announcement round trip for the region schemes) closes the
/// gap to manual reclamation **only when amortized over many operations**
/// (paper §3.4), so hot loops should [`pin`](Self::pin) once per batch:
///
/// ```
/// use cdrc::EbrScheme;
/// use lockfree::rc::RcHarrisMichaelList;
/// use lockfree::ConcurrentMap;
///
/// let map: RcHarrisMichaelList<u64, u64, EbrScheme> = RcHarrisMichaelList::new();
/// let guard = map.pin();
/// for k in 0..64u64 {
///     map.insert_with(k, k, &guard);
///     assert_eq!(map.get_with(&k, &guard), Some(k));
/// }
/// drop(guard); // reclamation of the batch's garbage resumes here
/// ```
///
/// Critical sections nest, so both call styles may be mixed freely on one
/// structure, even within a held guard. Holding a guard *too* long delays
/// reclamation (the announcement pins the scheme's epoch); the benchmark
/// harness re-pins every 64 operations, matching the paper's methodology.
pub trait ConcurrentMap<K, V>: Send + Sync {
    /// RAII token holding this thread's critical section(s) open across a
    /// batch of operations. Dropping it ends the section and lets deferred
    /// reclamation of the batch's garbage proceed.
    ///
    /// Guards are thread-bound (not `Send`) and must only be passed to
    /// operations on the structure that created them (or on structures
    /// sharing its reclamation instance, e.g. a hash table's own buckets);
    /// debug builds assert this where it is not guaranteed by construction.
    type Guard;

    /// Opens an operation guard for the current thread.
    fn pin(&self) -> Self::Guard;

    /// As [`insert`](Self::insert), under a caller-held guard.
    fn insert_with(&self, k: K, v: V, guard: &Self::Guard) -> bool;

    /// As [`remove`](Self::remove), under a caller-held guard.
    fn remove_with(&self, k: &K, guard: &Self::Guard) -> bool;

    /// As [`get`](Self::get), under a caller-held guard.
    fn get_with(&self, k: &K, guard: &Self::Guard) -> Option<V>;

    /// As [`range`](Self::range), under a caller-held guard.
    fn range_with(&self, _from: &K, _to: &K, _limit: usize, _guard: &Self::Guard) -> Option<usize> {
        None
    }

    /// Inserts `k → v`; `false` if `k` was already present.
    fn insert(&self, k: K, v: V) -> bool {
        self.insert_with(k, v, &self.pin())
    }

    /// Removes `k`; `false` if absent.
    fn remove(&self, k: &K) -> bool {
        self.remove_with(k, &self.pin())
    }

    /// Looks up `k`.
    fn get(&self, k: &K) -> Option<V> {
        self.get_with(k, &self.pin())
    }

    /// Collects up to `limit` keys in `[from, to)`, returning how many were
    /// seen. Returns `None` if the structure does not support range queries.
    ///
    /// The default returns `None` without opening a section (pinning just to
    /// discover "unsupported" would waste a fence); structures overriding
    /// [`range_with`](Self::range_with) override this too, as
    /// `self.range_with(from, to, limit, &self.pin())`.
    fn range(&self, _from: &K, _to: &K, _limit: usize) -> Option<usize> {
        None
    }

    /// Nodes currently allocated and not yet freed (live + deferred
    /// garbage) — the paper's "extra nodes" metric is this minus the live
    /// count.
    ///
    /// # Reclamation domains
    ///
    /// This metric is **per structure**. RC variants read the counters of
    /// their own reclamation domain (`cdrc::DomainRef`): `new()` binds a
    /// structure to the scheme's global default domain, `new_in(domain)` to
    /// an explicit one. Structures that should reclaim — and be metered —
    /// together (e.g. a hash table's buckets) share one domain by cloning
    /// the handle; unrelated structures get fresh domains and are fully
    /// isolated, even on the same scheme: separate epoch clocks, retired
    /// lists and counters, so one structure's open guard never pins the
    /// other's garbage. Note that structures sharing one domain (including
    /// everything bound to the global default) deliberately share this
    /// counter. Manual structures meter their own private [`NodeStats`].
    fn in_flight_nodes(&self) -> u64;
}

/// The uniform queue interface for the Fig. 12 benchmark.
///
/// Mirrors [`ConcurrentMap`]'s guard-centric design: `enqueue_with` /
/// `dequeue_with` run under a caller-held [`Guard`](Self::Guard) obtained
/// from [`pin`](Self::pin); the guard-free methods are thin wrappers that
/// open a section per call.
pub trait ConcurrentQueue<V>: Send + Sync {
    /// RAII token holding this thread's critical section(s) open across a
    /// batch of operations (see [`ConcurrentMap::Guard`]). For the weak-edge
    /// queue this is the domain's *full* guard, covering the weak and
    /// dispose instances too.
    type Guard;

    /// Opens an operation guard for the current thread.
    fn pin(&self) -> Self::Guard;

    /// As [`enqueue`](Self::enqueue), under a caller-held guard.
    fn enqueue_with(&self, v: V, guard: &Self::Guard);

    /// As [`dequeue`](Self::dequeue), under a caller-held guard.
    fn dequeue_with(&self, guard: &Self::Guard) -> Option<V>;

    /// Appends `v` at the tail.
    fn enqueue(&self, v: V) {
        self.enqueue_with(v, &self.pin());
    }

    /// Removes the head element, if any.
    fn dequeue(&self) -> Option<V> {
        self.dequeue_with(&self.pin())
    }
}

/// One thread's allocation/free tallies, aligned to its own cache line.
/// Both counters share the lane deliberately: they have the same single
/// writer, so packing them costs nothing and halves the footprint. 64-byte
/// alignment (one x86 line) rather than the scheme slots' 128: these lanes
/// are written by one thread and only *read* cross-thread, so adjacent-line
/// prefetch pulling a neighbour is harmless.
#[derive(Debug, Default)]
#[repr(align(64))]
struct StatLane {
    allocs: AtomicU64,
    frees: AtomicU64,
}

/// Allocation / free counters for the manual structures (the RC variants
/// read their domain's counters instead).
///
/// Sharded into per-thread cache-line lanes indexed by [`Tid`]: the
/// counters sit on every node allocation and free, and a shared `fetch_add`
/// there bounces one cache line between all worker cores. Reads fold the
/// lanes and are exact for all events that happened-before them (the bench
/// sampler and teardown assertions both qualify). One structure's stats
/// cost a single 16 KiB allocation (`MAX_THREADS` 64-byte lanes).
#[derive(Debug)]
pub struct NodeStats {
    lanes: Box<[StatLane]>,
}

impl Default for NodeStats {
    fn default() -> Self {
        Self::new()
    }
}

impl NodeStats {
    /// Fresh counters.
    pub fn new() -> Self {
        NodeStats {
            lanes: (0..MAX_THREADS).map(|_| StatLane::default()).collect(),
        }
    }

    /// Records one allocation by thread `t`.
    #[inline]
    pub fn on_alloc(&self, t: Tid) {
        // Ordering: Relaxed load + store — single-writer lane (only thread
        // `t` writes it), so the unfenced read-modify-write is race-free
        // and needs no `lock` prefix; see `smr::util::ShardedCounter::add`.
        let lane = &self.lanes[t.index()].allocs;
        lane.store(lane.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
    }

    /// Records one free by thread `t`.
    #[inline]
    pub fn on_free(&self, t: Tid) {
        // Ordering: as `on_alloc`.
        let lane = &self.lanes[t.index()].frees;
        lane.store(lane.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
    }

    /// Allocated − freed.
    pub fn in_flight(&self) -> u64 {
        // Ordering: Relaxed — monotone lanes; exact for events that
        // happened-before this read (join / drop exclusivity), monotone
        // under concurrency. Lanes past the registry high-water mark were
        // never written.
        //
        // Fold order: sum every `frees` lane *before* any `allocs` lane.
        // Each free has a matching alloc that happened-before it, so a
        // sample reading frees first can at worst miss concurrent frees
        // (over-reporting in-flight nodes); an interleaved or allocs-first
        // fold could count a free whose alloc it had not yet seen and
        // under-report live garbage.
        let hwm = registered_high_water_mark();
        // Ordering: Relaxed — statistics lanes; the fold order above, not
        // any acquire edge, is what keeps the estimate one-sided.
        let f: u64 = self
            .lanes
            .iter()
            .take(hwm)
            .map(|lane| lane.frees.load(Ordering::Relaxed))
            .sum();
        let a: u64 = self
            .lanes
            .iter()
            .take(hwm)
            .map(|lane| lane.allocs.load(Ordering::Relaxed))
            .sum();
        a.saturating_sub(f)
    }
}

/// Split-ordering arithmetic shared by the resizable tables (Shalev &
/// Shavit): bucket sentinels carry even bit-reversed keys, regular nodes
/// odd ones, so doubling the bucket mask splits every bucket's contiguous
/// so-key range without moving a node.
pub(crate) mod split_order {
    /// Directory segments; segment `l` holds buckets `[2^l, 2^{l+1})`, so
    /// a table tops out at 2^33 buckets — far past any in-memory key count.
    pub(crate) const SPINE_LEVELS: usize = 33;

    /// Split-order key of bucket `b`'s sentinel: even, low bits all zero.
    #[inline]
    pub(crate) fn so_dummy(b: u64) -> u64 {
        b.reverse_bits()
    }

    /// Split-order key of a regular node with hash `h`: odd, so it sorts
    /// strictly after every sentinel sharing its reversed prefix.
    #[inline]
    pub(crate) fn so_regular(h: u64) -> u64 {
        h.reverse_bits() | 1
    }
}

/// One thread's insert/remove tallies for the live-element estimate of the
/// resizable tables, aligned like [`StatLane`] and with the same
/// single-writer discipline.
#[derive(Debug, Default)]
#[repr(align(64))]
struct CountLane {
    ins: AtomicU64,
    dels: AtomicU64,
}

/// Approximate live-element counter driving the resizable tables' growth
/// decisions: per-thread single-writer lanes (no shared `fetch_add` on the
/// insert path), folded only on the growth-check cadence.
#[derive(Debug)]
pub(crate) struct ElementCount {
    lanes: Box<[CountLane]>,
}

impl ElementCount {
    /// How many successful inserts a lane absorbs between growth checks.
    /// The live count can therefore lag by `MAX_THREADS * GROW_CHECK_EVERY`
    /// in the worst case — bounded slack, spent on keeping the insert fast
    /// path free of cross-thread folds.
    const GROW_CHECK_EVERY: u64 = 64;

    pub(crate) fn new() -> Self {
        ElementCount {
            lanes: (0..MAX_THREADS).map(|_| CountLane::default()).collect(),
        }
    }

    /// Records one successful insert by thread `t`; returns `true` on the
    /// lane's growth-check cadence (every [`Self::GROW_CHECK_EVERY`]th
    /// insert), when the caller should fold the count and consider growing.
    #[inline]
    pub(crate) fn on_insert(&self, t: Tid) -> bool {
        // Ordering: as `NodeStats::on_alloc` — single-writer lane.
        let lane = &self.lanes[t.index()].ins;
        let n = lane.load(Ordering::Relaxed) + 1;
        lane.store(n, Ordering::Relaxed);
        n.is_multiple_of(Self::GROW_CHECK_EVERY)
    }

    /// Records one successful remove by thread `t`.
    #[inline]
    pub(crate) fn on_remove(&self, t: Tid) {
        let lane = &self.lanes[t.index()].dels;
        lane.store(lane.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
    }

    /// Inserts − removes. Deletes are folded first for the same
    /// monotonicity reason as [`NodeStats::in_flight`].
    pub(crate) fn live(&self) -> u64 {
        let hwm = registered_high_water_mark();
        // Ordering: Relaxed — statistics lanes, deletes folded first; same
        // one-sided-estimate argument as `NodeStats::in_flight`.
        let d: u64 = self
            .lanes
            .iter()
            .take(hwm)
            .map(|lane| lane.dels.load(Ordering::Relaxed))
            .sum();
        let i: u64 = self
            .lanes
            .iter()
            .take(hwm)
            .map(|lane| lane.ins.load(Ordering::Relaxed))
            .sum();
        i.saturating_sub(d)
    }
}
