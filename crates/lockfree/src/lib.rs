//! Lock-free data structures from the CDRC paper's evaluation (§5), each in
//! two variants:
//!
//! * [`manual`] — classic implementations over the generalized
//!   acquire-retire interface of the [`smr`] crate, where `retire` is a
//!   *delayed free* and the programmer is responsible for retiring every
//!   unlinked node (the error-prone code the paper's Fig. 1a highlights);
//! * [`rc`] — automatic implementations over the reference-counted pointer
//!   types of the [`cdrc`] crate, where a single pointer swing reclaims
//!   whole unlinked subtrees (Fig. 1b).
//!
//! Structures: Harris-Michael linked list, Michael hash table,
//! Natarajan-Mittal external BST (with the paper's sequential range query),
//! and the Ramalhete-Correia DoubleLink queue (whose `prev` edges become
//! atomic *weak* pointers in the RC variant — Fig. 10). [`locked`] provides
//! the lock-based `atomic<shared_ptr>/atomic<weak_ptr>` baseline standing in
//! for the commercial `just::thread` library.

#![warn(missing_docs)]

pub mod locked;
pub mod manual;
pub mod rc;

use std::sync::atomic::{AtomicU64, Ordering};

/// The uniform map interface the benchmark harness drives.
///
/// Implementations are linearizable for point operations; `range` may be
/// sequentially (non-linearizably) collected, as in the paper (§5.1,
/// footnote 5).
///
/// # Guard-centric operation API
///
/// Every operation exists in two forms: a guard-taking variant (`get_with`,
/// `insert_with`, …) that runs under a caller-held [`Guard`](Self::Guard),
/// and a guard-free convenience wrapper (`get`, `insert`, …) that opens a
/// section internally for its own duration. The per-critical-section fence
/// (one SeqCst announcement round trip for the region schemes) closes the
/// gap to manual reclamation **only when amortized over many operations**
/// (paper §3.4), so hot loops should [`pin`](Self::pin) once per batch:
///
/// ```
/// use cdrc::EbrScheme;
/// use lockfree::rc::RcHarrisMichaelList;
/// use lockfree::ConcurrentMap;
///
/// let map: RcHarrisMichaelList<u64, u64, EbrScheme> = RcHarrisMichaelList::new();
/// let guard = map.pin();
/// for k in 0..64u64 {
///     map.insert_with(k, k, &guard);
///     assert_eq!(map.get_with(&k, &guard), Some(k));
/// }
/// drop(guard); // reclamation of the batch's garbage resumes here
/// ```
///
/// Critical sections nest, so both call styles may be mixed freely on one
/// structure, even within a held guard. Holding a guard *too* long delays
/// reclamation (the announcement pins the scheme's epoch); the benchmark
/// harness re-pins every 64 operations, matching the paper's methodology.
pub trait ConcurrentMap<K, V>: Send + Sync {
    /// RAII token holding this thread's critical section(s) open across a
    /// batch of operations. Dropping it ends the section and lets deferred
    /// reclamation of the batch's garbage proceed.
    ///
    /// Guards are thread-bound (not `Send`) and must only be passed to
    /// operations on the structure that created them (or on structures
    /// sharing its reclamation instance, e.g. a hash table's own buckets);
    /// debug builds assert this where it is not guaranteed by construction.
    type Guard;

    /// Opens an operation guard for the current thread.
    fn pin(&self) -> Self::Guard;

    /// As [`insert`](Self::insert), under a caller-held guard.
    fn insert_with(&self, k: K, v: V, guard: &Self::Guard) -> bool;

    /// As [`remove`](Self::remove), under a caller-held guard.
    fn remove_with(&self, k: &K, guard: &Self::Guard) -> bool;

    /// As [`get`](Self::get), under a caller-held guard.
    fn get_with(&self, k: &K, guard: &Self::Guard) -> Option<V>;

    /// As [`range`](Self::range), under a caller-held guard.
    fn range_with(&self, _from: &K, _to: &K, _limit: usize, _guard: &Self::Guard) -> Option<usize> {
        None
    }

    /// Inserts `k → v`; `false` if `k` was already present.
    fn insert(&self, k: K, v: V) -> bool {
        self.insert_with(k, v, &self.pin())
    }

    /// Removes `k`; `false` if absent.
    fn remove(&self, k: &K) -> bool {
        self.remove_with(k, &self.pin())
    }

    /// Looks up `k`.
    fn get(&self, k: &K) -> Option<V> {
        self.get_with(k, &self.pin())
    }

    /// Collects up to `limit` keys in `[from, to)`, returning how many were
    /// seen. Returns `None` if the structure does not support range queries.
    ///
    /// The default returns `None` without opening a section (pinning just to
    /// discover "unsupported" would waste a fence); structures overriding
    /// [`range_with`](Self::range_with) override this too, as
    /// `self.range_with(from, to, limit, &self.pin())`.
    fn range(&self, _from: &K, _to: &K, _limit: usize) -> Option<usize> {
        None
    }

    /// Nodes currently allocated and not yet freed (live + deferred
    /// garbage) — the paper's "extra nodes" metric is this minus the live
    /// count.
    ///
    /// **Caveat (RC variants):** the automatic structures report their
    /// *scheme's global domain* counter, which is shared by every RC
    /// structure on the same scheme in the process. Concurrent structures on
    /// one scheme therefore pollute each other's "extra nodes" metric; a
    /// benchmark comparing variants must run one structure per scheme at a
    /// time and settle the domain between cells (as `bench::map_series`
    /// does). Manual structures meter their own private [`NodeStats`] and
    /// are immune.
    fn in_flight_nodes(&self) -> u64;
}

/// The uniform queue interface for the Fig. 12 benchmark.
///
/// Mirrors [`ConcurrentMap`]'s guard-centric design: `enqueue_with` /
/// `dequeue_with` run under a caller-held [`Guard`](Self::Guard) obtained
/// from [`pin`](Self::pin); the guard-free methods are thin wrappers that
/// open a section per call.
pub trait ConcurrentQueue<V>: Send + Sync {
    /// RAII token holding this thread's critical section(s) open across a
    /// batch of operations (see [`ConcurrentMap::Guard`]). For the weak-edge
    /// queue this is the domain's *full* guard, covering the weak and
    /// dispose instances too.
    type Guard;

    /// Opens an operation guard for the current thread.
    fn pin(&self) -> Self::Guard;

    /// As [`enqueue`](Self::enqueue), under a caller-held guard.
    fn enqueue_with(&self, v: V, guard: &Self::Guard);

    /// As [`dequeue`](Self::dequeue), under a caller-held guard.
    fn dequeue_with(&self, guard: &Self::Guard) -> Option<V>;

    /// Appends `v` at the tail.
    fn enqueue(&self, v: V) {
        self.enqueue_with(v, &self.pin());
    }

    /// Removes the head element, if any.
    fn dequeue(&self) -> Option<V> {
        self.dequeue_with(&self.pin())
    }
}

/// Allocation / free counters for the manual structures (the RC variants
/// read their domain's counters instead).
#[derive(Debug, Default)]
pub struct NodeStats {
    allocs: AtomicU64,
    frees: AtomicU64,
}

impl NodeStats {
    /// Fresh counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one allocation.
    #[inline]
    pub fn on_alloc(&self) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one free.
    #[inline]
    pub fn on_free(&self) {
        self.frees.fetch_add(1, Ordering::Relaxed);
    }

    /// Allocated − freed.
    pub fn in_flight(&self) -> u64 {
        self.allocs
            .load(Ordering::Relaxed)
            .saturating_sub(self.frees.load(Ordering::Relaxed))
    }
}
