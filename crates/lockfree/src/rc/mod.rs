//! Automatically memory-managed variants over the `cdrc` pointer types.
//!
//! Same algorithms as [`crate::manual`], with every raw pointer replaced by
//! a reference-counted pointer and every `retire` call *deleted*: unlinking
//! the last strong reference reclaims nodes (and whole spliced-out chains)
//! automatically, once no snapshot or in-flight protection refers to them.

pub mod dlqueue;
pub mod hash;
pub mod list;
pub mod nmtree;
pub mod resizable;

pub use dlqueue::RcDoubleLinkQueue;
pub use hash::RcMichaelHashMap;
pub use list::RcHarrisMichaelList;
pub use nmtree::RcNatarajanMittalTree;
pub use resizable::RcResizableHashMap;
