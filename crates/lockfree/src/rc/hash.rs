//! Michael hash table over reference-counted pointers.
//!
//! The table owns one reclamation domain **shared by every bucket** — the
//! canonical "deliberately shared domain" case: one `pin` covers all
//! buckets, the whole table's garbage amortizes one scan cadence, and
//! `in_flight_nodes` meters exactly this table.

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hash};

use cdrc::{DomainRef, Scheme};

use crate::rc::RcHarrisMichaelList;
use crate::ConcurrentMap;

/// Michael's hash table over `cdrc` pointers with scheme `S`.
pub struct RcMichaelHashMap<K, V, S: Scheme> {
    buckets: Vec<RcHarrisMichaelList<K, V, S>>,
    hasher: RandomState,
    domain: DomainRef<S>,
}

impl<K, V, S> RcMichaelHashMap<K, V, S>
where
    K: Ord + Hash + Send + Sync,
    V: Clone + Send + Sync,
    S: Scheme,
{
    /// Creates a table with `buckets` buckets (minimum 1, **rounded up to
    /// a power of two** so bucket selection is a mask instead of a
    /// division) bound to the scheme's global domain.
    pub fn with_buckets(buckets: usize) -> Self {
        Self::with_buckets_in(buckets, S::global_domain().clone())
    }

    /// Creates a table with `buckets` buckets (minimum 1, rounded up to a
    /// power of two — see [`with_buckets`](Self::with_buckets)), all
    /// sharing `domain`.
    pub fn with_buckets_in(buckets: usize, domain: DomainRef<S>) -> Self {
        RcMichaelHashMap {
            buckets: (0..buckets.max(1).next_power_of_two())
                .map(|_| RcHarrisMichaelList::new_in(domain.clone()))
                .collect(),
            hasher: RandomState::new(),
            domain,
        }
    }

    /// The reclamation domain shared by every bucket of this table.
    pub fn domain(&self) -> &DomainRef<S> {
        &self.domain
    }

    fn bucket(&self, k: &K) -> &RcHarrisMichaelList<K, V, S> {
        let h = self.hasher.hash_one(k);
        // `hash & (len-1)` only uses the low bits, so fold the full word
        // through a multiplicative mix (golden-ratio constant) first; the
        // mask replaces the old `%` — a ~20-cycle division on the hottest
        // read path. `len` is a power of two by construction.
        let mixed = (h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize;
        &self.buckets[mixed & (self.buckets.len() - 1)]
    }
}

impl<K, V, S> ConcurrentMap<K, V> for RcMichaelHashMap<K, V, S>
where
    K: Ord + Hash + Send + Sync,
    V: Clone + Send + Sync,
    S: Scheme,
{
    type Guard = cdrc::CsGuard<S>;

    fn pin(&self) -> Self::Guard {
        self.domain.cs()
    }

    fn insert_with(&self, k: K, v: V, cs: &Self::Guard) -> bool {
        self.bucket(&k).insert_with(k, v, cs)
    }

    fn remove_with(&self, k: &K, cs: &Self::Guard) -> bool {
        self.bucket(k).remove_with(k, cs)
    }

    fn get_with(&self, k: &K, cs: &Self::Guard) -> Option<V> {
        self.bucket(k).get_with(k, cs)
    }

    /// Exact for this table: every bucket allocates under the table's own
    /// domain.
    fn in_flight_nodes(&self) -> u64 {
        self.domain.in_flight()
    }
}

impl<K, V, S: Scheme> std::fmt::Debug for RcMichaelHashMap<K, V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RcMichaelHashMap")
            .field("buckets", &self.buckets.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdrc::{EbrScheme, HpScheme};
    use std::sync::Arc;

    #[test]
    fn smoke() {
        let m: RcMichaelHashMap<u64, String, EbrScheme> = RcMichaelHashMap::with_buckets(16);
        assert!(m.insert(1, "one".into()));
        assert!(!m.insert(1, "uno".into()));
        assert_eq!(m.get(&1).as_deref(), Some("one"));
        assert!(m.remove(&1));
        assert_eq!(m.get(&1), None);
    }

    #[test]
    fn buckets_share_the_tables_domain() {
        let domain: DomainRef<EbrScheme> = DomainRef::new();
        let m: RcMichaelHashMap<u64, u64, EbrScheme> =
            RcMichaelHashMap::with_buckets_in(8, domain.clone());
        for k in 0..100u64 {
            assert!(m.insert(k, k));
        }
        domain.process_deferred(smr::current_tid());
        assert_eq!(m.in_flight_nodes(), 100, "all buckets meter one domain");
        drop(m);
        assert_eq!(domain.allocated(), domain.freed());
    }

    #[test]
    fn concurrent_hp() {
        let m: Arc<RcMichaelHashMap<u64, u64, HpScheme>> =
            Arc::new(RcMichaelHashMap::with_buckets(64));
        let hs: Vec<_> = (0..8)
            .map(|i| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for j in 0..400u64 {
                        let k = i * 1000 + j;
                        assert!(m.insert(k, k));
                        assert_eq!(m.get(&k), Some(k));
                        if j % 2 == 1 {
                            assert!(m.remove(&k));
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
    }
}
