//! Harris-Michael list over reference-counted pointers ("RC" variants).
//!
//! Note what is *absent* relative to [`crate::manual::list`]: no `retire`,
//! no `eject`, no node freeing, no birth epochs — a successful unlink CAS
//! transfers the last location-owned reference to the deferred machinery
//! and the node (plus anything only it references) is reclaimed
//! automatically.
//!
//! Each list owns a reclamation domain: [`new`](RcHarrisMichaelList::new)
//! binds to the scheme's global default, [`new_in`](RcHarrisMichaelList::new_in)
//! to an explicit (possibly shared) [`DomainRef`]. Every node is allocated
//! under that domain, `pin` opens sections on it, and
//! [`in_flight_nodes`](crate::ConcurrentMap::in_flight_nodes) reads its
//! counters — exact for this structure (plus any structures deliberately
//! sharing the domain).

use std::marker::PhantomData;

use cdrc::{
    AtomicSharedPtr, CsGuard, DomainRef, EdgeCollector, GraphNode, Scheme, SharedPtr, SnapshotPtr,
};

use crate::ConcurrentMap;

const MARK: usize = 1;

struct Node<K, V, S: Scheme> {
    key: K,
    value: V,
    next: AtomicSharedPtr<Node<K, V, S>, S>,
}

impl<K, V, S: Scheme> GraphNode<S> for Node<K, V, S> {
    fn pop_edges(&mut self, out: &mut EdgeCollector<'_, S>) {
        out.take_atomic(&mut self.next);
    }
}

/// Harris-Michael ordered map over `cdrc` pointers with scheme `S`
/// ("RCEBR", "RCIBR", "RCHP", "RCHyaline" depending on `S`).
pub struct RcHarrisMichaelList<K, V, S: Scheme> {
    head: AtomicSharedPtr<Node<K, V, S>, S>,
    domain: DomainRef<S>,
    _marker: PhantomData<(K, V)>,
}

struct Cursor<'g, K, V, S: Scheme> {
    /// Node containing the edge we are at; `None` = the list head.
    prev: Option<SnapshotPtr<'g, Node<K, V, S>, S>>,
    /// Snapshot read (unmarked) from that edge; null = end of list.
    cur: SnapshotPtr<'g, Node<K, V, S>, S>,
    found: bool,
}

impl<K, V, S> RcHarrisMichaelList<K, V, S>
where
    K: Ord + Send + Sync,
    V: Clone + Send + Sync,
    S: Scheme,
{
    /// Creates an empty list bound to the scheme's global domain.
    pub fn new() -> Self {
        Self::new_in(S::global_domain().clone())
    }

    /// Creates an empty list bound to `domain`. Pass a fresh
    /// [`DomainRef::new`] for full isolation, or a clone of another
    /// structure's domain to reclaim (and meter) together.
    pub fn new_in(domain: DomainRef<S>) -> Self {
        RcHarrisMichaelList {
            head: AtomicSharedPtr::null_in(&domain),
            domain,
            _marker: PhantomData,
        }
    }

    /// The reclamation domain this list allocates and reclaims through.
    pub fn domain(&self) -> &DomainRef<S> {
        &self.domain
    }

    fn edge<'a>(
        &'a self,
        prev: &'a Option<SnapshotPtr<'_, Node<K, V, S>, S>>,
    ) -> &'a AtomicSharedPtr<Node<K, V, S>, S> {
        match prev {
            None => &self.head,
            Some(p) => &p.as_ref().expect("prev snapshot is non-null").next,
        }
    }

    fn find<'g>(&self, cs: &'g CsGuard<S>, key: &K) -> Cursor<'g, K, V, S> {
        'retry: loop {
            let mut prev: Option<SnapshotPtr<'g, Node<K, V, S>, S>> = None;
            let mut cur = self.head.get_snapshot(cs);
            if cur.tag() != 0 {
                continue 'retry;
            }
            loop {
                let Some(node) = cur.as_ref() else {
                    return Cursor {
                        prev,
                        cur,
                        found: false,
                    };
                };
                let next = node.next.get_snapshot(cs);
                // Validate cur is still linked unmarked at the prev edge.
                if self.edge(&prev).load_tagged() != cur.tagged() {
                    continue 'retry;
                }
                if next.tag() & MARK != 0 {
                    // cur is logically deleted: splice it out. A successful
                    // CAS hands the location's reference to cur back as the
                    // displaced pointer; dropping it reclaims cur (and
                    // anything only it references) automatically.
                    match self
                        .edge(&prev)
                        .compare_exchange_tagged_with(cs, cur.tagged(), &next, 0)
                    {
                        Ok(unlinked) => {
                            drop(unlinked);
                            cur = next.with_tag(0);
                            continue;
                        }
                        Err(w) => {
                            // Witness: if the prev edge is still unmarked,
                            // another helper or inserter won the race —
                            // resume scanning from the witnessed word with
                            // the same prev, no fresh traversal. A marked
                            // edge means prev itself is being deleted:
                            // restart from the head.
                            if w.tag() == 0 {
                                cur = w;
                                continue;
                            }
                            continue 'retry;
                        }
                    }
                }
                if node.key >= *key {
                    let found = node.key == *key;
                    return Cursor { prev, cur, found };
                }
                prev = Some(cur);
                cur = next;
            }
        }
    }
}

impl<K, V, S> ConcurrentMap<K, V> for RcHarrisMichaelList<K, V, S>
where
    K: Ord + Send + Sync,
    V: Clone + Send + Sync,
    S: Scheme,
{
    type Guard = CsGuard<S>;

    fn pin(&self) -> Self::Guard {
        self.domain.cs()
    }

    fn insert_with(&self, k: K, v: V, cs: &Self::Guard) -> bool {
        debug_assert!(cs.covers(&self.domain), "guard from a foreign domain");
        let mut new_node: SharedPtr<Node<K, V, S>, S> = SharedPtr::new_graph_in(
            Node {
                key: k,
                value: v,
                next: AtomicSharedPtr::null_in(&self.domain),
            },
            &self.domain,
        );
        loop {
            let c = self.find(cs, &new_node.as_ref().unwrap().key);
            if c.found {
                return false; // new_node drops; no manual free needed
            }
            // Point the new node at cur and publish it by *moving* our
            // reference in (no count round-trip); the displaced edge
            // reference to cur is balanced by the one new_node.next now
            // holds, so dropping it is exactly the unlink bookkeeping.
            new_node.as_ref().unwrap().next.store_from(&c.cur);
            match self
                .edge(&c.prev)
                .compare_exchange_tagged_owned(c.cur.tagged(), new_node, 0)
            {
                Ok(displaced) => {
                    drop(displaced);
                    return true;
                }
                // Failure hands new_node back untouched; the edge moved, so
                // re-find the insertion point (the witness alone cannot
                // certify prev is still linked).
                Err(e) => new_node = e.desired,
            }
        }
    }

    fn remove_with(&self, k: &K, cs: &Self::Guard) -> bool {
        debug_assert!(cs.covers(&self.domain), "guard from a foreign domain");
        loop {
            let c = self.find(cs, k);
            if !c.found {
                return false;
            }
            let node = c.cur.as_ref().unwrap();
            // Logically delete: mark cur's next word, retrying in place on
            // the witness (the word only changes if a successor was
            // inserted/unlinked — cur stays protected by the cursor).
            let mut next_t = node.next.load_tagged();
            let marked = loop {
                if next_t.tag() & MARK != 0 {
                    break false; // someone else is deleting it
                }
                match node.next.try_set_tag(next_t, MARK) {
                    Ok(_) => break true,
                    Err(w) => next_t = w,
                }
            };
            if !marked {
                continue; // help the competing delete via find
            }
            // Marked: attempt the physical unlink; find() helps otherwise.
            // On success the displaced reference to cur drops here — that
            // is the entire reclamation path.
            let next_snap = node.next.get_snapshot(cs);
            if let Ok(unlinked) =
                self.edge(&c.prev)
                    .compare_exchange_tagged_with(cs, c.cur.tagged(), &next_snap, 0)
            {
                drop(unlinked);
            }
            return true;
        }
    }

    fn get_with(&self, k: &K, cs: &Self::Guard) -> Option<V> {
        debug_assert!(cs.covers(&self.domain), "guard from a foreign domain");
        let c = self.find(cs, k);
        if c.found {
            Some(c.cur.as_ref().unwrap().value.clone())
        } else {
            None
        }
    }

    /// Exact for this list's own domain: live nodes plus deferred garbage
    /// of this structure (and of any structure deliberately sharing the
    /// domain via [`new_in`](RcHarrisMichaelList::new_in)).
    fn in_flight_nodes(&self) -> u64 {
        self.domain.in_flight()
    }
}

impl<K, V, S> Default for RcHarrisMichaelList<K, V, S>
where
    K: Ord + Send + Sync,
    V: Clone + Send + Sync,
    S: Scheme,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, S: Scheme> Drop for RcHarrisMichaelList<K, V, S> {
    fn drop(&mut self) {
        // Unlink the chain, then flush our domain so a structure with a
        // private domain leaves `allocated() == freed()` behind (garbage
        // pinned by a concurrent section on a *shared* domain stays
        // deferred and is collected by that domain's later activity).
        self.head.store(SharedPtr::null());
        self.domain.process_deferred(smr::current_tid());
    }
}

impl<K, V, S: Scheme> std::fmt::Debug for RcHarrisMichaelList<K, V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RcHarrisMichaelList")
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdrc::{EbrScheme, HpScheme, HyalineScheme, IbrScheme};
    use std::sync::Arc;

    fn smoke<S: Scheme>() {
        let list: RcHarrisMichaelList<u64, u64, S> = RcHarrisMichaelList::new();
        assert!(list.insert(5, 50));
        assert!(list.insert(3, 30));
        assert!(list.insert(7, 70));
        assert!(!list.insert(5, 55));
        assert_eq!(list.get(&5), Some(50));
        assert_eq!(list.get(&4), None);
        assert!(list.remove(&5));
        assert!(!list.remove(&5));
        assert_eq!(list.get(&5), None);
        assert_eq!(list.get(&3), Some(30));
        assert_eq!(list.get(&7), Some(70));
    }

    #[test]
    fn smoke_all_schemes() {
        smoke::<EbrScheme>();
        smoke::<IbrScheme>();
        smoke::<HpScheme>();
        smoke::<HyalineScheme>();
    }

    #[test]
    fn instance_domain_is_exact_and_balances() {
        let domain: DomainRef<EbrScheme> = DomainRef::new();
        let list: RcHarrisMichaelList<u64, u64, EbrScheme> =
            RcHarrisMichaelList::new_in(domain.clone());
        for k in 0..64u64 {
            assert!(list.insert(k, k));
        }
        for k in 0..32u64 {
            assert!(list.remove(&k));
        }
        domain.process_deferred(smr::current_tid());
        assert_eq!(list.in_flight_nodes(), 32, "exactly the live nodes");
        drop(list);
        assert_eq!(domain.allocated(), domain.freed(), "Drop flushes");
    }

    fn concurrent<S: Scheme>() {
        let list: Arc<RcHarrisMichaelList<u64, u64, S>> = Arc::new(RcHarrisMichaelList::new());
        let hs: Vec<_> = (0..8)
            .map(|i| {
                let list = Arc::clone(&list);
                std::thread::spawn(move || {
                    for j in 0..300u64 {
                        let k = i * 1000 + j;
                        assert!(list.insert(k, k));
                        assert_eq!(list.get(&k), Some(k));
                        if j % 2 == 0 {
                            assert!(list.remove(&k));
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        for i in 0..8u64 {
            for j in 0..300u64 {
                let k = i * 1000 + j;
                assert_eq!(list.get(&k), if j % 2 == 0 { None } else { Some(k) });
            }
        }
    }

    #[test]
    fn concurrent_all_schemes() {
        concurrent::<EbrScheme>();
        concurrent::<IbrScheme>();
        concurrent::<HpScheme>();
        concurrent::<HyalineScheme>();
    }

    #[test]
    fn contended_same_keys() {
        let list: Arc<RcHarrisMichaelList<u64, u64, EbrScheme>> =
            Arc::new(RcHarrisMichaelList::new());
        let hs: Vec<_> = (0..8)
            .map(|s| {
                let list = Arc::clone(&list);
                std::thread::spawn(move || {
                    let mut state = 0x9E3779B9u64.wrapping_mul(s + 1);
                    for _ in 0..1000 {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let k = (state >> 33) % 16;
                        match (state >> 20) % 3 {
                            0 => {
                                list.insert(k, k);
                            }
                            1 => {
                                list.remove(&k);
                            }
                            _ => {
                                list.get(&k);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
    }
}
