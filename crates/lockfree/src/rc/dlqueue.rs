//! Ramalhete-Correia doubly-linked queue over atomic **weak** pointers —
//! a direct transcription of the paper's Figure 10.
//!
//! `next` edges are strong ([`AtomicSharedPtr`]); `prev` edges are weak
//! ([`AtomicWeakPtr`]), breaking the reference cycle a doubly-linked list
//! would otherwise create. The enqueue helping step reads `tail.prev`
//! through a weak snapshot, which is safe even if that node's strong count
//! has already reached zero (§4.1's `weak_snapshot_ptr` guarantee).

use std::marker::PhantomData;

use cdrc::{
    AtomicSharedPtr, AtomicWeakPtr, DomainRef, EdgeCollector, GraphNode, OpGuard, Scheme,
    SharedPtr, WeakCsGuard,
};

use crate::ConcurrentQueue;

struct Node<V, S: Scheme> {
    value: Option<V>,
    next: AtomicSharedPtr<Node<V, S>, S>,
    prev: AtomicWeakPtr<Node<V, S>, S>,
}

impl<V, S: Scheme> GraphNode<S> for Node<V, S> {
    fn pop_edges(&mut self, out: &mut EdgeCollector<'_, S>) {
        out.take_atomic(&mut self.next);
        out.take_atomic_weak(&mut self.prev);
    }
}

/// The weak-pointer doubly-linked queue of Fig. 10 ("Our Weak Pointers" in
/// Fig. 12).
pub struct RcDoubleLinkQueue<V, S: Scheme> {
    head: AtomicSharedPtr<Node<V, S>, S>,
    tail: AtomicSharedPtr<Node<V, S>, S>,
    domain: DomainRef<S>,
    _marker: PhantomData<V>,
}

impl<V, S> RcDoubleLinkQueue<V, S>
where
    V: Clone + Send + Sync,
    S: Scheme,
{
    /// Creates an empty queue bound to the scheme's global domain.
    pub fn new() -> Self {
        Self::new_in(S::global_domain().clone())
    }

    /// Creates an empty queue bound to `domain`. Pass a fresh
    /// [`DomainRef::new`] for full isolation, or a clone of another
    /// structure's domain to reclaim (and meter) together.
    pub fn new_in(domain: DomainRef<S>) -> Self {
        let sentinel: SharedPtr<Node<V, S>, S> = Self::alloc_node(&domain, None);
        RcDoubleLinkQueue {
            head: AtomicSharedPtr::new_in(sentinel.clone(), &domain),
            tail: AtomicSharedPtr::new_in(sentinel, &domain),
            domain,
            _marker: PhantomData,
        }
    }

    /// The reclamation domain this queue allocates and reclaims through.
    pub fn domain(&self) -> &DomainRef<S> {
        &self.domain
    }

    fn alloc_node(domain: &DomainRef<S>, value: Option<V>) -> SharedPtr<Node<V, S>, S> {
        SharedPtr::new_graph_in(
            Node {
                value,
                next: AtomicSharedPtr::null_in(domain),
                prev: AtomicWeakPtr::null_in(domain),
            },
            domain,
        )
    }
}

impl<V, S> ConcurrentQueue<V> for RcDoubleLinkQueue<V, S>
where
    V: Clone + Send + Sync,
    S: Scheme,
{
    /// The *full* guard: `prev` operations go through the weak and dispose
    /// instances, so a strong-only section would not suffice. [`OpGuard`]
    /// gives the strong view the `next`-edge snapshots need.
    type Guard = WeakCsGuard<S>;

    fn pin(&self) -> Self::Guard {
        self.domain.weak_cs()
    }

    // Fig. 10, enqueue — a witness loop: a lost tail CAS hands back a
    // protected snapshot of the new tail, which seeds the next attempt
    // directly (the paper's hottest queue CAS site pays no re-read).
    fn enqueue_with(&self, v: V, guard: &Self::Guard) {
        debug_assert!(guard.covers(&self.domain), "guard from a foreign domain");
        let new_node: SharedPtr<Node<V, S>, S> = Self::alloc_node(&self.domain, Some(v));
        let mut ltail = self.tail.get_snapshot(guard.strong_cs());
        loop {
            new_node.as_ref().unwrap().prev.store_strong(&ltail);
            // Help the previous enqueue set its next pointer (the prev
            // fixup: reading a possibly-expired node is exactly what the
            // weak snapshot makes safe).
            let lprev = ltail.as_ref().unwrap().prev.get_snapshot(guard);
            if let Some(prev_node) = lprev.as_ref() {
                if prev_node.next.load_tagged().is_null() {
                    prev_node.next.store_from(&ltail);
                }
            }
            match self
                .tail
                .compare_exchange_with(guard, ltail.tagged(), &new_node)
            {
                Ok(displaced) => {
                    ltail.as_ref().unwrap().next.store_from(&new_node);
                    drop(displaced); // the tail's old reference to ltail
                    return;
                }
                Err(w) => ltail = w,
            }
        }
    }

    // Fig. 10, dequeue — same witness loop on the head.
    fn dequeue_with(&self, guard: &Self::Guard) -> Option<V> {
        debug_assert!(guard.covers(&self.domain), "guard from a foreign domain");
        let mut lhead = self.head.get_snapshot(guard.strong_cs());
        loop {
            let lnext = lhead.as_ref().unwrap().next.get_snapshot(guard.strong_cs());
            let Some(next_node) = lnext.as_ref() else {
                return None; // queue is empty
            };
            match self
                .head
                .compare_exchange_with(guard, lhead.tagged(), &lnext)
            {
                Ok(displaced) => {
                    drop(displaced); // the head's old reference — reclaims it
                    return next_node.value.clone();
                }
                Err(w) => lhead = w,
            }
        }
    }
}

impl<V, S> Default for RcDoubleLinkQueue<V, S>
where
    V: Clone + Send + Sync,
    S: Scheme,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<V, S: Scheme> Drop for RcDoubleLinkQueue<V, S> {
    fn drop(&mut self) {
        // Unlink both ends, then flush our domain so a queue with a private
        // domain leaves `allocated() == freed()` behind.
        self.head.store(SharedPtr::null());
        self.tail.store(SharedPtr::null());
        self.domain.process_deferred(smr::current_tid());
    }
}

impl<V, S: Scheme> std::fmt::Debug for RcDoubleLinkQueue<V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RcDoubleLinkQueue").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdrc::{EbrScheme, HpScheme, HyalineScheme, IbrScheme};
    use std::sync::Arc;

    fn fifo<S: Scheme>() {
        let q: RcDoubleLinkQueue<u64, S> = RcDoubleLinkQueue::new();
        assert_eq!(q.dequeue(), None);
        q.enqueue(1);
        q.enqueue(2);
        q.enqueue(3);
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        q.enqueue(4);
        assert_eq!(q.dequeue(), Some(3));
        assert_eq!(q.dequeue(), Some(4));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn fifo_all_schemes() {
        fifo::<EbrScheme>();
        fifo::<IbrScheme>();
        fifo::<HpScheme>();
        fifo::<HyalineScheme>();
    }

    fn pop_push<S: Scheme>() {
        let q: Arc<RcDoubleLinkQueue<u64, S>> = Arc::new(RcDoubleLinkQueue::new());
        let threads = 8u64;
        for i in 0..threads {
            q.enqueue(i);
        }
        let hs: Vec<_> = (0..threads)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for _ in 0..1500 {
                        loop {
                            if let Some(v) = q.dequeue() {
                                q.enqueue(v);
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let mut seen = Vec::new();
        while let Some(v) = q.dequeue() {
            seen.push(v);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..threads).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_pop_push_conserves_elements() {
        pop_push::<HpScheme>(); // the paper powers Fig. 12 with RCHP
        pop_push::<EbrScheme>();
    }
}
