//! Natarajan-Mittal tree over reference-counted pointers.
//!
//! Compare [`cleanup`](RcNatarajanMittalTree) with the manual version: the
//! entire Figure-1a retire walk is gone. The single ancestor-edge CAS drops
//! the location's reference to the spliced-out chain, and deferred
//! reference counting reclaims every chain node and flagged leaf
//! automatically — this is the paper's Figure 1b.

use std::marker::PhantomData;

use cdrc::{
    AtomicSharedPtr, CsGuard, DomainRef, EdgeCollector, GraphNode, Scheme, SharedPtr, SnapshotPtr,
    StrongRef, TaggedPtr,
};

use crate::ConcurrentMap;

const FLAG: usize = 1;
const TAG: usize = 2;

/// Key space with infinity sentinels (see the manual variant).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum NmKey<K> {
    Fin(K),
    Inf0,
    Inf1,
    Inf2,
}

struct Node<K, V, S: Scheme> {
    key: NmKey<K>,
    value: Option<V>,
    left: AtomicSharedPtr<Node<K, V, S>, S>,
    right: AtomicSharedPtr<Node<K, V, S>, S>,
}

impl<K, V, S: Scheme> GraphNode<S> for Node<K, V, S> {
    fn pop_edges(&mut self, out: &mut EdgeCollector<'_, S>) {
        out.take_atomic(&mut self.left);
        out.take_atomic(&mut self.right);
    }
}

impl<K: Ord + Send + Sync, V: Send + Sync, S: Scheme> Node<K, V, S> {
    fn leaf(domain: &DomainRef<S>, key: NmKey<K>, value: Option<V>) -> SharedPtr<Node<K, V, S>, S> {
        SharedPtr::new_graph_in(
            Node {
                key,
                value,
                left: AtomicSharedPtr::null_in(domain),
                right: AtomicSharedPtr::null_in(domain),
            },
            domain,
        )
    }

    fn is_leaf(&self) -> bool {
        self.left.load_tagged().is_null()
    }

    fn child_edge(&self, key: &NmKey<K>) -> &AtomicSharedPtr<Node<K, V, S>, S> {
        if *key < self.key {
            &self.left
        } else {
            &self.right
        }
    }
}

struct Seek<'g, K, V, S: Scheme> {
    ancestor: SnapshotPtr<'g, Node<K, V, S>, S>,
    /// CAS comparand only.
    successor: TaggedPtr<Node<K, V, S>>,
    parent: SnapshotPtr<'g, Node<K, V, S>, S>,
    leaf: SnapshotPtr<'g, Node<K, V, S>, S>,
}

/// The Natarajan-Mittal tree over `cdrc` pointers with scheme `S`.
pub struct RcNatarajanMittalTree<K, V, S: Scheme> {
    /// R (key ∞₂); R.left = S (key ∞₁). Held in atomics so seeks can take
    /// uniform snapshots; neither sentinel is ever replaced.
    root: AtomicSharedPtr<Node<K, V, S>, S>,
    domain: DomainRef<S>,
    _marker: PhantomData<(K, V)>,
}

impl<K, V, S> RcNatarajanMittalTree<K, V, S>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    S: Scheme,
{
    /// Creates an empty tree bound to the scheme's global domain.
    pub fn new() -> Self {
        Self::new_in(S::global_domain().clone())
    }

    /// Creates an empty tree bound to `domain`. Pass a fresh
    /// [`DomainRef::new`] for full isolation, or a clone of another
    /// structure's domain to reclaim (and meter) together.
    pub fn new_in(domain: DomainRef<S>) -> Self {
        let s_node: SharedPtr<Node<K, V, S>, S> = SharedPtr::new_graph_in(
            Node {
                key: NmKey::Inf1,
                value: None,
                left: AtomicSharedPtr::new_in(Node::leaf(&domain, NmKey::Inf0, None), &domain),
                right: AtomicSharedPtr::new_in(Node::leaf(&domain, NmKey::Inf1, None), &domain),
            },
            &domain,
        );
        let root: SharedPtr<Node<K, V, S>, S> = SharedPtr::new_graph_in(
            Node {
                key: NmKey::Inf2,
                value: None,
                left: AtomicSharedPtr::new_in(s_node, &domain),
                right: AtomicSharedPtr::new_in(Node::leaf(&domain, NmKey::Inf2, None), &domain),
            },
            &domain,
        );
        RcNatarajanMittalTree {
            root: AtomicSharedPtr::new_in(root, &domain),
            domain,
            _marker: PhantomData,
        }
    }

    /// The reclamation domain this tree allocates and reclaims through.
    pub fn domain(&self) -> &DomainRef<S> {
        &self.domain
    }

    fn seek<'g>(&self, cs: &'g CsGuard<S>, key: &NmKey<K>) -> Seek<'g, K, V, S> {
        let r = self.root.get_snapshot(cs);
        // R.left = S, never removed, edge never tagged.
        let s_snap = r.as_ref().unwrap().left.get_snapshot(cs);
        let mut ancestor = r;
        let mut successor = s_snap.tagged().with_tag(0);
        let mut child = s_snap.as_ref().unwrap().child_edge(key).get_snapshot(cs);
        let mut parent = s_snap;
        loop {
            let node = child.as_ref().expect("external tree edges are total");
            if node.is_leaf() {
                return Seek {
                    ancestor,
                    successor,
                    parent,
                    leaf: child,
                };
            }
            let edge_tagged = child.tag() & TAG != 0;
            if !edge_tagged {
                // parent→child untagged: parent becomes the ancestor, child
                // the successor.
                ancestor = parent;
                successor = child.tagged().with_tag(0);
                parent = child.with_tag(0);
            } else {
                parent = child;
            }
            child = parent.as_ref().unwrap().child_edge(key).get_snapshot(cs);
        }
    }

    /// Splices the flagged chain out with one CAS. No retire loop: dropping
    /// the location's reference reclaims the whole chain (Fig. 1b).
    fn cleanup(&self, cs: &CsGuard<S>, key: &NmKey<K>, s: &Seek<'_, K, V, S>) -> bool {
        let ancestor = s.ancestor.as_ref().unwrap();
        let parent = s.parent.as_ref().unwrap();
        let (child_loc, mut sibling_loc) = if *key < parent.key {
            (&parent.left, &parent.right)
        } else {
            (&parent.right, &parent.left)
        };
        if child_loc.load_tagged().tag() & FLAG == 0 {
            // The flag is on the other side; we are helping that delete.
            sibling_loc = child_loc;
        }
        // Freeze the sibling edge (pointer can no longer change).
        let sib_w = sibling_loc.fetch_or_tag(TAG);
        let sibling = sibling_loc.get_snapshot(cs);
        debug_assert!(sibling.tagged().ptr_eq(sib_w));
        // Swing the ancestor's edge from the successor to the sibling,
        // preserving a pending flag on the sibling so that delete can
        // continue at the new location. On success the displaced pointer is
        // the spliced-out chain; dropping it reclaims every chain node and
        // flagged leaf — the paper's Fig. 1b, with the ownership now
        // explicit in the return value.
        match ancestor.child_edge(key).compare_exchange_tagged(
            s.successor,
            &sibling,
            sib_w.tag() & FLAG,
        ) {
            Ok(chain) => {
                drop(chain);
                true
            }
            Err(_) => false, // another helper already swung the edge
        }
    }

    fn insert_impl(&self, cs: &CsGuard<S>, key: K, value: V) -> bool {
        let nmkey = NmKey::Fin(key);
        loop {
            let s = self.seek(cs, &nmkey);
            let leaf = s.leaf.as_ref().unwrap();
            if leaf.key == nmkey {
                return false;
            }
            // Build replacement subtree: internal(max) { old leaf, new }.
            let new_leaf = Node::leaf(&self.domain, nmkey.clone(), Some(value.clone()));
            let (ikey, l, r) = if nmkey < leaf.key {
                (leaf.key.clone(), new_leaf, s.leaf.to_shared())
            } else {
                (nmkey.clone(), s.leaf.to_shared(), new_leaf)
            };
            let new_internal: SharedPtr<Node<K, V, S>, S> = SharedPtr::new_graph_in(
                Node {
                    key: ikey,
                    value: None,
                    left: AtomicSharedPtr::new_in(l, &self.domain),
                    right: AtomicSharedPtr::new_in(r, &self.domain),
                },
                &self.domain,
            );
            let parent = s.parent.as_ref().unwrap();
            let edge = parent.child_edge(&nmkey);
            // Move our reference to the replacement subtree in (no count
            // round-trip); the displaced edge reference to the old leaf is
            // balanced by the one new_internal's child edge holds.
            match edge.compare_exchange_tagged_owned(s.leaf.tagged().with_tag(0), new_internal, 0) {
                Ok(displaced_leaf) => {
                    drop(displaced_leaf);
                    return true;
                }
                Err(e) => {
                    // The witness replaces the old re-load: if the edge
                    // still points at the leaf but carries a flag/tag, a
                    // delete is pending on it — help before retrying. The
                    // returned subtree drops here (the old leaf it captured
                    // is stale for the next attempt).
                    let w = e.current;
                    if w.ptr_eq(s.leaf.tagged()) && w.tag() != 0 {
                        self.cleanup(cs, &nmkey, &s);
                    }
                }
            }
        }
    }

    fn remove_impl(&self, cs: &CsGuard<S>, key: &K) -> bool {
        let nmkey = NmKey::Fin(key.clone());
        // Pins the victim's address across retries (ABA defence) once we
        // have flagged it.
        let mut target: Option<SharedPtr<Node<K, V, S>, S>> = None;
        loop {
            let s = self.seek(cs, &nmkey);
            match &target {
                None => {
                    let leaf = s.leaf.as_ref().unwrap();
                    if leaf.key != nmkey {
                        return false;
                    }
                    let parent = s.parent.as_ref().unwrap();
                    let edge = parent.child_edge(&nmkey);
                    let expected = s.leaf.tagged().with_tag(0);
                    match edge.try_set_tag(expected, FLAG) {
                        Ok(_) => {
                            target = Some(s.leaf.to_shared());
                            if self.cleanup(cs, &nmkey, &s) {
                                return true;
                            }
                        }
                        Err(w) => {
                            // Witness instead of a re-load: a competing
                            // flag/tag on our leaf's edge means a delete is
                            // in progress there — help it along.
                            if w.ptr_eq(s.leaf.tagged()) && w.tag() != 0 {
                                self.cleanup(cs, &nmkey, &s);
                            }
                        }
                    }
                }
                Some(t) => {
                    if s.leaf.tagged().addr() != t.addr() {
                        return true; // a helper finished our removal
                    }
                    if self.cleanup(cs, &nmkey, &s) {
                        return true;
                    }
                }
            }
        }
    }

    fn get_impl(&self, cs: &CsGuard<S>, key: &K) -> Option<V> {
        let nmkey = NmKey::Fin(key.clone());
        let s = self.seek(cs, &nmkey);
        let leaf = s.leaf.as_ref().unwrap();
        if leaf.key == nmkey {
            leaf.value.clone()
        } else {
            None
        }
    }

    fn range_impl(&self, cs: &CsGuard<S>, from: &K, to: &K, limit: usize) -> usize {
        let lo = NmKey::Fin(from.clone());
        let hi = NmKey::Fin(to.clone());
        let mut found = 0usize;
        // The entire path (in fact frontier) is protected by snapshots —
        // exactly the behaviour Fig. 11 measures: protected-region schemes
        // keep taking fast-path snapshots, RCHP runs out of hazard slots and
        // falls back to reference-count increments.
        let mut stack = vec![self.root.get_snapshot(cs)];
        while let Some(snap) = stack.pop() {
            if found >= limit {
                break;
            }
            let node = snap.as_ref().unwrap();
            if node.is_leaf() {
                if node.key >= lo && node.key < hi {
                    found += 1;
                }
                continue;
            }
            if hi >= node.key {
                stack.push(node.right.get_snapshot(cs));
            }
            if lo < node.key {
                stack.push(node.left.get_snapshot(cs));
            }
        }
        found
    }
}

impl<K, V, S> ConcurrentMap<K, V> for RcNatarajanMittalTree<K, V, S>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    S: Scheme,
{
    type Guard = CsGuard<S>;

    fn pin(&self) -> Self::Guard {
        self.domain.cs()
    }

    fn insert_with(&self, k: K, v: V, cs: &Self::Guard) -> bool {
        debug_assert!(cs.covers(&self.domain), "guard from a foreign domain");
        self.insert_impl(cs, k, v)
    }

    fn remove_with(&self, k: &K, cs: &Self::Guard) -> bool {
        debug_assert!(cs.covers(&self.domain), "guard from a foreign domain");
        self.remove_impl(cs, k)
    }

    fn get_with(&self, k: &K, cs: &Self::Guard) -> Option<V> {
        debug_assert!(cs.covers(&self.domain), "guard from a foreign domain");
        self.get_impl(cs, k)
    }

    fn range_with(&self, from: &K, to: &K, limit: usize, cs: &Self::Guard) -> Option<usize> {
        debug_assert!(cs.covers(&self.domain), "guard from a foreign domain");
        Some(self.range_impl(cs, from, to, limit))
    }

    fn range(&self, from: &K, to: &K, limit: usize) -> Option<usize> {
        self.range_with(from, to, limit, &self.pin())
    }

    /// Exact for this tree's own domain: live nodes plus deferred garbage
    /// of this structure (and of any structure deliberately sharing the
    /// domain via [`new_in`](RcNatarajanMittalTree::new_in)).
    fn in_flight_nodes(&self) -> u64 {
        self.domain.in_flight()
    }
}

impl<K, V, S: Scheme> Drop for RcNatarajanMittalTree<K, V, S> {
    fn drop(&mut self) {
        // Unlink the whole tree, then flush our domain so a structure with
        // a private domain leaves `allocated() == freed()` behind.
        self.root.store(SharedPtr::null());
        self.domain.process_deferred(smr::current_tid());
    }
}

impl<K, V, S> Default for RcNatarajanMittalTree<K, V, S>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    S: Scheme,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, S: Scheme> std::fmt::Debug for RcNatarajanMittalTree<K, V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RcNatarajanMittalTree")
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdrc::{EbrScheme, HpScheme, HyalineScheme, IbrScheme};
    use std::sync::Arc;

    fn smoke<S: Scheme>() {
        let tree: RcNatarajanMittalTree<u64, u64, S> = RcNatarajanMittalTree::new();
        assert_eq!(tree.get(&10), None);
        assert!(tree.insert(10, 100));
        assert!(tree.insert(5, 50));
        assert!(tree.insert(15, 150));
        assert!(!tree.insert(10, 101));
        assert_eq!(tree.get(&10), Some(100));
        assert!(tree.remove(&10));
        assert!(!tree.remove(&10));
        assert_eq!(tree.get(&10), None);
        assert_eq!(tree.get(&15), Some(150));
    }

    #[test]
    fn smoke_all_schemes() {
        smoke::<EbrScheme>();
        smoke::<IbrScheme>();
        smoke::<HpScheme>();
        smoke::<HyalineScheme>();
    }

    #[test]
    fn sequential_model_check() {
        use std::collections::BTreeMap;
        let tree: RcNatarajanMittalTree<u64, u64, EbrScheme> = RcNatarajanMittalTree::new();
        let mut model = BTreeMap::new();
        let mut state = 0xdeadbeefu64;
        for _ in 0..4000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = (state >> 33) % 64;
            match (state >> 20) % 3 {
                0 => assert_eq!(tree.insert(k, k * 2), model.insert(k, k * 2).is_none()),
                1 => assert_eq!(tree.remove(&k), model.remove(&k).is_some()),
                _ => assert_eq!(tree.get(&k), model.get(&k).copied()),
            }
        }
    }

    #[test]
    fn range_supported_on_all_schemes_including_hp() {
        fn run<S: Scheme>() {
            let tree: RcNatarajanMittalTree<u64, u64, S> = RcNatarajanMittalTree::new();
            for k in 0..100 {
                tree.insert(k, k);
            }
            assert_eq!(tree.range(&10, &20, 1000), Some(10));
            assert_eq!(tree.range(&0, &100, 7), Some(7));
        }
        run::<EbrScheme>();
        // The paper's point: RCHP supports the range query unmodified (it
        // falls back to count increments when hazard slots run out).
        run::<HpScheme>();
    }

    fn concurrent<S: Scheme>() {
        let tree: Arc<RcNatarajanMittalTree<u64, u64, S>> = Arc::new(RcNatarajanMittalTree::new());
        let hs: Vec<_> = (0..8)
            .map(|i| {
                let tree = Arc::clone(&tree);
                std::thread::spawn(move || {
                    for j in 0..400u64 {
                        let k = i * 1000 + j;
                        assert!(tree.insert(k, k));
                        assert_eq!(tree.get(&k), Some(k));
                        if j % 2 == 0 {
                            assert!(tree.remove(&k));
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
    }

    #[test]
    fn concurrent_all_schemes() {
        concurrent::<EbrScheme>();
        concurrent::<IbrScheme>();
        concurrent::<HpScheme>();
        concurrent::<HyalineScheme>();
    }

    #[test]
    fn contended_mixed_with_ranges() {
        let tree: Arc<RcNatarajanMittalTree<u64, u64, HyalineScheme>> =
            Arc::new(RcNatarajanMittalTree::new());
        let hs: Vec<_> = (0..8)
            .map(|s| {
                let tree = Arc::clone(&tree);
                std::thread::spawn(move || {
                    let mut state = 0x2545F491u64.wrapping_mul(s + 1) | 1;
                    for _ in 0..1500 {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let k = (state >> 33) % 128;
                        match (state >> 20) % 4 {
                            0 => {
                                tree.insert(k, k);
                            }
                            1 => {
                                tree.remove(&k);
                            }
                            2 => {
                                tree.get(&k);
                            }
                            _ => {
                                tree.range(&k, &(k + 16), 16);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
    }
}
