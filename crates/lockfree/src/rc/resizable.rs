//! Split-ordered resizable hash map over reference-counted pointers
//! (Shalev & Shavit, "Split-ordered lists: lock-free extensible hash
//! tables", adapted to the `cdrc` pointer types).
//!
//! # Why split-ordering instead of bucket-array migration
//!
//! A migrating resize must copy nodes between arrays, and every copy is a
//! window where a straggling helper can resurrect a key that was copied
//! and then deleted — closing that window costs per-bucket freeze markers
//! and claim CASes on the hot path. Split-ordering moves **no nodes,
//! ever**: the table is one Harris-Michael list sorted by *bit-reversed*
//! hash (the "split-order key"), and a bucket is merely a shortcut pointer
//! to a permanent sentinel ("dummy") node inside that list. Growing the
//! table just publishes a bigger mask; new sentinels are spliced in lazily,
//! on first touch, by the same insert CAS every other node uses. The
//! witness-returning CAS family does all the work: retry loops resume from
//! the witnessed word, and a successful unlink's displaced reference *is*
//! the reclamation hand-off.
//!
//! # Split-order keys
//!
//! Regular nodes carry `so_key = hash.reverse_bits() | 1` (odd); the
//! sentinel for bucket `b` carries `so_key = (b as u64).reverse_bits()`
//! (even, all low bits zero). With the bucket of `h` chosen as
//! `h & mask` (low bits), bit reversal sends every key of bucket `b` into
//! the contiguous so-key range beginning at `b`'s sentinel — doubling the
//! mask *splits* each range in two without reordering anything. Sentinels
//! sort strictly before the regular nodes of their bucket (the `| 1`),
//! collide with no regular key, and are never deleted, so a bucket pointer
//! read once is valid forever.
//!
//! # The lazily-doubled directory
//!
//! Bucket pointers live in a `zero` slot plus `SPINE_LEVELS` lazily
//! allocated segments, segment `l` holding buckets `[2^l, 2^{l+1})`. The
//! directory only ever grows and established slots are never rewritten, so
//! readers touch it with plain `Acquire` loads — no migration epoch, no
//! array retirement. A thread observing a *stale* (smaller) mask simply
//! starts its list walk at an ancestor sentinel: correct, just a few hops
//! longer.

use smr::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hash};
use std::marker::PhantomData;

use cdrc::{
    AtomicSharedPtr, CsGuard, DomainRef, EdgeCollector, GraphNode, Scheme, SharedPtr, SnapshotPtr,
    TaggedPtr,
};

use crate::split_order::{so_dummy, so_regular, SPINE_LEVELS};
use crate::{ConcurrentMap, ElementCount};

const MARK: usize = 1;

struct Node<K, V, S: Scheme> {
    so_key: u64,
    /// `None` marks a bucket sentinel; sentinels are never removed and
    /// never surface through the map API.
    kv: Option<(K, V)>,
    next: AtomicSharedPtr<Node<K, V, S>, S>,
}

impl<K, V, S: Scheme> Node<K, V, S> {
    #[inline]
    fn key(&self) -> Option<&K> {
        self.kv.as_ref().map(|(k, _)| k)
    }
}

impl<K, V, S: Scheme> GraphNode<S> for Node<K, V, S> {
    fn pop_edges(&mut self, out: &mut EdgeCollector<'_, S>) {
        out.take_atomic(&mut self.next);
    }
}

/// Lock-free resizable hash map over `cdrc` pointers with scheme `S`
/// ("RCEBR", "RCIBR", "RCHP", "RCHyaline" depending on `S`): a
/// split-ordered list that grows without stopping the world.
///
/// Grows by doubling the bucket mask once the (sharded, approximate) live
/// count exceeds the bucket count — load factor ≈ 1, the classic
/// One directory slot: a strong, CAS-installed-once pointer to a bucket's
/// sentinel node (null until the bucket is first touched).
type Slot<K, V, S> = AtomicSharedPtr<Node<K, V, S>, S>;

/// Lock-free resizable hash map over `cdrc` pointers with scheme `S`
/// ("RCEBR", "RCIBR", "RCHP", "RCHyaline" depending on `S`): a
/// split-ordered list that grows without stopping the world.
///
/// Grows by doubling the bucket mask once the (sharded, approximate) live
/// count exceeds the bucket count — load factor ≈ 1, the classic
/// split-ordered policy. No operation ever blocks on a resize; there is no
/// resize *phase* at all.
pub struct RcResizableHashMap<K, V, S: Scheme> {
    /// Bucket 0's sentinel — the head of the entire list. Installed at
    /// construction and never rewritten, it anchors teardown: nulling it
    /// (plus the other directory slots) releases the whole chain.
    zero: AtomicSharedPtr<Node<K, V, S>, S>,
    /// Segment `l` (once published) is a `Box<[AtomicSharedPtr; 2^l]>`
    /// leaked to a raw pointer; slots start null and are CAS-installed at
    /// most once. Freed in `Drop`.
    spine: [AtomicPtr<Slot<K, V, S>>; SPINE_LEVELS],
    /// `buckets - 1`; buckets is always a power of two. Grows by
    /// `m -> 2m + 1`, monotonically.
    mask: AtomicU64,
    count: ElementCount,
    hasher: RandomState,
    domain: DomainRef<S>,
    _marker: PhantomData<(K, V)>,
}

struct Cursor<'g, K, V, S: Scheme> {
    /// Node containing the edge we are at; `None` = the bucket sentinel
    /// the traversal started from.
    prev: Option<SnapshotPtr<'g, Node<K, V, S>, S>>,
    /// Snapshot read (unmarked) from that edge; null = end of list.
    cur: SnapshotPtr<'g, Node<K, V, S>, S>,
    found: bool,
}

impl<K, V, S> RcResizableHashMap<K, V, S>
where
    K: Ord + Hash + Send + Sync,
    V: Clone + Send + Sync,
    S: Scheme,
{
    /// Creates a map with one bucket, bound to the scheme's global domain.
    pub fn new() -> Self {
        Self::new_in(S::global_domain().clone())
    }

    /// Creates a map with one bucket, bound to `domain`.
    pub fn new_in(domain: DomainRef<S>) -> Self {
        Self::with_capacity_in(1, domain)
    }

    /// Creates a map pre-sized for `capacity` elements (rounded up to a
    /// power of two; sentinels still splice in lazily), bound to the
    /// scheme's global domain.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_in(capacity, S::global_domain().clone())
    }

    /// As [`with_capacity`](Self::with_capacity), bound to `domain`.
    pub fn with_capacity_in(capacity: usize, domain: DomainRef<S>) -> Self {
        let buckets = capacity
            .max(1)
            .next_power_of_two()
            .min(1usize << SPINE_LEVELS) as u64;
        let zero_sentinel = SharedPtr::new_graph_in(
            Node {
                so_key: so_dummy(0),
                kv: None,
                next: AtomicSharedPtr::null_in(&domain),
            },
            &domain,
        );
        RcResizableHashMap {
            zero: AtomicSharedPtr::new_in(zero_sentinel, &domain),
            spine: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            mask: AtomicU64::new(buckets - 1),
            count: ElementCount::new(),
            hasher: RandomState::new(),
            domain,
            _marker: PhantomData,
        }
    }

    /// The reclamation domain this map allocates and reclaims through.
    pub fn domain(&self) -> &DomainRef<S> {
        &self.domain
    }

    /// Current bucket count (monotone; grows under load).
    pub fn buckets(&self) -> u64 {
        // Ordering: Relaxed — reporting read of a monotone routing mask; a
        // stale value is just an older (still valid) size.
        self.mask.load(Ordering::Relaxed) + 1
    }

    /// Approximate live element count (exact once concurrent operations
    /// have happened-before the call, e.g. after joining workers).
    pub fn len(&self) -> u64 {
        self.count.live()
    }

    /// Whether the map is (approximately) empty; see [`len`](Self::len).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The directory segment for `level`, publishing it first if no thread
    /// has touched any bucket in `[2^level, 2^{level+1})` yet.
    fn segment(&self, level: usize) -> &[AtomicSharedPtr<Node<K, V, S>, S>] {
        let slot = &self.spine[level];
        let len = 1usize << level;
        // Ordering: Acquire load / AcqRel CAS — the segment is a heap
        // allocation published through this slot: the winner's Release
        // makes the fresh slots visible, and every reader (including a
        // losing CAS, via its Acquire failure ordering) acquires them
        // before indexing into the segment.
        let mut p = slot.load(Ordering::Acquire);
        if p.is_null() {
            let fresh: Box<[Slot<K, V, S>]> = (0..len)
                .map(|_| AtomicSharedPtr::null_in(&self.domain))
                .collect();
            let raw = Box::into_raw(fresh) as *mut Slot<K, V, S>;
            // Ordering: AcqRel / Acquire — see the publication comment on
            // the slot load above.
            match slot.compare_exchange(
                std::ptr::null_mut(),
                raw,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => p = raw,
                Err(winner) => {
                    // Safety: `raw` was never published; rebuild the boxed
                    // slice (all slots still null) and drop it.
                    unsafe { drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(raw, len))) };
                    p = winner;
                }
            }
        }
        // Safety: published segments are never replaced and outlive `&self`
        // (freed only in `Drop`, which has exclusive access).
        unsafe { std::slice::from_raw_parts(p, len) }
    }

    /// The directory slot holding bucket `b`'s sentinel pointer.
    fn slot(&self, b: usize) -> &AtomicSharedPtr<Node<K, V, S>, S> {
        if b == 0 {
            return &self.zero;
        }
        let level = (usize::BITS - 1 - b.leading_zeros()) as usize;
        &self.segment(level)[b - (1usize << level)]
    }

    /// Returns bucket `b`'s sentinel, splicing it (and, recursively, any
    /// missing ancestors) into the list on first touch.
    ///
    /// The parent of `b` is `b` with its most significant set bit cleared —
    /// the bucket whose so-key range contains `b`'s until the split.
    /// Recursion depth is the popcount of `b` (≤ [`SPINE_LEVELS`]).
    fn ensure_bucket<'g>(&self, b: usize, cs: &'g CsGuard<S>) -> SnapshotPtr<'g, Node<K, V, S>, S> {
        let slot = self.slot(b);
        let snap = slot.get_snapshot(cs);
        if !snap.is_null() {
            return snap;
        }
        debug_assert!(b > 0, "bucket 0's sentinel is installed at construction");
        let level = (usize::BITS - 1 - b.leading_zeros()) as usize;
        let parent = self.ensure_bucket(b - (1usize << level), cs);
        let sentinel = self.splice_sentinel(&parent, so_dummy(b as u64), cs);
        // Losing this install race is harmless: the list admits exactly one
        // node per (even) so-key, so the winner published the same node.
        let _ = slot.compare_exchange(TaggedPtr::null(), &sentinel);
        slot.get_snapshot(cs)
    }

    /// Inserts (or finds) the sentinel with `so_key`, starting the walk at
    /// `start` (an ancestor sentinel). Returns a strong reference to it.
    fn splice_sentinel<'g>(
        &self,
        start: &SnapshotPtr<'g, Node<K, V, S>, S>,
        so_key: u64,
        cs: &'g CsGuard<S>,
    ) -> SharedPtr<Node<K, V, S>, S> {
        let mut sentinel: SharedPtr<Node<K, V, S>, S> = SharedPtr::new_graph_in(
            Node {
                so_key,
                kv: None,
                next: AtomicSharedPtr::null_in(&self.domain),
            },
            &self.domain,
        );
        loop {
            let c = self.find_from(start, so_key, None, cs);
            if c.found {
                return c.cur.to_shared(); // raced: reuse the winner's node
            }
            sentinel.as_ref().unwrap().next.store_from(&c.cur);
            let keep = sentinel.clone();
            match Self::edge(start, &c.prev).compare_exchange_tagged_owned(
                c.cur.tagged(),
                sentinel,
                0,
            ) {
                Ok(displaced) => {
                    drop(displaced);
                    return keep;
                }
                Err(e) => {
                    drop(keep);
                    sentinel = e.desired;
                }
            }
        }
    }

    fn edge<'a, 'g>(
        start: &'a SnapshotPtr<'g, Node<K, V, S>, S>,
        prev: &'a Option<SnapshotPtr<'g, Node<K, V, S>, S>>,
    ) -> &'a AtomicSharedPtr<Node<K, V, S>, S> {
        let holder = match prev {
            None => start,
            Some(p) => p,
        };
        &holder.as_ref().expect("cursor nodes are non-null").next
    }

    /// The Harris-Michael find, walking from `start`'s next edge to the
    /// first node ≥ `(so_key, key)` in split order, helping unlink marked
    /// nodes on the way. Restarts are bucket-local: `start` is a sentinel,
    /// and sentinels are never deleted, so its next edge is always a valid
    /// anchor — no walk ever restarts from the table head.
    fn find_from<'g>(
        &self,
        start: &SnapshotPtr<'g, Node<K, V, S>, S>,
        so_key: u64,
        key: Option<&K>,
        cs: &'g CsGuard<S>,
    ) -> Cursor<'g, K, V, S> {
        'retry: loop {
            let mut prev: Option<SnapshotPtr<'g, Node<K, V, S>, S>> = None;
            let mut cur = Self::edge(start, &prev).get_snapshot(cs);
            if cur.tag() != 0 {
                // A sentinel's next edge is never marked (sentinels are not
                // deleted), so this only trips transiently mid-splice.
                continue 'retry;
            }
            loop {
                let Some(node) = cur.as_ref() else {
                    return Cursor {
                        prev,
                        cur,
                        found: false,
                    };
                };
                let next = node.next.get_snapshot(cs);
                // Validate cur is still linked unmarked at the prev edge.
                if Self::edge(start, &prev).load_tagged() != cur.tagged() {
                    continue 'retry;
                }
                if next.tag() & MARK != 0 {
                    // cur is logically deleted: splice it out; the displaced
                    // reference *is* the reclamation hand-off.
                    match Self::edge(start, &prev).compare_exchange_tagged_with(
                        cs,
                        cur.tagged(),
                        &next,
                        0,
                    ) {
                        Ok(unlinked) => {
                            drop(unlinked);
                            cur = next.with_tag(0);
                            continue;
                        }
                        Err(w) => {
                            // Witness unmarked: a competing helper/inserter
                            // moved the edge — resume from the witnessed
                            // word, same prev, no re-walk. Marked: prev is
                            // itself being deleted; restart at the sentinel.
                            if w.tag() == 0 {
                                cur = w;
                                continue;
                            }
                            continue 'retry;
                        }
                    }
                }
                // Split-order comparison: so-key first, then the real key
                // (two distinct keys can share an odd so-key; sentinels are
                // `None` and sort before every regular node).
                match (node.so_key, node.key()).cmp(&(so_key, key)) {
                    std::cmp::Ordering::Less => {
                        prev = Some(cur);
                        cur = next;
                    }
                    std::cmp::Ordering::Equal => {
                        return Cursor {
                            prev,
                            cur,
                            found: true,
                        }
                    }
                    std::cmp::Ordering::Greater => {
                        return Cursor {
                            prev,
                            cur,
                            found: false,
                        }
                    }
                }
            }
        }
    }

    /// Doubles the mask if the live estimate exceeds the bucket count
    /// (load factor ≈ 1). Called on the insert-count cadence only.
    fn maybe_grow(&self) {
        let live = self.count.live();
        // Ordering: Relaxed — the mask is a routing hint, not a guard; the
        // CAS below revalidates it and a stale read only delays growth.
        let mask = self.mask.load(Ordering::Relaxed);
        let buckets = mask + 1;
        if live > buckets && buckets < (1u64 << SPINE_LEVELS) {
            // Ordering: Relaxed — the mask is a routing hint, not a guard:
            // an operation using the old mask lands on an ancestor sentinel
            // and walks a few extra hops, which is always correct. Losing
            // the CAS means another thread already grew past `mask`.
            let _ = self.mask.compare_exchange(
                mask,
                mask * 2 + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
    }

    /// The sentinel to start `h`'s operation from under the current mask.
    fn bucket_for<'g>(&self, h: u64, cs: &'g CsGuard<S>) -> SnapshotPtr<'g, Node<K, V, S>, S> {
        // Ordering: Relaxed — stale masks route to an ancestor sentinel,
        // which reaches the same bucket through a few extra hops.
        let b = (h & self.mask.load(Ordering::Relaxed)) as usize;
        self.ensure_bucket(b, cs)
    }
}

impl<K, V, S> ConcurrentMap<K, V> for RcResizableHashMap<K, V, S>
where
    K: Ord + Hash + Send + Sync,
    V: Clone + Send + Sync,
    S: Scheme,
{
    type Guard = CsGuard<S>;

    fn pin(&self) -> Self::Guard {
        self.domain.cs()
    }

    fn insert_with(&self, k: K, v: V, cs: &Self::Guard) -> bool {
        debug_assert!(cs.covers(&self.domain), "guard from a foreign domain");
        let h = self.hasher.hash_one(&k);
        let so = so_regular(h);
        let mut new_node: SharedPtr<Node<K, V, S>, S> = SharedPtr::new_graph_in(
            Node {
                so_key: so,
                kv: Some((k, v)),
                next: AtomicSharedPtr::null_in(&self.domain),
            },
            &self.domain,
        );
        loop {
            // Re-read the mask each attempt: a concurrent grow between
            // attempts may have split this key's bucket.
            let start = self.bucket_for(h, cs);
            let c = self.find_from(&start, so, new_node.as_ref().unwrap().key(), cs);
            if c.found {
                return false; // new_node drops; no manual free needed
            }
            new_node.as_ref().unwrap().next.store_from(&c.cur);
            match Self::edge(&start, &c.prev).compare_exchange_tagged_owned(
                c.cur.tagged(),
                new_node,
                0,
            ) {
                Ok(displaced) => {
                    drop(displaced);
                    if self.count.on_insert(smr::current_tid()) {
                        self.maybe_grow();
                    }
                    return true;
                }
                // Failure hands new_node back untouched: re-find, no
                // reallocation, no count round-trip.
                Err(e) => new_node = e.desired,
            }
        }
    }

    fn remove_with(&self, k: &K, cs: &Self::Guard) -> bool {
        debug_assert!(cs.covers(&self.domain), "guard from a foreign domain");
        let h = self.hasher.hash_one(k);
        let so = so_regular(h);
        loop {
            let start = self.bucket_for(h, cs);
            let c = self.find_from(&start, so, Some(k), cs);
            if !c.found {
                return false;
            }
            let node = c.cur.as_ref().unwrap();
            // Logically delete: mark cur's next word, retrying in place on
            // the witness (cur stays protected by the cursor).
            let mut next_t = node.next.load_tagged();
            let marked = loop {
                if next_t.tag() & MARK != 0 {
                    break false; // someone else is deleting it
                }
                match node.next.try_set_tag(next_t, MARK) {
                    Ok(_) => break true,
                    Err(w) => next_t = w,
                }
            };
            if !marked {
                continue; // help the competing delete via find
            }
            // Marked: attempt the physical unlink; find() helps otherwise.
            let next_snap = node.next.get_snapshot(cs);
            if let Ok(unlinked) = Self::edge(&start, &c.prev).compare_exchange_tagged_with(
                cs,
                c.cur.tagged(),
                &next_snap,
                0,
            ) {
                drop(unlinked);
            }
            self.count.on_remove(smr::current_tid());
            return true;
        }
    }

    fn get_with(&self, k: &K, cs: &Self::Guard) -> Option<V> {
        debug_assert!(cs.covers(&self.domain), "guard from a foreign domain");
        let h = self.hasher.hash_one(k);
        let c = self.find_from(&self.bucket_for(h, cs), so_regular(h), Some(k), cs);
        if c.found {
            Some(c.cur.as_ref().unwrap().kv.as_ref().unwrap().1.clone())
        } else {
            None
        }
    }

    /// Exact for this map's own domain (live nodes — including sentinels —
    /// plus deferred garbage).
    fn in_flight_nodes(&self) -> u64 {
        self.domain.in_flight()
    }
}

impl<K, V, S> Default for RcResizableHashMap<K, V, S>
where
    K: Ord + Hash + Send + Sync,
    V: Clone + Send + Sync,
    S: Scheme,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, S: Scheme> Drop for RcResizableHashMap<K, V, S> {
    fn drop(&mut self) {
        // Null every directory slot. The `zero` slot owns the list head, so
        // dropping its reference cascades down the chain (immediate
        // recursive destruction via `pop_edges`); the other slots hold
        // additional strong references to sentinels and must be released
        // too, then their segment allocations freed. Finally flush the
        // domain so a private-domain map leaves `allocated() == freed()`.
        self.zero.store(SharedPtr::null());
        for (level, slot) in self.spine.iter().enumerate() {
            // Ordering: Acquire — pairs with the publishing CAS in
            // `segment`; Drop's exclusivity covers mutation, not the
            // visibility of another thread's published allocation.
            let p = slot.load(Ordering::Acquire);
            if p.is_null() {
                continue;
            }
            let len = 1usize << level;
            // Safety: exclusive access in Drop; the segment was published
            // from a `Box<[AtomicSharedPtr; len]>` and never replaced.
            let seg = unsafe { Box::from_raw(std::ptr::slice_from_raw_parts_mut(p, len)) };
            for s in seg.iter() {
                s.store(SharedPtr::null());
            }
            drop(seg);
        }
        self.domain.process_deferred(smr::current_tid());
    }
}

impl<K, V, S: Scheme> std::fmt::Debug for RcResizableHashMap<K, V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Ordering: Relaxed — diagnostic snapshot only.
        f.debug_struct("RcResizableHashMap")
            .field("buckets", &(self.mask.load(Ordering::Relaxed) + 1))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdrc::{EbrScheme, HpScheme, HyalineScheme, IbrScheme};
    use std::sync::Arc;

    fn smoke<S: Scheme>() {
        let m: RcResizableHashMap<u64, u64, S> = RcResizableHashMap::new();
        assert!(m.insert(5, 50));
        assert!(m.insert(3, 30));
        assert!(!m.insert(5, 55));
        assert_eq!(m.get(&5), Some(50));
        assert_eq!(m.get(&4), None);
        assert!(m.remove(&5));
        assert!(!m.remove(&5));
        assert_eq!(m.get(&5), None);
        assert_eq!(m.get(&3), Some(30));
    }

    #[test]
    fn smoke_all_schemes() {
        smoke::<EbrScheme>();
        smoke::<IbrScheme>();
        smoke::<HpScheme>();
        smoke::<HyalineScheme>();
    }

    #[test]
    fn grows_under_single_threaded_load() {
        let m: RcResizableHashMap<u64, u64, EbrScheme> = RcResizableHashMap::new();
        assert_eq!(m.buckets(), 1);
        for k in 0..4096u64 {
            assert!(m.insert(k, k));
        }
        assert!(m.buckets() > 1, "mask never grew");
        for k in 0..4096u64 {
            assert_eq!(m.get(&k), Some(k), "key {k} lost across growth");
        }
        for k in 0..4096u64 {
            assert!(m.remove(&k));
        }
        for k in 0..4096u64 {
            assert_eq!(m.get(&k), None);
        }
    }

    #[test]
    fn domain_balances_after_drop() {
        let domain: DomainRef<EbrScheme> = DomainRef::new();
        let m: RcResizableHashMap<u64, u64, EbrScheme> = RcResizableHashMap::new_in(domain.clone());
        for k in 0..1024u64 {
            assert!(m.insert(k, k));
        }
        for k in 0..512u64 {
            assert!(m.remove(&k));
        }
        drop(m);
        assert_eq!(domain.allocated(), domain.freed(), "Drop flushes all");
    }

    #[test]
    fn concurrent_grow_under_churn() {
        let m: Arc<RcResizableHashMap<u64, u64, HpScheme>> = Arc::new(RcResizableHashMap::new());
        let hs: Vec<_> = (0..8)
            .map(|i| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for j in 0..500u64 {
                        let k = i * 10_000 + j;
                        assert!(m.insert(k, k));
                        assert_eq!(m.get(&k), Some(k));
                        if j % 2 == 0 {
                            assert!(m.remove(&k));
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert!(m.buckets() > 1, "table grew during churn");
        for i in 0..8u64 {
            for j in 0..500u64 {
                let k = i * 10_000 + j;
                assert_eq!(m.get(&k), if j % 2 == 0 { None } else { Some(k) });
            }
        }
    }

    #[test]
    fn with_capacity_rounds_up() {
        let m: RcResizableHashMap<u64, u64, EbrScheme> = RcResizableHashMap::with_capacity(100);
        assert_eq!(m.buckets(), 128);
    }
}
