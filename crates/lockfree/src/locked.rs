//! Lock-based atomic shared/weak pointers — the stand-in for the
//! commercial `just::thread` library in the paper's Fig. 12 (see DESIGN.md,
//! substitutions).
//!
//! Each atomic pointer guards an `Option<Arc<T>>` / `Weak<T>` with a
//! per-pointer spinlock, the technique used by mainstream C++ standard
//! libraries for `atomic<shared_ptr>`: correct, simple, and — the point of
//! the comparison — serializing every access to the same pointer.

use smr::sync::atomic::{AtomicBool, Ordering};
use std::cell::UnsafeCell;
use std::sync::{Arc, Weak};

use crate::ConcurrentQueue;

/// A minimal test-and-test-and-set spinlock.
#[derive(Debug, Default)]
struct SpinLock {
    locked: AtomicBool,
}

impl SpinLock {
    fn lock(&self) {
        loop {
            // Ordering: Acquire on the winning swap — synchronizes with the
            // previous holder's Release unlock, so the critical section
            // sees everything it wrote. The spin re-read is Relaxed: it
            // only decides when to retry the swap, which re-synchronizes.
            if !self.locked.swap(true, Ordering::Acquire) {
                return;
            }
            while self.locked.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
        }
    }

    fn unlock(&self) {
        // Ordering: Release — publishes the critical section's writes to
        // the next Acquire winner.
        self.locked.store(false, Ordering::Release);
    }
}

/// Lock-based `atomic<shared_ptr<T>>`.
pub struct LockedAtomicSharedPtr<T> {
    lock: SpinLock,
    value: UnsafeCell<Option<Arc<T>>>,
}

// Safety: all access to `value` is under `lock`.
unsafe impl<T: Send + Sync> Send for LockedAtomicSharedPtr<T> {}
unsafe impl<T: Send + Sync> Sync for LockedAtomicSharedPtr<T> {}

impl<T> LockedAtomicSharedPtr<T> {
    /// Creates a location holding `ptr`.
    pub fn new(ptr: Option<Arc<T>>) -> Self {
        LockedAtomicSharedPtr {
            lock: SpinLock::default(),
            value: UnsafeCell::new(ptr),
        }
    }

    fn with<R>(&self, f: impl FnOnce(&mut Option<Arc<T>>) -> R) -> R {
        self.lock.lock();
        // Safety: the spinlock serializes access.
        let r = f(unsafe { &mut *self.value.get() });
        self.lock.unlock();
        r
    }

    /// Loads a copy of the stored pointer.
    pub fn load(&self) -> Option<Arc<T>> {
        self.with(|v| v.clone())
    }

    /// Stores `ptr`, dropping the previous value.
    pub fn store(&self, ptr: Option<Arc<T>>) {
        self.with(|v| *v = ptr);
    }

    /// Replaces the value with `desired` iff it currently points to the
    /// same object as `expected` (null matches null).
    pub fn compare_exchange(&self, expected: Option<&Arc<T>>, desired: Option<Arc<T>>) -> bool {
        self.with(|v| {
            let matches = match (v.as_ref(), expected) {
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                (None, None) => true,
                _ => false,
            };
            if matches {
                *v = desired;
            }
            matches
        })
    }
}

impl<T> std::fmt::Debug for LockedAtomicSharedPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("LockedAtomicSharedPtr(..)")
    }
}

/// Lock-based `atomic<weak_ptr<T>>`.
pub struct LockedAtomicWeakPtr<T> {
    lock: SpinLock,
    value: UnsafeCell<Weak<T>>,
}

// Safety: all access to `value` is under `lock`.
unsafe impl<T: Send + Sync> Send for LockedAtomicWeakPtr<T> {}
unsafe impl<T: Send + Sync> Sync for LockedAtomicWeakPtr<T> {}

impl<T> LockedAtomicWeakPtr<T> {
    /// Creates a location holding the null weak pointer.
    pub fn new() -> Self {
        LockedAtomicWeakPtr {
            lock: SpinLock::default(),
            value: UnsafeCell::new(Weak::new()),
        }
    }

    /// Loads a copy of the stored weak pointer.
    pub fn load(&self) -> Weak<T> {
        self.lock.lock();
        // Safety: serialized by the lock.
        let w = unsafe { (*self.value.get()).clone() };
        self.lock.unlock();
        w
    }

    /// Stores `w`.
    pub fn store(&self, w: Weak<T>) {
        self.lock.lock();
        // Safety: serialized by the lock.
        unsafe { *self.value.get() = w };
        self.lock.unlock();
    }
}

impl<T> Default for LockedAtomicWeakPtr<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for LockedAtomicWeakPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("LockedAtomicWeakPtr(..)")
    }
}

struct Node<V> {
    value: Option<V>,
    next: LockedAtomicSharedPtr<Node<V>>,
    prev: LockedAtomicWeakPtr<Node<V>>,
}

/// The Fig. 10 queue built on the lock-based pointers — the "just::thread"
/// series of Fig. 12.
pub struct LockedDoubleLinkQueue<V> {
    head: LockedAtomicSharedPtr<Node<V>>,
    tail: LockedAtomicSharedPtr<Node<V>>,
}

impl<V: Clone + Send + Sync> LockedDoubleLinkQueue<V> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let sentinel = Arc::new(Node {
            value: None,
            next: LockedAtomicSharedPtr::new(None),
            prev: LockedAtomicWeakPtr::new(),
        });
        LockedDoubleLinkQueue {
            head: LockedAtomicSharedPtr::new(Some(Arc::clone(&sentinel))),
            tail: LockedAtomicSharedPtr::new(Some(sentinel)),
        }
    }
}

impl<V: Clone + Send + Sync> ConcurrentQueue<V> for LockedDoubleLinkQueue<V> {
    /// Lock-based pointers need no reclamation protection, so the guard is a
    /// unit token: `pin` is free and the `_with` variants are identical to
    /// the guard-free calls.
    type Guard = ();

    fn pin(&self) -> Self::Guard {}

    fn enqueue_with(&self, v: V, _guard: &Self::Guard) {
        self.enqueue(v);
    }

    fn dequeue_with(&self, _guard: &Self::Guard) -> Option<V> {
        self.dequeue()
    }

    fn enqueue(&self, v: V) {
        let new_node = Arc::new(Node {
            value: Some(v),
            next: LockedAtomicSharedPtr::new(None),
            prev: LockedAtomicWeakPtr::new(),
        });
        loop {
            let ltail = self.tail.load().expect("tail is never null");
            new_node.prev.store(Arc::downgrade(&ltail));
            // Help the previous enqueue publish its next pointer.
            if let Some(lprev) = ltail.prev.load().upgrade() {
                if lprev.next.load().is_none() {
                    lprev.next.store(Some(Arc::clone(&ltail)));
                }
            }
            if self
                .tail
                .compare_exchange(Some(&ltail), Some(Arc::clone(&new_node)))
            {
                ltail.next.store(Some(new_node));
                return;
            }
        }
    }

    fn dequeue(&self) -> Option<V> {
        loop {
            let lhead = self.head.load().expect("head is never null");
            let lnext = lhead.next.load()?;
            if self
                .head
                .compare_exchange(Some(&lhead), Some(Arc::clone(&lnext)))
            {
                return lnext.value.clone();
            }
        }
    }
}

impl<V: Clone + Send + Sync> Default for LockedDoubleLinkQueue<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> std::fmt::Debug for LockedDoubleLinkQueue<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("LockedDoubleLinkQueue(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_shared_ptr_semantics() {
        let a = Arc::new(1u32);
        let b = Arc::new(2u32);
        let p = LockedAtomicSharedPtr::new(Some(Arc::clone(&a)));
        assert!(Arc::ptr_eq(&p.load().unwrap(), &a));
        assert!(p.compare_exchange(Some(&a), Some(Arc::clone(&b))));
        assert!(!p.compare_exchange(Some(&a), Some(Arc::clone(&a))));
        assert!(Arc::ptr_eq(&p.load().unwrap(), &b));
        p.store(None);
        assert!(p.load().is_none());
        assert!(p.compare_exchange(None, Some(a)));
    }

    #[test]
    fn atomic_weak_ptr_semantics() {
        let a = Arc::new(7u32);
        let w = LockedAtomicWeakPtr::new();
        assert!(w.load().upgrade().is_none());
        w.store(Arc::downgrade(&a));
        assert_eq!(w.load().upgrade().as_deref(), Some(&7));
        drop(a);
        assert!(w.load().upgrade().is_none());
    }

    #[test]
    fn queue_fifo() {
        let q = LockedDoubleLinkQueue::new();
        assert_eq!(q.dequeue(), None);
        q.enqueue(1);
        q.enqueue(2);
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn queue_concurrent_conserves() {
        let q = Arc::new(LockedDoubleLinkQueue::new());
        for i in 0..4u64 {
            q.enqueue(i);
        }
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for _ in 0..2000 {
                        loop {
                            if let Some(v) = q.dequeue() {
                                q.enqueue(v);
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let mut seen = Vec::new();
        while let Some(v) = q.dequeue() {
            seen.push(v);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }
}
