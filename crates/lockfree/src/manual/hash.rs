//! Michael's lock-free hash table (manual reclamation): a fixed array of
//! Harris-Michael list buckets sharing one scheme instance.

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hash};
use std::sync::Arc;

use smr::AcquireRetire;

use crate::manual::HarrisMichaelList;
use crate::{ConcurrentMap, NodeStats};

/// Michael's hash table over manual SMR scheme `S` (bucket count fixed at
/// construction; the paper sizes it for load factor 1).
pub struct MichaelHashMap<K, V, S: AcquireRetire> {
    buckets: Vec<HarrisMichaelList<K, V, S>>,
    hasher: RandomState,
    /// The scheme instance shared by every bucket; one [`pin`] covers them
    /// all, so a guard-batched sequence of operations pays the section fence
    /// once regardless of which buckets it hits.
    ///
    /// [`pin`]: ConcurrentMap::pin
    smr: Arc<S>,
    stats: Arc<NodeStats>,
}

impl<K, V, S> MichaelHashMap<K, V, S>
where
    K: Ord + Hash + Send + Sync,
    V: Clone + Send + Sync,
    S: AcquireRetire,
{
    /// Creates a table with `buckets` buckets (minimum 1, **rounded up to
    /// a power of two** so bucket selection is a mask instead of a
    /// division).
    pub fn with_buckets(buckets: usize) -> Self {
        let smr = Arc::new(S::new(
            Arc::new(smr::GlobalEpoch::new()),
            S::default_config(),
        ));
        let stats = Arc::new(NodeStats::new());
        MichaelHashMap {
            buckets: (0..buckets.max(1).next_power_of_two())
                .map(|_| HarrisMichaelList::with_shared(Arc::clone(&smr), Arc::clone(&stats)))
                .collect(),
            hasher: RandomState::new(),
            smr,
            stats,
        }
    }

    fn bucket(&self, k: &K) -> &HarrisMichaelList<K, V, S> {
        let h = self.hasher.hash_one(k);
        // As in the RC table: multiplicative mix + mask, replacing the
        // division of `hash % len` on the hottest read path. `len` is a
        // power of two by construction.
        let mixed = (h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize;
        &self.buckets[mixed & (self.buckets.len() - 1)]
    }
}

impl<K, V, S> ConcurrentMap<K, V> for MichaelHashMap<K, V, S>
where
    K: Ord + Hash + Send + Sync,
    V: Clone + Send + Sync,
    S: AcquireRetire,
{
    type Guard = smr::SectionGuard<S>;

    fn pin(&self) -> Self::Guard {
        smr::SectionGuard::enter(Arc::clone(&self.smr))
    }

    fn insert_with(&self, k: K, v: V, guard: &Self::Guard) -> bool {
        self.bucket(&k).insert_with(k, v, guard)
    }

    fn remove_with(&self, k: &K, guard: &Self::Guard) -> bool {
        self.bucket(k).remove_with(k, guard)
    }

    fn get_with(&self, k: &K, guard: &Self::Guard) -> Option<V> {
        self.bucket(k).get_with(k, guard)
    }

    fn in_flight_nodes(&self) -> u64 {
        self.stats.in_flight()
    }
}

impl<K, V, S: AcquireRetire> std::fmt::Debug for MichaelHashMap<K, V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MichaelHashMap")
            .field("scheme", &S::scheme_name())
            .field("buckets", &self.buckets.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr::{Ebr, Hp};

    #[test]
    fn smoke() {
        let m: MichaelHashMap<u64, String, Ebr> = MichaelHashMap::with_buckets(16);
        assert!(m.insert(1, "one".into()));
        assert!(m.insert(17, "seventeen".into())); // same bucket candidate
        assert!(!m.insert(1, "uno".into()));
        assert_eq!(m.get(&1).as_deref(), Some("one"));
        assert!(m.remove(&1));
        assert_eq!(m.get(&1), None);
        assert_eq!(m.get(&17).as_deref(), Some("seventeen"));
    }

    #[test]
    fn concurrent_hp() {
        let m: Arc<MichaelHashMap<u64, u64, Hp>> = Arc::new(MichaelHashMap::with_buckets(64));
        let hs: Vec<_> = (0..8)
            .map(|i| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for j in 0..500u64 {
                        let k = i * 1000 + j;
                        assert!(m.insert(k, k));
                        assert_eq!(m.get(&k), Some(k));
                        if j % 2 == 1 {
                            assert!(m.remove(&k));
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
    }
}
