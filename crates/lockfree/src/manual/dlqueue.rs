//! DoubleLink-style lock-free queue (manual reclamation) — the "Original"
//! baseline of the paper's Fig. 12.
//!
//! Ramalhete and Correia's queue keeps `prev` back-pointers so enqueuers can
//! repair lagging `next` pointers; their published implementation relies on
//! a *customized* hazard-pointer scheme in which announcing a node also
//! protects its neighbours, which no general-purpose interface offers. As
//! documented in DESIGN.md, this manual baseline keeps the DoubleLink node
//! layout (value + prev + next, one tail CAS plus one next store per
//! enqueue) but performs the next-pointer publication eagerly by the CAS
//! winner instead of dereferencing possibly-reclaimed `prev` nodes; dequeues
//! that observe a not-yet-published `next` report "empty", linearizing the
//! lagging enqueue at its publication. The automatic variant
//! ([`crate::rc::RcDoubleLinkQueue`]) implements the helping exactly as the
//! paper's Fig. 10, where weak pointers make it safe.

use smr::sync::atomic::{AtomicUsize, Ordering};
use std::marker::PhantomData;
use std::sync::Arc;

use smr::{AcquireRetire, Retired, Tid};

use crate::{ConcurrentQueue, NodeStats};

struct Node<V> {
    birth: u64,
    value: Option<V>,
    /// Back pointer (structural fidelity with DoubleLink; never traversed
    /// in this manual variant — see module docs).
    prev: AtomicUsize,
    next: AtomicUsize,
}

impl<V> super::OutgoingEdges for Node<V> {
    fn out_edges(&self, out: &mut Vec<usize>) {
        // `prev` is a back edge — not owned, never reported.
        out.push(self.next.load(Ordering::SeqCst));
    }
}

/// Manual DoubleLink queue under SMR scheme `S`.
pub struct DoubleLinkQueue<V, S: AcquireRetire> {
    head: AtomicUsize,
    tail: AtomicUsize,
    smr: Arc<S>,
    stats: Arc<NodeStats>,
    _marker: super::NodeMarker<Node<V>, S>,
}

unsafe impl<V: Send + Sync, S: AcquireRetire> Send for DoubleLinkQueue<V, S> {}
unsafe impl<V: Send + Sync, S: AcquireRetire> Sync for DoubleLinkQueue<V, S> {}

impl<V, S> DoubleLinkQueue<V, S>
where
    V: Clone + Send + Sync,
    S: AcquireRetire,
{
    /// Creates an empty queue.
    pub fn new() -> Self {
        let smr = Arc::new(S::new(
            Arc::new(smr::GlobalEpoch::new()),
            S::default_config(),
        ));
        let stats = Arc::new(NodeStats::new());
        stats.on_alloc(smr::current_tid());
        let sentinel = Box::into_raw(Box::new(Node::<V> {
            birth: 0,
            value: None,
            prev: AtomicUsize::new(0),
            next: AtomicUsize::new(0),
        }));
        DoubleLinkQueue {
            head: AtomicUsize::new(sentinel as usize),
            tail: AtomicUsize::new(sentinel as usize),
            smr,
            stats,
            _marker: PhantomData,
        }
    }

    fn collect(&self, t: Tid) {
        while let Some(r) = self.smr.eject(t) {
            self.stats.on_free(t);
            // Safety: ejected addresses are our nodes, retired once.
            unsafe { drop(Box::from_raw(r.addr as *mut Node<V>)) };
        }
    }

    /// Protection for a CAS failure witness: schemes whose active section
    /// alone protects every word read from a live location
    /// ([`AcquireRetire::PROTECTS_SECTION_READS`]: EBR, Hyaline) take the
    /// witnessed pointer directly — acquiring on a stack slot mints a
    /// (trivial) guard without re-reading the live word. The rest must
    /// revalidate against the live word (IBR: the witness may be born after
    /// the announced interval; HP: protection is per announced pointer), so
    /// they re-acquire — the witness only seeded the failed comparison.
    fn protect_witness(&self, t: Tid, w: usize, src: &AtomicUsize) -> (usize, S::Guard) {
        if S::PROTECTS_SECTION_READS {
            let local = AtomicUsize::new(w);
            self.smr
                .try_acquire(t, &local)
                .expect("section-read schemes never exhaust guards")
        } else {
            self.smr
                .try_acquire(t, src)
                .expect("queue ops hold at most 2 guards")
        }
    }

    fn enqueue_impl(&self, t: Tid, v: V) {
        let birth = self.smr.birth_epoch(t);
        self.stats.on_alloc(t);
        let node = Box::into_raw(Box::new(Node {
            birth,
            value: Some(v),
            prev: AtomicUsize::new(0),
            next: AtomicUsize::new(0),
        }));
        let (mut ltail, mut g) = self
            .smr
            .try_acquire(t, &self.tail)
            .expect("queue ops hold at most 2 guards");
        loop {
            // Safety: node unpublished.
            unsafe { (*node).prev.store(ltail, Ordering::SeqCst) };
            match self.tail.compare_exchange(
                ltail,
                node as usize,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    // We won: publish the forward edge. ltail cannot be
                    // retired before this store — dequeuers need
                    // ltail.next ≠ 0 to advance past it.
                    // Safety: ltail protected by the guard and by the
                    // argument above.
                    unsafe {
                        (*(ltail as *mut Node<V>))
                            .next
                            .store(node as usize, Ordering::SeqCst)
                    };
                    self.smr.release(t, g);
                    return;
                }
                // The witness is the new tail; under EBR/Hyaline it is
                // already protected (no re-read), under IBR/HP the retry
                // re-acquires from the live word.
                Err(w) => {
                    self.smr.release(t, g);
                    (ltail, g) = self.protect_witness(t, w, &self.tail);
                }
            }
        }
    }

    fn dequeue_impl(&self, t: Tid) -> Option<V> {
        let (mut lhead, mut hg) = self
            .smr
            .try_acquire(t, &self.head)
            .expect("queue ops hold at most 2 guards");
        loop {
            let head_node = lhead as *const Node<V>;
            // Safety: lhead protected by hg (validated against self.head,
            // or carried over from a CAS witness under a region scheme).
            let next_field = unsafe { &(*head_node).next };
            let (lnext, ng) = self
                .smr
                .try_acquire(t, next_field)
                .expect("queue ops hold at most 2 guards");
            if lnext == 0 {
                self.smr.release(t, ng);
                self.smr.release(t, hg);
                return None;
            }
            match self
                .head
                .compare_exchange(lhead, lnext, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    // Safety: lnext protected by ng; its value slot is
                    // written once at enqueue.
                    let v = unsafe { (*(lnext as *const Node<V>)).value.clone() };
                    let birth = unsafe { (*head_node).birth };
                    self.smr.retire(t, Retired::new(lhead, birth));
                    self.smr.release(t, ng);
                    self.smr.release(t, hg);
                    return v;
                }
                // The witness is the new head; EBR/Hyaline retry on it
                // directly, IBR/HP re-acquire from the live word.
                Err(w) => {
                    self.smr.release(t, ng);
                    self.smr.release(t, hg);
                    (lhead, hg) = self.protect_witness(t, w, &self.head);
                }
            }
        }
    }
}

impl<V, S> ConcurrentQueue<V> for DoubleLinkQueue<V, S>
where
    V: Clone + Send + Sync,
    S: AcquireRetire,
{
    type Guard = smr::SectionGuard<S>;

    fn pin(&self) -> Self::Guard {
        smr::SectionGuard::enter(Arc::clone(&self.smr))
    }

    fn enqueue_with(&self, v: V, guard: &Self::Guard) {
        debug_assert!(guard.covers(&self.smr), "guard from a foreign instance");
        let t = guard.tid();
        self.enqueue_impl(t, v);
        self.collect(t);
    }

    fn dequeue_with(&self, guard: &Self::Guard) -> Option<V> {
        debug_assert!(guard.covers(&self.smr), "guard from a foreign instance");
        let t = guard.tid();
        let r = self.dequeue_impl(t);
        self.collect(t);
        r
    }
}

impl<V, S> Default for DoubleLinkQueue<V, S>
where
    V: Clone + Send + Sync,
    S: AcquireRetire,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<V, S: AcquireRetire> Drop for DoubleLinkQueue<V, S> {
    fn drop(&mut self) {
        // Safety: exclusive access; linked nodes are not retired.
        let t = smr::current_tid();
        let head = self.head.load(Ordering::SeqCst);
        unsafe { super::teardown::<Node<V>, S>([head], &self.smr, &self.stats, t) };
    }
}

impl<V, S: AcquireRetire> std::fmt::Debug for DoubleLinkQueue<V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DoubleLinkQueue")
            .field("scheme", &S::scheme_name())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr::{Ebr, Hp, Hyaline, Ibr};

    fn fifo<S: AcquireRetire>() {
        let q: DoubleLinkQueue<u64, S> = DoubleLinkQueue::new();
        assert_eq!(q.dequeue(), None);
        q.enqueue(1);
        q.enqueue(2);
        q.enqueue(3);
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        q.enqueue(4);
        assert_eq!(q.dequeue(), Some(3));
        assert_eq!(q.dequeue(), Some(4));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn fifo_all_schemes() {
        fifo::<Ebr>();
        fifo::<Ibr>();
        fifo::<Hp>();
        fifo::<Hyaline>();
    }

    #[test]
    fn concurrent_pop_push_conserves_elements() {
        let q: Arc<DoubleLinkQueue<u64, Ebr>> = Arc::new(DoubleLinkQueue::new());
        let threads = 8u64;
        for i in 0..threads {
            q.enqueue(i);
        }
        let hs: Vec<_> = (0..threads)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for _ in 0..2000 {
                        loop {
                            if let Some(v) = q.dequeue() {
                                q.enqueue(v);
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        // All elements still present, each exactly once.
        let mut seen = Vec::new();
        while let Some(v) = q.dequeue() {
            seen.push(v);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..threads).collect::<Vec<_>>());
    }

    #[test]
    fn no_leaks_after_drop() {
        let stats;
        {
            let q: DoubleLinkQueue<u64, Hyaline> = DoubleLinkQueue::new();
            stats = Arc::clone(&q.stats);
            for i in 0..1000 {
                q.enqueue(i);
            }
            for _ in 0..500 {
                q.dequeue();
            }
        }
        assert_eq!(stats.in_flight(), 0);
    }
}
