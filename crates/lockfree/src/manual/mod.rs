//! Manually memory-managed variants, generic over any [`smr::AcquireRetire`]
//! scheme. Every unlinked node must be explicitly retired and every ejected
//! node freed — the discipline the paper's automatic variants remove.

pub mod dlqueue;
pub mod hash;
pub mod list;
pub mod nmtree;

pub use dlqueue::DoubleLinkQueue;
pub use hash::MichaelHashMap;
pub use list::HarrisMichaelList;
pub use nmtree::NatarajanMittalTree;

/// Ownership marker shared by the manual structures: owns its nodes (for
/// drop check / auto-trait purposes) while staying neutral in the scheme
/// parameter `S`.
pub(crate) type NodeMarker<N, S> = std::marker::PhantomData<(Box<N>, fn(S))>;
