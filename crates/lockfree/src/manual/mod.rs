//! Manually memory-managed variants, generic over any [`smr::AcquireRetire`]
//! scheme. Every unlinked node must be explicitly retired and every ejected
//! node freed — the discipline the paper's automatic variants remove.

pub mod dlqueue;
pub mod hash;
pub mod list;
pub mod nmtree;
pub mod resizable;

pub use dlqueue::DoubleLinkQueue;
pub use hash::MichaelHashMap;
pub use list::HarrisMichaelList;
pub use nmtree::NatarajanMittalTree;
pub use resizable::ResizableHashMap;

/// Ownership marker shared by the manual structures: owns its nodes (for
/// drop check / auto-trait purposes) while staying neutral in the scheme
/// parameter `S`.
pub(crate) type NodeMarker<N, S> = std::marker::PhantomData<(Box<N>, fn(S))>;

/// The manual-side mirror of [`cdrc::GraphNode`]: enumerates a node's
/// *owned* out-edges so one shared helper can tear every structure down
/// iteratively. Back-pointers (e.g. the queue's `prev`) are not owned and
/// must not be reported — following them would double-free.
pub(crate) trait OutgoingEdges {
    /// Appends the untagged addresses of this node's owned out-edges
    /// (zeroes are fine; the walker skips them).
    fn out_edges(&self, out: &mut Vec<usize>);
}

/// Frees every node reachable from `roots` through [`OutgoingEdges`] with
/// an explicit worklist — teardown of a million-node chain must not grow
/// the call stack — then, if `smr` is exclusively owned, everything parked
/// in its retired lists. The two sets are disjoint: linked nodes are never
/// retired. Counts each freed node against `stats`.
///
/// # Safety
///
/// Caller has exclusive access to the structure; every reachable address
/// and every retired address is a live `Box<N>` allocation it owns.
pub(crate) unsafe fn teardown<N: OutgoingEdges, S: smr::AcquireRetire>(
    roots: impl IntoIterator<Item = usize>,
    smr: &std::sync::Arc<S>,
    stats: &crate::NodeStats,
    t: smr::Tid,
) {
    let mut stack: Vec<usize> = roots.into_iter().filter(|&a| a != 0).collect();
    let mut edges = Vec::new();
    while let Some(a) = stack.pop() {
        let node = a as *mut N;
        (*node).out_edges(&mut edges);
        stack.extend(edges.drain(..).filter(|&e| e != 0));
        stats.on_free(t);
        drop(Box::from_raw(node));
    }
    // Shared instances are drained by their last owner (the hash map drops
    // its bucket lists first, then the final bucket drains once).
    if std::sync::Arc::strong_count(smr) == 1 {
        for r in smr.drain_all() {
            stats.on_free(t);
            drop(Box::from_raw(r.addr as *mut N));
        }
    }
}
