//! Split-ordered resizable hash map (manual reclamation): the
//! Shalev-Shavit lock-free extensible hash table over the generalized
//! acquire-retire interface.
//!
//! Same algorithm as [`crate::rc::resizable`] — one Harris-Michael list
//! sorted by bit-reversed hash, a lazily-doubled directory of sentinel
//! shortcuts, growth by publishing a bigger mask — with the manual chores
//! the RC variant deletes: every unlinking CAS must `retire` its victim,
//! every ejected node must be freed, and traversal protection is
//! hand-over-hand guard juggling instead of snapshot lifetimes.
//!
//! Sentinels are *immortal*: never marked, never retired, freed only at
//! teardown. That is what makes the directory sound under manual SMR — a
//! bucket shortcut read from the directory needs no guard at all, because
//! the node it names cannot be reclaimed while the map exists.

use smr::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hash};
use std::sync::Arc;

use smr::{untagged, AcquireRetire, Retired, Tid};

use crate::split_order::{so_dummy, so_regular, SPINE_LEVELS};
use crate::{ConcurrentMap, ElementCount, NodeStats};

const MARK: usize = 1;

struct Node<K, V> {
    birth: u64,
    so_key: u64,
    /// `None` marks a bucket sentinel; sentinels are never removed and
    /// never surface through the map API.
    kv: Option<(K, V)>,
    /// Next pointer; low bit set = this node is logically deleted.
    next: AtomicUsize,
}

impl<K, V> Node<K, V> {
    #[inline]
    fn key(&self) -> Option<&K> {
        self.kv.as_ref().map(|(k, _)| k)
    }
}

impl<K, V> super::OutgoingEdges for Node<K, V> {
    fn out_edges(&self, out: &mut Vec<usize>) {
        out.push(untagged(self.next.load(Ordering::SeqCst)));
    }
}

/// Lock-free resizable (split-ordered) hash map under manual SMR scheme
/// `S` ("EBR", "IBR", "HP", "Hyaline" depending on `S`). Grows without
/// stopping the world: no node is ever copied, no array ever retired.
pub struct ResizableHashMap<K, V, S: AcquireRetire> {
    /// Address of bucket 0's sentinel — the head of the entire list.
    /// Installed at construction, never rewritten.
    zero: AtomicUsize,
    /// Segment `l` (once published) is a `Box<[AtomicUsize; 2^l]>` of
    /// sentinel addresses (0 = bucket untouched), leaked to a raw pointer
    /// and freed in `Drop`. Slots are CAS-installed at most once.
    spine: [AtomicPtr<AtomicUsize>; SPINE_LEVELS],
    /// `buckets - 1`; buckets is always a power of two. Grows monotonically
    /// by `m -> 2m + 1`.
    mask: AtomicU64,
    count: ElementCount,
    smr: Arc<S>,
    stats: Arc<NodeStats>,
    hasher: RandomState,
    _marker: super::NodeMarker<Node<K, V>, S>,
}

// Safety: nodes are only dereferenced under scheme protection (or sentinel
// immortality); values cross threads only via `V: Send + Sync` clones.
unsafe impl<K: Send + Sync, V: Send + Sync, S: AcquireRetire> Send for ResizableHashMap<K, V, S> {}
unsafe impl<K: Send + Sync, V: Send + Sync, S: AcquireRetire> Sync for ResizableHashMap<K, V, S> {}

/// Cursor produced by the find loop: `prev_loc` is the edge holding `cur_w`.
struct Cursor<G> {
    prev_loc: *const AtomicUsize,
    prev_guard: Option<G>,
    /// Unmarked word at `prev_loc` (0 = end of list).
    cur_w: usize,
    cur_guard: Option<G>,
    found: bool,
}

impl<K, V, S> ResizableHashMap<K, V, S>
where
    K: Ord + Hash + Send + Sync,
    V: Clone + Send + Sync,
    S: AcquireRetire,
{
    /// Creates a map with one bucket and its own scheme instance.
    pub fn new() -> Self {
        Self::with_capacity(1)
    }

    /// Creates a map pre-sized for `capacity` elements (rounded up to a
    /// power of two; sentinels still splice in lazily), with its own
    /// scheme instance.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_shared(
            capacity,
            Arc::new(S::new(
                Arc::new(smr::GlobalEpoch::new()),
                S::default_config(),
            )),
            Arc::new(NodeStats::new()),
        )
    }

    /// As [`with_capacity`](Self::with_capacity), sharing a scheme
    /// instance and stats (mirrors
    /// [`HarrisMichaelList::with_shared`](crate::manual::HarrisMichaelList::with_shared)).
    pub fn with_capacity_shared(capacity: usize, smr: Arc<S>, stats: Arc<NodeStats>) -> Self {
        let buckets = capacity
            .max(1)
            .next_power_of_two()
            .min(1usize << SPINE_LEVELS) as u64;
        let t = smr::current_tid();
        stats.on_alloc(t);
        let zero = Box::into_raw(Box::new(Node::<K, V> {
            birth: smr.birth_epoch(t),
            so_key: so_dummy(0),
            kv: None,
            next: AtomicUsize::new(0),
        }));
        ResizableHashMap {
            zero: AtomicUsize::new(zero as usize),
            spine: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            mask: AtomicU64::new(buckets - 1),
            count: ElementCount::new(),
            smr,
            stats,
            hasher: RandomState::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Current bucket count (monotone; grows under load).
    pub fn buckets(&self) -> u64 {
        // Ordering: Relaxed — reporting read of a monotone routing mask; a
        // stale value is just an older (still valid) size.
        self.mask.load(Ordering::Relaxed) + 1
    }

    /// Approximate live element count (exact after joining workers).
    pub fn len(&self) -> u64 {
        self.count.live()
    }

    /// Whether the map is (approximately) empty; see [`len`](Self::len).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Applies every ready eject: frees the node memory.
    fn collect(&self, t: Tid) {
        while let Some(r) = self.smr.eject(t) {
            self.stats.on_free(t);
            // Safety: ejected addresses were allocated by us as Node<K, V>
            // and retired exactly once after being unlinked.
            unsafe { drop(Box::from_raw(r.addr as *mut Node<K, V>)) };
        }
    }

    /// The directory segment for `level`, publishing it first if needed.
    fn segment(&self, level: usize) -> &[AtomicUsize] {
        let slot = &self.spine[level];
        let len = 1usize << level;
        // Ordering: Acquire load / AcqRel CAS — the segment is a heap
        // allocation published through this slot: the winner's Release
        // makes the fresh slots visible, and every reader (including a
        // losing CAS, via its Acquire failure ordering) acquires them
        // before indexing into the segment.
        let mut p = slot.load(Ordering::Acquire);
        if p.is_null() {
            let fresh: Box<[AtomicUsize]> = (0..len).map(|_| AtomicUsize::new(0)).collect();
            let raw = Box::into_raw(fresh) as *mut AtomicUsize;
            match slot.compare_exchange(
                std::ptr::null_mut(),
                raw,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => p = raw,
                Err(winner) => {
                    // Safety: `raw` was never published.
                    unsafe { drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(raw, len))) };
                    p = winner;
                }
            }
        }
        // Safety: published segments are never replaced and outlive `&self`.
        unsafe { std::slice::from_raw_parts(p, len) }
    }

    /// The directory slot holding bucket `b`'s sentinel address.
    fn slot(&self, b: usize) -> &AtomicUsize {
        if b == 0 {
            return &self.zero;
        }
        let level = (usize::BITS - 1 - b.leading_zeros()) as usize;
        &self.segment(level)[b - (1usize << level)]
    }

    /// Returns bucket `b`'s sentinel address, splicing it (and any missing
    /// ancestors, recursively) into the list on first touch. Must be called
    /// inside a critical section.
    fn ensure_bucket(&self, t: Tid, b: usize) -> usize {
        let w = self.slot(b).load(Ordering::SeqCst);
        if w != 0 {
            return w;
        }
        debug_assert!(b > 0, "bucket 0's sentinel is installed at construction");
        let level = (usize::BITS - 1 - b.leading_zeros()) as usize;
        let parent = self.ensure_bucket(t, b - (1usize << level));
        let addr = self.splice_sentinel(t, parent, so_dummy(b as u64));
        // Losing this install race is harmless: the list admits exactly one
        // node per (even) so-key, so any competing install wrote `addr` too.
        let _ = self
            .slot(b)
            .compare_exchange(0, addr, Ordering::SeqCst, Ordering::SeqCst);
        addr
    }

    /// Inserts (or finds) the sentinel with `so_key`, walking from `start`
    /// (an ancestor sentinel's address). Returns the sentinel's address —
    /// usable unguarded forever, since sentinels are immortal.
    fn splice_sentinel(&self, t: Tid, start: usize, so_key: u64) -> usize {
        self.stats.on_alloc(t);
        let node = Box::into_raw(Box::new(Node::<K, V> {
            birth: self.smr.birth_epoch(t),
            so_key,
            kv: None,
            next: AtomicUsize::new(0),
        }));
        loop {
            let mut c = self.find_from(t, start, so_key, None);
            if c.found {
                let addr = untagged(c.cur_w);
                self.release_cursor(t, &mut c);
                self.stats.on_free(t);
                // Safety: never published; the list's winner is reused.
                unsafe { drop(Box::from_raw(node)) };
                return addr;
            }
            // Safety: node is ours until published.
            unsafe { (*node).next.store(c.cur_w, Ordering::SeqCst) };
            // Safety: prev_loc protected per find_from's contract.
            let ok = unsafe {
                (*c.prev_loc)
                    .compare_exchange(c.cur_w, node as usize, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            };
            self.release_cursor(t, &mut c);
            if ok {
                return node as usize;
            }
        }
    }

    fn release_cursor(&self, t: Tid, c: &mut Cursor<S::Guard>) {
        if let Some(g) = c.prev_guard.take() {
            self.smr.release(t, g);
        }
        if let Some(g) = c.cur_guard.take() {
            self.smr.release(t, g);
        }
    }

    fn release_guards(&self, t: Tid, a: &mut Option<S::Guard>, b: &mut Option<S::Guard>) {
        if let Some(g) = a.take() {
            self.smr.release(t, g);
        }
        if let Some(g) = b.take() {
            self.smr.release(t, g);
        }
    }

    /// Michael's find from `start`'s next edge to the first node ≥
    /// `(so_key, key)` in split order, unlinking marked nodes along the
    /// way. Restarts are bucket-local: `start` is an immortal sentinel, so
    /// its next edge is always a valid (guard-free) anchor. Must be called
    /// inside a critical section; returns with 0–2 guards held.
    fn find_from(&self, t: Tid, start: usize, so_key: u64, key: Option<&K>) -> Cursor<S::Guard> {
        let start_node = start as *const Node<K, V>;
        'retry: loop {
            // Safety: sentinels are never retired, so the start edge lives
            // as long as the map — no guard needed (cf. `&self.head` in the
            // plain list).
            let mut prev_loc: *const AtomicUsize = unsafe { &(*start_node).next };
            let mut prev_guard: Option<S::Guard> = None;
            // Safety: `prev_loc` points into the immortal start sentinel.
            let (mut cur_w, g) = self
                .smr
                .try_acquire(t, unsafe { &*prev_loc })
                .expect("list traversal holds at most 3 guards");
            let mut cur_guard = Some(g);
            if cur_w & MARK != 0 {
                // A sentinel's next edge is never marked (sentinels are not
                // deleted); a marked word here is a transient publication
                // race — restart.
                self.release_guards(t, &mut prev_guard, &mut cur_guard);
                continue 'retry;
            }
            loop {
                let cur = untagged(cur_w);
                if cur == 0 {
                    return Cursor {
                        prev_loc,
                        prev_guard,
                        cur_w,
                        cur_guard,
                        found: false,
                    };
                }
                let node = cur as *const Node<K, V>;
                // Safety: `cur` is protected by cur_guard.
                let next_field = unsafe { &(*node).next };
                let (next_w, next_g) = self
                    .smr
                    .try_acquire(t, next_field)
                    .expect("list traversal holds at most 3 guards");
                let mut next_guard = Some(next_g);
                // Validate that cur is still linked, unmarked, at prev_loc.
                // Safety: prev_loc is a sentinel edge or one in a guarded
                // node.
                if unsafe { (*prev_loc).load(Ordering::SeqCst) } != cur_w {
                    self.release_guards(t, &mut prev_guard, &mut cur_guard);
                    self.release_guards(t, &mut next_guard, &mut None);
                    continue 'retry;
                }
                if next_w & MARK != 0 {
                    // cur is logically deleted: help unlink it.
                    let clean_next = next_w & !MARK;
                    // Safety: prev_loc as above.
                    if unsafe {
                        (*prev_loc)
                            .compare_exchange(cur_w, clean_next, Ordering::SeqCst, Ordering::SeqCst)
                            .is_ok()
                    } {
                        // We unlinked cur: retire it (the manual chore).
                        let birth = unsafe { (*node).birth };
                        self.smr.retire(t, Retired::new(cur, birth));
                        if let Some(g) = cur_guard.take() {
                            self.smr.release(t, g);
                        }
                        cur_w = clean_next;
                        cur_guard = next_guard.take();
                        continue;
                    }
                    self.release_guards(t, &mut prev_guard, &mut cur_guard);
                    self.release_guards(t, &mut next_guard, &mut None);
                    continue 'retry;
                }
                // Split-order comparison: so-key first, then the real key
                // (two distinct keys can share an odd so-key; sentinels are
                // `None` and sort before every regular node).
                // Safety: cur protected; keys are immutable after insert.
                let cnode = unsafe { &*node };
                match (cnode.so_key, cnode.key()).cmp(&(so_key, key)) {
                    std::cmp::Ordering::Less => {
                        // Advance hand-over-hand: cur becomes prev.
                        if let Some(g) = prev_guard.take() {
                            self.smr.release(t, g);
                        }
                        prev_guard = cur_guard.take();
                        prev_loc = next_field as *const AtomicUsize;
                        cur_w = next_w;
                        cur_guard = next_guard.take();
                    }
                    order => {
                        self.release_guards(t, &mut next_guard, &mut None);
                        return Cursor {
                            prev_loc,
                            prev_guard,
                            cur_w,
                            cur_guard,
                            found: order == std::cmp::Ordering::Equal,
                        };
                    }
                }
            }
        }
    }

    /// Doubles the mask if the live estimate exceeds the bucket count
    /// (load factor ≈ 1). Called on the insert-count cadence only.
    fn maybe_grow(&self) {
        let live = self.count.live();
        // Ordering: Relaxed — the mask is a routing hint, not a guard; the
        // CAS below revalidates it and a stale read only delays growth.
        let mask = self.mask.load(Ordering::Relaxed);
        let buckets = mask + 1;
        if live > buckets && buckets < (1u64 << SPINE_LEVELS) {
            // Ordering: Relaxed — the mask is a routing hint; a stale mask
            // routes to an ancestor sentinel, which is always correct.
            let _ = self.mask.compare_exchange(
                mask,
                mask * 2 + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
    }

    fn insert_impl(&self, t: Tid, key: K, value: V) -> bool {
        let h = self.hasher.hash_one(&key);
        let so = so_regular(h);
        self.stats.on_alloc(t);
        let new_node = Box::into_raw(Box::new(Node {
            birth: self.smr.birth_epoch(t),
            so_key: so,
            kv: Some((key, value)),
            next: AtomicUsize::new(0),
        }));
        loop {
            // Re-read the mask each attempt: a concurrent grow between
            // attempts may have split this key's bucket.
            // Ordering: Relaxed — stale masks route to an ancestor
            // sentinel, which reaches the same bucket via extra hops.
            let start = self.ensure_bucket(t, (h & self.mask.load(Ordering::Relaxed)) as usize);
            // Safety: new_node is ours until published.
            let key_ref = unsafe { (*new_node).key() };
            let mut c = self.find_from(t, start, so, key_ref);
            if c.found {
                self.release_cursor(t, &mut c);
                self.stats.on_free(t);
                // Safety: never published.
                unsafe { drop(Box::from_raw(new_node)) };
                return false;
            }
            unsafe { (*new_node).next.store(c.cur_w, Ordering::SeqCst) };
            // Safety: prev_loc protected per find_from's contract.
            let ok = unsafe {
                (*c.prev_loc)
                    .compare_exchange(
                        c.cur_w,
                        new_node as usize,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                    .is_ok()
            };
            self.release_cursor(t, &mut c);
            if ok {
                if self.count.on_insert(t) {
                    self.maybe_grow();
                }
                return true;
            }
        }
    }

    fn remove_impl(&self, t: Tid, key: &K) -> bool {
        let h = self.hasher.hash_one(key);
        let so = so_regular(h);
        loop {
            // Ordering: Relaxed — stale masks route to an ancestor
            // sentinel, which reaches the same bucket via extra hops.
            let start = self.ensure_bucket(t, (h & self.mask.load(Ordering::Relaxed)) as usize);
            let mut c = self.find_from(t, start, so, Some(key));
            if !c.found {
                self.release_cursor(t, &mut c);
                return false;
            }
            let cur = untagged(c.cur_w);
            let node = cur as *const Node<K, V>;
            // Logically delete: mark cur's next word, retrying in place on
            // the witnessed word (cur stays protected by the cursor).
            // Safety: cur protected by the cursor's guard.
            let mut next_w = unsafe { (*node).next.load(Ordering::SeqCst) };
            let marked = loop {
                if next_w & MARK != 0 {
                    break false; // someone else is deleting it
                }
                match unsafe {
                    (*node).next.compare_exchange(
                        next_w,
                        next_w | MARK,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                } {
                    Ok(_) => break true,
                    Err(w) => next_w = w,
                }
            };
            if !marked {
                // Retry from find so it can help the competing delete.
                self.release_cursor(t, &mut c);
                continue;
            }
            // Physically unlink (best effort — find helps otherwise).
            // Safety: prev_loc protected per find_from's contract.
            if unsafe {
                (*c.prev_loc)
                    .compare_exchange(c.cur_w, next_w, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            } {
                let birth = unsafe { (*node).birth };
                self.smr.retire(t, Retired::new(cur, birth));
            }
            self.release_cursor(t, &mut c);
            self.count.on_remove(t);
            return true;
        }
    }

    fn get_impl(&self, t: Tid, key: &K) -> Option<V> {
        let h = self.hasher.hash_one(key);
        // Ordering: Relaxed — same ancestor-sentinel routing argument as
        // the insert/remove paths.
        let start = self.ensure_bucket(t, (h & self.mask.load(Ordering::Relaxed)) as usize);
        let mut c = self.find_from(t, start, so_regular(h), Some(key));
        let out = if c.found {
            let node = untagged(c.cur_w) as *const Node<K, V>;
            // Safety: protected by the cursor guard; value immutable.
            Some(unsafe { (*node).kv.as_ref().unwrap().1.clone() })
        } else {
            None
        };
        self.release_cursor(t, &mut c);
        out
    }
}

impl<K, V, S> ConcurrentMap<K, V> for ResizableHashMap<K, V, S>
where
    K: Ord + Hash + Send + Sync,
    V: Clone + Send + Sync,
    S: AcquireRetire,
{
    type Guard = smr::SectionGuard<S>;

    fn pin(&self) -> Self::Guard {
        smr::SectionGuard::enter(Arc::clone(&self.smr))
    }

    fn insert_with(&self, k: K, v: V, guard: &Self::Guard) -> bool {
        debug_assert!(guard.covers(&self.smr), "guard from a foreign instance");
        let t = guard.tid();
        let r = self.insert_impl(t, k, v);
        self.collect(t);
        r
    }

    fn remove_with(&self, k: &K, guard: &Self::Guard) -> bool {
        debug_assert!(guard.covers(&self.smr), "guard from a foreign instance");
        let t = guard.tid();
        let r = self.remove_impl(t, k);
        self.collect(t);
        r
    }

    fn get_with(&self, k: &K, guard: &Self::Guard) -> Option<V> {
        debug_assert!(guard.covers(&self.smr), "guard from a foreign instance");
        let t = guard.tid();
        let r = self.get_impl(t, k);
        self.collect(t);
        r
    }

    fn in_flight_nodes(&self) -> u64 {
        self.stats.in_flight()
    }
}

impl<K, V, S> Default for ResizableHashMap<K, V, S>
where
    K: Ord + Hash + Send + Sync,
    V: Clone + Send + Sync,
    S: AcquireRetire,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, S: AcquireRetire> Drop for ResizableHashMap<K, V, S> {
    fn drop(&mut self) {
        let t = smr::current_tid();
        // The zero sentinel heads the entire list, so one root reaches
        // every node — sentinels, live nodes and marked-but-linked ones.
        // Directory slots hold plain addresses (no ownership): only their
        // segment allocations need freeing.
        let head = untagged(self.zero.load(Ordering::SeqCst));
        // Safety: exclusive access; linked nodes are never retired.
        unsafe { super::teardown::<Node<K, V>, S>([head], &self.smr, &self.stats, t) };
        for (level, slot) in self.spine.iter().enumerate() {
            // Ordering: Acquire — pairs with the publishing CAS in
            // `segment`; Drop's exclusivity covers mutation, not the
            // visibility of another thread's published allocation.
            let p = slot.load(Ordering::Acquire);
            if p.is_null() {
                continue;
            }
            let len = 1usize << level;
            // Safety: exclusive access; published from a Box<[AtomicUsize]>.
            unsafe { drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(p, len))) };
        }
    }
}

impl<K, V, S: AcquireRetire> std::fmt::Debug for ResizableHashMap<K, V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Ordering: Relaxed — diagnostic snapshot only.
        f.debug_struct("ResizableHashMap")
            .field("scheme", &S::scheme_name())
            .field("buckets", &(self.mask.load(Ordering::Relaxed) + 1))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr::{Ebr, Hp, Hyaline, Ibr};

    fn smoke<S: AcquireRetire>() {
        let m: ResizableHashMap<u64, u64, S> = ResizableHashMap::new();
        assert!(m.insert(5, 50));
        assert!(m.insert(3, 30));
        assert!(!m.insert(5, 55), "duplicate rejected");
        assert_eq!(m.get(&5), Some(50));
        assert_eq!(m.get(&4), None);
        assert!(m.remove(&5));
        assert!(!m.remove(&5));
        assert_eq!(m.get(&5), None);
        assert_eq!(m.get(&3), Some(30));
    }

    #[test]
    fn smoke_all_schemes() {
        smoke::<Ebr>();
        smoke::<Ibr>();
        smoke::<Hp>();
        smoke::<Hyaline>();
    }

    #[test]
    fn grows_under_single_threaded_load() {
        let m: ResizableHashMap<u64, u64, Ebr> = ResizableHashMap::new();
        assert_eq!(m.buckets(), 1);
        for k in 0..4096u64 {
            assert!(m.insert(k, k));
        }
        assert!(m.buckets() > 1, "mask never grew");
        for k in 0..4096u64 {
            assert_eq!(m.get(&k), Some(k), "key {k} lost across growth");
        }
    }

    #[test]
    fn concurrent_grow_under_churn() {
        let m: Arc<ResizableHashMap<u64, u64, Hp>> = Arc::new(ResizableHashMap::new());
        let hs: Vec<_> = (0..8)
            .map(|i| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for j in 0..500u64 {
                        let k = i * 10_000 + j;
                        assert!(m.insert(k, k));
                        assert_eq!(m.get(&k), Some(k));
                        if j % 2 == 0 {
                            assert!(m.remove(&k));
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert!(m.buckets() > 1, "table grew during churn");
        for i in 0..8u64 {
            for j in 0..500u64 {
                let k = i * 10_000 + j;
                assert_eq!(m.get(&k), if j % 2 == 0 { None } else { Some(k) });
            }
        }
    }

    #[test]
    fn no_leaks_after_drop() {
        let stats = Arc::new(NodeStats::new());
        {
            let m: ResizableHashMap<u64, u64, Ebr> = ResizableHashMap::with_capacity_shared(
                1,
                Arc::new(Ebr::new(
                    Arc::new(smr::GlobalEpoch::new()),
                    Ebr::default_config(),
                )),
                Arc::clone(&stats),
            );
            for k in 0..1000u64 {
                m.insert(k, k);
            }
            for k in 0..500u64 {
                m.remove(&k);
            }
        }
        assert_eq!(stats.in_flight(), 0, "every node freed at drop");
    }
}
