//! Natarajan-Mittal lock-free external binary search tree (manual
//! reclamation).
//!
//! An external (leaf-oriented) BST: internal nodes route, leaves store
//! key/value pairs. Deletion *flags* the edge to the victim leaf, *tags* the
//! sibling edge to freeze it, and swings the ancestor's edge to splice the
//! whole chain out with one CAS. The winner of that CAS must then walk the
//! spliced-out chain retiring every internal node and flagged leaf — the
//! easy-to-forget loop of the paper's Figure 1a (the code this crate's `rc`
//! variant deletes entirely).
//!
//! Edge words carry two low bits: `FLAG` (bit 0 — the child leaf is being
//! deleted) and `TAG` (bit 1 — the edge is frozen because the child internal
//! node is being spliced out).
//!
//! Protection: each operation runs in one critical section; traversal holds
//! hand-over-hand guards on the ancestor / parent / current roles (the
//! successor is only ever used as a CAS comparand, never dereferenced), so
//! the structure is safe under protected-pointer schemes as well — the
//! "modified, correct HP variant" the paper mentions (§5.1).

use smr::sync::atomic::{AtomicUsize, Ordering};
use std::marker::PhantomData;
use std::sync::Arc;

use smr::{AcquireRetire, Retired, Tid};

use crate::{ConcurrentMap, NodeStats};

const FLAG: usize = 1;
const TAG: usize = 2;
const BITS: usize = FLAG | TAG;

#[inline]
fn addr(w: usize) -> usize {
    w & !BITS
}

#[inline]
fn flagged(w: usize) -> bool {
    w & FLAG != 0
}

#[inline]
fn tagged(w: usize) -> bool {
    w & TAG != 0
}

/// Key space with the three infinity sentinels (all real keys < Inf0 <
/// Inf1 < Inf2). Derived `Ord` compares variants in declaration order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum NmKey<K> {
    /// A real key.
    Fin(K),
    /// Sentinel ∞₀.
    Inf0,
    /// Sentinel ∞₁.
    Inf1,
    /// Sentinel ∞₂.
    Inf2,
}

struct Node<K, V> {
    birth: u64,
    key: NmKey<K>,
    /// Present on value-bearing leaves only.
    value: Option<V>,
    left: AtomicUsize,
    right: AtomicUsize,
}

impl<K, V> super::OutgoingEdges for Node<K, V> {
    fn out_edges(&self, out: &mut Vec<usize>) {
        // Ordering: Relaxed — edge harvest runs at destruction time, when
        // the reclaimer has exclusive access to the node; the words can no
        // longer change and their pointees were acquired at unlink.
        out.push(addr(self.left.load(Ordering::Relaxed)));
        out.push(addr(self.right.load(Ordering::Relaxed)));
    }
}

impl<K, V> Node<K, V> {
    fn leaf(birth: u64, key: NmKey<K>, value: Option<V>) -> Box<Self> {
        Box::new(Node {
            birth,
            key,
            value,
            left: AtomicUsize::new(0),
            right: AtomicUsize::new(0),
        })
    }
}

/// Seek record (paper Fig. 1): the last untagged edge on the search path is
/// `ancestor → successor`; `parent → leaf` is the final edge.
struct SeekRecord<G> {
    ancestor: usize,
    ancestor_guard: Option<G>,
    /// CAS comparand only — never dereferenced.
    successor: usize,
    parent: usize,
    parent_guard: Option<G>,
    leaf: usize,
    leaf_guard: Option<G>,
}

/// The Natarajan-Mittal tree under manual SMR scheme `S`.
pub struct NatarajanMittalTree<K, V, S: AcquireRetire> {
    /// Root internal node R (key ∞₂); R.left = S (key ∞₁); sentinels are
    /// never unlinked.
    root: *mut Node<K, V>,
    s_node: *mut Node<K, V>,
    smr: Arc<S>,
    stats: Arc<NodeStats>,
    _marker: super::NodeMarker<Node<K, V>, S>,
}

unsafe impl<K: Send + Sync, V: Send + Sync, S: AcquireRetire> Send
    for NatarajanMittalTree<K, V, S>
{
}
unsafe impl<K: Send + Sync, V: Send + Sync, S: AcquireRetire> Sync
    for NatarajanMittalTree<K, V, S>
{
}

impl<K, V, S> NatarajanMittalTree<K, V, S>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    S: AcquireRetire,
{
    /// Creates an empty tree with its own scheme instance.
    pub fn new() -> Self {
        let smr = Arc::new(S::new(
            Arc::new(smr::GlobalEpoch::new()),
            S::default_config(),
        ));
        let stats = Arc::new(NodeStats::new());
        // Initial shape (paper [21]): R(∞₂){ S(∞₁){ leaf ∞₀, leaf ∞₁ },
        // leaf ∞₂ }. Real keys all route left of S.
        let t = smr::current_tid();
        for _ in 0..5 {
            stats.on_alloc(t);
        }
        let l0 = Box::into_raw(Node::<K, V>::leaf(0, NmKey::Inf0, None));
        let l1 = Box::into_raw(Node::<K, V>::leaf(0, NmKey::Inf1, None));
        let l2 = Box::into_raw(Node::<K, V>::leaf(0, NmKey::Inf2, None));
        let s_node = Box::into_raw(Box::new(Node {
            birth: 0,
            key: NmKey::Inf1,
            value: None,
            left: AtomicUsize::new(l0 as usize),
            right: AtomicUsize::new(l1 as usize),
        }));
        let root = Box::into_raw(Box::new(Node {
            birth: 0,
            key: NmKey::Inf2,
            value: None,
            left: AtomicUsize::new(s_node as usize),
            right: AtomicUsize::new(l2 as usize),
        }));
        NatarajanMittalTree {
            root,
            s_node,
            smr,
            stats,
            _marker: PhantomData,
        }
    }

    fn collect(&self, t: Tid) {
        while let Some(r) = self.smr.eject(t) {
            self.stats.on_free(t);
            // Safety: ejected addresses were allocated here as Node<K, V>
            // and retired exactly once after being unlinked.
            unsafe { drop(Box::from_raw(r.addr as *mut Node<K, V>)) };
        }
    }

    /// The child edge of `node` on the search path for `key`.
    ///
    /// Safety: `node` must be protected (or a sentinel).
    unsafe fn child_edge(&self, node: usize, key: &NmKey<K>) -> *const AtomicUsize {
        let n = node as *const Node<K, V>;
        if *key < (*n).key {
            &(*n).left
        } else {
            &(*n).right
        }
    }

    unsafe fn is_leaf(&self, node: usize) -> bool {
        let n = node as *const Node<K, V>;
        addr((*n).left.load(Ordering::SeqCst)) == 0
    }

    fn release_seek(&self, t: Tid, s: &mut SeekRecord<S::Guard>) {
        for g in [
            s.ancestor_guard.take(),
            s.parent_guard.take(),
            s.leaf_guard.take(),
        ]
        .into_iter()
        .flatten()
        {
            self.smr.release(t, g);
        }
    }

    /// Walks from the root to the leaf on `key`'s search path, maintaining
    /// the seek record. Runs inside the operation's critical section.
    fn seek(&self, t: Tid, key: &NmKey<K>) -> SeekRecord<S::Guard> {
        let mut s = SeekRecord {
            ancestor: self.root as usize,
            ancestor_guard: None,
            successor: self.s_node as usize,
            parent: self.s_node as usize,
            parent_guard: None,
            leaf: 0,
            leaf_guard: None,
        };
        // Safety: sentinels are never unlinked; S's edges are valid.
        let edge = unsafe { self.child_edge(s.parent, key) };
        let (mut child_w, g) = self
            .smr
            .try_acquire(t, unsafe { &*edge })
            .expect("seek holds at most 4 guards");
        let mut child_guard = Some(g);
        loop {
            let cur = addr(child_w);
            // External tree: edges always lead to a node.
            debug_assert_ne!(cur, 0);
            // Safety: cur is protected by child_guard.
            if unsafe { self.is_leaf(cur) } {
                s.leaf = cur;
                s.leaf_guard = child_guard.take();
                return s;
            }
            if !tagged(child_w) {
                // Last untagged edge so far: parent becomes the ancestor
                // (its guard moves along), cur becomes the successor (plain
                // word — only ever CAS-compared).
                if let Some(g) = s.ancestor_guard.take() {
                    self.smr.release(t, g);
                }
                s.ancestor = s.parent;
                s.ancestor_guard = s.parent_guard.take();
                s.successor = cur;
            }
            // cur becomes the parent.
            if let Some(g) = s.parent_guard.take() {
                self.smr.release(t, g);
            }
            s.parent = cur;
            s.parent_guard = child_guard.take();
            // Descend. Safety: cur protected by parent_guard now.
            let edge = unsafe { self.child_edge(cur, key) };
            let (w, g) = self
                .smr
                .try_acquire(t, unsafe { &*edge })
                .expect("seek holds at most 4 guards");
            child_w = w;
            child_guard = Some(g);
        }
    }

    /// Splices the chain `successor … parent + flagged leaf` out by CASing
    /// the ancestor's edge to the sibling subtree; on success retires every
    /// node of the chain (Fig. 1a's loop). Returns whether this call won.
    fn cleanup(&self, t: Tid, key: &NmKey<K>, s: &SeekRecord<S::Guard>) -> bool {
        // Safety: ancestor and parent are protected by the seek record (or
        // sentinels).
        unsafe {
            let ancestor_edge = self.child_edge(s.ancestor, key);
            let p = s.parent as *const Node<K, V>;
            let (child_loc, mut sibling_loc): (*const AtomicUsize, *const AtomicUsize) =
                if *key < (*p).key {
                    (&(*p).left, &(*p).right)
                } else {
                    (&(*p).right, &(*p).left)
                };
            let child_w = (*child_loc).load(Ordering::SeqCst);
            if !flagged(child_w) {
                // The flag is on the other side: we are helping a delete
                // whose victim is the other child.
                sibling_loc = child_loc;
            }
            // Freeze the sibling edge, preserving a pending flag on it.
            let sib_w = (*sibling_loc).fetch_or(TAG, Ordering::SeqCst);
            let new_w = addr(sib_w) | (sib_w & FLAG);
            if (*ancestor_edge)
                .compare_exchange(s.successor, new_w, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                return false;
            }
            // We won: retire the spliced-out chain. Every chain node has
            // exactly one flagged child (a deleted leaf); the walk follows
            // the unflagged child and ends at the surviving sibling.
            let sibling = addr(sib_w);
            let mut n = s.successor;
            while n != sibling {
                let node = n as *const Node<K, V>;
                let lw = (*node).left.load(Ordering::SeqCst);
                let rw = (*node).right.load(Ordering::SeqCst);
                let next = if flagged(lw) {
                    self.retire_node(t, addr(lw));
                    addr(rw)
                } else {
                    self.retire_node(t, addr(rw));
                    addr(lw)
                };
                self.retire_node(t, n);
                n = next;
            }
            true
        }
    }

    unsafe fn retire_node(&self, t: Tid, node: usize) {
        let birth = (*(node as *const Node<K, V>)).birth;
        self.smr.retire(t, Retired::new(node, birth));
    }

    fn leaf_key_matches(&self, leaf: usize, key: &NmKey<K>) -> bool {
        // Safety: leaf protected by the seek record.
        unsafe { (*(leaf as *const Node<K, V>)).key == *key }
    }

    fn insert_impl(&self, t: Tid, key: K, value: V) -> bool {
        let nmkey = NmKey::Fin(key);
        loop {
            let mut s = self.seek(t, &nmkey);
            if self.leaf_key_matches(s.leaf, &nmkey) {
                self.release_seek(t, &mut s);
                return false;
            }
            // Build the replacement: an internal node whose children are the
            // old leaf and the new leaf, ordered by key (internal key = the
            // larger of the two, external-BST style). Rebuilt per attempt;
            // contention is the uncommon case.
            // Safety: leaf protected; keys immutable.
            let leaf_key = unsafe { (*(s.leaf as *const Node<K, V>)).key.clone() };
            let birth = self.smr.birth_epoch(t);
            self.stats.on_alloc(t);
            self.stats.on_alloc(t);
            let new_leaf = Box::into_raw(Node::leaf(birth, nmkey.clone(), Some(value.clone())));
            let (ikey, l, r) = if nmkey < leaf_key {
                (leaf_key, new_leaf as usize, s.leaf)
            } else {
                (nmkey.clone(), s.leaf, new_leaf as usize)
            };
            let new_internal: *mut Node<K, V> = Box::into_raw(Box::new(Node {
                birth,
                key: ikey,
                value: None,
                left: AtomicUsize::new(l),
                right: AtomicUsize::new(r),
            }));
            // Safety: parent protected by the seek record.
            let edge = unsafe { self.child_edge(s.parent, &nmkey) };
            let witness = unsafe {
                (*edge).compare_exchange(
                    s.leaf,
                    new_internal as usize,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
            };
            match witness {
                Ok(_) => {
                    self.release_seek(t, &mut s);
                    return true;
                }
                Err(w) => {
                    // Failed: free the unpublished nodes, then use the CAS's
                    // own witness (no re-load) to decide whether a pending
                    // delete on this leaf needs help before retrying.
                    // Safety: never published, exclusively ours.
                    unsafe {
                        drop(Box::from_raw(new_internal));
                        drop(Box::from_raw(new_leaf));
                    }
                    self.stats.on_free(t);
                    self.stats.on_free(t);
                    if addr(w) == s.leaf && (flagged(w) || tagged(w)) {
                        self.cleanup(t, &nmkey, &s);
                    }
                    self.release_seek(t, &mut s);
                }
            }
        }
    }

    fn remove_impl(&self, t: Tid, key: &K) -> bool {
        let nmkey = NmKey::Fin(key.clone());
        let mut injecting = true;
        let mut target: usize = 0;
        let mut target_guard: Option<S::Guard> = None;
        loop {
            let mut s = self.seek(t, &nmkey);
            if injecting {
                if !self.leaf_key_matches(s.leaf, &nmkey) {
                    self.release_seek(t, &mut s);
                    return false;
                }
                // Safety: parent protected.
                let edge = unsafe { self.child_edge(s.parent, &nmkey) };
                let flag_cas = unsafe {
                    (*edge).compare_exchange(
                        s.leaf,
                        s.leaf | FLAG,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                };
                match flag_cas {
                    Ok(_) => {
                        injecting = false;
                        target = s.leaf;
                        // Keep the leaf protected across retries so its
                        // address cannot be recycled under us (ABA defence).
                        target_guard = s.leaf_guard.take();
                        if self.cleanup(t, &nmkey, &s) {
                            self.release_seek(t, &mut s);
                            if let Some(g) = target_guard.take() {
                                self.smr.release(t, g);
                            }
                            return true;
                        }
                    }
                    // The witness replaces the old re-load: a competing
                    // flag/tag on our leaf's edge means a delete is already
                    // in progress there — help it along before re-seeking.
                    Err(w) => {
                        if addr(w) == s.leaf && (flagged(w) || tagged(w)) {
                            self.cleanup(t, &nmkey, &s);
                        }
                    }
                }
            } else {
                if s.leaf != target {
                    // A helper finished our removal.
                    self.release_seek(t, &mut s);
                    if let Some(g) = target_guard.take() {
                        self.smr.release(t, g);
                    }
                    return true;
                }
                if self.cleanup(t, &nmkey, &s) {
                    self.release_seek(t, &mut s);
                    if let Some(g) = target_guard.take() {
                        self.smr.release(t, g);
                    }
                    return true;
                }
            }
            self.release_seek(t, &mut s);
        }
    }

    fn get_impl(&self, t: Tid, key: &K) -> Option<V> {
        let nmkey = NmKey::Fin(key.clone());
        let mut s = self.seek(t, &nmkey);
        let out = if self.leaf_key_matches(s.leaf, &nmkey) {
            // Safety: leaf protected; values on Fin leaves are Some.
            unsafe { (*(s.leaf as *const Node<K, V>)).value.clone() }
        } else {
            None
        };
        self.release_seek(t, &mut s);
        out
    }

    /// Sequential (non-linearizable) range count over `[from, to)`, as in
    /// the paper's Fig. 11 workload. Only supported under protected-region
    /// schemes (manual HP cannot protect an unbounded path — which is why
    /// Fig. 11 has no manual-HP series).
    fn range_impl(&self, from: &K, to: &K, limit: usize) -> Option<usize> {
        if !S::PROTECTS_REGIONS {
            return None;
        }
        let lo = NmKey::Fin(from.clone());
        let hi = NmKey::Fin(to.clone());
        let mut found = 0usize;
        let mut stack = vec![self.root as usize];
        while let Some(n) = stack.pop() {
            if found >= limit {
                break;
            }
            // Safety: the whole query runs inside the caller's critical
            // section; every node reached was reachable when read.
            unsafe {
                let node = n as *const Node<K, V>;
                if self.is_leaf(n) {
                    if (*node).key >= lo && (*node).key < hi {
                        found += 1;
                    }
                    continue;
                }
                // External BST: left keys < node.key <= right keys.
                if hi >= (*node).key {
                    stack.push(addr((*node).right.load(Ordering::SeqCst)));
                }
                if lo < (*node).key {
                    stack.push(addr((*node).left.load(Ordering::SeqCst)));
                }
            }
        }
        Some(found)
    }
}

impl<K, V, S> ConcurrentMap<K, V> for NatarajanMittalTree<K, V, S>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    S: AcquireRetire,
{
    type Guard = smr::SectionGuard<S>;

    fn pin(&self) -> Self::Guard {
        smr::SectionGuard::enter(Arc::clone(&self.smr))
    }

    fn insert_with(&self, k: K, v: V, guard: &Self::Guard) -> bool {
        debug_assert!(guard.covers(&self.smr), "guard from a foreign instance");
        let t = guard.tid();
        let r = self.insert_impl(t, k, v);
        self.collect(t);
        r
    }

    fn remove_with(&self, k: &K, guard: &Self::Guard) -> bool {
        debug_assert!(guard.covers(&self.smr), "guard from a foreign instance");
        let t = guard.tid();
        let r = self.remove_impl(t, k);
        self.collect(t);
        r
    }

    fn get_with(&self, k: &K, guard: &Self::Guard) -> Option<V> {
        debug_assert!(guard.covers(&self.smr), "guard from a foreign instance");
        let t = guard.tid();
        let r = self.get_impl(t, k);
        self.collect(t);
        r
    }

    fn range_with(&self, from: &K, to: &K, limit: usize, guard: &Self::Guard) -> Option<usize> {
        debug_assert!(guard.covers(&self.smr), "guard from a foreign instance");
        let t = guard.tid();
        let r = self.range_impl(from, to, limit);
        self.collect(t);
        r
    }

    fn range(&self, from: &K, to: &K, limit: usize) -> Option<usize> {
        self.range_with(from, to, limit, &self.pin())
    }

    fn in_flight_nodes(&self) -> u64 {
        self.stats.in_flight()
    }
}

impl<K, V, S> Default for NatarajanMittalTree<K, V, S>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    S: AcquireRetire,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, S: AcquireRetire> Drop for NatarajanMittalTree<K, V, S> {
    fn drop(&mut self) {
        // Free everything reachable (flag/tag bits notwithstanding), then
        // whatever is parked in retired lists; the sets are disjoint since
        // retired nodes are unlinked first. Safety: exclusive access.
        let t = smr::current_tid();
        unsafe {
            super::teardown::<Node<K, V>, S>([self.root as usize], &self.smr, &self.stats, t)
        };
    }
}

impl<K, V, S: AcquireRetire> std::fmt::Debug for NatarajanMittalTree<K, V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NatarajanMittalTree")
            .field("scheme", &S::scheme_name())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr::{Ebr, Hp, Hyaline, Ibr};

    fn smoke<S: AcquireRetire>() {
        let tree: NatarajanMittalTree<u64, u64, S> = NatarajanMittalTree::new();
        assert_eq!(tree.get(&10), None);
        assert!(tree.insert(10, 100));
        assert!(tree.insert(5, 50));
        assert!(tree.insert(15, 150));
        assert!(!tree.insert(10, 101));
        assert_eq!(tree.get(&10), Some(100));
        assert_eq!(tree.get(&5), Some(50));
        assert!(tree.remove(&10));
        assert!(!tree.remove(&10));
        assert_eq!(tree.get(&10), None);
        assert_eq!(tree.get(&15), Some(150));
    }

    #[test]
    fn smoke_all_schemes() {
        smoke::<Ebr>();
        smoke::<Ibr>();
        smoke::<Hp>();
        smoke::<Hyaline>();
    }

    #[test]
    fn sequential_model_check() {
        use std::collections::BTreeMap;
        let tree: NatarajanMittalTree<u64, u64, Ebr> = NatarajanMittalTree::new();
        let mut model = BTreeMap::new();
        let mut state = 0x12345678u64;
        for _ in 0..4000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = (state >> 33) % 64;
            match (state >> 20) % 3 {
                0 => assert_eq!(tree.insert(k, k * 2), model.insert(k, k * 2).is_none()),
                1 => assert_eq!(tree.remove(&k), model.remove(&k).is_some()),
                _ => assert_eq!(tree.get(&k), model.get(&k).copied()),
            }
        }
        for k in 0..64 {
            assert_eq!(tree.get(&k), model.get(&k).copied());
        }
    }

    #[test]
    fn range_counts_keys_region_schemes() {
        let tree: NatarajanMittalTree<u64, u64, Ebr> = NatarajanMittalTree::new();
        for k in 0..100 {
            tree.insert(k, k);
        }
        assert_eq!(tree.range(&10, &20, 1000), Some(10));
        assert_eq!(tree.range(&0, &100, 1000), Some(100));
        assert_eq!(tree.range(&0, &100, 7), Some(7), "limit respected");
        let hp_tree: NatarajanMittalTree<u64, u64, Hp> = NatarajanMittalTree::new();
        hp_tree.insert(1, 1);
        assert_eq!(hp_tree.range(&0, &10, 10), None, "manual HP: unsupported");
    }

    fn concurrent<S: AcquireRetire>() {
        let tree: Arc<NatarajanMittalTree<u64, u64, S>> = Arc::new(NatarajanMittalTree::new());
        let hs: Vec<_> = (0..8)
            .map(|i| {
                let tree = Arc::clone(&tree);
                std::thread::spawn(move || {
                    for j in 0..400u64 {
                        let k = i * 1000 + j;
                        assert!(tree.insert(k, k));
                        assert_eq!(tree.get(&k), Some(k));
                        if j % 2 == 0 {
                            assert!(tree.remove(&k));
                            assert_eq!(tree.get(&k), None);
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        for i in 0..8u64 {
            for j in 0..400u64 {
                let k = i * 1000 + j;
                assert_eq!(tree.get(&k), if j % 2 == 0 { None } else { Some(k) });
            }
        }
    }

    #[test]
    fn concurrent_all_schemes() {
        concurrent::<Ebr>();
        concurrent::<Ibr>();
        concurrent::<Hp>();
        concurrent::<Hyaline>();
    }

    #[test]
    fn contended_deletes_same_key_range() {
        let tree: Arc<NatarajanMittalTree<u64, u64, Ebr>> = Arc::new(NatarajanMittalTree::new());
        let hs: Vec<_> = (0..8)
            .map(|_| {
                let tree = Arc::clone(&tree);
                std::thread::spawn(move || {
                    let mut state = std::time::SystemTime::now()
                        .duration_since(std::time::UNIX_EPOCH)
                        .unwrap()
                        .subsec_nanos() as u64
                        | 1;
                    for _ in 0..2000 {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let k = (state >> 33) % 32;
                        match (state >> 20) % 2 {
                            0 => {
                                tree.insert(k, k);
                            }
                            _ => {
                                tree.remove(&k);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
    }

    #[test]
    fn no_leaks_after_drop() {
        let stats;
        {
            let tree: NatarajanMittalTree<u64, u64, Ebr> = NatarajanMittalTree::new();
            stats = Arc::clone(&tree.stats);
            for k in 0..300u64 {
                tree.insert(k, k);
            }
            for k in 0..150u64 {
                tree.remove(&k);
            }
        }
        assert_eq!(stats.in_flight(), 0, "every node freed at drop");
    }
}
