//! Harris-Michael lock-free ordered linked list (manual reclamation).
//!
//! Michael's 2002 algorithm: deletion first *marks* the victim's `next` word
//! (low bit), then unlinks it with a CAS on the predecessor's edge; searches
//! help unlink marked nodes they encounter. Reclamation is manual: the
//! thread whose CAS unlinks a node retires it, and freed nodes come back
//! through `eject`.
//!
//! Traversal protection is hand-over-hand: the current node is acquired
//! (with validation, for protected-pointer schemes) from an edge that lives
//! in a node that is itself still protected, so no unprotected memory is
//! ever dereferenced.

use smr::sync::atomic::{AtomicUsize, Ordering};
use std::marker::PhantomData;
use std::sync::Arc;

use smr::{untagged, AcquireRetire, Retired, Tid};

use crate::{ConcurrentMap, NodeStats};

const MARK: usize = 1;

struct Node<K, V> {
    birth: u64,
    key: K,
    value: V,
    /// Next pointer; low bit set = this node is logically deleted.
    next: AtomicUsize,
}

impl<K, V> super::OutgoingEdges for Node<K, V> {
    fn out_edges(&self, out: &mut Vec<usize>) {
        out.push(untagged(self.next.load(Ordering::SeqCst)));
    }
}

/// A Harris-Michael ordered map under manual SMR scheme `S`.
///
/// Multiple structures may share one scheme instance (and stats) — the
/// Michael hash table does exactly that for its buckets.
pub struct HarrisMichaelList<K, V, S: AcquireRetire> {
    head: AtomicUsize,
    smr: Arc<S>,
    stats: Arc<NodeStats>,
    _marker: super::NodeMarker<Node<K, V>, S>,
}

// Safety: nodes are only dereferenced under scheme protection; values cross
// threads only via `V: Send + Sync`-bounded clones.
unsafe impl<K: Send + Sync, V: Send + Sync, S: AcquireRetire> Send for HarrisMichaelList<K, V, S> {}
unsafe impl<K: Send + Sync, V: Send + Sync, S: AcquireRetire> Sync for HarrisMichaelList<K, V, S> {}

/// Cursor produced by the find loop: `prev_loc` is the edge holding `cur_w`.
struct Cursor<G> {
    prev_loc: *const AtomicUsize,
    prev_guard: Option<G>,
    /// Unmarked word at `prev_loc` (0 = end of list).
    cur_w: usize,
    cur_guard: Option<G>,
    found: bool,
}

impl<K, V, S> HarrisMichaelList<K, V, S>
where
    K: Ord + Send + Sync,
    V: Clone + Send + Sync,
    S: AcquireRetire,
{
    /// Creates an empty list with its own scheme instance.
    pub fn new() -> Self {
        Self::with_shared(
            Arc::new(S::new(
                Arc::new(smr::GlobalEpoch::new()),
                S::default_config(),
            )),
            Arc::new(NodeStats::new()),
        )
    }

    /// Creates an empty list sharing a scheme instance and stats (used by
    /// the hash table so all buckets reclaim through one instance).
    pub fn with_shared(smr: Arc<S>, stats: Arc<NodeStats>) -> Self {
        HarrisMichaelList {
            head: AtomicUsize::new(0),
            smr,
            stats,
            _marker: PhantomData,
        }
    }

    /// Applies every ready eject: frees the node memory.
    fn collect(&self, t: Tid) {
        while let Some(r) = self.smr.eject(t) {
            self.stats.on_free(t);
            // Safety: ejected addresses were allocated by us as Node<K, V>
            // and retired exactly once after being unlinked.
            unsafe { drop(Box::from_raw(r.addr as *mut Node<K, V>)) };
        }
    }

    fn release_cursor(&self, t: Tid, c: &mut Cursor<S::Guard>) {
        if let Some(g) = c.prev_guard.take() {
            self.smr.release(t, g);
        }
        if let Some(g) = c.cur_guard.take() {
            self.smr.release(t, g);
        }
    }

    /// Michael's find: positions the cursor at the first node with
    /// `node.key >= key`, unlinking marked nodes along the way. Must be
    /// called inside a critical section; returns with 0–2 guards held.
    fn find(&self, t: Tid, key: &K) -> Cursor<S::Guard> {
        'retry: loop {
            let mut prev_loc: *const AtomicUsize = &self.head;
            let mut prev_guard: Option<S::Guard> = None;
            // Safety: `head` lives in `self`.
            let (mut cur_w, g) = self
                .smr
                .try_acquire(t, unsafe { &*prev_loc })
                .expect("list traversal holds at most 3 guards");
            let mut cur_guard = Some(g);
            if cur_w & MARK != 0 {
                // Head edge is never marked; a marked word here means we
                // raced an unlink mid-publication — restart.
                self.release_guards(t, &mut prev_guard, &mut cur_guard);
                continue 'retry;
            }
            loop {
                let cur = untagged(cur_w);
                if cur == 0 {
                    return Cursor {
                        prev_loc,
                        prev_guard,
                        cur_w,
                        cur_guard,
                        found: false,
                    };
                }
                let node = cur as *const Node<K, V>;
                // Safety: `cur` is protected by cur_guard.
                let next_field = unsafe { &(*node).next };
                let (next_w, next_g) = self
                    .smr
                    .try_acquire(t, next_field)
                    .expect("list traversal holds at most 3 guards");
                let mut next_guard = Some(next_g);
                // Validate that cur is still linked, unmarked, at prev_loc.
                // Safety: prev_loc is &head or an edge in a guarded node.
                if unsafe { (*prev_loc).load(Ordering::SeqCst) } != cur_w {
                    self.release_guards(t, &mut prev_guard, &mut cur_guard);
                    self.release_guards(t, &mut next_guard, &mut None);
                    continue 'retry;
                }
                if next_w & MARK != 0 {
                    // cur is logically deleted: help unlink it.
                    let clean_next = next_w & !MARK;
                    // Safety: prev_loc as above.
                    if unsafe {
                        (*prev_loc)
                            .compare_exchange(cur_w, clean_next, Ordering::SeqCst, Ordering::SeqCst)
                            .is_ok()
                    } {
                        // We unlinked cur: retire it (the manual chore).
                        let birth = unsafe { (*node).birth };
                        self.smr.retire(t, Retired::new(cur, birth));
                        if let Some(g) = cur_guard.take() {
                            self.smr.release(t, g);
                        }
                        cur_w = clean_next;
                        cur_guard = next_guard.take();
                        continue;
                    }
                    self.release_guards(t, &mut prev_guard, &mut cur_guard);
                    self.release_guards(t, &mut next_guard, &mut None);
                    continue 'retry;
                }
                // Safety: cur protected; key is immutable after insert.
                let ckey = unsafe { &(*node).key };
                if ckey >= key {
                    self.release_guards(t, &mut next_guard, &mut None);
                    return Cursor {
                        prev_loc,
                        prev_guard,
                        cur_w,
                        cur_guard,
                        found: ckey == key,
                    };
                }
                // Advance hand-over-hand: cur becomes prev.
                if let Some(g) = prev_guard.take() {
                    self.smr.release(t, g);
                }
                prev_guard = cur_guard.take();
                prev_loc = next_field as *const AtomicUsize;
                cur_w = next_w;
                cur_guard = next_guard.take();
            }
        }
    }

    fn release_guards(&self, t: Tid, a: &mut Option<S::Guard>, b: &mut Option<S::Guard>) {
        if let Some(g) = a.take() {
            self.smr.release(t, g);
        }
        if let Some(g) = b.take() {
            self.smr.release(t, g);
        }
    }

    fn insert_impl(&self, t: Tid, key: K, value: V) -> bool {
        let birth = self.smr.birth_epoch(t);
        self.stats.on_alloc(t);
        let new_node = Box::into_raw(Box::new(Node {
            birth,
            key,
            value,
            next: AtomicUsize::new(0),
        }));
        loop {
            // Safety: new_node is ours until published.
            let key_ref = unsafe { &(*new_node).key };
            let mut c = self.find(t, key_ref);
            if c.found {
                self.release_cursor(t, &mut c);
                self.stats.on_free(t);
                // Safety: never published.
                unsafe { drop(Box::from_raw(new_node)) };
                return false;
            }
            unsafe { (*new_node).next.store(c.cur_w, Ordering::SeqCst) };
            // Safety: prev_loc protected per find's contract.
            let ok = unsafe {
                (*c.prev_loc)
                    .compare_exchange(
                        c.cur_w,
                        new_node as usize,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                    .is_ok()
            };
            self.release_cursor(t, &mut c);
            if ok {
                return true;
            }
        }
    }

    fn remove_impl(&self, t: Tid, key: &K) -> bool {
        loop {
            let mut c = self.find(t, key);
            if !c.found {
                self.release_cursor(t, &mut c);
                return false;
            }
            let cur = untagged(c.cur_w);
            let node = cur as *const Node<K, V>;
            // Logically delete: mark cur's next word. A failed mark CAS
            // hands back the witnessed word, so we retry in place (cur
            // stays protected by the cursor) instead of re-finding — the
            // word only changes when a successor is inserted or unlinked,
            // or when a competing delete marks it (which ends our attempt).
            // Safety: cur protected by the cursor's guard.
            let mut next_w = unsafe { (*node).next.load(Ordering::SeqCst) };
            let marked = loop {
                if next_w & MARK != 0 {
                    break false; // someone else is deleting it
                }
                match unsafe {
                    (*node).next.compare_exchange(
                        next_w,
                        next_w | MARK,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                } {
                    Ok(_) => break true,
                    Err(w) => next_w = w,
                }
            };
            if !marked {
                // Retry from find so it can help the competing delete.
                self.release_cursor(t, &mut c);
                continue;
            }
            // Physically unlink (best effort — find() helps otherwise).
            // Safety: prev_loc protected per find's contract.
            if unsafe {
                (*c.prev_loc)
                    .compare_exchange(c.cur_w, next_w, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            } {
                let birth = unsafe { (*node).birth };
                self.smr.retire(t, Retired::new(cur, birth));
            }
            self.release_cursor(t, &mut c);
            return true;
        }
    }

    fn get_impl(&self, t: Tid, key: &K) -> Option<V> {
        let mut c = self.find(t, key);
        let out = if c.found {
            let node = untagged(c.cur_w) as *const Node<K, V>;
            // Safety: protected by the cursor guard; value immutable.
            Some(unsafe { (*node).value.clone() })
        } else {
            None
        };
        self.release_cursor(t, &mut c);
        out
    }

    /// Counts live (unmarked) nodes — test helper, not linearizable.
    pub fn iter_count(&self) -> usize {
        // RAII section (not bare begin/end): a panic while traversing must
        // not strand the announcement open and pin reclamation forever.
        let guard = smr::SectionGuard::enter(Arc::clone(&self.smr));
        let t = guard.tid();
        let mut n = 0;
        let mut w = self.head.load(Ordering::SeqCst);
        while untagged(w) != 0 {
            let node = untagged(w) as *const Node<K, V>;
            let next = unsafe { (*node).next.load(Ordering::SeqCst) };
            if next & MARK == 0 {
                n += 1;
            }
            w = next & !MARK;
        }
        drop(guard);
        self.collect(t);
        n
    }
}

impl<K, V, S> ConcurrentMap<K, V> for HarrisMichaelList<K, V, S>
where
    K: Ord + Send + Sync,
    V: Clone + Send + Sync,
    S: AcquireRetire,
{
    type Guard = smr::SectionGuard<S>;

    fn pin(&self) -> Self::Guard {
        smr::SectionGuard::enter(Arc::clone(&self.smr))
    }

    fn insert_with(&self, k: K, v: V, guard: &Self::Guard) -> bool {
        debug_assert!(guard.covers(&self.smr), "guard from a foreign instance");
        let t = guard.tid();
        let r = self.insert_impl(t, k, v);
        self.collect(t);
        r
    }

    fn remove_with(&self, k: &K, guard: &Self::Guard) -> bool {
        debug_assert!(guard.covers(&self.smr), "guard from a foreign instance");
        let t = guard.tid();
        let r = self.remove_impl(t, k);
        self.collect(t);
        r
    }

    fn get_with(&self, k: &K, guard: &Self::Guard) -> Option<V> {
        debug_assert!(guard.covers(&self.smr), "guard from a foreign instance");
        let t = guard.tid();
        let r = self.get_impl(t, k);
        self.collect(t);
        r
    }

    fn in_flight_nodes(&self) -> u64 {
        self.stats.in_flight()
    }
}

impl<K, V, S> Default for HarrisMichaelList<K, V, S>
where
    K: Ord + Send + Sync,
    V: Clone + Send + Sync,
    S: AcquireRetire,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, S: AcquireRetire> Drop for HarrisMichaelList<K, V, S> {
    fn drop(&mut self) {
        let t = smr::current_tid();
        // Free reachable nodes (marked-but-linked included), then retired
        // ones. Safety: exclusive access; linked nodes are not retired.
        let head = untagged(self.head.load(Ordering::SeqCst));
        unsafe { super::teardown::<Node<K, V>, S>([head], &self.smr, &self.stats, t) };
    }
}

impl<K, V, S: AcquireRetire> std::fmt::Debug for HarrisMichaelList<K, V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HarrisMichaelList")
            .field("scheme", &S::scheme_name())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr::{Ebr, Hp, Hyaline, Ibr};

    fn smoke<S: AcquireRetire>() {
        let list: HarrisMichaelList<u64, u64, S> = HarrisMichaelList::new();
        assert!(list.insert(5, 50));
        assert!(list.insert(3, 30));
        assert!(list.insert(7, 70));
        assert!(!list.insert(5, 55), "duplicate rejected");
        assert_eq!(list.get(&5), Some(50));
        assert_eq!(list.get(&4), None);
        assert!(list.remove(&5));
        assert!(!list.remove(&5));
        assert_eq!(list.get(&5), None);
        assert_eq!(list.iter_count(), 2);
    }

    #[test]
    fn smoke_all_schemes() {
        smoke::<Ebr>();
        smoke::<Ibr>();
        smoke::<Hp>();
        smoke::<Hyaline>();
    }

    fn concurrent<S: AcquireRetire>() {
        let list: Arc<HarrisMichaelList<u64, u64, S>> = Arc::new(HarrisMichaelList::new());
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let list = Arc::clone(&list);
                std::thread::spawn(move || {
                    for j in 0..300u64 {
                        let k = i * 300 + j;
                        assert!(list.insert(k, k * 10));
                        assert_eq!(list.get(&k), Some(k * 10));
                        if j % 2 == 0 {
                            assert!(list.remove(&k));
                        }
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(list.iter_count(), 8 * 150);
    }

    #[test]
    fn concurrent_all_schemes() {
        concurrent::<Ebr>();
        concurrent::<Ibr>();
        concurrent::<Hp>();
        concurrent::<Hyaline>();
    }

    #[test]
    fn contended_same_keys() {
        let list: Arc<HarrisMichaelList<u64, u64, Ebr>> = Arc::new(HarrisMichaelList::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let list = Arc::clone(&list);
                std::thread::spawn(move || {
                    for j in 0..500u64 {
                        let k = j % 16;
                        if j % 3 == 0 {
                            list.insert(k, j);
                        } else if j % 3 == 1 {
                            list.remove(&k);
                        } else {
                            list.get(&k);
                        }
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
    }

    #[test]
    fn no_leaks_after_drop() {
        let stats = Arc::new(NodeStats::new());
        {
            let list: HarrisMichaelList<u64, u64, Ebr> = HarrisMichaelList::with_shared(
                Arc::new(Ebr::new(
                    Arc::new(smr::GlobalEpoch::new()),
                    Ebr::default_config(),
                )),
                Arc::clone(&stats),
            );
            for k in 0..500u64 {
                list.insert(k, k);
            }
            for k in 0..250u64 {
                list.remove(&k);
            }
        }
        assert_eq!(stats.in_flight(), 0, "every node freed at drop");
    }
}
