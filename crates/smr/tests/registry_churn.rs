//! Spawn/exit churn over the thread-slot registry: `Tid`s are recycled when
//! threads exit, and `registered_high_water_mark` tracks the highest slot
//! ever handed out (one past), monotonically, without creeping upward under
//! churn.
//!
//! Everything runs inside one `#[test]` so concurrent sibling tests cannot
//! register extra threads between phases and blur the slot accounting.

use std::collections::HashSet;
use std::sync::{Arc, Barrier};

use smr::{active_threads, current_tid, registered_high_water_mark, MAX_THREADS};

const BURST: usize = 32;
const CHURN_ROUNDS: usize = 2 * MAX_THREADS;

#[test]
fn churn_recycles_tids_and_bounds_the_high_water_mark() {
    // Register the harness thread first so the baseline is stable.
    let main_tid = current_tid();
    assert!(main_tid.index() < MAX_THREADS);
    let baseline_active = active_threads();
    assert!(baseline_active >= 1);
    let hwm0 = registered_high_water_mark();
    assert!(hwm0 >= 1, "registering a thread must raise the mark");
    assert!(
        main_tid.index() < hwm0,
        "mark is one past every handed-out slot"
    );

    // Phase 1 — sequential churn: spawn-join many short-lived threads. Each
    // thread's slot is released at exit (join waits for TLS destructors), so
    // successive threads must reuse a small pool of slots rather than
    // consuming fresh ones.
    let mut seen = HashSet::new();
    for _ in 0..CHURN_ROUNDS {
        let tid = std::thread::spawn(|| current_tid().index()).join().unwrap();
        assert!(tid < MAX_THREADS);
        assert_ne!(tid, main_tid.index(), "main thread's slot is still taken");
        seen.insert(tid);
    }
    assert!(
        seen.len() <= 4,
        "sequential churn should recycle a handful of slots, used {}",
        seen.len()
    );
    let hwm1 = registered_high_water_mark();
    assert!(hwm1 >= hwm0, "the mark is monotone");
    assert!(
        hwm1 <= hwm0 + 4,
        "churn must not consume fresh slots: {hwm0} -> {hwm1}"
    );
    assert_eq!(
        active_threads(),
        baseline_active,
        "all churn threads released"
    );

    // Phase 2 — a concurrent burst holds BURST slots simultaneously, which
    // must push the mark to at least BURST + 1 (the main thread holds one
    // more), and every in-flight Tid lies below the mark it observes.
    let gate = Arc::new(Barrier::new(BURST));
    let handles: Vec<_> = (0..BURST)
        .map(|_| {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let t = current_tid();
                gate.wait(); // all BURST threads are registered at once
                assert!(t.index() < registered_high_water_mark());
                t.index()
            })
        })
        .collect();
    let burst_tids: HashSet<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(
        burst_tids.len(),
        BURST,
        "concurrent threads get distinct slots"
    );
    let hwm2 = registered_high_water_mark();
    assert!(
        hwm2 > BURST,
        "{BURST} concurrent threads + main need > {BURST} slots"
    );
    assert!(hwm2 >= hwm1, "the mark is monotone");
    assert_eq!(active_threads(), baseline_active, "burst threads released");

    // Phase 3 — churn after the burst: the burst freed a block of low slots,
    // so renewed sequential churn reuses them and the mark must not move.
    for _ in 0..CHURN_ROUNDS {
        std::thread::spawn(|| {
            let t = current_tid();
            assert!(t.index() < registered_high_water_mark());
        })
        .join()
        .unwrap();
    }
    assert_eq!(
        registered_high_water_mark(),
        hwm2,
        "churn below the mark reuses recycled slots"
    );
    assert_eq!(active_threads(), baseline_active);

    // Phase 4 — abandoned deaths: a thread that dies without unregistering
    // leaves its slot claimed; reclaiming after each death keeps the mark
    // flat across 100 deaths instead of marching toward `MAX_THREADS`.
    let hwm3 = registered_high_water_mark();
    for _ in 0..100 {
        let dead = std::thread::spawn(|| {
            let _ = current_tid();
            smr::abandon_current_slot()
        })
        .join()
        .unwrap();
        assert!(smr::slot_in_use(dead), "abandoned slot stays claimed");
        assert!(smr::slot_abandoned(dead), "abandonment is published");
        // Safety: the owner was joined above, so its death happened-before
        // this call and it can never touch the slot again.
        assert!(unsafe { smr::reclaim_orphaned_slot(dead) });
        assert!(!smr::slot_in_use(dead), "reclaim releases the slot");
        assert!(!smr::slot_abandoned(dead), "reclaim clears the flag");
        assert!(!unsafe { smr::reclaim_orphaned_slot(dead) }, "idempotent");
    }
    assert!(
        registered_high_water_mark() <= hwm3.max(2),
        "reclaimed deaths must not consume fresh slots: {hwm3} -> {}",
        registered_high_water_mark()
    );
    assert_eq!(active_threads(), baseline_active, "deaths all reclaimed");

    // Phase 5 — OrphanWatch: an abandoned slot's heartbeat stagnates and the
    // watch flags it after k observations. (Idle live threads look the same
    // — the watch is a detector, not an oracle — so filter by the abandoned
    // ground truth as a real monitor would by out-of-band liveness.)
    let dead = std::thread::spawn(|| {
        let _ = current_tid();
        smr::abandon_current_slot()
    })
    .join()
    .unwrap();
    let mut watch = smr::OrphanWatch::new(3);
    let mut flagged = Vec::new();
    for _ in 0..5 {
        flagged = watch.observe();
    }
    assert!(
        flagged.iter().any(|&t| t == dead && smr::slot_abandoned(t)),
        "watch must flag the dead slot as stagnant"
    );
    assert!(unsafe { smr::reclaim_orphaned_slot(dead) });
    assert_eq!(active_threads(), baseline_active);
}
