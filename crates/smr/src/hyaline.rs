//! Hyaline-1 behind the generalized acquire-retire interface.
//!
//! Hyaline is a protected-region scheme without a global epoch scan: retired
//! nodes are grouped into *batches*; a finished batch is pushed onto the
//! in-flight list of every slot currently inside a critical section, and the
//! batch's reference counter is set to the number of lists it joined. When an
//! operation ends its critical section it detaches its list and decrements
//! each batch it finds; whoever brings a batch's counter to zero claims the
//! batch's nodes (here: moves them to its ready queue for `eject`, since in
//! the generalized interface the deferred action belongs to the caller).
//!
//! Protocol details (per slot):
//!
//! * `head == INVALID` — the slot is not in a critical section; retirers
//!   skip it.
//! * `head == 0` — inside a critical section, list empty.
//! * otherwise `head` points to a `LinkNode` chain.
//!
//! Entering stores `0`; leaving swaps in `INVALID` and walks whatever chain
//! it got. A retirer CAS-pushes onto every non-`INVALID` head, then adds the
//! number of successful pushes to the batch counter (which leavers may have
//! already driven negative — the counter is signed, and the unique
//! transition to exactly zero hands out reclamation responsibility).
//!
//! Safety: if a reader is inside a critical section when an object is
//! retired, the batch containing it is pushed to the reader's slot (its head
//! is not `INVALID`), so the object cannot be ejected until the reader
//! leaves and decrements the batch. Readers that enter after the retire
//! cannot reach the object, because retirement follows unlinking.

use crate::registry::{beat, registered_high_water_mark, Tid, MAX_THREADS};
use crate::util::{announce_usize, CachePadded};
use crate::{AcquireRetire, ExitHook, GlobalEpoch, Retired, SmrConfig};
use crate::{THROTTLE_ROUNDS, THROTTLE_SLEEP};

use crate::sync::atomic::{fence, AtomicIsize, AtomicUsize, Ordering};
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Slot-head sentinel: the slot's thread is not in a critical section.
const INVALID: usize = usize::MAX;

struct Batch {
    /// pushes − leaves; reclamation goes to whoever makes this exactly zero.
    refs: AtomicIsize,
    items: Vec<Retired>,
}

struct LinkNode {
    batch: *mut Batch,
    /// Next `LinkNode` address in this slot's list, or 0.
    next: usize,
}

struct Local {
    /// The batch currently being filled by this thread's retires.
    current: Vec<Retired>,
    ready: VecDeque<Retired>,
    depth: u32,
}

struct Slot {
    head: AtomicUsize,
    local: UnsafeCell<Local>,
}

/// Hyaline-1 acquire-retire instance.
///
/// # Examples
///
/// ```
/// use smr::{AcquireRetire, GlobalEpoch, Hyaline, Retired};
/// use std::sync::atomic::AtomicUsize;
/// use std::sync::Arc;
///
/// let hy = Hyaline::new(Arc::new(GlobalEpoch::new()), Hyaline::default_config());
/// let t = smr::current_tid();
/// let shared = AtomicUsize::new(0x1000);
///
/// hy.begin_critical_section(t);
/// let (value, _guard) = hy.acquire(t, &shared);
/// assert_eq!(value, 0x1000);
/// hy.end_critical_section(t);
/// ```
//
// Safety invariants: `Slot::local` is only accessed by the owning thread (or
// under `drain_all`/`Drop` exclusivity). `Slot::head` is CAS-pushed by any
// thread but only detached (swapped to INVALID) by the owner; every pushed
// `LinkNode` is therefore walked and freed exactly once. A `Batch` is freed
// by the unique thread that moves its counter to zero.
pub struct Hyaline {
    cfg: SmrConfig,
    slots: Box<[CachePadded<Slot>]>,
    exit_hook: OnceLock<ExitHook>,
    /// Retired items distributed into batches but not yet claimed, instance-
    /// wide — the garbage gauge the `max_garbage` escape hatch throttles on.
    /// Hyaline-1 has no scan to bound garbage with: a reader stalled inside
    /// a section holds a reference on *every* batch distributed while it is
    /// active, so without the hatch this count grows without bound under a
    /// stalled reader.
    outstanding: AtomicUsize,
}

unsafe impl Send for Hyaline {}
unsafe impl Sync for Hyaline {}

impl Hyaline {
    #[inline]
    fn local(&self, t: Tid) -> *mut Local {
        self.slots[t.index()].local.get()
    }

    /// Walks a detached slot list, decrementing batch counters and claiming
    /// zeroed batches into `local.ready`.
    unsafe fn process_list(&self, mut head: usize, local: &mut Local) {
        while head != 0 && head != INVALID {
            let node = Box::from_raw(head as *mut LinkNode);
            let batch = node.batch;
            head = node.next;
            drop(node);
            // Ordering: AcqRel — Release publishes this thread's finished
            // section (its protected reads precede the decrement); Acquire
            // on the zero transition synchronizes with every other
            // decrementer's Release, so the claimer of the batch sees all
            // sections done (and the retirer's item writes) before reusing
            // the nodes.
            if (*batch).refs.fetch_sub(1, Ordering::AcqRel) == 1 {
                let batch = Box::from_raw(batch);
                // Ordering: Relaxed — a throttle/diagnostic gauge; no
                // protection decision reads it.
                self.outstanding
                    .fetch_sub(batch.items.len(), Ordering::Relaxed);
                local.ready.extend(batch.items);
            }
        }
    }

    /// Bounded retire-side backpressure (the `max_garbage` escape hatch):
    /// sleep in short rounds while the instance-wide unclaimed count stays
    /// over the watermark. Hyaline has no scan to force progress with — the
    /// count only falls when a pushed-to section leaves — so this is pure
    /// backpressure, bounded by the round budget for liveness. Only ever
    /// called with `depth == 0`: sleeping inside the caller's own section
    /// would pin the very batches being waited on.
    #[cold]
    fn throttle(&self, cap: usize) {
        for _ in 0..THROTTLE_ROUNDS {
            std::thread::sleep(THROTTLE_SLEEP);
            // Ordering: Relaxed — backpressure heuristic; staleness merely
            // costs one more bounded round.
            if self.outstanding.load(Ordering::Relaxed) < cap {
                return;
            }
        }
    }

    /// Seals the current batch and distributes it to all active slots.
    fn distribute(&self, local: &mut Local) {
        if local.current.is_empty() {
            return;
        }
        crate::fault::on_scan();
        let items = std::mem::take(&mut local.current);
        // Ordering: Relaxed — throttle gauge (see `outstanding`); counted
        // before the pushes so a racing claimer can only *under*-read,
        // never see the decrement before the increment.
        self.outstanding.fetch_add(items.len(), Ordering::Relaxed);
        let batch = Box::into_raw(Box::new(Batch {
            refs: AtomicIsize::new(0),
            items,
        }));
        // Ordering: fence(SeqCst) — pairs with the fence in
        // `begin_critical_section`: a reader whose active head we miss below
        // fenced after us, so its protected reads observe the unlinks that
        // preceded this distribution and it cannot reach the batch's
        // objects.
        fence(Ordering::SeqCst);
        let mut pushes: isize = 0;
        for slot in self.slots.iter().take(registered_high_water_mark()) {
            let mut node: Option<Box<LinkNode>> = None;
            loop {
                // Ordering: Relaxed — ordered by the fence pairing above
                // (first iteration) and by the failed CAS below (retries);
                // the push CAS re-validates the value either way.
                let h = slot.head.load(Ordering::Relaxed);
                if h == INVALID {
                    break; // not in a critical section; skip this slot
                }
                let mut n = node
                    .take()
                    .unwrap_or_else(|| Box::new(LinkNode { batch, next: 0 }));
                n.next = h;
                let raw = Box::into_raw(n);
                // Ordering: Release on success — publishes the link node's
                // contents (batch pointer, next) to the slot owner, whose
                // detaching Acquire swap in `end_critical_section` pairs
                // with it. Acquire on failure — the reloaded head is pushed
                // onto next iteration, so it needs the same edge the
                // initial load got from the fence.
                match slot.head.compare_exchange(
                    h,
                    raw as usize,
                    Ordering::Release,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        pushes += 1;
                        break;
                    }
                    Err(_) => {
                        node = Some(unsafe { Box::from_raw(raw) });
                    }
                }
            }
        }
        // Add the push count; leavers may already have driven the counter
        // negative. Whoever lands it on exactly zero reclaims — including us,
        // right now, when every pushed-to section has already left (or no
        // section was active at all).
        // Ordering: AcqRel — Release publishes the batch items to racing
        // decrementers; Acquire on the zero case synchronizes with every
        // leaver's Release decrement so their sections are over before we
        // reclaim (see `process_list`).
        let old = unsafe { &*batch }.refs.fetch_add(pushes, Ordering::AcqRel);
        if old + pushes == 0 {
            let batch = unsafe { Box::from_raw(batch) };
            // Ordering: Relaxed — throttle gauge, see `process_list`.
            self.outstanding
                .fetch_sub(batch.items.len(), Ordering::Relaxed);
            local.ready.extend(batch.items);
        }
    }
}

unsafe impl AcquireRetire for Hyaline {
    type Guard = ();

    /// Retired batches take a reference per *active* section at retire
    /// time and are only freed when every such section has departed, so a
    /// section protects every word it observed from a live location,
    /// whatever the pointee's birth epoch.
    const PROTECTS_SECTION_READS: bool = true;

    fn new(_clock: Arc<GlobalEpoch>, config: SmrConfig) -> Self {
        let slots = (0..MAX_THREADS)
            .map(|_| {
                CachePadded::new(Slot {
                    head: AtomicUsize::new(INVALID),
                    local: UnsafeCell::new(Local {
                        current: Vec::new(),
                        ready: VecDeque::new(),
                        depth: 0,
                    }),
                })
            })
            .collect();
        Hyaline {
            cfg: config,
            slots,
            exit_hook: OnceLock::new(),
            outstanding: AtomicUsize::new(0),
        }
    }

    fn scheme_name() -> &'static str {
        "Hyaline"
    }

    #[inline]
    fn begin_critical_section(&self, t: Tid) {
        let local = unsafe { &mut *self.local(t) };
        local.depth += 1;
        if local.depth == 1 {
            // The slot must be visibly active before any protected read of
            // the section: Hyaline's one fence per operation, paid inside
            // `announce_usize`. Pairs with the fence in `distribute` (miss
            // our active head ⇒ we fenced later ⇒ our reads see your
            // unlinks).
            announce_usize(&self.slots[t.index()].head, 0);
            beat(t);
            crate::fault::on_section_entry(t);
            // Sanitizer shadow: Hyaline sections protect every read
            // (PROTECTS_SECTION_READS) — batches retired during the section
            // count it — so no per-acquire tokens are needed.
            crate::sanitize::section_enter(self as *const Self as usize, t, true);
        }
    }

    #[inline]
    fn end_critical_section(&self, t: Tid) {
        // Scoped: the hook below may re-enter `retire`/`eject`, which take
        // their own `&mut Local` — the borrow must be dead by then.
        let outermost = {
            let local = unsafe { &mut *self.local(t) };
            debug_assert!(local.depth > 0, "end_critical_section without begin");
            local.depth -= 1;
            if local.depth == 0 {
                // Ordering: AcqRel — Acquire pairs with the retirers' Release
                // push CASes so the detached link nodes' contents are visible
                // before we walk them; Release keeps the section's protected
                // reads from sinking past the detach (the batch decrements
                // that may free them come after).
                let head = self.slots[t.index()].head.swap(INVALID, Ordering::AcqRel);
                unsafe { self.process_list(head, local) };
                true
            } else {
                false
            }
        };
        if outermost {
            beat(t);
            crate::sanitize::section_exit(self as *const Self as usize, t);
            // After `process_list`: hook-issued retires form batches that
            // count only the sections still active now — every section that
            // already left (including this one) is done reading.
            if let Some(h) = self.exit_hook.get() {
                h.invoke(t);
            }
        }
    }

    fn set_exit_hook(&self, hook: ExitHook) {
        let _ = self.exit_hook.set(hook);
    }

    #[inline]
    fn birth_epoch(&self, _t: Tid) -> u64 {
        0
    }

    #[inline]
    fn acquire(&self, t: Tid, src: &AtomicUsize) -> (usize, Self::Guard) {
        debug_assert!(
            unsafe { &*self.local(t) }.depth > 0,
            "acquire outside critical section"
        );
        // Ordering: Acquire — pairs with the Release publication of the
        // pointee; protection against reclamation comes from the active
        // slot head announced (and fenced) at section entry.
        (src.load(Ordering::Acquire), ())
    }

    #[inline]
    fn try_acquire(&self, t: Tid, src: &AtomicUsize) -> Option<(usize, Self::Guard)> {
        Some(self.acquire(t, src))
    }

    #[inline]
    fn release(&self, _t: Tid, _guard: Self::Guard) {}

    fn retire(&self, t: Tid, r: Retired) {
        let local = unsafe { &mut *self.local(t) };
        local.current.push(r);
        if local.current.len() >= self.cfg.batch_size {
            self.distribute(local);
        }
        // Escape hatch: over the instance-wide unclaimed watermark and
        // outside any section, apply bounded backpressure — see `throttle`.
        if let Some(cap) = self.cfg.max_garbage {
            // Ordering: Relaxed — watermark trigger is a heuristic; the
            // throttle loop re-reads under its own bounded rounds.
            if local.depth == 0 && self.outstanding.load(Ordering::Relaxed) >= cap {
                self.throttle(cap);
            }
        }
    }

    #[inline]
    fn eject(&self, t: Tid) -> Option<Retired> {
        let local = unsafe { &mut *self.local(t) };
        local.ready.pop_front()
    }

    #[inline]
    fn has_ready(&self, t: Tid) -> bool {
        !unsafe { &*self.local(t) }.ready.is_empty()
    }

    fn quiescent(&self) -> bool {
        // Ordering: fence(SeqCst) — pairs with the fence in
        // `begin_critical_section`, as in `distribute`: an active head we
        // miss below went live after this fence, so that section's
        // protected reads observe the unlinks preceding this call and it
        // cannot reach what the caller hands back.
        fence(Ordering::SeqCst);
        self.slots
            .iter()
            .take(registered_high_water_mark())
            // Ordering: Relaxed — the fence pairing above carries the
            // visibility argument; `INVALID` means "not in a section".
            .all(|slot| slot.head.load(Ordering::Relaxed) == INVALID)
    }

    fn flush(&self, t: Tid) {
        let local = unsafe { &mut *self.local(t) };
        self.distribute(local);
    }

    unsafe fn drain_all(&self) -> Vec<Retired> {
        let mut out = Vec::new();
        // Force-leave every slot: walk and free any remaining lists so every
        // batch's counter eventually reaches zero exactly once.
        for slot in self.slots.iter() {
            let local = &mut *slot.local.get();
            let head = slot.head.swap(INVALID, Ordering::SeqCst);
            self.process_list(head, local);
        }
        for slot in self.slots.iter() {
            let local = &mut *slot.local.get();
            out.append(&mut local.current);
            out.extend(local.ready.drain(..));
        }
        out
    }

    unsafe fn reclaim_slot(&self, dead: Tid, into: Tid) {
        debug_assert_ne!(dead, into, "cannot reclaim a slot into itself");
        // Force-leave the dead section: detach its handoff list and process
        // it *as the caller* — decrements land exactly as if the dead
        // thread had left normally, and zeroed batches are claimed into the
        // caller's ready queue. Sound because the owner is dead: its
        // section's reads are over (they will never execute again).
        // Ordering: AcqRel — acquires the distributors' link publications
        // so the caller walks fully-initialized batch nodes, and releases
        // the takeover against the CAS of a concurrent distributor that
        // loses to `INVALID`.
        let head = self.slots[dead.index()]
            .head
            .swap(INVALID, Ordering::AcqRel);
        let (current, ready) = {
            let dead_local = &mut *self.local(dead);
            dead_local.depth = 0;
            (
                std::mem::take(&mut dead_local.current),
                std::mem::take(&mut dead_local.ready),
            )
        };
        let local = &mut *self.local(into);
        self.process_list(head, local);
        // Migrate the dead thread's unsealed batch and unclaimed ready
        // items; distributing the former lets every *other* live section be
        // counted normally.
        local.current.extend(current);
        local.ready.extend(ready);
        self.distribute(local);
    }
}

impl Drop for Hyaline {
    fn drop(&mut self) {
        // Free internal link nodes and batches; the retired records they
        // carry are dropped (owning domains drain before dropping us).
        unsafe {
            let _ = self.drain_all();
        }
    }
}

impl fmt::Debug for Hyaline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hyaline")
            .field("batch_size", &self.cfg.batch_size)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::current_tid;

    fn new_hyaline(batch: usize) -> Hyaline {
        let cfg = SmrConfig {
            batch_size: batch,
            ..Hyaline::default_config()
        };
        Hyaline::new(Arc::new(GlobalEpoch::new()), cfg)
    }

    #[test]
    fn retire_with_no_active_sections_ejects_after_flush() {
        let hy = new_hyaline(4);
        let t = current_tid();
        hy.retire(t, Retired::new(0x1000, 0));
        hy.flush(t);
        assert_eq!(hy.eject(t), Some(Retired::new(0x1000, 0)));
        assert_eq!(hy.eject(t), None);
    }

    #[test]
    fn batch_threshold_distributes_automatically() {
        let hy = new_hyaline(3);
        let t = current_tid();
        for i in 0..3 {
            hy.retire(t, Retired::new(0x1000 + i * 8, 0));
        }
        // Third retire sealed the batch; nobody active, so it came straight
        // back to us.
        assert!(hy.eject(t).is_some());
    }

    #[test]
    fn own_critical_section_defers_until_leave() {
        let hy = new_hyaline(1);
        let t = current_tid();
        hy.begin_critical_section(t);
        hy.retire(t, Retired::new(0x2000, 0)); // batch of 1, pushed to our own slot
        assert_eq!(hy.eject(t), None, "own section holds the batch");
        hy.end_critical_section(t);
        assert_eq!(hy.eject(t), Some(Retired::new(0x2000, 0)));
    }

    #[test]
    fn concurrent_reader_blocks_until_leaving_and_then_claims() {
        use std::sync::mpsc;
        let hy = Arc::new(new_hyaline(1));
        let (entered_tx, entered_rx) = mpsc::channel();
        let (retired_tx, retired_rx) = mpsc::channel::<()>();
        let (claimed_tx, claimed_rx) = mpsc::channel();
        let reader = {
            let hy = Arc::clone(&hy);
            std::thread::spawn(move || {
                let rt = current_tid();
                hy.begin_critical_section(rt);
                entered_tx.send(()).unwrap();
                retired_rx.recv().unwrap();
                hy.end_critical_section(rt);
                // In Hyaline the *leaving* thread claims zeroed batches.
                let claimed = hy.eject(rt);
                claimed_tx.send(claimed).unwrap();
            })
        };
        entered_rx.recv().unwrap();
        let t = current_tid();
        hy.retire(t, Retired::new(0x3000, 0));
        // The batch was pushed to the reader's slot; we cannot eject it.
        assert_eq!(hy.eject(t), None);
        retired_tx.send(()).unwrap();
        let claimed = claimed_rx.recv().unwrap();
        reader.join().unwrap();
        assert_eq!(claimed, Some(Retired::new(0x3000, 0)));
    }

    #[test]
    fn batch_pushed_to_multiple_active_slots_claimed_once() {
        use std::sync::mpsc;
        let hy = Arc::new(new_hyaline(1));
        let mut entered = Vec::new();
        let mut release = Vec::new();
        let mut claims = Vec::new();
        let mut joins = Vec::new();
        for _ in 0..3 {
            let hy = Arc::clone(&hy);
            let (etx, erx) = mpsc::channel();
            let (rtx, rrx) = mpsc::channel::<()>();
            let (ctx, crx) = mpsc::channel();
            entered.push(erx);
            release.push(rtx);
            claims.push(crx);
            joins.push(std::thread::spawn(move || {
                let rt = current_tid();
                hy.begin_critical_section(rt);
                etx.send(()).unwrap();
                rrx.recv().unwrap();
                hy.end_critical_section(rt);
                let mut mine = 0;
                while hy.eject(rt).is_some() {
                    mine += 1;
                }
                ctx.send(mine).unwrap();
            }));
        }
        for e in &entered {
            e.recv().unwrap();
        }
        let t = current_tid();
        hy.retire(t, Retired::new(0x4000, 0));
        assert_eq!(hy.eject(t), None);
        for r in &release {
            r.send(()).unwrap();
        }
        let total: usize = claims.iter().map(|c| c.recv().unwrap()).sum();
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(total, 1, "batch must be claimed by exactly one leaver");
    }

    #[test]
    fn drain_all_collects_current_and_listed() {
        let hy = new_hyaline(100);
        let t = current_tid();
        hy.begin_critical_section(t);
        hy.retire(t, Retired::new(0x5000, 0));
        hy.retire(t, Retired::new(0x6000, 0));
        // Force a distribution while our own section is active so a link
        // node sits in our slot list.
        hy.flush(t);
        hy.retire(t, Retired::new(0x7000, 0));
        let drained = unsafe { hy.drain_all() };
        assert_eq!(drained.len(), 3);
    }
}
