//! The reclamation **sanitizer**: shadow-state lifecycle and
//! protection-coverage checking for every engine access.
//!
//! The rest of the suite calls the hook functions in this module
//! unconditionally; in normal builds every hook is an empty
//! `#[inline(always)]` function and the layer compiles to nothing (the same
//! zero-cost switch as the [`sync`](crate::sync) facade). Under
//! `--features sanitize` the hooks maintain two shadow structures:
//!
//! * a process-wide **block table** keyed by counted-block address, stamping
//!   each block with a generation counter and a lifecycle state
//!   (`Live → Disposed → Freed`) driven by the allocation, retire,
//!   decrement, dispose and free hooks; and
//! * a per-[`Tid`](crate::registry::Tid) **protection shadow** recording every open critical
//!   section (with the scheme's `PROTECTS_SECTION_READS` capability) and
//!   every pointer-level protection token (hazard slots, IBR interval
//!   acquisitions).
//!
//! Check hooks — called from the `cdrc` engine on every dereference,
//! install and count-free protected read — assert that the touched block is
//! in a legal state and that the access is covered by a live protection of
//! the right kind, and panic **at the offending call site**
//! (`#[track_caller]` all the way down) with the block's captured event
//! trail. Freed payloads are poison-filled (`0xDB`) by the `cdrc` side so
//! latent dangling reads fail loudly even when they slip past a check.
//!
//! The sanitizer and the model checker are mutually exclusive: under
//! `--features model-check` the hooks are also compiled out (the checker's
//! cooperative scheduler must not run code that blocks on real mutexes).
//!
//! See the repository README ("Reclamation sanitizer") for how to run the
//! suite under the sanitizer and example diagnostics.

/// Which deferred-decrement channel a retire travels on; mirrors the three
/// acquire-retire instances a `cdrc` domain runs (strong counts, weak
/// counts, delayed disposal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Channel {
    /// A deferred strong-count decrement.
    Strong,
    /// A deferred weak-count decrement.
    Weak,
    /// A delayed disposal (strong count hit zero with weak holders left).
    Dispose,
}

/// How long a protection token minted by an engine `acquire` stays valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenLife {
    /// Until the matching `release` clears the announcement slot named by
    /// the key (hazard pointers).
    UntilRelease(usize),
    /// Until the thread's critical section on the issuing instance ends
    /// (IBR: the announced interval persists to section exit).
    UntilSectionExit,
}

#[cfg(all(feature = "sanitize", not(feature = "model-check")))]
mod imp {
    use super::{Channel, TokenLife};
    use crate::registry::{try_tid, Tid, MAX_THREADS};
    use crate::untagged;
    use std::collections::HashMap;
    use std::panic::Location;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Events kept per block (newest overwrite oldest).
    const TRAIL: usize = 8;
    /// Shard count for the block table (power of two).
    const SHARDS: usize = 64;

    #[derive(Clone, Copy)]
    struct Event {
        kind: &'static str,
        tid: usize,
        loc: &'static Location<'static>,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum State {
        Live,
        Disposed,
        Freed,
    }

    struct BlockEntry {
        state: State,
        generation: u64,
        dispose_retired: bool,
        events: [Option<Event>; TRAIL],
        next_event: usize,
    }

    impl BlockEntry {
        fn new() -> Self {
            BlockEntry {
                state: State::Live,
                generation: 0,
                dispose_retired: false,
                events: [None; TRAIL],
                next_event: 0,
            }
        }

        #[track_caller]
        fn record(&mut self, kind: &'static str) {
            self.events[self.next_event % TRAIL] = Some(Event {
                kind,
                tid: try_tid().map(|t| t.index()).unwrap_or(usize::MAX),
                loc: Location::caller(),
            });
            self.next_event = self.next_event.wrapping_add(1);
        }

        fn trail(&self) -> String {
            let mut out = String::new();
            let n = self.next_event;
            let start = n.saturating_sub(TRAIL);
            for i in start..n {
                if let Some(e) = self.events[i % TRAIL] {
                    let tid = if e.tid == usize::MAX {
                        "?".to_string()
                    } else {
                        e.tid.to_string()
                    };
                    out.push_str(&format!("\n    [t{tid}] {} at {}", e.kind, e.loc));
                }
            }
            if start > 0 {
                out.push_str(&format!("\n    ({start} earlier events dropped)"));
            }
            out
        }
    }

    struct SectionRec {
        depth: u32,
        protects_reads: bool,
        entered: &'static Location<'static>,
    }

    #[derive(Default)]
    struct ThreadShadow {
        /// Open critical sections, keyed by engine-instance address.
        sections: HashMap<usize, SectionRec>,
        /// Pointer-protection reference counts, keyed by block address.
        protected: HashMap<usize, u32>,
        /// Hazard-style tokens: (instance, slot key) → protected address.
        by_key: HashMap<(usize, usize), usize>,
        /// Interval-style tokens released at section exit, per instance.
        until_exit: HashMap<usize, Vec<usize>>,
    }

    fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        // A sanitizer panic (deliberate in the negative suite) poisons the
        // mutex it held; later checks still need the state.
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn table() -> &'static [Mutex<HashMap<usize, BlockEntry>>] {
        static TABLE: OnceLock<Box<[Mutex<HashMap<usize, BlockEntry>>]>> = OnceLock::new();
        TABLE.get_or_init(|| (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect())
    }

    fn shard(addr: usize) -> &'static Mutex<HashMap<usize, BlockEntry>> {
        &table()[(addr >> 4) & (SHARDS - 1)]
    }

    fn shadows() -> &'static [Mutex<ThreadShadow>] {
        static SHADOWS: OnceLock<Box<[Mutex<ThreadShadow>]>> = OnceLock::new();
        SHADOWS.get_or_init(|| {
            (0..MAX_THREADS)
                .map(|_| Mutex::new(ThreadShadow::default()))
                .collect()
        })
    }

    fn shadow(t: Tid) -> &'static Mutex<ThreadShadow> {
        &shadows()[t.index()]
    }

    /// Leak reports captured at thread unregister (see
    /// [`take_leak_reports`]); panicking from a TLS destructor would abort
    /// the process, so leaks found there are logged instead.
    fn leak_log() -> &'static Mutex<Vec<String>> {
        static LOG: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
        LOG.get_or_init(|| Mutex::new(Vec::new()))
    }

    #[track_caller]
    fn fail(addr: usize, entry: Option<&BlockEntry>, what: &str) -> ! {
        let trail = entry.map(|e| e.trail()).unwrap_or_default();
        let generation = entry.map(|e| e.generation).unwrap_or(0);
        panic!(
            "sanitizer: {what} (block {addr:#x}, generation {generation}) at {}{trail}",
            Location::caller()
        );
    }

    /// Whether the sanitizer is compiled in. `true` in this half.
    pub const fn enabled() -> bool {
        true
    }

    // -- lifecycle hooks ----------------------------------------------------

    /// Records a freshly allocated counted block. The address must be
    /// unused or previously freed; anything else means a block was freed
    /// behind the sanitizer's back or freed memory was handed out twice.
    #[track_caller]
    pub fn on_alloc(addr: usize) {
        let addr = untagged(addr);
        let mut shard = lock(shard(addr));
        let entry = shard.entry(addr).or_insert_with(BlockEntry::new);
        match entry.state {
            State::Freed => {
                entry.state = State::Live;
                entry.generation += 1;
                entry.dispose_retired = false;
            }
            // A brand-new entry starts Live with generation 0 and an empty
            // trail; a *reused* entry that never saw `on_free` is the bug.
            State::Live | State::Disposed if entry.next_event != 0 => fail(
                addr,
                Some(entry),
                "allocator returned a block still tracked as live",
            ),
            _ => {}
        }
        entry.record("alloc");
    }

    /// Records a retire on `channel` and checks it is legal: any number of
    /// strong/weak retires may target a live block (multi-retire is part of
    /// the acquire-retire interface), but a dispose retire is unique per
    /// generation and nothing may be retired after the block was freed.
    #[track_caller]
    pub fn on_retire(addr: usize, channel: Channel) {
        let addr = untagged(addr);
        let mut shard = lock(shard(addr));
        let Some(entry) = shard.get_mut(&addr) else {
            return;
        };
        match (channel, entry.state) {
            (_, State::Freed) => fail(addr, Some(entry), "retire of a freed block"),
            (Channel::Strong, State::Disposed) => {
                fail(addr, Some(entry), "strong retire of a disposed block")
            }
            (Channel::Dispose, State::Disposed) => {
                fail(addr, Some(entry), "dispose retire of a disposed block")
            }
            (Channel::Dispose, _) if entry.dispose_retired => {
                fail(addr, Some(entry), "double retire on the dispose channel")
            }
            _ => {}
        }
        if channel == Channel::Dispose {
            entry.dispose_retired = true;
        }
        entry.record(match channel {
            Channel::Strong => "retire(strong)",
            Channel::Weak => "retire(weak)",
            Channel::Dispose => "retire(dispose)",
        });
    }

    /// Checks a count decrement on `channel`: a strong decrement implies an
    /// outstanding strong reference, so the block must still be live; a
    /// weak decrement only requires the block not to be freed.
    #[track_caller]
    pub fn on_decrement(addr: usize, channel: Channel) {
        let addr = untagged(addr);
        let mut shard = lock(shard(addr));
        let Some(entry) = shard.get_mut(&addr) else {
            return;
        };
        match (channel, entry.state) {
            (_, State::Freed) => fail(
                addr,
                Some(entry),
                "count decrement applied to a freed block",
            ),
            (Channel::Strong, State::Disposed) => fail(
                addr,
                Some(entry),
                "strong decrement applied to a disposed block",
            ),
            _ => {}
        }
        entry.record(match channel {
            Channel::Strong => "dec(strong)",
            Channel::Weak => "dec(weak)",
            Channel::Dispose => "dec(dispose)",
        });
    }

    /// Records payload disposal. Legal exactly once per generation, on a
    /// live block — a second disposal is the classic double-free shape.
    #[track_caller]
    pub fn on_dispose(addr: usize) {
        let addr = untagged(addr);
        let mut shard = lock(shard(addr));
        let Some(entry) = shard.get_mut(&addr) else {
            return;
        };
        match entry.state {
            State::Live => entry.state = State::Disposed,
            State::Disposed => fail(addr, Some(entry), "double dispose"),
            State::Freed => fail(addr, Some(entry), "dispose of a freed block"),
        }
        entry.record("dispose");
    }

    /// Records block deallocation. The payload must have been disposed
    /// first (dispose always precedes free in the engine's lifecycle).
    #[track_caller]
    pub fn on_free(addr: usize) {
        let addr = untagged(addr);
        let mut shard = lock(shard(addr));
        let Some(entry) = shard.get_mut(&addr) else {
            return;
        };
        match entry.state {
            State::Disposed => entry.state = State::Freed,
            State::Live => fail(addr, Some(entry), "free of a still-live block"),
            State::Freed => fail(addr, Some(entry), "double free"),
        }
        entry.record("free");
    }

    // -- access checks ------------------------------------------------------

    /// Checks a payload dereference through an owned or snapshot reference:
    /// the block must be live (not disposed, not freed).
    #[track_caller]
    pub fn check_payload(addr: usize) {
        let addr = untagged(addr);
        let mut shard = lock(shard(addr));
        let Some(entry) = shard.get_mut(&addr) else {
            return;
        };
        match entry.state {
            State::Live => {}
            State::Disposed => fail(
                addr,
                Some(entry),
                "use after dispose (payload read of a disposed block)",
            ),
            State::Freed => fail(
                addr,
                Some(entry),
                "use after free (payload read of a freed block)",
            ),
        }
    }

    /// Checks a control-block header read (count inspection, upgrade
    /// attempt): legal on live and disposed blocks, never on freed ones.
    #[track_caller]
    pub fn check_header(addr: usize) {
        let addr = untagged(addr);
        let mut shard = lock(shard(addr));
        let Some(entry) = shard.get_mut(&addr) else {
            return;
        };
        if entry.state == State::Freed {
            fail(
                addr,
                Some(entry),
                "use after free (header read of a freed block)",
            );
        }
    }

    /// Checks an install (store/swap/CAS of a new word into an `RcWord`):
    /// the installed reference must point at a live block.
    #[track_caller]
    pub fn on_install(addr: usize) {
        let addr = untagged(addr);
        if addr == 0 {
            return;
        }
        let mut shard = lock(shard(addr));
        let Some(entry) = shard.get_mut(&addr) else {
            return;
        };
        match entry.state {
            State::Live => {}
            State::Disposed => fail(addr, Some(entry), "install of a disposed block"),
            State::Freed => fail(addr, Some(entry), "install of a freed block"),
        }
        entry.record("install");
    }

    /// Checks a **count-free** protected read (a guard-backed snapshot
    /// dereference): the calling thread must hold a live protection
    /// covering the block — a pointer-level token (hazard slot, IBR
    /// interval acquisition) or an open critical section on a scheme whose
    /// sections protect reads (`PROTECTS_SECTION_READS`). This is the
    /// check that catches the `PROTECTS_SECTION_READS = false` fast-path
    /// hole: under IBR or HP an open section alone does **not** cover a
    /// word that was never `acquire`d.
    #[track_caller]
    pub fn check_protected_read(addr: usize) {
        let addr = untagged(addr);
        let Some(t) = try_tid() else { return };
        {
            let sh = lock(shadow(t));
            let token = sh.protected.get(&addr).copied().unwrap_or(0) > 0;
            let section_covers = sh
                .sections
                .values()
                .any(|s| s.depth > 0 && s.protects_reads);
            let in_any_section = sh.sections.values().any(|s| s.depth > 0);
            if !token && !section_covers {
                drop(sh);
                let shard = lock(shard(addr));
                let entry = shard.get(&addr);
                let what = if in_any_section {
                    "unprotected read: the open critical section's scheme has \
                     PROTECTS_SECTION_READS = false and no acquire covers this block"
                } else {
                    "unprotected read: no critical section and no protection token cover this block"
                };
                fail(addr, entry, what);
            }
        }
        check_payload(addr);
    }

    // -- protection shadow --------------------------------------------------

    /// Records a critical-section entry on engine instance `inst`.
    #[track_caller]
    pub fn section_enter(inst: usize, t: Tid, protects_reads: bool) {
        let mut sh = lock(shadow(t));
        let rec = sh.sections.entry(inst).or_insert(SectionRec {
            depth: 0,
            protects_reads,
            entered: Location::caller(),
        });
        if rec.depth == 0 {
            rec.entered = Location::caller();
            rec.protects_reads = protects_reads;
        }
        rec.depth += 1;
    }

    /// Records a critical-section exit on `inst`; the outermost exit
    /// releases every interval-style token the section minted.
    #[track_caller]
    pub fn section_exit(inst: usize, t: Tid) {
        let mut sh = lock(shadow(t));
        let Some(rec) = sh.sections.get_mut(&inst) else {
            panic!(
                "sanitizer: critical-section exit without a matching entry at {}",
                Location::caller()
            );
        };
        assert!(
            rec.depth > 0,
            "sanitizer: critical-section exit below depth zero at {}",
            Location::caller()
        );
        rec.depth -= 1;
        if rec.depth == 0 {
            for addr in sh.until_exit.remove(&inst).unwrap_or_default() {
                if let Some(n) = sh.protected.get_mut(&addr) {
                    *n -= 1;
                    if *n == 0 {
                        sh.protected.remove(&addr);
                    }
                }
            }
        }
    }

    /// Records a pointer-protection token minted by an engine acquire:
    /// `word` (tag bits ignored) is covered on instance `inst` for
    /// [`TokenLife`]. `require_section` asserts the scheme's discipline
    /// that acquires only happen inside sections.
    #[track_caller]
    pub fn on_protect(inst: usize, t: Tid, word: usize, life: TokenLife, require_section: bool) {
        let addr = untagged(word);
        let mut sh = lock(shadow(t));
        if require_section {
            let open = sh.sections.get(&inst).map(|s| s.depth > 0).unwrap_or(false);
            assert!(
                open,
                "sanitizer: acquire outside a critical section on a region-protecting scheme at {}",
                Location::caller()
            );
        }
        match life {
            TokenLife::UntilRelease(key) => {
                // Re-announcing a slot replaces its previous token.
                if let Some(old) = sh.by_key.remove(&(inst, key)) {
                    if let Some(n) = sh.protected.get_mut(&old) {
                        *n -= 1;
                        if *n == 0 {
                            sh.protected.remove(&old);
                        }
                    }
                }
                if addr != 0 {
                    sh.by_key.insert((inst, key), addr);
                    *sh.protected.entry(addr).or_insert(0) += 1;
                }
            }
            TokenLife::UntilSectionExit => {
                if addr != 0 {
                    sh.until_exit.entry(inst).or_default().push(addr);
                    *sh.protected.entry(addr).or_insert(0) += 1;
                }
            }
        }
    }

    /// Releases the token held in announcement slot `key` of `inst`.
    pub fn on_unprotect(inst: usize, t: Tid, key: usize) {
        let mut sh = lock(shadow(t));
        if let Some(addr) = sh.by_key.remove(&(inst, key)) {
            if let Some(n) = sh.protected.get_mut(&addr) {
                *n -= 1;
                if *n == 0 {
                    sh.protected.remove(&addr);
                }
            }
        }
    }

    // -- thread lifecycle ---------------------------------------------------

    /// Asserts the calling thread holds no open sections and no protection
    /// tokens — the synchronous form of the leak check run at thread
    /// unregister. Panics naming the first leaked section's entry site.
    #[track_caller]
    pub fn check_thread_clean() {
        let Some(t) = try_tid() else { return };
        let sh = lock(shadow(t));
        if let Some((inst, rec)) = sh.sections.iter().find(|(_, r)| r.depth > 0) {
            panic!(
                "sanitizer: leaked critical section (depth {}) on engine instance {inst:#x}, \
                 entered at {} — checked at {}",
                rec.depth,
                rec.entered,
                Location::caller()
            );
        }
        if !sh.protected.is_empty() {
            let addrs: Vec<String> = sh.protected.keys().map(|a| format!("{a:#x}")).collect();
            panic!(
                "sanitizer: leaked protection tokens on blocks [{}] at {}",
                addrs.join(", "),
                Location::caller()
            );
        }
    }

    /// Runs the leak check for an unregistering thread and clears its
    /// shadow. Leaks are *logged* (see [`take_leak_reports`]) rather than
    /// panicked: this runs from a TLS destructor, where a panic would
    /// abort the process.
    pub fn on_thread_unregister(t: Tid) {
        let mut sh = lock(shadow(t));
        for (inst, rec) in sh.sections.iter().filter(|(_, r)| r.depth > 0) {
            lock(leak_log()).push(format!(
                "thread slot {} unregistered with an open critical section (depth {}) on \
                 engine instance {inst:#x}, entered at {}",
                t.index(),
                rec.depth,
                rec.entered
            ));
        }
        if !sh.protected.is_empty() {
            let addrs: Vec<String> = sh.protected.keys().map(|a| format!("{a:#x}")).collect();
            lock(leak_log()).push(format!(
                "thread slot {} unregistered holding protection tokens on blocks [{}]",
                t.index(),
                addrs.join(", ")
            ));
        }
        *sh = ThreadShadow::default();
    }

    /// Clears a slot's shadow without leak reporting — the thread declared
    /// (via fault injection) that it dies without unregistering, so leaked
    /// protections are the *expected* wreckage the reaper recovers.
    pub fn on_thread_abandon(t: Tid) {
        *lock(shadow(t)) = ThreadShadow::default();
    }

    /// Clears a dead slot's shadow when an orphan reaper recovers it, so
    /// the slot's next owner does not inherit phantom protections.
    pub fn on_slot_reclaimed(dead: Tid) {
        *lock(shadow(dead)) = ThreadShadow::default();
    }

    /// Drains the leak reports accumulated by [`on_thread_unregister`].
    /// Tests (and CI harnesses) call this after joining worker threads to
    /// turn logged leaks into failures.
    pub fn take_leak_reports() -> Vec<String> {
        std::mem::take(&mut *lock(leak_log()))
    }
}

#[cfg(not(all(feature = "sanitize", not(feature = "model-check"))))]
mod imp {
    //! The zero-cost half: every hook is an empty `#[inline(always)]`
    //! function with the same signature as the real one, so call sites
    //! compile to nothing in normal builds.
    #![allow(unused_variables, missing_docs, clippy::missing_docs_in_private_items)]

    use super::{Channel, TokenLife};
    use crate::registry::Tid;

    /// Whether the sanitizer is compiled in. `false` in this half.
    #[inline(always)]
    pub const fn enabled() -> bool {
        false
    }

    /// No-op (sanitizer compiled out).
    #[inline(always)]
    pub fn on_alloc(addr: usize) {}
    /// No-op (sanitizer compiled out).
    #[inline(always)]
    pub fn on_retire(addr: usize, channel: Channel) {}
    /// No-op (sanitizer compiled out).
    #[inline(always)]
    pub fn on_decrement(addr: usize, channel: Channel) {}
    /// No-op (sanitizer compiled out).
    #[inline(always)]
    pub fn on_dispose(addr: usize) {}
    /// No-op (sanitizer compiled out).
    #[inline(always)]
    pub fn on_free(addr: usize) {}
    /// No-op (sanitizer compiled out).
    #[inline(always)]
    pub fn check_payload(addr: usize) {}
    /// No-op (sanitizer compiled out).
    #[inline(always)]
    pub fn check_header(addr: usize) {}
    /// No-op (sanitizer compiled out).
    #[inline(always)]
    pub fn on_install(addr: usize) {}
    /// No-op (sanitizer compiled out).
    #[inline(always)]
    pub fn check_protected_read(addr: usize) {}
    /// No-op (sanitizer compiled out).
    #[inline(always)]
    pub fn section_enter(inst: usize, t: Tid, protects_reads: bool) {}
    /// No-op (sanitizer compiled out).
    #[inline(always)]
    pub fn section_exit(inst: usize, t: Tid) {}
    /// No-op (sanitizer compiled out).
    #[inline(always)]
    pub fn on_protect(inst: usize, t: Tid, word: usize, life: TokenLife, require_section: bool) {}
    /// No-op (sanitizer compiled out).
    #[inline(always)]
    pub fn on_unprotect(inst: usize, t: Tid, key: usize) {}
    /// No-op (sanitizer compiled out).
    #[inline(always)]
    pub fn check_thread_clean() {}
    /// No-op (sanitizer compiled out).
    #[inline(always)]
    pub fn on_thread_unregister(t: Tid) {}
    /// No-op (sanitizer compiled out).
    #[inline(always)]
    pub fn on_thread_abandon(t: Tid) {}
    /// No-op (sanitizer compiled out).
    #[inline(always)]
    pub fn on_slot_reclaimed(dead: Tid) {}
    /// No-op (sanitizer compiled out): always empty.
    #[inline(always)]
    pub fn take_leak_reports() -> Vec<String> {
        Vec::new()
    }
}

pub use imp::*;
