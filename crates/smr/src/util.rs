//! Small shared utilities.

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so that per-thread slots sharing an
/// array never share a cache line (128 covers adjacent-line prefetchers on
/// modern x86).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in cache-line padding.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// Issues a best-effort prefetch of the cache line containing `addr`.
///
/// Used by the hazard-pointer scheme before announcing (paper §5.1): the
/// line starts travelling before the announcement fence stalls the pipeline.
/// On non-x86 targets this is a no-op.
#[inline]
pub fn prefetch_read(addr: usize) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        if addr != 0 {
            std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
                addr as *const i8,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = addr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_at_least_128_bytes_and_aligned() {
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        let v = CachePadded::new(7u32);
        assert_eq!(*v, 7);
        assert_eq!(v.into_inner(), 7);
    }

    #[test]
    fn prefetch_is_safe_on_arbitrary_addresses() {
        prefetch_read(0);
        let x = 5u64;
        prefetch_read(&x as *const _ as usize);
    }
}
