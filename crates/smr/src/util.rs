//! Small shared utilities.

use std::ops::{Deref, DerefMut};

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::exempt;

use crate::registry::{registered_high_water_mark, Tid, MAX_THREADS};

/// Pads and aligns a value to 128 bytes so that per-thread slots sharing an
/// array never share a cache line (128 covers adjacent-line prefetchers on
/// modern x86).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in cache-line padding.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// A monotone event counter sharded into per-thread cache-padded lanes.
///
/// A shared `fetch_add` counter is a scalability sink: every increment
/// bounces the counter's cache line between all writer cores. Sharding by
/// [`Tid`] makes [`add`](Self::add) a contention-free increment of a lane no
/// other thread writes; [`sum`](Self::sum) folds the lanes on demand.
///
/// The sum is *eventually exact*: it observes every increment that
/// happened-before the read (e.g. via a thread join) and is monotone under
/// concurrent increments, which is all a statistics counter needs. Lanes of
/// exited threads keep their contributions (slots are recycled, not reset),
/// so totals survive thread churn.
#[derive(Debug)]
pub struct ShardedCounter {
    lanes: Box<[CachePadded<AtomicU64>]>,
}

impl ShardedCounter {
    /// A counter at zero, with one lane per possible [`Tid`].
    pub fn new() -> Self {
        ShardedCounter {
            lanes: (0..MAX_THREADS)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Adds `n` to the calling thread's lane.
    #[inline]
    pub fn add(&self, t: Tid, n: u64) {
        // Ordering: Relaxed load + Relaxed store — the lane is written only
        // by its owning thread, so the unfenced read-modify-write is
        // race-free (no `lock add` needed, unlike `fetch_add`); readers
        // need only monotone per-lane values, and cross-thread visibility
        // for exact totals comes from an external happens-before edge
        // (thread join / test mutex).
        // Statistics, not protocol: exempt from model checking (a modeled
        // per-lane counter array would dwarf the protocol state space).
        exempt(|| {
            let lane = &self.lanes[t.index()];
            lane.store(lane.load(Ordering::Relaxed) + n, Ordering::Relaxed);
        });
    }

    /// Folds all lanes ever used into a total.
    pub fn sum(&self) -> u64 {
        // Ordering: Relaxed — each lane is monotone, so any interleaving of
        // lane reads yields a value between "all increments that happened-
        // before this call" and "all increments so far"; that is the
        // documented (and sufficient) contract for a statistics counter.
        // Lanes at index >= the registry high-water mark were never written.
        exempt(|| {
            self.lanes
                .iter()
                .take(registered_high_water_mark())
                .map(|lane| lane.load(Ordering::Relaxed))
                .sum()
        })
    }
}

impl Default for ShardedCounter {
    fn default() -> Self {
        Self::new()
    }
}

macro_rules! announce_fn {
    ($name:ident, $atomic:ty, $int:ty) => {
        /// Publishes `val` to an announcement `slot` with a trailing
        /// store-load barrier — the idiom every protected-region section
        /// entry and hazard publication needs: the announcement must be
        /// globally visible *before* any subsequent protected load.
        ///
        /// On x86-64 the portable `store(Relaxed)` + `fence(SeqCst)` pair
        /// compiles to `mov` + `mfence`, and `mfence` is slower than a
        /// locked RMW on most microarchitectures, so there the store and
        /// fence are fused into one `SeqCst` swap (`lock xchg`, a full
        /// barrier under TSO) — crossbeam-epoch pins the same way. Both
        /// forms *are* the scheme's announcement fence and pair with the
        /// scanner-side `fence(SeqCst)`. Model-check builds always take
        /// the portable form: the fence pairing is the thing the checker
        /// must see, not the host's TSO shortcut.
        #[inline]
        pub fn $name(slot: &$atomic, val: $int) {
            #[cfg(all(target_arch = "x86_64", not(feature = "model-check")))]
            {
                // Ordering: SeqCst swap — the x86 form of the announcement
                // fence (see above); the returned previous value is
                // irrelevant.
                slot.swap(val, Ordering::SeqCst);
            }
            #[cfg(any(not(target_arch = "x86_64"), feature = "model-check"))]
            {
                // Ordering: Relaxed store + fence(SeqCst) — the portable
                // form of the announcement fence (see above).
                slot.store(val, Ordering::Relaxed);
                crate::sync::atomic::fence(Ordering::SeqCst);
            }
        }
    };
}

announce_fn!(announce_u64, AtomicU64, u64);
announce_fn!(announce_usize, crate::sync::atomic::AtomicUsize, usize);

/// Issues a best-effort prefetch of the cache line containing `addr`.
///
/// Used by the hazard-pointer scheme before announcing (paper §5.1): the
/// line starts travelling before the announcement fence stalls the pipeline.
/// On non-x86 targets this is a no-op.
#[inline]
pub fn prefetch_read(addr: usize) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        if addr != 0 {
            std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
                addr as *const i8,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = addr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_at_least_128_bytes_and_aligned() {
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        let v = CachePadded::new(7u32);
        assert_eq!(*v, 7);
        assert_eq!(v.into_inner(), 7);
    }

    #[test]
    fn prefetch_is_safe_on_arbitrary_addresses() {
        prefetch_read(0);
        let x = 5u64;
        prefetch_read(&x as *const _ as usize);
    }

    #[test]
    fn sharded_counter_sums_across_threads() {
        let c = std::sync::Arc::new(ShardedCounter::new());
        c.add(crate::current_tid(), 3);
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    let t = crate::current_tid();
                    for _ in 0..100 {
                        c.add(t, 1);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        // Joins establish happens-before: the sum is exact here.
        assert_eq!(c.sum(), 403);
    }
}
