//! Process-wide thread slot registry.
//!
//! Every scheme instance keeps per-thread state in a fixed array of
//! [`MAX_THREADS`] slots. The registry hands each OS thread a slot index
//! ([`Tid`]) on first use and recycles it when the thread exits. Because the
//! per-slot state (retired lists, announcement caches) lives inside the
//! scheme instances, a recycled slot's new owner transparently inherits and
//! eventually drains its predecessor's retired lists — no orphan lists are
//! needed.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Maximum number of concurrently live threads that may use SMR schemes.
///
/// The paper's experiments use up to 192 threads; we provision 256. Exceeding
/// this panics with a clear message.
pub const MAX_THREADS: usize = 256;

/// A thread's slot index in every scheme instance's per-thread arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tid(pub(crate) usize);

impl Tid {
    /// The slot index, in `0..MAX_THREADS`.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

struct Registry {
    in_use: [AtomicBool; MAX_THREADS],
    /// One past the highest slot ever used: scans iterate only `0..hwm`.
    hwm: AtomicUsize,
    active: AtomicUsize,
}

#[allow(clippy::declare_interior_mutable_const)]
const FREE: AtomicBool = AtomicBool::new(false);

static REGISTRY: Registry = Registry {
    in_use: [FREE; MAX_THREADS],
    hwm: AtomicUsize::new(0),
    active: AtomicUsize::new(0),
};

impl Registry {
    fn acquire_slot(&self) -> usize {
        for i in 0..MAX_THREADS {
            // Ordering: Relaxed pre-check — a cheap filter; the CAS below is
            // the authoritative claim.
            if !self.in_use[i].load(Ordering::Relaxed)
                && self.in_use[i]
                    // Ordering: AcqRel on success — Acquire synchronizes with
                    // the releasing thread's Release store so the new owner
                    // sees the predecessor's per-slot scheme state (retired
                    // lists it will inherit and drain); Release publishes the
                    // claim. Relaxed on failure: a lost race carries no data.
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                // Ordering: Release (fetch_max) — the high-water mark must be
                // visible no later than any announcement this thread makes
                // through its new slot. Scanners read the mark after their
                // own SeqCst fence and iterate `0..hwm`; a momentarily stale
                // mark can only hide a thread whose announcement the scanner
                // also cannot see yet, which the engines' fence pairing
                // already treats as "entered after the scan" (safe).
                self.hwm.fetch_max(i + 1, Ordering::Release);
                // Ordering: Relaxed — `active` is a diagnostic gauge; no
                // reader derives protection from it.
                self.active.fetch_add(1, Ordering::Relaxed);
                return i;
            }
        }
        panic!("more than MAX_THREADS ({MAX_THREADS}) concurrent threads are using SMR schemes");
    }

    fn release_slot(&self, i: usize) {
        // Ordering: Relaxed — diagnostic gauge, see `acquire_slot`.
        self.active.fetch_sub(1, Ordering::Relaxed);
        // Ordering: Release — publishes everything this thread did through
        // the slot (its scheme-local state) to the next owner, whose
        // claiming CAS Acquires it.
        self.in_use[i].store(false, Ordering::Release);
    }
}

/// A thread-exit callback; receives the unregistering thread's [`Tid`].
type ExitCallback = Box<dyn FnMut(Tid)>;

struct SlotGuard {
    index: usize,
    /// Callbacks run (in registration order) when this thread unregisters,
    /// *before* the slot is recycled — consumers use them to flush
    /// thread-local deferred state that would otherwise be stranded. Stored
    /// inside the guard so they run exactly at slot release, independent of
    /// the platform's TLS destructor ordering.
    exit_callbacks: RefCell<Vec<ExitCallback>>,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        let t = Tid(self.index);
        // Take the list first so the borrow is released while callbacks
        // run. Re-registration during the drain is impossible:
        // `on_thread_exit` refuses once this destructor has started.
        let mut cbs = std::mem::take(&mut *self.exit_callbacks.borrow_mut());
        for cb in cbs.iter_mut() {
            cb(t);
        }
        // `CACHED` is const-initialized and has no destructor, so
        // `current_tid()` stays answerable from inside the callbacks.
        REGISTRY.release_slot(self.index);
    }
}

thread_local! {
    static SLOT: SlotGuard = SlotGuard {
        index: REGISTRY.acquire_slot(),
        exit_callbacks: RefCell::new(Vec::new()),
    };
    /// Cached index so the hot path is a plain thread-local read.
    static CACHED: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Registers a callback to run when the **current thread** releases its SMR
/// slot (normally at thread exit; for the main thread, at process teardown
/// if TLS destructors run at all). The callback receives the thread's [`Tid`]
/// and runs before the slot becomes reusable by other threads.
///
/// Returns `false` — without registering — when the thread is already
/// unregistering (the callback drain is in progress or finished); the
/// caller must then perform its teardown work synchronously instead of
/// deferring it. Callbacks may call [`current_tid`] and use scheme
/// instances, but must not spawn work on other threads.
pub fn on_thread_exit(f: Box<dyn FnMut(Tid)>) -> bool {
    SLOT.try_with(|s| s.exit_callbacks.borrow_mut().push(f))
        .is_ok()
}

/// Returns the calling thread's [`Tid`], registering the thread on first use.
///
/// # Panics
///
/// Panics if more than [`MAX_THREADS`] threads are concurrently registered,
/// or if called during thread teardown after the slot was already released.
#[inline]
pub fn current_tid() -> Tid {
    let cached = CACHED.with(|c| c.get());
    if cached != usize::MAX {
        return Tid(cached);
    }
    let idx = SLOT.with(|s| s.index);
    CACHED.with(|c| c.set(idx));
    Tid(idx)
}

/// Number of threads currently registered.
pub fn active_threads() -> usize {
    // Ordering: Relaxed — a monotone-in/monotone-out gauge read for
    // diagnostics only; no protection decision depends on it.
    REGISTRY.active.load(Ordering::Relaxed)
}

/// One past the highest slot index ever handed out — the bound scheme scans
/// iterate to, so scan cost tracks actual parallelism rather than
/// [`MAX_THREADS`].
pub fn registered_high_water_mark() -> usize {
    // Ordering: Relaxed — the mark is monotone, and every scan that uses it
    // as an iteration bound reads it *after* its own `fence(SeqCst)`. A
    // thread whose registration this read misses also has its announcement
    // invisible to this scan, which the engines' fence pairing already
    // classifies as "entered after the scan": such a thread observes the
    // unlinks that preceded the scan fence and cannot reach scanned-away
    // objects. (Registration is sequenced before any announcement through
    // the slot, so seeing the announcement implies seeing the mark.)
    REGISTRY.hwm.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tid_is_stable_within_a_thread() {
        let a = current_tid();
        let b = current_tid();
        assert_eq!(a, b);
        assert!(a.index() < MAX_THREADS);
    }

    #[test]
    fn distinct_threads_get_distinct_tids() {
        let mine = current_tid();
        let theirs = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(mine, theirs);
    }

    #[test]
    fn slots_are_recycled_after_exit() {
        // Run enough short-lived threads that slots must be reused.
        for _ in 0..(2 * MAX_THREADS) {
            std::thread::spawn(|| {
                let t = current_tid();
                assert!(t.index() < MAX_THREADS);
            })
            .join()
            .unwrap();
        }
        assert!(registered_high_water_mark() <= MAX_THREADS);
    }

    #[test]
    fn exit_callbacks_run_at_thread_unregister() {
        use std::sync::atomic::AtomicUsize as Count;
        use std::sync::Arc;
        let fired = Arc::new(Count::new(0));
        let seen_tid = Arc::new(Count::new(usize::MAX));
        let registered_tid = {
            let fired = Arc::clone(&fired);
            let seen_tid = Arc::clone(&seen_tid);
            std::thread::spawn(move || {
                let t = current_tid();
                let ok = on_thread_exit(Box::new(move |cb_t: Tid| {
                    fired.fetch_add(1, Ordering::SeqCst);
                    seen_tid.store(cb_t.index(), Ordering::SeqCst);
                    // The slot is still ours while the drain runs.
                    assert_eq!(current_tid(), cb_t);
                }));
                assert!(ok, "registration on a live thread succeeds");
                t.index()
            })
            .join()
            .unwrap()
        };
        assert_eq!(fired.load(Ordering::SeqCst), 1, "callback ran once");
        assert_eq!(seen_tid.load(Ordering::SeqCst), registered_tid);
    }

    #[test]
    fn hwm_covers_all_active_tids() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    let t = current_tid();
                    assert!(t.index() < registered_high_water_mark());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
