//! Process-wide thread slot registry.
//!
//! Every scheme instance keeps per-thread state in a fixed array of
//! [`MAX_THREADS`] slots. The registry hands each OS thread a slot index
//! ([`Tid`]) on first use and recycles it when the thread exits. Because the
//! per-slot state (retired lists, announcement caches) lives inside the
//! scheme instances, a recycled slot's new owner transparently inherits and
//! eventually drains its predecessor's retired lists — no orphan lists are
//! needed.

use std::cell::{Cell, RefCell};
use std::sync::Mutex;

use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
// The registry is process-global infrastructure shared across model-checker
// iterations: every atomic access below runs under `exempt` so slot
// bookkeeping never enters the model (and never leaks per-iteration state).
use crate::sync::exempt;

use crate::util::CachePadded;

/// Maximum number of concurrently live threads that may use SMR schemes.
///
/// The paper's experiments use up to 192 threads; we provision 256. Exceeding
/// this panics with a clear message.
pub const MAX_THREADS: usize = 256;

/// A thread's slot index in every scheme instance's per-thread arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tid(pub(crate) usize);

impl Tid {
    /// The slot index, in `0..MAX_THREADS`.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

struct Registry {
    in_use: [AtomicBool; MAX_THREADS],
    /// One past the highest slot ever used: scans iterate only `0..hwm`.
    hwm: AtomicUsize,
    active: AtomicUsize,
}

#[allow(clippy::declare_interior_mutable_const)]
const FREE: AtomicBool = AtomicBool::new(false);

static REGISTRY: Registry = Registry {
    in_use: [FREE; MAX_THREADS],
    hwm: AtomicUsize::new(0),
    active: AtomicUsize::new(0),
};

#[allow(clippy::declare_interior_mutable_const)]
const BEAT_ZERO: CachePadded<AtomicU64> = CachePadded::new(AtomicU64::new(0));

/// Per-slot liveness heartbeats, bumped by the engines at every outermost
/// section boundary and by slot acquire/release. Padded: each slot's counter
/// is written by exactly one thread on its section fast path, so sharing a
/// cache line across slots would make unrelated threads bounce it.
static HEARTBEATS: [CachePadded<AtomicU64>; MAX_THREADS] = [BEAT_ZERO; MAX_THREADS];

#[allow(clippy::declare_interior_mutable_const)]
const NOT_ABANDONED: AtomicBool = AtomicBool::new(false);

/// Set for a slot whose owner declared (via [`abandon_current_slot`]) that it
/// is about to die without unregistering — the simulated-`SIGKILL` ground
/// truth the reaper's heartbeat heuristic is validated against.
static ABANDONED: [AtomicBool; MAX_THREADS] = [NOT_ABANDONED; MAX_THREADS];

/// A dead-slot reaper registered by a consumer (the `cdrc` domain registers
/// one per domain). Invoked with the orphaned [`Tid`] during
/// [`reclaim_orphaned_slot`]; returns `false` when the consumer is gone and
/// the reaper should be pruned.
type OrphanReaper = Box<dyn Fn(Tid) -> bool + Send + Sync>;

static ORPHAN_REAPERS: Mutex<Vec<OrphanReaper>> = Mutex::new(Vec::new());

impl Registry {
    fn acquire_slot(&self) -> usize {
        exempt(|| self.acquire_slot_inner())
    }

    fn acquire_slot_inner(&self) -> usize {
        for i in 0..MAX_THREADS {
            // Ordering: Relaxed pre-check — a cheap filter; the CAS below is
            // the authoritative claim.
            if !self.in_use[i].load(Ordering::Relaxed)
                && self.in_use[i]
                    // Ordering: AcqRel on success — Acquire synchronizes with
                    // the releasing thread's Release store so the new owner
                    // sees the predecessor's per-slot scheme state (retired
                    // lists it will inherit and drain); Release publishes the
                    // claim. Relaxed on failure: a lost race carries no data.
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                // Ordering: Release (fetch_max) — the high-water mark must be
                // visible no later than any announcement this thread makes
                // through its new slot. Scanners read the mark after their
                // own SeqCst fence and iterate `0..hwm`; a momentarily stale
                // mark can only hide a thread whose announcement the scanner
                // also cannot see yet, which the engines' fence pairing
                // already treats as "entered after the scan" (safe).
                self.hwm.fetch_max(i + 1, Ordering::Release);
                // Ordering: Relaxed — `active` is a diagnostic gauge; no
                // reader derives protection from it.
                self.active.fetch_add(1, Ordering::Relaxed);
                // Fresh owner: advance the liveness heartbeat so an
                // `OrphanWatch` does not inherit the predecessor's
                // stagnation count for this slot.
                beat(Tid(i));
                return i;
            }
        }
        panic!("more than MAX_THREADS ({MAX_THREADS}) concurrent threads are using SMR schemes");
    }

    fn release_slot(&self, i: usize) {
        exempt(|| {
            // Ordering: Relaxed — diagnostic gauge, see `acquire_slot`.
            self.active.fetch_sub(1, Ordering::Relaxed);
            // Ordering: Release — publishes everything this thread did through
            // the slot (its scheme-local state) to the next owner, whose
            // claiming CAS Acquires it.
            self.in_use[i].store(false, Ordering::Release);
        });
    }
}

/// Bumps slot `t`'s liveness heartbeat. Engines call this at outermost
/// section boundaries; the orphan detector ([`OrphanWatch`]) flags slots
/// whose beat stops advancing.
#[inline]
pub(crate) fn beat(t: Tid) {
    exempt(|| {
        let h = &HEARTBEATS[t.index()];
        // Ordering: Relaxed — single-writer diagnostic counter on its own
        // cache line; no protection decision reads it, only the stall
        // heuristic.
        h.store(h.load(Ordering::Relaxed).wrapping_add(1), Ordering::Relaxed);
    });
}

/// Reads slot `t`'s liveness heartbeat (see [`OrphanWatch`]).
pub fn heartbeat_of(t: Tid) -> u64 {
    exempt(|| HEARTBEATS[t.index()].load(Ordering::Relaxed))
}

/// Whether slot `t` is currently claimed by some thread (live or dead).
pub fn slot_in_use(t: Tid) -> bool {
    exempt(|| REGISTRY.in_use[t.index()].load(Ordering::Acquire))
}

/// Whether slot `t`'s owner declared via [`abandon_current_slot`] that it
/// died without unregistering.
pub fn slot_abandoned(t: Tid) -> bool {
    // Ordering: Acquire — pairs with the Release store in
    // `abandon_current_slot`: observing the flag also makes every write the
    // dead thread performed through its scheme slots visible, which is what
    // lets a reaper touch that state without a data race.
    exempt(|| ABANDONED[t.index()].load(Ordering::Acquire))
}

/// A thread-exit callback; receives the unregistering thread's [`Tid`].
type ExitCallback = Box<dyn FnMut(Tid)>;

struct SlotGuard {
    index: usize,
    /// Callbacks run (in registration order) when this thread unregisters,
    /// *before* the slot is recycled — consumers use them to flush
    /// thread-local deferred state that would otherwise be stranded. Stored
    /// inside the guard so they run exactly at slot release, independent of
    /// the platform's TLS destructor ordering.
    exit_callbacks: RefCell<Vec<ExitCallback>>,
    /// When set (by [`abandon_current_slot`]), the drop skips both the
    /// callback drain and the slot release — the thread "dies" the way a
    /// `SIGKILL`'d one would, leaving its slot claimed and its announcements
    /// published until a reaper recovers them.
    abandoned: Cell<bool>,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        if self.abandoned.get() {
            return;
        }
        let t = Tid(self.index);
        // Take the list first so the borrow is released while callbacks
        // run. Re-registration during the drain is impossible:
        // `on_thread_exit` refuses once this destructor has started.
        let mut cbs = std::mem::take(&mut *self.exit_callbacks.borrow_mut());
        for cb in cbs.iter_mut() {
            cb(t);
        }
        // Leak check + shadow reset before the slot becomes reusable. Runs
        // from a TLS destructor, so leaks are logged rather than panicked.
        crate::sanitize::on_thread_unregister(t);
        // `CACHED` is const-initialized and has no destructor, so
        // `current_tid()` stays answerable from inside the callbacks.
        REGISTRY.release_slot(self.index);
    }
}

thread_local! {
    static SLOT: SlotGuard = SlotGuard {
        index: REGISTRY.acquire_slot(),
        exit_callbacks: RefCell::new(Vec::new()),
        abandoned: Cell::new(false),
    };
    /// Cached index so the hot path is a plain thread-local read.
    static CACHED: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Simulates this thread dying without unregistering (fault injection for
/// [`FaultKind::DeadThreadInSection`](crate::fault::FaultKind) and
/// [`FaultKind::DropMidBatch`](crate::fault::FaultKind)): the thread's
/// [`Tid`] is marked abandoned, its exit callbacks are suppressed, and its
/// slot stays claimed after the thread exits — exactly the wreckage a killed
/// thread leaves. Returns the abandoned [`Tid`].
///
/// After calling this the thread must not touch any SMR state again; the
/// slot (including any open announcements and deferred batches) becomes the
/// property of whoever calls [`reclaim_orphaned_slot`] once the thread has
/// actually terminated.
pub fn abandon_current_slot() -> Tid {
    let t = current_tid();
    SLOT.with(|s| s.abandoned.set(true));
    // The slot's protections are now deliberate wreckage for a reaper to
    // recover — drop them from the sanitizer's shadow without leak reports.
    crate::sanitize::on_thread_abandon(t);
    // Ordering: Release — publishes everything this thread wrote through its
    // scheme slots (open announcements, half-filled batches, retired lists)
    // to the reaper, whose `slot_abandoned` Acquire load pairs with this.
    exempt(|| ABANDONED[t.index()].store(true, Ordering::Release));
    t
}

/// Registers a process-wide dead-slot reaper, called with the orphaned
/// [`Tid`] whenever [`reclaim_orphaned_slot`] recovers a slot. The reaper
/// returns `false` when its consumer no longer exists, which prunes it.
///
/// The `cdrc` domain registers one reaper per domain (holding a weak handle)
/// that force-closes the dead thread's sections on all three of its scheme
/// instances and drains the orphaned decrement batch.
pub fn register_orphan_reaper(f: Box<dyn Fn(Tid) -> bool + Send + Sync>) {
    ORPHAN_REAPERS.lock().unwrap().push(f);
}

/// Recovers the slot of a thread that died without unregistering: runs every
/// registered orphan reaper for `t` (force-closing announcements and
/// draining orphaned batches), then releases the slot for reuse. Returns
/// `false` (doing nothing) if the slot is not currently claimed.
///
/// Detection is the caller's burden — pair an [`OrphanWatch`] (no heartbeat
/// progress across K observations) with out-of-band knowledge that the owner
/// is dead, or use the [`abandon_current_slot`] ground truth in tests.
///
/// # Safety
///
/// The thread that owned slot `t` must have terminated (or be permanently
/// guaranteed never to touch SMR state again), and the caller must have a
/// happens-before edge to its death — joining the thread, or observing
/// [`slot_abandoned`]`(t)`. Reclaiming a slot whose owner is merely *slow*
/// is unsound: the owner would keep using per-slot state concurrently with
/// the reapers and with the slot's next owner. The calling thread must be
/// registered and must not be `t` itself.
pub unsafe fn reclaim_orphaned_slot(t: Tid) -> bool {
    assert_ne!(t, current_tid(), "a thread cannot reap its own slot");
    if !slot_in_use(t) {
        return false;
    }
    let mut reapers = ORPHAN_REAPERS.lock().unwrap();
    reapers.retain(|reap| reap(t));
    drop(reapers);
    // The dead slot's sections and tokens were force-closed by the reapers;
    // clear its shadow so the next owner does not inherit phantom state.
    crate::sanitize::on_slot_reclaimed(t);
    // Ordering: Release — the reapers' recovery writes above happen-before
    // any thread that observes the slot un-abandoned and claims it.
    exempt(|| ABANDONED[t.index()].store(false, Ordering::Release));
    beat(t);
    REGISTRY.release_slot(t.index());
    true
}

/// Heartbeat-stagnation detector for orphaned slots.
///
/// Call [`observe`](OrphanWatch::observe) periodically (e.g. once per scan
/// interval); a claimed slot whose heartbeat has not advanced across `k`
/// consecutive observations is reported as a suspect. Suspicion is a
/// heuristic, not proof: a live-but-idle thread (registered, doing no SMR
/// work) and a reader stalled inside a section look identical to a dead
/// thread. Reaping a suspect therefore still requires the out-of-band
/// certainty of death documented on [`reclaim_orphaned_slot`].
#[derive(Debug)]
pub struct OrphanWatch {
    last: [u64; MAX_THREADS],
    stagnant: [u32; MAX_THREADS],
    k: u32,
}

impl OrphanWatch {
    /// A watch flagging slots stagnant for `k` consecutive observations.
    pub fn new(k: u32) -> Self {
        OrphanWatch {
            last: [0; MAX_THREADS],
            stagnant: [0; MAX_THREADS],
            k: k.max(1),
        }
    }

    /// Samples every claimed slot's heartbeat and returns the current
    /// suspects (claimed, stagnant for ≥ `k` observations).
    pub fn observe(&mut self) -> Vec<Tid> {
        let mut suspects = Vec::new();
        let hwm = registered_high_water_mark();
        for i in 0..hwm {
            let t = Tid(i);
            if !slot_in_use(t) {
                self.stagnant[i] = 0;
                continue;
            }
            let now = heartbeat_of(t);
            if now == self.last[i] {
                self.stagnant[i] = self.stagnant[i].saturating_add(1);
            } else {
                self.last[i] = now;
                self.stagnant[i] = 0;
            }
            if self.stagnant[i] >= self.k {
                suspects.push(t);
            }
        }
        suspects
    }
}

/// Registers a callback to run when the **current thread** releases its SMR
/// slot (normally at thread exit; for the main thread, at process teardown
/// if TLS destructors run at all). The callback receives the thread's [`Tid`]
/// and runs before the slot becomes reusable by other threads.
///
/// Returns `false` — without registering — when the thread is already
/// unregistering (the callback drain is in progress or finished); the
/// caller must then perform its teardown work synchronously instead of
/// deferring it. Callbacks may call [`current_tid`] and use scheme
/// instances, but must not spawn work on other threads.
pub fn on_thread_exit(f: Box<dyn FnMut(Tid)>) -> bool {
    SLOT.try_with(|s| s.exit_callbacks.borrow_mut().push(f))
        .is_ok()
}

/// Returns the calling thread's [`Tid`], registering the thread on first use.
///
/// # Panics
///
/// Panics if more than [`MAX_THREADS`] threads are concurrently registered,
/// or if called during thread teardown after the slot was already released.
#[inline]
pub fn current_tid() -> Tid {
    let cached = CACHED.with(|c| c.get());
    if cached != usize::MAX {
        return Tid(cached);
    }
    let idx = SLOT.with(|s| s.index);
    CACHED.with(|c| c.set(idx));
    Tid(idx)
}

/// Non-panicking [`current_tid`]: answers `None` for an unregistered thread
/// or during thread teardown after the slot was released, instead of
/// registering or panicking. Diagnostic paths (the sanitizer's event trail)
/// use this so they stay callable from TLS destructors.
#[allow(dead_code)] // only read by the sanitize feature's real half
pub(crate) fn try_tid() -> Option<Tid> {
    let cached = CACHED.with(|c| c.get());
    if cached != usize::MAX {
        return Some(Tid(cached));
    }
    SLOT.try_with(|s| {
        CACHED.with(|c| c.set(s.index));
        Tid(s.index)
    })
    .ok()
}

/// Number of threads currently registered.
pub fn active_threads() -> usize {
    // Ordering: Relaxed — a monotone-in/monotone-out gauge read for
    // diagnostics only; no protection decision depends on it.
    exempt(|| REGISTRY.active.load(Ordering::Relaxed))
}

/// One past the highest slot index ever handed out — the bound scheme scans
/// iterate to, so scan cost tracks actual parallelism rather than
/// [`MAX_THREADS`].
pub fn registered_high_water_mark() -> usize {
    // Ordering: Relaxed — the mark is monotone, and every scan that uses it
    // as an iteration bound reads it *after* its own `fence(SeqCst)`. A
    // thread whose registration this read misses also has its announcement
    // invisible to this scan, which the engines' fence pairing already
    // classifies as "entered after the scan": such a thread observes the
    // unlinks that preceded the scan fence and cannot reach scanned-away
    // objects. (Registration is sequenced before any announcement through
    // the slot, so seeing the announcement implies seeing the mark.)
    exempt(|| REGISTRY.hwm.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tid_is_stable_within_a_thread() {
        let a = current_tid();
        let b = current_tid();
        assert_eq!(a, b);
        assert!(a.index() < MAX_THREADS);
    }

    #[test]
    fn distinct_threads_get_distinct_tids() {
        let mine = current_tid();
        let theirs = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(mine, theirs);
    }

    #[test]
    fn slots_are_recycled_after_exit() {
        // Run enough short-lived threads that slots must be reused.
        for _ in 0..(2 * MAX_THREADS) {
            std::thread::spawn(|| {
                let t = current_tid();
                assert!(t.index() < MAX_THREADS);
            })
            .join()
            .unwrap();
        }
        assert!(registered_high_water_mark() <= MAX_THREADS);
    }

    #[test]
    fn exit_callbacks_run_at_thread_unregister() {
        use crate::sync::atomic::AtomicUsize as Count;
        use std::sync::Arc;
        let fired = Arc::new(Count::new(0));
        let seen_tid = Arc::new(Count::new(usize::MAX));
        let registered_tid = {
            let fired = Arc::clone(&fired);
            let seen_tid = Arc::clone(&seen_tid);
            std::thread::spawn(move || {
                let t = current_tid();
                let ok = on_thread_exit(Box::new(move |cb_t: Tid| {
                    fired.fetch_add(1, Ordering::SeqCst);
                    seen_tid.store(cb_t.index(), Ordering::SeqCst);
                    // The slot is still ours while the drain runs.
                    assert_eq!(current_tid(), cb_t);
                }));
                assert!(ok, "registration on a live thread succeeds");
                t.index()
            })
            .join()
            .unwrap()
        };
        assert_eq!(fired.load(Ordering::SeqCst), 1, "callback ran once");
        assert_eq!(seen_tid.load(Ordering::SeqCst), registered_tid);
    }

    #[test]
    fn hwm_covers_all_active_tids() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    let t = current_tid();
                    assert!(t.index() < registered_high_water_mark());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
