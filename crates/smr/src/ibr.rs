//! Interval-based reclamation (2GEIBR) behind the generalized acquire-retire
//! interface — the paper's Figure 4.
//!
//! Every managed object carries a *birth epoch* assigned at allocation; a
//! retired object's lifetime is the interval `[birth, retire_epoch]`. A
//! thread announces the two-epoch interval `[begin, end]` spanning its
//! critical section: `begin` is fixed on entry, `end` grows as the thread
//! observes epoch advances during `acquire` (the "2GE" — two global epochs —
//! variant). A retired object may be ejected once its lifetime interval
//! intersects no announced interval.
//!
//! Compared to EBR, IBR bounds garbage by *interval intersection* instead of
//! a global minimum: a stalled thread only protects objects born before its
//! announced `end`, not everything retired since it went quiet.

use crate::registry::{beat, registered_high_water_mark, Tid, MAX_THREADS};
use crate::util::{announce_u64, CachePadded};
use crate::{AcquireRetire, ExitHook, GlobalEpoch, Retired, SmrConfig};

use crate::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, OnceLock};

const EMPTY: u64 = u64::MAX;

struct Local {
    /// Retired entries tagged with their retirement epoch (birth epochs ride
    /// inside [`Retired`]).
    retired: Vec<(Retired, u64)>,
    ready: VecDeque<Retired>,
    allocs: u64,
    depth: u32,
    /// Last epoch this thread observed (Fig. 4's `prev_epoch`).
    prev_epoch: u64,
    /// Retired-list length at which the next automatic scan fires; spaced a
    /// full `eject_threshold` past the survivors of the previous scan so a
    /// pinned list cannot degenerate to a scan per retire (see the EBR
    /// engine's `Local::next_scan`).
    next_scan: usize,
}

impl Local {
    const fn new() -> Self {
        Local {
            retired: Vec::new(),
            ready: VecDeque::new(),
            allocs: 0,
            depth: 0,
            prev_epoch: EMPTY,
            next_scan: 0,
        }
    }
}

struct Slot {
    /// Start of the announced interval (fixed at section entry).
    begin_ann: AtomicU64,
    /// End of the announced interval (grows during the section).
    end_ann: AtomicU64,
    local: UnsafeCell<Local>,
}

/// Interval-based reclamation (2GEIBR) instance.
///
/// # Examples
///
/// ```
/// use smr::{AcquireRetire, GlobalEpoch, Ibr, Retired};
/// use std::sync::atomic::AtomicUsize;
/// use std::sync::Arc;
///
/// let ibr = Ibr::new(Arc::new(GlobalEpoch::new()), Ibr::default_config());
/// let t = smr::current_tid();
/// let birth = ibr.birth_epoch(t); // tag an allocation
/// let shared = AtomicUsize::new(0x1000);
///
/// ibr.begin_critical_section(t);
/// let (value, _guard) = ibr.acquire(t, &shared);
/// assert_eq!(value, 0x1000);
/// ibr.end_critical_section(t);
/// ibr.retire(t, Retired::new(0x1000, birth));
/// ```
//
// Safety invariant: as for `Ebr` — `Slot::local` is only touched by the
// owning thread (or under `drain_all` exclusivity); announcements are shared.
pub struct Ibr {
    clock: Arc<GlobalEpoch>,
    cfg: SmrConfig,
    slots: Box<[CachePadded<Slot>]>,
    exit_hook: OnceLock<ExitHook>,
}

unsafe impl Send for Ibr {}
unsafe impl Sync for Ibr {}

impl Ibr {
    #[inline]
    fn local(&self, t: Tid) -> *mut Local {
        self.slots[t.index()].local.get()
    }

    fn scan(&self, local: &mut Local) {
        crate::fault::on_scan();
        // Ordering: fence(SeqCst) — pairs with the fence in
        // `begin_critical_section` (and the one in `acquire`'s extension
        // path): a reader whose announcement we miss fenced after us and
        // therefore observes every unlink preceding this scan.
        fence(Ordering::SeqCst);
        // Collect announced intervals. Read order matters: `begin` before
        // `end`. If the slot transitions between critical sections while we
        // read, pairing an older (smaller) `begin` with a newer (larger)
        // `end` yields a superset interval — conservative. Reading in the
        // opposite order could fabricate an empty interval and free
        // something the new section protects.
        let hwm = registered_high_water_mark();
        let mut intervals = Vec::with_capacity(hwm);
        for slot in self.slots.iter().take(hwm) {
            // Ordering: Acquire on `begin` — pins the read order: the
            // `end` load below cannot be hoisted above it (see the comment
            // above on why that order is load-bearing). Visibility of the
            // announcements themselves comes from the fence pairing.
            let lo = slot.begin_ann.load(Ordering::Acquire);
            // Ordering: Relaxed — ordered after the Acquire load above. A
            // stale (smaller) `end` is safe: the reader only trusts a
            // pointer read *after* publishing the extended `end` and
            // fencing (see `acquire`), so if we miss the extension, our
            // fence preceded the reader's and its re-read observes the
            // unlink instead of the retired object.
            let hi = slot.end_ann.load(Ordering::Relaxed);
            if lo != EMPTY {
                intervals.push((lo, hi.max(lo)));
            }
        }
        // Allocation-free on the retired list: retain survivors in place.
        let Local { retired, ready, .. } = local;
        retired.retain(|&(r, retire_epoch)| {
            // Lifetime [r.birth, retire_epoch] intersects any announcement
            // [lo, hi]? Then the entry must stay.
            let protected = intervals
                .iter()
                .any(|&(lo, hi)| lo <= retire_epoch && r.birth <= hi);
            if !protected {
                ready.push_back(r);
            }
            protected
        });
        local.next_scan = local.retired.len() + self.cfg.eject_threshold;
    }
}

unsafe impl AcquireRetire for Ibr {
    type Guard = ();

    fn new(clock: Arc<GlobalEpoch>, config: SmrConfig) -> Self {
        let slots = (0..MAX_THREADS)
            .map(|_| {
                CachePadded::new(Slot {
                    begin_ann: AtomicU64::new(EMPTY),
                    end_ann: AtomicU64::new(EMPTY),
                    local: UnsafeCell::new(Local::new()),
                })
            })
            .collect();
        Ibr {
            clock,
            cfg: config,
            slots,
            exit_hook: OnceLock::new(),
        }
    }

    fn default_config() -> SmrConfig {
        SmrConfig {
            epoch_freq: 40,
            ..SmrConfig::default()
        }
    }

    fn scheme_name() -> &'static str {
        "IBR"
    }

    #[inline]
    fn begin_critical_section(&self, t: Tid) {
        let local = unsafe { &mut *self.local(t) };
        local.depth += 1;
        if local.depth == 1 {
            let e = self.clock.load();
            local.prev_epoch = e;
            let slot = &self.slots[t.index()];
            // The interval announcement must be globally visible before any
            // protected read of the section; the single announcement fence
            // (in `announce_u64`, after *both* stores) is IBR's
            // per-operation cost and pairs with the fence at the head of
            // `scan` (miss our announcement ⇒ we fenced later ⇒ we see your
            // unlinks).
            // Ordering: Relaxed — ordered before any observer by the
            // announcement fence that follows.
            slot.begin_ann.store(e, Ordering::Relaxed);
            announce_u64(&slot.end_ann, e);
            beat(t);
            crate::fault::on_section_entry(t);
            // Sanitizer shadow: IBR protects regions but NOT arbitrary
            // section reads (PROTECTS_SECTION_READS = false) — coverage
            // comes from the per-acquire interval tokens below.
            crate::sanitize::section_enter(self as *const Self as usize, t, false);
        }
    }

    #[inline]
    fn end_critical_section(&self, t: Tid) {
        // Scoped: the hook below may re-enter `retire`/`eject`, which take
        // their own `&mut Local` — the borrow must be dead by then.
        let outermost = {
            let local = unsafe { &mut *self.local(t) };
            debug_assert!(local.depth > 0, "end_critical_section without begin");
            local.depth -= 1;
            if local.depth == 0 {
                local.prev_epoch = EMPTY;
                true
            } else {
                false
            }
        };
        if outermost {
            let slot = &self.slots[t.index()];
            // `begin` first: a scan that tears this store sequence sees
            // either [EMPTY, ..] (ignored) or [old_begin, old_end]
            // (conservative).
            // Ordering: Release on both — the section's protected reads are
            // sequenced before and cannot sink past the un-announcement,
            // and Release-Release store order preserves the `begin`-first
            // requirement above.
            slot.begin_ann.store(EMPTY, Ordering::Release);
            slot.end_ann.store(EMPTY, Ordering::Release);
            beat(t);
            // Releases every interval token the section's acquires minted.
            crate::sanitize::section_exit(self as *const Self as usize, t);
            // Retires issued by the hook are stamped with the post-section
            // epoch — a later lifetime upper bound only delays ejection.
            if let Some(h) = self.exit_hook.get() {
                h.invoke(t);
            }
        }
    }

    fn set_exit_hook(&self, hook: ExitHook) {
        let _ = self.exit_hook.set(hook);
    }

    #[inline]
    fn birth_epoch(&self, t: Tid) -> u64 {
        let local = unsafe { &mut *self.local(t) };
        // Count-and-reset instead of `% epoch_freq`: no integer division on
        // the per-allocation path.
        local.allocs += 1;
        if local.allocs >= self.cfg.epoch_freq {
            local.allocs = 0;
            self.clock.advance();
        }
        self.clock.load()
    }

    #[inline]
    fn acquire(&self, t: Tid, src: &AtomicUsize) -> (usize, Self::Guard) {
        let local = unsafe { &mut *self.local(t) };
        debug_assert!(local.depth > 0, "acquire outside critical section");
        // Fig. 4: re-read until the epoch is stable across the pointer load,
        // bumping the announced interval's upper end on each change. The
        // returned pointer was read in an epoch ≤ end_ann, so objects it
        // leads to (born ≤ that epoch) are covered by the interval.
        loop {
            // Ordering: Acquire — pairs with the Release publication of the
            // pointee so its contents are visible; reclamation protection
            // comes from the announced interval, not this load.
            let ptr = src.load(Ordering::Acquire);
            let cur = self.clock.load();
            if local.prev_epoch == cur {
                // The announced interval now covers the pointee until the
                // section ends — mint a matching sanitizer token.
                crate::sanitize::on_protect(
                    self as *const Self as usize,
                    t,
                    ptr,
                    crate::sanitize::TokenLife::UntilSectionExit,
                    true,
                );
                return (ptr, ());
            }
            local.prev_epoch = cur;
            // The widened interval must be visible before the re-read above
            // can be trusted (announce-then-revalidate): `announce_u64`
            // fences after the store; pairs with `scan`'s fence. Epoch
            // changes are rare (every `epoch_freq` allocations), so this
            // fence is off the common path.
            announce_u64(&self.slots[t.index()].end_ann, cur);
        }
    }

    #[inline]
    fn try_acquire(&self, t: Tid, src: &AtomicUsize) -> Option<(usize, Self::Guard)> {
        Some(self.acquire(t, src))
    }

    #[inline]
    fn release(&self, _t: Tid, _guard: Self::Guard) {}

    fn retire(&self, t: Tid, r: Retired) {
        let local = unsafe { &mut *self.local(t) };
        local.retired.push((r, self.clock.load()));
        // Threshold-spaced scans: see `Local::next_scan`.
        if local.retired.len() >= self.cfg.eject_threshold.max(local.next_scan) {
            self.scan(local);
        }
        // Escape hatch: interval tightening. IBR's garbage under a stalled
        // reader is structurally bounded — only objects born at or before
        // the stalled interval's `end` are pinned — so over the watermark we
        // advance the clock immediately: subsequently allocated objects are
        // born strictly after every already-announced `end` and their
        // retirement can never be pinned by the staller, then rescan to
        // shed whatever the tightened bound released.
        if let Some(cap) = self.cfg.max_garbage {
            if local.retired.len() >= cap {
                self.clock.advance();
                self.scan(local);
            }
        }
    }

    #[inline]
    fn eject(&self, t: Tid) -> Option<Retired> {
        let local = unsafe { &mut *self.local(t) };
        local.ready.pop_front()
    }

    #[inline]
    fn has_ready(&self, t: Tid) -> bool {
        !unsafe { &*self.local(t) }.ready.is_empty()
    }

    fn quiescent(&self) -> bool {
        // Ordering: fence(SeqCst) — pairs as in `scan`: a section whose
        // interval we miss below fenced after us and revalidates against
        // live locations, none of which still name what the caller hands
        // back.
        fence(Ordering::SeqCst);
        self.slots
            .iter()
            .take(registered_high_water_mark())
            // Ordering: Relaxed — an empty `begin` is the whole check; the
            // fence pairing above carries the visibility argument.
            .all(|slot| slot.begin_ann.load(Ordering::Relaxed) == EMPTY)
    }

    fn flush(&self, t: Tid) {
        let local = unsafe { &mut *self.local(t) };
        self.scan(local);
    }

    unsafe fn drain_all(&self) -> Vec<Retired> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            let local = &mut *slot.local.get();
            out.extend(local.retired.drain(..).map(|(r, _)| r));
            out.extend(local.ready.drain(..));
        }
        out
    }

    unsafe fn reclaim_slot(&self, dead: Tid, into: Tid) {
        debug_assert_ne!(dead, into, "cannot reclaim a slot into itself");
        let (retired, ready) = {
            let dead_local = &mut *self.local(dead);
            dead_local.depth = 0;
            dead_local.allocs = 0;
            dead_local.prev_epoch = EMPTY;
            dead_local.next_scan = 0;
            (
                std::mem::take(&mut dead_local.retired),
                std::mem::take(&mut dead_local.ready),
            )
        };
        let slot = &self.slots[dead.index()];
        // `begin` first, as in `end_critical_section`: a torn read sees
        // either [EMPTY, ..] (ignored) or the old conservative interval.
        // Sound because the owner is dead: no post-fence reads of its
        // section can ever execute.
        // Ordering: Release on both — mirrors `end_critical_section`: the
        // retired-list takeover above must not sink below the
        // un-announcement a concurrent scan may act on.
        slot.begin_ann.store(EMPTY, Ordering::Release);
        slot.end_ann.store(EMPTY, Ordering::Release);
        let local = &mut *self.local(into);
        local.retired.extend(retired);
        local.ready.extend(ready);
        self.scan(local);
    }
}

impl fmt::Debug for Ibr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ibr")
            .field("epoch", &self.clock.load())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::current_tid;

    fn new_ibr() -> Ibr {
        Ibr::new(Arc::new(GlobalEpoch::new()), Ibr::default_config())
    }

    #[test]
    fn birth_epochs_are_current() {
        let clock = Arc::new(GlobalEpoch::new());
        let ibr = Ibr::new(Arc::clone(&clock), Ibr::default_config());
        let t = current_tid();
        assert_eq!(ibr.birth_epoch(t), 0);
        clock.advance();
        assert_eq!(ibr.birth_epoch(t), 1);
    }

    #[test]
    fn interval_disjoint_objects_eject_despite_active_reader() {
        // The defining IBR behaviour: a reader's announced interval does NOT
        // protect objects whose lifetime ended before the reader began.
        use std::sync::mpsc;
        let clock = Arc::new(GlobalEpoch::new());
        let ibr = Arc::new(Ibr::new(Arc::clone(&clock), Ibr::default_config()));
        let t = current_tid();

        // Object born and retired in epoch 0.
        let r_old = Retired::new(0x1000, ibr.birth_epoch(t));
        ibr.retire(t, r_old);
        clock.advance(); // epoch 1

        let (entered_tx, entered_rx) = mpsc::channel();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let reader = {
            let ibr = Arc::clone(&ibr);
            std::thread::spawn(move || {
                let rt = current_tid();
                ibr.begin_critical_section(rt); // interval [1, 1]
                entered_tx.send(()).unwrap();
                done_rx.recv().unwrap();
                ibr.end_critical_section(rt);
            })
        };
        entered_rx.recv().unwrap();

        // Old object: lifetime [0, 0], reader interval [1, 1]: disjoint.
        ibr.flush(t);
        assert_eq!(ibr.eject(t), Some(r_old), "disjoint interval must eject");

        // New object retired *during* the reader's section: lifetime [1, 1]
        // intersects [1, 1]: must stay.
        let r_new = Retired::new(0x2000, clock.load());
        ibr.retire(t, r_new);
        ibr.flush(t);
        assert_eq!(ibr.eject(t), None, "intersecting interval must block");

        done_tx.send(()).unwrap();
        reader.join().unwrap();
        ibr.flush(t);
        assert_eq!(ibr.eject(t), Some(r_new));
    }

    #[test]
    fn acquire_extends_interval_on_epoch_change() {
        let clock = Arc::new(GlobalEpoch::new());
        let ibr = Ibr::new(Arc::clone(&clock), Ibr::default_config());
        let t = current_tid();
        let src = AtomicUsize::new(0xabc0);
        ibr.begin_critical_section(t); // [0, 0]
        clock.advance();
        clock.advance();
        let (v, _) = ibr.acquire(t, &src);
        assert_eq!(v, 0xabc0);
        assert_eq!(ibr.slots[t.index()].end_ann.load(Ordering::SeqCst), 2);
        assert_eq!(ibr.slots[t.index()].begin_ann.load(Ordering::SeqCst), 0);
        ibr.end_critical_section(t);
    }

    #[test]
    fn multi_retire_multi_eject() {
        let ibr = new_ibr();
        let t = current_tid();
        let r = Retired::new(0x3000, 0);
        ibr.retire(t, r);
        ibr.retire(t, r);
        ibr.flush(t);
        assert_eq!(ibr.eject(t), Some(r));
        assert_eq!(ibr.eject(t), Some(r));
        assert_eq!(ibr.eject(t), None);
    }

    #[test]
    fn drain_all_recovers_everything() {
        let ibr = new_ibr();
        let t = current_tid();
        ibr.begin_critical_section(t);
        ibr.retire(t, Retired::new(0x4000, 0));
        ibr.end_critical_section(t);
        assert_eq!(unsafe { ibr.drain_all() }.len(), 1);
    }

    #[test]
    fn default_epoch_freq_is_paper_value() {
        assert_eq!(Ibr::default_config().epoch_freq, 40);
        assert_eq!(
            <crate::Ebr as AcquireRetire>::default_config().epoch_freq,
            10
        );
    }
}
