//! The `sync` facade: the single point where the suite chooses between
//! real `std::sync::atomic` and the vendored `interleave` model checker.
//!
//! Every atomic on a protocol path — the [`RcWord`](../cdrc) engine,
//! domain retire/scan, each scheme's announce/scan handshake, the
//! evaluation structures — imports from here instead of `std`. In normal
//! builds this module *is* `std::sync::atomic` (a `pub use`, zero cost);
//! under `--features model-check` it becomes the model-aware wrapper
//! types from `interleave`, so the `model_check` test suite can explore
//! every bounded interleaving of the protocol under C11
//! acquire/release semantics rather than whatever the host's (x86)
//! hardware happens to exhibit.
//!
//! CI greps deny direct `std::sync::atomic` imports everywhere outside
//! this module and the vendored shims (`scripts/ordering_lint.sh`), so
//! new protocol state cannot silently escape the checker.
//!
//! [`exempt`] suppresses modeling for infrastructure state that must not
//! enter the model: thread-slot registries, fault-injection checkpoints,
//! heartbeat gauges, and test bookkeeping. In normal builds it is an
//! identity function.

/// Real or model-aware atomics, selected by the `model-check` feature.
#[cfg(not(feature = "model-check"))]
pub use std::sync::atomic;

#[cfg(feature = "model-check")]
pub use interleave::sync::atomic;

/// Runs `f` outside the model: atomics accessed inside go straight to
/// the underlying `std` cells and create no schedule points. Identity in
/// normal builds. See the module docs for what belongs here.
#[cfg(not(feature = "model-check"))]
#[inline(always)]
pub fn exempt<R>(f: impl FnOnce() -> R) -> R {
    f()
}

#[cfg(feature = "model-check")]
pub use interleave::exempt;
