//! Manual safe-memory-reclamation (SMR) substrate with a *generalized
//! acquire-retire* interface.
//!
//! This crate implements the manual reclamation schemes that the CDRC paper
//! ("Turning Manual Concurrent Memory Reclamation into Automatic Reference
//! Counting", PLDI 2022) converts into automatic reference counting:
//!
//! * [`Ebr`] — epoch-based reclamation (protected-region; paper Fig. 3),
//! * [`Ibr`] — interval-based reclamation, specifically 2GEIBR (Fig. 4),
//! * [`Hp`] — hazard pointers in the acquire-retire formulation of Anderson
//!   et al., which permits a pointer to be retired multiple times
//!   (protected-pointer),
//! * [`Hyaline`] — Hyaline-1, a protected-region scheme in which retired
//!   batches carry reference counters decremented by departing operations.
//!
//! All four implement the [`AcquireRetire`] trait — the *generalized
//! acquire-retire interface* of the paper's Figure 2. The interface serves
//! two masters:
//!
//! 1. **Manual use**: a lock-free data structure calls
//!    [`retire`](AcquireRetire::retire) on unlinked nodes and frees whatever
//!    [`eject`](AcquireRetire::eject) hands back (a retire is a *delayed
//!    free*).
//! 2. **Automatic use**: the `cdrc` crate retires pointers whose deferred
//!    operation is a reference-count decrement (or a weak decrement, or a
//!    disposal), which is exactly how a manual scheme becomes an automatic
//!    one.
//!
//! Unlike classical formulations, [`eject`](AcquireRetire::eject) *returns*
//! the retired pointer rather than freeing it, and the same pointer may be
//! retired many times before being ejected as many times — the two features
//! §3.2 of the paper identifies as necessary for reference counting.
//!
//! # Threads
//!
//! Threads interact with scheme instances through a process-wide slot
//! registry: the first call to [`current_tid`] on a thread assigns it a
//! [`Tid`] (released, and later recycled, when the thread exits). Per-thread
//! scheme state is stored per *slot*, so a thread that inherits a recycled
//! slot simply continues draining its predecessor's retired lists.
//!
//! # Safety contract
//!
//! Implementations of [`AcquireRetire`] are `unsafe` to write: they promise
//! the linearizable acquire-retire specification (Definition 3.3 of the
//! paper) under *proper executions* (Definition 3.2): every acquire happens
//! inside a critical section, each guard is released at most once, a thread
//! holds at most one `acquire`-guard at a time, and a thread never exits
//! while inside a critical section or holding a guard.
//!
//! # Fault tolerance
//!
//! Improper executions — a reader stalled inside a section, a thread that
//! dies without unregistering — are injectable through [`fault`] and have a
//! measured, per-scheme story. Garbage under a stalled reader is bounded by
//! construction for [`Hp`] (hazard-slot count) and effectively for
//! [`Hyaline`] (departing-operation refcounts); [`Ebr`] and [`Ibr`] are
//! unbounded by construction, and [`SmrConfig::max_garbage`] arms a *soft*
//! watermark that throttles retire-side progress (EBR), tightens the clock
//! and scan cadence (IBR), or gates on an outstanding-garbage gauge
//! (Hyaline) to rate-limit growth while preserving liveness. A dead thread
//! is recovered by [`reclaim_orphaned_slot`] once its death is established
//! out-of-band (e.g. by joining it): registered orphan reapers force-close
//! the dead slot's announcements via
//! [`AcquireRetire::reclaim_slot`] and drain its orphaned state, and the
//! slot returns to the pool. [`abandon_current_slot`] simulates such a
//! death; [`OrphanWatch`] flags slots whose heartbeat stagnates. A dead
//! *idle* HP section pins nothing at all (hazard pointers protect
//! individual pointers, not regions — [`AcquireRetire::PROTECTS_REGIONS`]
//! is `false`), which is HP's fault-tolerance-by-construction story.
//!
//! # Reclamation sanitizer
//!
//! Under `--features sanitize`, the [`sanitize`] module arms a shadow-state
//! checker: every engine access (section entry/exit, acquire/release,
//! retire, and the `cdrc` layer's installs, decrements, disposals and
//! dereferences) is validated against a per-block lifecycle table and a
//! per-thread protection shadow, and violations — use-after-retire, double
//! retire, unprotected reads on schemes where
//! [`AcquireRetire::PROTECTS_SECTION_READS`] is `false`, section/hazard
//! leaks — panic at the offending call site with the block's event trail.
//! In normal builds every hook is an empty `#[inline(always)]` function and
//! the layer costs nothing.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ebr;
pub mod fault;
pub mod hp;
pub mod hyaline;
pub mod ibr;
mod registry;
pub mod sanitize;
pub mod sync;
pub mod util;

pub use ebr::Ebr;
pub use hp::Hp;
pub use hyaline::Hyaline;
pub use ibr::Ibr;
pub use registry::{
    abandon_current_slot, active_threads, current_tid, heartbeat_of, on_thread_exit,
    reclaim_orphaned_slot, register_orphan_reaper, registered_high_water_mark, slot_abandoned,
    slot_in_use, OrphanWatch, Tid, MAX_THREADS,
};

use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::fmt::Debug;
use std::sync::Arc;

/// Rounds of scan-then-sleep the [`SmrConfig::max_garbage`] backpressure
/// loop runs before giving up. Bounded so an over-watermark `retire` slows
/// to a crawl but never blocks forever (the watermark is a *soft* cap:
/// liveness is preserved even when the stalled reader never wakes).
pub(crate) const THROTTLE_ROUNDS: u32 = 20;

/// Sleep per backpressure round (see [`THROTTLE_ROUNDS`]).
pub(crate) const THROTTLE_SLEEP: std::time::Duration = std::time::Duration::from_micros(100);

/// Low bits of a pointer word reserved for data-structure tags (marks).
///
/// Schemes mask these off before announcing or comparing pointers, so a
/// marked pointer and its unmarked form protect the same object. Control
/// blocks and nodes must therefore be aligned to at least 8 bytes (any
/// `Box`-allocated struct with a word-sized field is).
pub const TAG_MASK: usize = 0b111;

/// Strips [`TAG_MASK`] bits from a pointer word.
#[inline]
pub fn untagged(word: usize) -> usize {
    word & !TAG_MASK
}

/// A type-erased retired pointer: the address of the object (sans tag bits)
/// plus the birth-epoch metadata that interval-based schemes tagged it with
/// at allocation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retired {
    /// Untagged address of the retired object.
    pub addr: usize,
    /// Birth epoch recorded by [`AcquireRetire::birth_epoch`] at allocation.
    pub birth: u64,
}

impl Retired {
    /// Creates a retired record for `addr` born at `birth`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `addr` carries tag bits or is null —
    /// retiring a tagged or null pointer is always a caller bug.
    #[inline]
    pub fn new(addr: usize, birth: u64) -> Self {
        debug_assert!(addr != 0, "cannot retire a null pointer");
        debug_assert_eq!(addr & TAG_MASK, 0, "cannot retire a tagged pointer");
        Retired { addr, birth }
    }
}

/// The shared epoch clock. One clock may back several [`AcquireRetire`]
/// instances (the `cdrc` domain shares a clock between its strong, weak and
/// dispose instances so that birth epochs are comparable across them).
#[derive(Debug, Default)]
pub struct GlobalEpoch {
    epoch: AtomicU64,
}

impl GlobalEpoch {
    /// Creates a clock at epoch zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the current epoch.
    #[inline]
    pub fn load(&self) -> u64 {
        // SeqCst — deliberately NOT relaxed. Retire paths stamp entries
        // with this value *after* performing the unlinking swap/CAS, and
        // the epoch-based eject rules (`epoch < min_ann`, interval
        // intersection) are only sound if that stamp cannot be ordered
        // before the unlink: an under-stamped retire looks older than a
        // concurrent reader's announcement and ejects while the reader —
        // whose stale traversal may still reach the node — is active. The
        // SeqCst total order over {unlink RMW, this load, the readers'
        // entry fences} forbids exactly that inversion (see the unlink
        // sites in `cdrc::strong`/`cdrc::weak`). On x86-64 this load is a
        // plain `mov` either way. Checked: the `model_check` suite's
        // `epoch_clock_acquire_load_is_unsound` demonstrates a
        // use-after-free interleaving when this load is weakened to
        // Acquire — it must participate in the SC order, not merely
        // synchronize with `advance`.
        self.epoch.load(Ordering::SeqCst)
    }

    /// Advances the epoch by one.
    #[inline]
    pub fn advance(&self) {
        // Ordering: AcqRel (relaxed from the original SeqCst, PR 9) — the
        // clock is a monotone counter: an RMW always reads the latest
        // value in the modification order, so increments never collide,
        // and the soundness argument above needs only the *load* sites
        // (retire stamping) and the section-entry fences in the SC order;
        // the advance itself just has to publish (Release) the value the
        // advancing thread built on and to extend the release sequence
        // readers acquire through. Checked: the `model_check` suite
        // explores all epoch-clock interleavings with this ordering and
        // finds no under-stamped retire; a locked RMW on x86-64 compiles
        // identically at any ordering (see BENCH_hot_path.json).
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }
}

/// Tuning knobs for a scheme instance. Obtain a scheme's preferred defaults
/// from [`AcquireRetire::default_config`] and adjust from there.
#[derive(Debug, Clone)]
pub struct SmrConfig {
    /// Advance the global epoch every `epoch_freq` allocations (per thread).
    /// The paper tunes this to 10 for EBR and 40 for IBR (§5.1).
    pub epoch_freq: u64,
    /// Scan the retired list for ejectable entries once it holds this many
    /// items (protected-region schemes and the floor for HP).
    pub eject_threshold: usize,
    /// Announcement slots per thread available to `try_acquire` (HP only).
    /// One extra reserved slot makes `acquire` total.
    pub hp_slots: usize,
    /// Retired nodes per Hyaline batch.
    pub batch_size: usize,
    /// Prefetch the pointee cache line before announcing (HP only) — the
    /// paper's §5.1 optimization that hides the announcement fence latency.
    pub prefetch: bool,
    /// Robustness escape hatch: a per-thread unreclaimed-garbage watermark
    /// (`None` = off, the default). When a thread's deferred garbage on one
    /// instance exceeds the watermark and it is *not* inside a critical
    /// section, the scheme takes scheme-specific corrective action so a
    /// stalled reader elsewhere caps garbage instead of pinning it forever:
    ///
    /// * **EBR** — bounded retire-side backpressure: the retiring thread
    ///   scans and briefly sleeps for up to a fixed number of rounds, so
    ///   over-watermark garbage production slows to a crawl (a *soft* cap —
    ///   liveness is preserved by giving up after the round limit).
    /// * **IBR** — interval tightening: the retiring thread advances the
    ///   epoch clock immediately, so subsequently allocated objects are born
    ///   outside every currently announced interval and their retirement is
    ///   never pinned by an already-stalled reader (shrinks the constant in
    ///   IBR's structural bound).
    /// * **Hyaline** — the same bounded backpressure as EBR, keyed off an
    ///   instance-wide count of distributed-but-unclaimed retirements
    ///   (Hyaline-1's garbage under a stalled reader is otherwise unbounded:
    ///   every batch distributed during the stalled section holds a
    ///   reference from it).
    /// * **HP** — ignored: garbage is already bounded by the number of
    ///   published hazard slots, by construction.
    pub max_garbage: Option<usize>,
}

impl Default for SmrConfig {
    fn default() -> Self {
        SmrConfig {
            epoch_freq: 10,
            eject_threshold: 128,
            hp_slots: 16,
            batch_size: 32,
            prefetch: true,
            max_garbage: None,
        }
    }
}

/// A type-erased callback a consumer installs on a scheme instance with
/// [`AcquireRetire::set_exit_hook`], invoked each time a thread leaves its
/// *outermost* critical section on that instance (after the scheme's own
/// section-exit work has completed).
///
/// The automatic layer uses this to flush per-thread deferred-decrement
/// batches exactly once per section instead of once per retired pointer.
///
/// The hook is deliberately a bare `(data, fn)` pair rather than a boxed
/// closure: invoking it on the section-exit fast path must not touch the
/// allocator, and the pair stays `Copy`-cheap inside the engines.
pub struct ExitHook {
    data: *const (),
    call: unsafe fn(*const (), Tid),
}

// Safety: the `new` contract requires `data` to be valid for the installing
// instance's lifetime and `call` to tolerate invocation from any registered
// thread, which is exactly what crossing threads needs.
unsafe impl Send for ExitHook {}
unsafe impl Sync for ExitHook {}

impl ExitHook {
    /// Creates a hook that invokes `call(data, tid)` whenever a thread's
    /// outermost critical section on the installing instance ends.
    ///
    /// # Safety
    ///
    /// The caller promises that `data` remains valid for the entire lifetime
    /// of the scheme instance the hook is installed on, and that `call` is
    /// sound to invoke with `data` from any registered thread, re-entrantly
    /// with respect to the instance (the hook runs inside
    /// [`AcquireRetire::end_critical_section`], so it may call back into
    /// `retire`/`eject`/`flush` but must not recurse into section exit).
    pub unsafe fn new(data: *const (), call: unsafe fn(*const (), Tid)) -> Self {
        ExitHook { data, call }
    }

    /// Invokes the hook for thread `t`.
    ///
    /// Engines call this after their own outermost section-exit work, with
    /// no per-thread state borrowed — the hook may re-enter the instance.
    #[inline]
    pub fn invoke(&self, t: Tid) {
        // Safety: upheld by the `new` contract.
        unsafe { (self.call)(self.data, t) }
    }
}

impl Debug for ExitHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExitHook")
            .field("data", &self.data)
            .finish()
    }
}

/// The generalized acquire-retire interface (paper Fig. 2).
///
/// One value of an implementing type is one *instance* of the scheme: it has
/// its own announcements and retired lists, but may share a [`GlobalEpoch`]
/// with sibling instances.
///
/// # Safety
///
/// Implementations must satisfy the acquire-retire specification
/// (Definition 3.3): under proper use, an [`eject`](Self::eject) may return a
/// pointer only when, for some valid mapping of acquires and ejects to
/// retires, every acquire mapped to the same retire has been released; and a
/// pointer is ejected at most as many times as it was retired. Protected-
/// region implementations must ensure no pointer retired during an active
/// critical section is ejected until that section ends.
///
/// # Proper use (caller obligations)
///
/// * Every `acquire`/`try_acquire` happens inside a critical section of this
///   instance (for protected-pointer schemes critical sections are no-ops,
///   but the discipline is uniform).
/// * Guards are released exactly once, by the thread that acquired them.
/// * A thread holds at most one plain-`acquire` guard at a time.
/// * `src` locations passed to `acquire`/`try_acquire` must remain readable
///   for the duration of the call (e.g. they live in an object the caller
///   has protected, or on the caller's stack).
/// * Threads do not exit inside critical sections or while holding guards.
pub unsafe trait AcquireRetire: Send + Sync + 'static {
    /// Token witnessing the protection of one acquired pointer.
    type Guard: Copy + Debug + Send;

    /// Whether critical sections protect *all* reads (protected-region
    /// schemes: EBR, IBR, Hyaline). Protected-pointer schemes (HP) set this
    /// to `false`: only acquired pointers are protected, so unbounded
    /// traversals (range queries) cannot be protected manually.
    const PROTECTS_REGIONS: bool = true;

    /// Whether an *active critical section alone* protects every pointer
    /// read from a live location during the section — including objects
    /// born after the section began — without a per-read
    /// [`acquire`](Self::acquire). True for EBR (a retire issued while any
    /// section is active stamps an epoch ≥ that section's announcement, so
    /// it cannot eject until the section ends) and Hyaline (retired batches
    /// count every active section at retire time). **False for IBR**, even
    /// though it protects regions: interval protection only covers objects
    /// born ≤ the announced upper bound, and extending that bound is
    /// exactly what `acquire`'s announce-then-revalidate-against-the-live-
    /// word loop does — a value observed earlier (e.g. a CAS failure
    /// witness) may name an object born after the announced interval, which
    /// a concurrent scan is free to reclaim. False for HP (no region
    /// protection at all). Consumers with a previously-observed word must
    /// re-acquire from the live location unless this is true.
    const PROTECTS_SECTION_READS: bool = false;

    /// Creates an instance backed by `clock` with tuning `config`.
    fn new(clock: Arc<GlobalEpoch>, config: SmrConfig) -> Self;

    /// The scheme's preferred tuning (paper §5.1 values).
    fn default_config() -> SmrConfig {
        SmrConfig::default()
    }

    /// Short human-readable scheme name (for benchmark tables).
    fn scheme_name() -> &'static str;

    /// Enters a read critical section. Nestable: only the outermost call has
    /// effect.
    fn begin_critical_section(&self, t: Tid);

    /// Leaves the current read critical section (outermost call only).
    fn end_critical_section(&self, t: Tid);

    /// Installs an [`ExitHook`] invoked each time a thread leaves its
    /// outermost critical section on this instance, after the scheme's own
    /// exit work. At most one hook per instance; installation is one-shot
    /// and later calls are silently ignored. The default implementation
    /// discards the hook (valid: the hook is a pure optimization channel —
    /// consumers must stay correct if it never fires).
    ///
    /// Callers of `end_critical_section` must guarantee the instance stays
    /// reachable until the call returns (the hook may run consumer code);
    /// every proper-use caller already does, since it entered the section
    /// through a live reference it still holds.
    fn set_exit_hook(&self, hook: ExitHook) {
        let _ = hook;
    }

    /// Hook invoked once per allocation of a managed object: advances the
    /// epoch according to `epoch_freq` and returns the object's birth epoch
    /// (zero for schemes that do not use one). This is the paper's `alloc`
    /// customization point, needed by IBR-style schemes.
    fn birth_epoch(&self, t: Tid) -> u64;

    /// Reads the pointer word at `src` and protects it until the returned
    /// guard is released. Always succeeds; a thread may hold only one such
    /// guard at a time (use [`try_acquire`](Self::try_acquire) for more).
    fn acquire(&self, t: Tid, src: &AtomicUsize) -> (usize, Self::Guard);

    /// Reads the pointer word at `src` and tries to protect it. Returns
    /// `None` if the scheme is out of protection resources (e.g. hazard
    /// slots); protected-region schemes never fail.
    fn try_acquire(&self, t: Tid, src: &AtomicUsize) -> Option<(usize, Self::Guard)>;

    /// Releases the protection witnessed by `guard`.
    fn release(&self, t: Tid, guard: Self::Guard);

    /// Registers `r` for deferred hand-back. The same address may be retired
    /// any number of times; each retire will be matched by (at most) one
    /// eject. The deferred operation (free, decrement, dispose, …) is the
    /// caller's business — this crate never dereferences `r.addr`.
    fn retire(&self, t: Tid, r: Retired);

    /// Returns a previously retired pointer that is no longer protected, if
    /// one is ready. Callers apply the deferred operation themselves and
    /// must not call `eject` recursively from within it.
    fn eject(&self, t: Tid) -> Option<Retired>;

    /// Whether [`eject`](Self::eject) would currently return `Some` — a
    /// cheap thread-local peek that lets callers skip their eject loop's
    /// setup entirely on the (overwhelmingly common) empty case. The
    /// default conservatively answers `true`.
    #[inline]
    fn has_ready(&self, _t: Tid) -> bool {
        true
    }

    /// Whether *no* thread currently holds any protection on this instance:
    /// no critical section is active and (for hazard-pointer schemes) no
    /// hazard slot is published. When this returns `true`, a reference
    /// unlinked from a shared location *before* the call may be handed back
    /// immediately instead of routed through [`retire`](Self::retire) —
    /// every section that could have read the location while it still named
    /// the reference has ended, and a section that begins after the check
    /// revalidates against the live location, which no longer names it (the
    /// same fence pairing that makes a scan with no announcements eject
    /// everything). The check pays a scan-grade `SeqCst` fence plus one
    /// announcement sweep, so callers should amortize it over a batch.
    ///
    /// The default conservatively answers `false` (always safe: callers
    /// fall back to the retire path).
    fn quiescent(&self) -> bool {
        false
    }

    /// Forces a scan so that everything ejectable becomes ready. Costlier
    /// than waiting for the amortized threshold; meant for tests, teardown
    /// and benchmark phase changes.
    fn flush(&self, t: Tid);

    /// Takes *every* retired record out of the instance, protected or not.
    ///
    /// # Safety
    ///
    /// Callable only when no other thread is concurrently using this
    /// instance and no critical section is active (typically: after joining
    /// all worker threads, or from `Drop` of an owning domain).
    unsafe fn drain_all(&self) -> Vec<Retired>;

    /// Dead-thread recovery: force-closes slot `dead`'s protection on this
    /// instance (open critical-section announcement, published hazard
    /// slots, Hyaline handoff list) and migrates its deferred state
    /// (retired and ready lists, partial batches) into slot `into`'s lists
    /// so the caller's subsequent scans can eject it. After the call, slot
    /// `dead` holds no protection and no stranded garbage on this instance
    /// and is safe to hand to a new owner.
    ///
    /// # Safety
    ///
    /// * The thread that owned slot `dead` has terminated, and the caller
    ///   has a happens-before edge to its death (thread join, or an
    ///   `Acquire` observation of [`slot_abandoned`]`(dead)`) — the call
    ///   reads the dead thread's plain-written per-slot state.
    /// * `into` is the *calling* thread's own [`Tid`], and the caller is not
    ///   inside a critical section on this instance.
    /// * No other thread concurrently reclaims the same `dead` slot.
    unsafe fn reclaim_slot(&self, dead: Tid, into: Tid);
}

/// Convenience RAII guard for a critical section on one instance.
///
/// # Examples
///
/// ```
/// use smr::{AcquireRetire, CriticalSection, Ebr, GlobalEpoch};
/// use std::sync::Arc;
///
/// let ebr = Ebr::new(Arc::new(GlobalEpoch::new()), Ebr::default_config());
/// let t = smr::current_tid();
/// let _cs = CriticalSection::begin(&ebr, t);
/// // ... acquire and read protected pointers ...
/// ```
pub struct CriticalSection<'a, S: AcquireRetire> {
    scheme: &'a S,
    t: Tid,
}

impl<'a, S: AcquireRetire> CriticalSection<'a, S> {
    /// Begins a critical section ended when the guard drops.
    pub fn begin(scheme: &'a S, t: Tid) -> Self {
        scheme.begin_critical_section(t);
        CriticalSection { scheme, t }
    }
}

impl<S: AcquireRetire> Drop for CriticalSection<'_, S> {
    fn drop(&mut self) {
        self.scheme.end_critical_section(self.t);
    }
}

impl<S: AcquireRetire> Debug for CriticalSection<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CriticalSection")
            .field("tid", &self.t)
            .finish()
    }
}

/// An *owned* re-entrant critical-section guard over a shared scheme
/// instance — the amortized-section facility for guard-centric operation
/// APIs (§3.4: the per-section fence only pays off when amortized over many
/// operations).
///
/// Unlike [`CriticalSection`], which borrows the scheme, a `SectionGuard`
/// clones the instance's `Arc`, so a data structure can hand one out without
/// tying the guard's lifetime to a borrow of itself. Critical sections nest
/// (only the outermost `begin`/`end` pair touches the announcement), so
/// operations invoked under a held guard may still open their own inner
/// section safely — they just no longer pay the announcement fence.
///
/// Not `Send`: the guard captures the calling thread's [`Tid`] and the
/// matching `end_critical_section` must run on that same thread.
pub struct SectionGuard<S: AcquireRetire> {
    scheme: Arc<S>,
    t: Tid,
    _not_send: std::marker::PhantomData<*mut ()>,
}

impl<S: AcquireRetire> SectionGuard<S> {
    /// Enters a critical section on `scheme` for the current thread, held
    /// open until the guard drops.
    pub fn enter(scheme: Arc<S>) -> Self {
        let t = current_tid();
        scheme.begin_critical_section(t);
        SectionGuard {
            scheme,
            t,
            _not_send: std::marker::PhantomData,
        }
    }

    /// The thread id the section was opened under.
    #[inline]
    pub fn tid(&self) -> Tid {
        self.t
    }

    /// The scheme instance this guard's section protects.
    #[inline]
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// Whether this guard's section protects reads against `instance` —
    /// pointer equality on the `Arc`, i.e. both refer to the same scheme
    /// *instance*, which for the manual structures is their reclamation
    /// domain (each structure, or group sharing via `with_shared`, owns
    /// one). Structure operations taking a caller-provided guard assert
    /// this in debug builds: a guard over a *different* instance provides
    /// no protection at all, even when the scheme type matches — the
    /// reference-counted structures make the same identity check on their
    /// `cdrc::DomainRef` (`CsGuard::covers`).
    #[inline]
    pub fn covers(&self, instance: &Arc<S>) -> bool {
        Arc::ptr_eq(&self.scheme, instance)
    }
}

impl<S: AcquireRetire> Drop for SectionGuard<S> {
    fn drop(&mut self) {
        // Runs during panic unwinds too: ending the section is pure
        // announcement bookkeeping (plus any installed exit hook, which is
        // responsible for its own unwind safety), so a panicking operation
        // never strands an open section pinning everyone else's garbage.
        self.scheme.end_critical_section(self.t);
    }
}

impl<S: AcquireRetire> Debug for SectionGuard<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SectionGuard")
            .field("scheme", &S::scheme_name())
            .field("tid", &self.t)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untagged_strips_low_bits() {
        assert_eq!(untagged(0x1000 | 0b101), 0x1000);
        assert_eq!(untagged(0x1000), 0x1000);
        assert_eq!(untagged(0), 0);
    }

    #[test]
    fn global_epoch_monotone() {
        let e = GlobalEpoch::new();
        assert_eq!(e.load(), 0);
        e.advance();
        e.advance();
        assert_eq!(e.load(), 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "tagged")]
    fn retired_rejects_tagged() {
        let _ = Retired::new(0x1000 | 1, 0);
    }

    #[test]
    fn section_guard_nests_and_covers() {
        let ebr = Arc::new(Ebr::new(
            Arc::new(GlobalEpoch::new()),
            Ebr::default_config(),
        ));
        let other = Arc::new(Ebr::new(
            Arc::new(GlobalEpoch::new()),
            Ebr::default_config(),
        ));
        let t = current_tid();
        let outer = SectionGuard::enter(Arc::clone(&ebr));
        assert!(outer.covers(&ebr));
        assert!(!outer.covers(&other));
        assert_eq!(outer.tid(), t);
        {
            // Inner sections under a held guard are fine: begin/end nest.
            let inner = SectionGuard::enter(Arc::clone(&ebr));
            assert!(inner.covers(&ebr));
        }
        // Acquire still works under the (outer) section after inner exits.
        let src = crate::sync::atomic::AtomicUsize::new(0x2000);
        let (w, g) = outer.scheme().acquire(t, &src);
        assert_eq!(w, 0x2000);
        outer.scheme().release(t, g);
    }
}
