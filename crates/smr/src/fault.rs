//! Adversarial fault injection for the SMR engines.
//!
//! Robustness papers (Hyaline, Stamp-it, IBR) all measure the same failure
//! modes: a reader that stalls inside a critical section, a thread that dies
//! without unregistering, and a collector whose scans fall behind. This
//! module lets tests and benches *inject* those faults deterministically so
//! the repo can publish a measured garbage-bound table instead of an
//! asymptotic claim.
//!
//! A [`FaultPlan`] describes one fault scenario. [`arm`] installs it
//! process-wide and returns a [`FaultScope`] that disarms on drop. The four
//! engines call the two checkpoint hooks — [`on_section_entry`] at every
//! outermost section entry and [`on_scan`] at every scan/distribute head —
//! each of which is a single `#[inline]` relaxed load of an `AtomicBool`
//! plus a never-taken branch while disarmed, so the hot path pays nothing
//! measurable when no fault is armed.
//!
//! Faults that cannot be expressed as an engine-side delay (killing a
//! thread without unregistering, dying with a half-full decrement batch)
//! are realized through [`crate::abandon_current_slot`] by the victim
//! thread itself; the plan
//! still names them so harnesses can drive one scenario per plan.

use std::time::Duration;

use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
// Fault-injection state is process-global test infrastructure: every atomic
// access below runs under `exempt` so checkpoints add no schedule points
// (and no cross-iteration state) to model-checked scenarios.
use crate::sync::exempt;

use crate::registry::Tid;

/// Which adversarial scenario a [`FaultPlan`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// A designated victim thread goes to sleep *inside* a critical section
    /// (right after announcing) for the plan's `stall`, pinning whatever the
    /// scheme's protection rule pins for that long.
    StalledReader,
    /// A victim thread dies inside an open critical section without
    /// unregistering: its announcement stays published and its slot stays
    /// in use until [`reclaim_orphaned_slot`](crate::reclaim_orphaned_slot)
    /// recovers it.
    DeadThreadInSection,
    /// Like [`FaultKind::DeadThreadInSection`], but the victim dies with a
    /// half-full per-thread deferred-decrement batch: the `on_thread_exit`
    /// flush never runs, so recovery must also drain the orphaned batch.
    DropMidBatch,
    /// Every scan/distribute in every engine sleeps for the plan's
    /// `scan_delay` before doing its work — a slow collector.
    DelayScan,
}

/// A process-wide fault-injection plan. Build one with the constructors,
/// then [`arm`] it.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// The scenario.
    pub kind: FaultKind,
    /// How long a [`FaultKind::StalledReader`] victim sleeps inside its
    /// section.
    pub stall: Duration,
    /// How long every scan sleeps under [`FaultKind::DelayScan`].
    pub scan_delay: Duration,
}

impl FaultPlan {
    /// Stall the designated victim inside a section for `stall`.
    pub fn stalled_reader(stall: Duration) -> Self {
        FaultPlan {
            kind: FaultKind::StalledReader,
            stall,
            scan_delay: Duration::ZERO,
        }
    }

    /// Kill the victim inside an open section without unregistering.
    pub fn dead_thread_in_section() -> Self {
        FaultPlan {
            kind: FaultKind::DeadThreadInSection,
            stall: Duration::ZERO,
            scan_delay: Duration::ZERO,
        }
    }

    /// Kill the victim with a half-full deferred-decrement batch.
    pub fn drop_mid_batch() -> Self {
        FaultPlan {
            kind: FaultKind::DropMidBatch,
            stall: Duration::ZERO,
            scan_delay: Duration::ZERO,
        }
    }

    /// Delay every scan/distribute by `delay`.
    pub fn delay_scan(delay: Duration) -> Self {
        FaultPlan {
            kind: FaultKind::DelayScan,
            stall: Duration::ZERO,
            scan_delay: delay,
        }
    }
}

/// No victim designated.
const NO_VICTIM: usize = usize::MAX;

// The armed flag is the only word the hot paths read; everything else is
// consulted exclusively on the slow path behind it.
static ARMED: AtomicBool = AtomicBool::new(false);
static STALL_NS: AtomicU64 = AtomicU64::new(0);
static SCAN_DELAY_NS: AtomicU64 = AtomicU64::new(0);
static VICTIM: AtomicUsize = AtomicUsize::new(NO_VICTIM);
static STALLS_INJECTED: AtomicU64 = AtomicU64::new(0);
static SCANS_DELAYED: AtomicU64 = AtomicU64::new(0);

/// RAII handle for an armed [`FaultPlan`]; dropping it disarms injection.
#[derive(Debug)]
pub struct FaultScope(());

impl Drop for FaultScope {
    fn drop(&mut self) {
        disarm();
    }
}

/// Arms `plan` process-wide and returns a scope that disarms on drop.
///
/// Only one plan may be armed at a time (faults are process-global, like the
/// registry); arming while armed panics — serialize adversarial tests.
pub fn arm(plan: FaultPlan) -> FaultScope {
    exempt(|| {
        assert!(
            !ARMED.swap(true, Ordering::SeqCst),
            "a FaultPlan is already armed; adversarial scenarios must be serialized"
        );
        STALL_NS.store(plan.stall.as_nanos() as u64, Ordering::SeqCst);
        SCAN_DELAY_NS.store(plan.scan_delay.as_nanos() as u64, Ordering::SeqCst);
    });
    FaultScope(())
}

/// Disarms any armed plan and clears the victim designation.
pub fn disarm() {
    exempt(|| {
        STALL_NS.store(0, Ordering::SeqCst);
        SCAN_DELAY_NS.store(0, Ordering::SeqCst);
        VICTIM.store(NO_VICTIM, Ordering::SeqCst);
        ARMED.store(false, Ordering::SeqCst);
    });
}

/// Whether a plan is currently armed.
#[inline]
pub fn armed() -> bool {
    // Ordering: Relaxed — the checkpoint fast path. Arming strictly before
    // the victim starts running is the harness's job; engines only need an
    // eventually-visible flag.
    exempt(|| ARMED.load(Ordering::Relaxed))
}

/// Designates the calling thread as the stall victim. The next outermost
/// section entry on any engine by this thread sleeps for the armed plan's
/// `stall`, once.
pub fn designate_victim(t: Tid) {
    exempt(|| VICTIM.store(t.index(), Ordering::SeqCst));
}

/// Number of stalls injected since process start (test observability).
pub fn stalls_injected() -> u64 {
    // Ordering: Relaxed — monotonic test-observability counter.
    exempt(|| STALLS_INJECTED.load(Ordering::Relaxed))
}

/// Number of scans delayed since process start (test observability).
pub fn scans_delayed() -> u64 {
    // Ordering: Relaxed — monotonic test-observability counter.
    exempt(|| SCANS_DELAYED.load(Ordering::Relaxed))
}

/// Engine checkpoint: called by every engine after announcing an outermost
/// critical-section entry. While disarmed this is one relaxed load and a
/// never-taken branch.
#[inline]
pub fn on_section_entry(t: Tid) {
    if armed() {
        section_entry_slow(t);
    }
}

#[cold]
fn section_entry_slow(t: Tid) {
    // One-shot: claim the victim designation so nested sections and later
    // entries by the same thread do not re-stall.
    let ns = exempt(|| {
        if VICTIM.load(Ordering::SeqCst) == t.index()
            && VICTIM
                .compare_exchange(t.index(), NO_VICTIM, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        {
            let ns = STALL_NS.load(Ordering::SeqCst);
            if ns > 0 {
                // Ordering: Relaxed — test-observability counter.
                STALLS_INJECTED.fetch_add(1, Ordering::Relaxed);
            }
            ns
        } else {
            0
        }
    });
    if ns > 0 {
        std::thread::sleep(Duration::from_nanos(ns));
    }
}

/// Engine checkpoint: called at the head of every scan / distribute. While
/// disarmed this is one relaxed load and a never-taken branch.
#[inline]
pub fn on_scan() {
    if armed() {
        scan_slow();
    }
}

#[cold]
fn scan_slow() {
    let ns = exempt(|| {
        let ns = SCAN_DELAY_NS.load(Ordering::SeqCst);
        if ns > 0 {
            // Ordering: Relaxed — test-observability counter.
            SCANS_DELAYED.fetch_add(1, Ordering::Relaxed);
        }
        ns
    });
    if ns > 0 {
        std::thread::sleep(Duration::from_nanos(ns));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_checkpoints_are_noops() {
        let t = crate::current_tid();
        let before = stalls_injected();
        on_section_entry(t);
        on_scan();
        assert_eq!(stalls_injected(), before);
    }

    #[test]
    fn stall_is_one_shot_per_designation() {
        let t = crate::current_tid();
        let scope = arm(FaultPlan::stalled_reader(Duration::from_millis(5)));
        designate_victim(t);
        let before = stalls_injected();
        let started = std::time::Instant::now();
        on_section_entry(t);
        assert!(started.elapsed() >= Duration::from_millis(5));
        assert_eq!(stalls_injected(), before + 1);
        // Second entry without re-designation: no stall.
        on_section_entry(t);
        assert_eq!(stalls_injected(), before + 1);
        drop(scope);
        assert!(!armed());
    }
}
