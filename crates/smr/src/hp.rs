//! Hazard pointers in the *acquire-retire* formulation of Anderson et al. —
//! the protected-pointer scheme underlying the original CDRC, extended to
//! allow the same pointer to be retired (and hence ejected) multiple times.
//!
//! Each thread owns `hp_slots` announcement slots usable by
//! [`try_acquire`](crate::AcquireRetire::try_acquire) plus one *reserved*
//! slot that makes [`acquire`](crate::AcquireRetire::acquire) total (§3.2 of
//! the paper: "we reserve a special guard / announcement slot that cannot be
//! used by `try_acquire`"). Acquiring announces the pointer and re-reads the
//! source until stable; the store-load fence this requires on every read is
//! exactly the cost that makes protected-pointer schemes slower than
//! protected-region ones (§2).
//!
//! The multi-retire rule (§3.2): a scan counts how many times each address is
//! currently announced and keeps `min(#retired, #announced)` copies in the
//! retired list, ejecting the surplus. Critical sections are no-ops.

use crate::registry::{beat, registered_high_water_mark, Tid, MAX_THREADS};
use crate::util::{announce_usize, prefetch_read, CachePadded};
use crate::{untagged, AcquireRetire, ExitHook, GlobalEpoch, Retired, SmrConfig};

use crate::sync::atomic::{fence, AtomicUsize, Ordering};
use std::cell::UnsafeCell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Protection token: the index of the announcement slot holding the pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HpGuard {
    index: usize,
}

struct Local {
    /// Indices in `0..hp_slots` currently free for `try_acquire`.
    free: Vec<usize>,
    /// Whether the reserved slot (index `hp_slots`) is in use by `acquire`.
    reserved_busy: bool,
    retired: Vec<Retired>,
    ready: VecDeque<Retired>,
    depth: u32,
    /// Retired-list length at which the next automatic scan fires (spaced a
    /// full threshold past the previous scan's survivors, so a pinned list
    /// never degenerates to a scan per retire).
    next_scan: usize,
    /// Scratch multiset of current announcements, reused across scans so the
    /// scan path stops allocating once warm.
    announced: HashMap<usize, usize>,
    /// Scratch per-address kept-copy counts, reused likewise.
    kept_counts: HashMap<usize, usize>,
}

struct Slot {
    /// `hp_slots + 1` announcement words; untagged addresses, 0 = empty.
    anns: Box<[AtomicUsize]>,
    local: UnsafeCell<Local>,
}

/// Hazard-pointer acquire-retire instance.
///
/// # Examples
///
/// ```
/// use smr::{AcquireRetire, GlobalEpoch, Hp, Retired};
/// use std::sync::atomic::AtomicUsize;
/// use std::sync::Arc;
///
/// let hp = Hp::new(Arc::new(GlobalEpoch::new()), Hp::default_config());
/// let t = smr::current_tid();
/// let shared = AtomicUsize::new(0x1000);
///
/// hp.begin_critical_section(t); // no-op, uniform discipline
/// let (value, guard) = hp.try_acquire(t, &shared).expect("slots available");
/// assert_eq!(value, 0x1000);
/// hp.release(t, guard);
/// hp.end_critical_section(t);
/// ```
//
// Safety invariant: `Slot::local` is only accessed by the owning thread (or
// under `drain_all` exclusivity); `Slot::anns` is written by the owner and
// read by scanning threads.
pub struct Hp {
    cfg: SmrConfig,
    slots: Box<[CachePadded<Slot>]>,
    exit_hook: OnceLock<ExitHook>,
}

unsafe impl Send for Hp {}
unsafe impl Sync for Hp {}

impl Hp {
    #[inline]
    fn local(&self, t: Tid) -> *mut Local {
        self.slots[t.index()].local.get()
    }

    /// Announce-validate loop on slot `index`; returns the validated word.
    #[inline]
    fn protect(&self, t: Tid, index: usize, src: &AtomicUsize) -> usize {
        let ann = &self.slots[t.index()].anns[index];
        // Ordering: Acquire — pairs with the Release publication of the
        // pointee; this first read is only a candidate until validated.
        let mut v = src.load(Ordering::Acquire);
        loop {
            let a = untagged(v);
            if a == 0 {
                // Nothing to protect; clear any stale announcement so we do
                // not spuriously pin an unrelated object.
                // Ordering: Release — `protect` only ever runs on a slot
                // the free-list/reserved bookkeeping says is unheld, so any
                // value here is either already 0 (cleared by `release`) or
                // an unvalidated candidate from a previous loop iteration
                // that was never dereferenced; Release is belt-and-braces
                // (free on x86-64, a plain `mov`) so no prior access can
                // sink below the un-announcement even if a caller violates
                // the single-use guard discipline.
                ann.store(0, Ordering::Release);
                // Null candidate: the slot now protects nothing — drop any
                // stale sanitizer token held under this key.
                crate::sanitize::on_unprotect(self as *const Self as usize, t, index);
                return v;
            }
            if self.cfg.prefetch {
                // Start the pointee's cache line travelling before the
                // announcement fence stalls us (§5.1).
                prefetch_read(a);
            }
            // The hazard-publication point, HP's per-read cost (§2): the
            // announcement must be globally visible *before* the validating
            // re-read below — `announce_usize` stores and fences. Pairs
            // with the fence at the head of `scan`: a scanner that misses
            // this announcement fenced before it, so our re-read observes
            // that scanner's pre-fence unlinks and validation fails instead
            // of trusting a retired pointer (announce-then-revalidate, as
            // in oliver-giersch/reclaim).
            announce_usize(ann, a);
            // Ordering: Acquire — same publication pairing as the first
            // read; ordered after the announcement by the fence above.
            let v2 = src.load(Ordering::Acquire);
            if v2 == v {
                // Validated: the hazard slot covers `a` until `release`
                // clears it — mint the matching sanitizer token under this
                // slot's key (HP acquires are legal outside sections, so no
                // section requirement).
                crate::sanitize::on_protect(
                    self as *const Self as usize,
                    t,
                    v,
                    crate::sanitize::TokenLife::UntilRelease(index),
                    false,
                );
                return v;
            }
            v = v2;
        }
    }

    /// The classic amortization bound: scan when the retired list exceeds a
    /// multiple of the total number of announcement slots in use.
    fn scan_threshold(&self) -> usize {
        let capacity = registered_high_water_mark() * (self.cfg.hp_slots + 1);
        self.cfg.eject_threshold.max(2 * capacity)
    }

    fn scan(&self, local: &mut Local) {
        crate::fault::on_scan();
        // Ordering: fence(SeqCst) — pairs with the publication fence in
        // `protect`: any announcement we miss below was published after
        // this fence, so its owner's validating re-read sees our caller's
        // unlinks and rejects the pointer. See `protect`.
        fence(Ordering::SeqCst);
        // Count current announcements per address (a multiset: the same
        // address may be announced by several guards at once). The scratch
        // maps live in `Local` so a warm scan allocates nothing.
        let Local {
            announced,
            kept_counts,
            retired,
            ready,
            ..
        } = local;
        announced.clear();
        for slot in self.slots.iter().take(registered_high_water_mark()) {
            for ann in slot.anns.iter() {
                // Ordering: Relaxed — ordered by the fence pairing above; a
                // stale nonzero value only pins an object longer.
                let a = ann.load(Ordering::Relaxed);
                if a != 0 {
                    *announced.entry(a).or_insert(0) += 1;
                }
            }
        }
        // Keep at most `announced[addr]` copies of each retired address;
        // eject the surplus (§3.2's multi-retire accounting). Retained in
        // place: no rebuild allocation.
        kept_counts.clear();
        retired.retain(|r| {
            let budget = announced.get(&r.addr).copied().unwrap_or(0);
            let kept_so_far = kept_counts.entry(r.addr).or_insert(0);
            if *kept_so_far < budget {
                *kept_so_far += 1;
                true
            } else {
                ready.push_back(*r);
                false
            }
        });
        local.next_scan = local.retired.len() + self.scan_threshold();
    }
}

unsafe impl AcquireRetire for Hp {
    type Guard = HpGuard;

    const PROTECTS_REGIONS: bool = false;

    fn new(_clock: Arc<GlobalEpoch>, config: SmrConfig) -> Self {
        let k = config.hp_slots;
        let slots = (0..MAX_THREADS)
            .map(|_| {
                CachePadded::new(Slot {
                    anns: (0..=k).map(|_| AtomicUsize::new(0)).collect(),
                    local: UnsafeCell::new(Local {
                        free: (0..k).rev().collect(),
                        reserved_busy: false,
                        retired: Vec::new(),
                        ready: VecDeque::new(),
                        depth: 0,
                        next_scan: 0,
                        announced: HashMap::new(),
                        kept_counts: HashMap::new(),
                    }),
                })
            })
            .collect();
        Hp {
            cfg: config,
            slots,
            exit_hook: OnceLock::new(),
        }
    }

    fn scheme_name() -> &'static str {
        "HP"
    }

    #[inline]
    fn begin_critical_section(&self, t: Tid) {
        // Protected-pointer scheme: regions carry no protection, but we keep
        // the nesting count so misuse is caught in debug builds.
        let local = unsafe { &mut *self.local(t) };
        local.depth += 1;
        if local.depth == 1 {
            beat(t);
            crate::fault::on_section_entry(t);
            // Sanitizer shadow: HP sections protect nothing — only hazard
            // tokens (minted in `protect`) cover reads — but the open
            // section is still tracked for leak detection.
            crate::sanitize::section_enter(self as *const Self as usize, t, false);
        }
    }

    #[inline]
    fn end_critical_section(&self, t: Tid) {
        // Scoped: the hook below may re-enter `retire`/`eject`, which take
        // their own `&mut Local` — the borrow must be dead by then.
        let outermost = {
            let local = unsafe { &mut *self.local(t) };
            debug_assert!(local.depth > 0, "end_critical_section without begin");
            local.depth -= 1;
            local.depth == 0
        };
        if outermost {
            beat(t);
            crate::sanitize::section_exit(self as *const Self as usize, t);
            // Sections carry no protection here, but the depth count still
            // marks operation boundaries — the natural batch-flush point.
            // Hazard announcements are per-pointer, so hook-issued retires
            // need no extra care.
            if let Some(h) = self.exit_hook.get() {
                h.invoke(t);
            }
        }
    }

    fn set_exit_hook(&self, hook: ExitHook) {
        let _ = self.exit_hook.set(hook);
    }

    #[inline]
    fn birth_epoch(&self, _t: Tid) -> u64 {
        0
    }

    #[inline]
    fn acquire(&self, t: Tid, src: &AtomicUsize) -> (usize, Self::Guard) {
        let local = unsafe { &mut *self.local(t) };
        assert!(
            !local.reserved_busy,
            "acquire while a previous acquire is still active (Definition 3.2)"
        );
        local.reserved_busy = true;
        let index = self.cfg.hp_slots; // the reserved slot
        let v = self.protect(t, index, src);
        (v, HpGuard { index })
    }

    #[inline]
    fn try_acquire(&self, t: Tid, src: &AtomicUsize) -> Option<(usize, Self::Guard)> {
        let local = unsafe { &mut *self.local(t) };
        let index = local.free.pop()?;
        let v = self.protect(t, index, src);
        Some((v, HpGuard { index }))
    }

    #[inline]
    fn release(&self, t: Tid, guard: Self::Guard) {
        // Ordering: Release — the guard holder's reads of the pointee are
        // sequenced before this clear and cannot sink past it, so a scanner
        // that observes the empty slot knows those reads are done.
        self.slots[t.index()].anns[guard.index].store(0, Ordering::Release);
        crate::sanitize::on_unprotect(self as *const Self as usize, t, guard.index);
        let local = unsafe { &mut *self.local(t) };
        if guard.index == self.cfg.hp_slots {
            debug_assert!(local.reserved_busy, "double release of acquire guard");
            local.reserved_busy = false;
        } else {
            debug_assert!(
                !local.free.contains(&guard.index),
                "double release of try_acquire guard"
            );
            local.free.push(guard.index);
        }
    }

    fn retire(&self, t: Tid, r: Retired) {
        let local = unsafe { &mut *self.local(t) };
        local.retired.push(r);
        // Threshold-spaced scans: see `Local::next_scan`.
        if local.retired.len() >= self.scan_threshold().max(local.next_scan) {
            self.scan(local);
        }
    }

    #[inline]
    fn eject(&self, t: Tid) -> Option<Retired> {
        let local = unsafe { &mut *self.local(t) };
        local.ready.pop_front()
    }

    #[inline]
    fn has_ready(&self, t: Tid) -> bool {
        !unsafe { &*self.local(t) }.ready.is_empty()
    }

    fn quiescent(&self) -> bool {
        // Ordering: fence(SeqCst) — pairs with the publication fence in
        // `protect`, as in `scan`: a hazard we miss below was published
        // after this fence, so its owner's validating re-read sees the
        // caller's unlinks and rejects the pointer.
        fence(Ordering::SeqCst);
        self.slots
            .iter()
            .take(registered_high_water_mark())
            // Ordering: Relaxed — the fence pairing above carries the
            // visibility argument, exactly as in `scan`.
            .all(|slot| slot.anns.iter().all(|ann| ann.load(Ordering::Relaxed) == 0))
    }

    fn flush(&self, t: Tid) {
        let local = unsafe { &mut *self.local(t) };
        self.scan(local);
    }

    unsafe fn drain_all(&self) -> Vec<Retired> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            let local = &mut *slot.local.get();
            out.append(&mut local.retired);
            out.extend(local.ready.drain(..));
        }
        out
    }

    // No `max_garbage` hatch: HP's garbage is bounded by construction — a
    // scan keeps at most one retired copy per *published announcement word*,
    // of which there are `hwm × (hp_slots + 1)` process-wide, however long a
    // reader stalls.
    unsafe fn reclaim_slot(&self, dead: Tid, into: Tid) {
        debug_assert_ne!(dead, into, "cannot reclaim a slot into itself");
        let (retired, ready) = {
            let k = self.cfg.hp_slots;
            let dead_local = &mut *self.local(dead);
            dead_local.depth = 0;
            dead_local.free = (0..k).rev().collect();
            dead_local.reserved_busy = false;
            dead_local.next_scan = 0;
            (
                std::mem::take(&mut dead_local.retired),
                std::mem::take(&mut dead_local.ready),
            )
        };
        // Clear every hazard the dead thread left published. Sound because
        // the owner is dead: no validated read through these announcements
        // can ever be consumed.
        for ann in self.slots[dead.index()].anns.iter() {
            // Ordering: Release — the takeover of the dead thread's retired
            // lists above must not sink below the un-announcement a
            // concurrent scan may act on.
            ann.store(0, Ordering::Release);
        }
        let local = &mut *self.local(into);
        local.retired.extend(retired);
        local.ready.extend(ready);
        self.scan(local);
    }
}

impl fmt::Debug for Hp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hp")
            .field("hp_slots", &self.cfg.hp_slots)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::current_tid;

    fn new_hp() -> Hp {
        Hp::new(Arc::new(GlobalEpoch::new()), Hp::default_config())
    }

    #[test]
    fn try_acquire_exhausts_and_recovers_slots() {
        let cfg = SmrConfig {
            hp_slots: 2,
            ..Hp::default_config()
        };
        let hp = Hp::new(Arc::new(GlobalEpoch::new()), cfg);
        let t = current_tid();
        let src = AtomicUsize::new(0x1000);
        let (_, g1) = hp.try_acquire(t, &src).unwrap();
        let (_, g2) = hp.try_acquire(t, &src).unwrap();
        assert!(hp.try_acquire(t, &src).is_none(), "out of slots");
        // The reserved slot still works.
        let (_, gr) = hp.acquire(t, &src);
        hp.release(t, gr);
        hp.release(t, g1);
        assert!(hp.try_acquire(t, &src).is_some());
        hp.release(t, g2);
    }

    #[test]
    #[should_panic(expected = "previous acquire")]
    fn double_acquire_panics() {
        let hp = new_hp();
        let t = current_tid();
        let src = AtomicUsize::new(0);
        let (_, _g) = hp.acquire(t, &src);
        let _ = hp.acquire(t, &src);
    }

    #[test]
    fn announced_pointer_is_not_ejected() {
        let hp = new_hp();
        let t = current_tid();
        let src = AtomicUsize::new(0x2000);
        let (_, g) = hp.try_acquire(t, &src).unwrap();
        hp.retire(t, Retired::new(0x2000, 0));
        hp.flush(t);
        assert_eq!(hp.eject(t), None, "announced pointer must stay");
        hp.release(t, g);
        hp.flush(t);
        assert_eq!(hp.eject(t), Some(Retired::new(0x2000, 0)));
    }

    #[test]
    fn multi_retire_keeps_only_announced_count() {
        let hp = new_hp();
        let t = current_tid();
        let src = AtomicUsize::new(0x3000);
        let (_, g) = hp.try_acquire(t, &src).unwrap();
        // Three retires, one announcement: two copies must eject.
        for _ in 0..3 {
            hp.retire(t, Retired::new(0x3000, 0));
        }
        hp.flush(t);
        assert_eq!(hp.eject(t), Some(Retired::new(0x3000, 0)));
        assert_eq!(hp.eject(t), Some(Retired::new(0x3000, 0)));
        assert_eq!(hp.eject(t), None, "one copy pinned by the announcement");
        hp.release(t, g);
        hp.flush(t);
        assert_eq!(hp.eject(t), Some(Retired::new(0x3000, 0)));
    }

    #[test]
    fn acquire_validates_against_concurrent_update() {
        // Single-threaded simulation of the retry: the value changes between
        // the first read and validation via a sneaky AtomicUsize alias.
        let hp = new_hp();
        let t = current_tid();
        let src = AtomicUsize::new(0x4000);
        let (v, g) = hp.acquire(t, &src);
        assert_eq!(v, 0x4000);
        assert_eq!(
            hp.slots[t.index()].anns[hp.cfg.hp_slots].load(Ordering::SeqCst),
            0x4000
        );
        hp.release(t, g);
    }

    #[test]
    fn tagged_pointers_are_announced_untagged() {
        let hp = new_hp();
        let t = current_tid();
        let src = AtomicUsize::new(0x5000 | 1);
        let (v, g) = hp.try_acquire(t, &src).unwrap();
        assert_eq!(v, 0x5000 | 1, "value keeps its tag");
        assert_eq!(
            hp.slots[t.index()].anns[g.index].load(Ordering::SeqCst),
            0x5000,
            "announcement is untagged"
        );
        // A retire of the untagged address is blocked by the tagged acquire.
        hp.retire(t, Retired::new(0x5000, 0));
        hp.flush(t);
        assert_eq!(hp.eject(t), None);
        hp.release(t, g);
        hp.flush(t);
        assert!(hp.eject(t).is_some());
    }

    #[test]
    fn null_acquire_allocates_and_releases_guard() {
        let hp = new_hp();
        let t = current_tid();
        let src = AtomicUsize::new(0);
        let (v, g) = hp.try_acquire(t, &src).unwrap();
        assert_eq!(v, 0);
        hp.release(t, g);
    }

    #[test]
    fn cross_thread_announcement_blocks_eject() {
        use std::sync::mpsc;
        let hp = Arc::new(new_hp());
        let src = Arc::new(AtomicUsize::new(0x6000));
        let (tx, rx) = mpsc::channel();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let reader = {
            let hp = Arc::clone(&hp);
            let src = Arc::clone(&src);
            std::thread::spawn(move || {
                let rt = current_tid();
                let (_, g) = hp.try_acquire(rt, &src).unwrap();
                tx.send(()).unwrap();
                done_rx.recv().unwrap();
                hp.release(rt, g);
            })
        };
        rx.recv().unwrap();
        let t = current_tid();
        hp.retire(t, Retired::new(0x6000, 0));
        hp.flush(t);
        assert_eq!(hp.eject(t), None, "other thread's announcement protects");
        done_tx.send(()).unwrap();
        reader.join().unwrap();
        hp.flush(t);
        assert!(hp.eject(t).is_some());
    }
}
