//! Epoch-based reclamation (EBR) behind the generalized acquire-retire
//! interface — the paper's Figure 3.
//!
//! A thread entering a critical section announces the current epoch; a
//! retired pointer is tagged with the epoch at retirement and becomes
//! ejectable once every announced epoch is strictly greater. The epoch
//! advances every `epoch_freq` allocations (per thread), the paper's tuned
//! value being 10 for EBR.
//!
//! As a protected-region scheme, `acquire` is a plain load, `release` is a
//! no-op and `try_acquire` never fails — all the protection comes from the
//! critical section, which is why EBR pays one fence per *operation* rather
//! than one per *read* (§2).

use crate::registry::{beat, registered_high_water_mark, Tid, MAX_THREADS};
use crate::util::{announce_u64, CachePadded};
use crate::{AcquireRetire, ExitHook, GlobalEpoch, Retired, SmrConfig};
use crate::{THROTTLE_ROUNDS, THROTTLE_SLEEP};

use crate::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Announcement value meaning "not in a critical section".
const EMPTY: u64 = u64::MAX;

struct Local {
    /// Retired entries tagged with their retirement epoch.
    retired: Vec<(Retired, u64)>,
    /// Entries whose protection has lapsed, ready for `eject`.
    ready: VecDeque<Retired>,
    /// Allocations since registration (drives epoch advancement).
    allocs: u64,
    /// Critical-section nesting depth.
    depth: u32,
    /// Retired-list length at which the next automatic scan fires. Spacing
    /// scans a full `eject_threshold` apart (instead of re-scanning on every
    /// retire once the list is long) keeps the cost amortized even when an
    /// open section — often the retiring thread's own — pins every entry:
    /// without the spacing, a pinned list ≥ threshold degenerates to one
    /// whole-slot-array scan plus list rebuild *per retire* (the
    /// `guard_api/dlqueue/EBR/batch64` inversion).
    next_scan: usize,
}

impl Local {
    const fn new() -> Self {
        Local {
            retired: Vec::new(),
            ready: VecDeque::new(),
            allocs: 0,
            depth: 0,
            next_scan: 0,
        }
    }
}

struct Slot {
    /// The epoch announced by this slot's thread, or [`EMPTY`].
    ann: AtomicU64,
    /// Thread-local part; see the safety invariant on [`Ebr`].
    local: UnsafeCell<Local>,
}

/// Epoch-based reclamation instance.
///
/// # Examples
///
/// ```
/// use smr::{AcquireRetire, Ebr, GlobalEpoch, Retired};
/// use std::sync::atomic::AtomicUsize;
/// use std::sync::Arc;
///
/// let ebr = Ebr::new(Arc::new(GlobalEpoch::new()), Ebr::default_config());
/// let t = smr::current_tid();
/// let shared = AtomicUsize::new(0x1000);
///
/// ebr.begin_critical_section(t);
/// let (value, guard) = ebr.acquire(t, &shared);
/// assert_eq!(value, 0x1000);
/// ebr.release(t, guard);
/// ebr.end_critical_section(t);
/// ```
//
// Safety invariant: `Slot::local` is only accessed by the thread whose `Tid`
// indexes that slot, except under `drain_all`'s exclusivity contract. The
// `ann` field is read by all threads during scans.
pub struct Ebr {
    clock: Arc<GlobalEpoch>,
    cfg: SmrConfig,
    slots: Box<[CachePadded<Slot>]>,
    exit_hook: OnceLock<ExitHook>,
}

unsafe impl Send for Ebr {}
unsafe impl Sync for Ebr {}

impl Ebr {
    #[inline]
    fn local(&self, t: Tid) -> *mut Local {
        self.slots[t.index()].local.get()
    }

    /// Bounded retire-side backpressure (the `max_garbage` escape hatch):
    /// scan and briefly sleep until the retired list drops under the
    /// watermark or the round budget runs out. Only ever called with
    /// `depth == 0` — sleeping inside the caller's own section would
    /// self-deadlock the watermark (its own announcement pins the garbage).
    #[cold]
    fn throttle(&self, local: &mut Local, cap: usize) {
        for _ in 0..THROTTLE_ROUNDS {
            std::thread::sleep(THROTTLE_SLEEP);
            self.scan(local);
            if local.retired.len() < cap {
                return;
            }
        }
    }

    /// Moves every retired entry whose epoch precedes all announcements into
    /// the ready queue. Allocation-free: the retired list is retained in
    /// place rather than rebuilt.
    fn scan(&self, local: &mut Local) {
        crate::fault::on_scan();
        // Ordering: fence(SeqCst) — pairs with the fence in
        // `begin_critical_section`. For any reader, one of the two fences is
        // first in the SeqCst total order: if the reader's is, our
        // announcement loads below must observe its announcement (stored
        // before its fence) and we keep its epoch's entries; if ours is, the
        // reader's post-fence pointer loads observe every unlink that
        // preceded this fence, so it cannot reach anything we eject.
        fence(Ordering::SeqCst);
        let mut min_ann = u64::MAX;
        for slot in self.slots.iter().take(registered_high_water_mark()) {
            // Ordering: Relaxed — safety rests entirely on the fence
            // pairing above, in both staleness directions: reading an old
            // *epoch* (smaller) only lowers `min_ann` and keeps entries
            // longer, and missing a live announcement (reading a stale
            // EMPTY) is exactly the "announcer fenced after us" case — that
            // reader's post-fence traversal observes every unlink preceding
            // this scan, so nothing we eject is reachable to it.
            min_ann = min_ann.min(slot.ann.load(Ordering::Relaxed));
        }
        let Local { retired, ready, .. } = local;
        retired.retain(|&(r, epoch)| {
            if epoch < min_ann {
                ready.push_back(r);
                false
            } else {
                true
            }
        });
        local.next_scan = local.retired.len() + self.cfg.eject_threshold;
    }
}

unsafe impl AcquireRetire for Ebr {
    type Guard = ();

    /// A retire issued while any section is active stamps an epoch ≥ that
    /// section's announcement (the clock is monotone and the stamp is read
    /// after the unlink), so it cannot eject until the section ends —
    /// every word read from a live location during the section is covered,
    /// whatever the pointee's birth epoch.
    const PROTECTS_SECTION_READS: bool = true;

    fn new(clock: Arc<GlobalEpoch>, config: SmrConfig) -> Self {
        let slots = (0..MAX_THREADS)
            .map(|_| {
                CachePadded::new(Slot {
                    ann: AtomicU64::new(EMPTY),
                    local: UnsafeCell::new(Local::new()),
                })
            })
            .collect();
        Ebr {
            clock,
            cfg: config,
            slots,
            exit_hook: OnceLock::new(),
        }
    }

    fn default_config() -> SmrConfig {
        SmrConfig {
            epoch_freq: 10,
            ..SmrConfig::default()
        }
    }

    fn scheme_name() -> &'static str {
        "EBR"
    }

    #[inline]
    fn begin_critical_section(&self, t: Tid) {
        let local = unsafe { &mut *self.local(t) };
        local.depth += 1;
        if local.depth == 1 {
            // The one full fence EBR pays per outermost section (§2's "one
            // fence per operation"): `announce_u64` stores the epoch and
            // fences so the announcement is visible before every protected
            // read of the section; pairs with the fence at the head of
            // `scan` (a scanner that misses this announcement fenced
            // *before* us, so our reads see all of its unlinks).
            announce_u64(&self.slots[t.index()].ann, self.clock.load());
            beat(t);
            crate::fault::on_section_entry(t);
            // Sanitizer shadow: EBR sections protect every read
            // (PROTECTS_SECTION_READS), so no per-acquire tokens are needed.
            crate::sanitize::section_enter(self as *const Self as usize, t, true);
        }
    }

    #[inline]
    fn end_critical_section(&self, t: Tid) {
        // Scoped: the hook below may re-enter `retire`/`eject`, which take
        // their own `&mut Local` — the borrow must be dead by then.
        let outermost = {
            let local = unsafe { &mut *self.local(t) };
            debug_assert!(local.depth > 0, "end_critical_section without begin");
            local.depth -= 1;
            local.depth == 0
        };
        if outermost {
            // Ordering: Release — every protected read of the section is
            // sequenced before this store and cannot sink below it, so a
            // scanner that sees EMPTY knows the section's reads are done.
            self.slots[t.index()].ann.store(EMPTY, Ordering::Release);
            beat(t);
            crate::sanitize::section_exit(self as *const Self as usize, t);
            // Section fully exited: anything the hook retires from here is
            // stamped with a fresh epoch, which only widens protection.
            if let Some(h) = self.exit_hook.get() {
                h.invoke(t);
            }
        }
    }

    fn set_exit_hook(&self, hook: ExitHook) {
        let _ = self.exit_hook.set(hook);
    }

    #[inline]
    fn birth_epoch(&self, t: Tid) -> u64 {
        let local = unsafe { &mut *self.local(t) };
        // Counted up to `epoch_freq` and reset, rather than `allocs %
        // epoch_freq`: this runs once per allocation and the modulo is an
        // integer division on the hot path.
        local.allocs += 1;
        if local.allocs >= self.cfg.epoch_freq {
            local.allocs = 0;
            self.clock.advance();
        }
        0
    }

    #[inline]
    fn acquire(&self, t: Tid, src: &AtomicUsize) -> (usize, Self::Guard) {
        debug_assert!(
            unsafe { &*self.local(t) }.depth > 0,
            "acquire outside critical section"
        );
        // Ordering: Acquire — pairs with the Release store/CAS that
        // published the pointee, making its initialized contents visible to
        // the dereferencing caller. Protection against reclamation comes
        // from the section's announcement fence, not from this load.
        (src.load(Ordering::Acquire), ())
    }

    #[inline]
    fn try_acquire(&self, t: Tid, src: &AtomicUsize) -> Option<(usize, Self::Guard)> {
        Some(self.acquire(t, src))
    }

    #[inline]
    fn release(&self, _t: Tid, _guard: Self::Guard) {}

    fn retire(&self, t: Tid, r: Retired) {
        let local = unsafe { &mut *self.local(t) };
        local.retired.push((r, self.clock.load()));
        // Scan only once a full threshold of retires has accumulated since
        // the last scan (see `Local::next_scan`), never on every retire.
        if local.retired.len() >= self.cfg.eject_threshold.max(local.next_scan) {
            self.scan(local);
        }
        // Escape hatch: over the watermark and outside any section, apply
        // bounded backpressure so a stalled reader elsewhere caps this
        // thread's garbage instead of pinning an ever-growing list.
        if let Some(cap) = self.cfg.max_garbage {
            if local.retired.len() >= cap && local.depth == 0 {
                self.throttle(local, cap);
            }
        }
    }

    #[inline]
    fn eject(&self, t: Tid) -> Option<Retired> {
        let local = unsafe { &mut *self.local(t) };
        local.ready.pop_front()
    }

    #[inline]
    fn has_ready(&self, t: Tid) -> bool {
        !unsafe { &*self.local(t) }.ready.is_empty()
    }

    fn quiescent(&self) -> bool {
        // Ordering: fence(SeqCst) — the same pairing as `scan`'s, in the
        // degenerate min-over-empty-set case: any announcement we miss
        // below was fenced after us, so that section's post-fence reads
        // observe every unlink that preceded this call and it cannot
        // reach anything the caller hands back.
        fence(Ordering::SeqCst);
        self.slots
            .iter()
            .take(registered_high_water_mark())
            // Ordering: Relaxed — safety rests on the fence pairing above,
            // exactly as in `scan`.
            .all(|slot| slot.ann.load(Ordering::Relaxed) == EMPTY)
    }

    fn flush(&self, t: Tid) {
        let local = unsafe { &mut *self.local(t) };
        self.scan(local);
    }

    unsafe fn drain_all(&self) -> Vec<Retired> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            let local = &mut *slot.local.get();
            out.extend(local.retired.drain(..).map(|(r, _)| r));
            out.extend(local.ready.drain(..));
        }
        out
    }

    unsafe fn reclaim_slot(&self, dead: Tid, into: Tid) {
        debug_assert_ne!(dead, into, "cannot reclaim a slot into itself");
        // Exclusive access to the dead slot's local state is the caller's
        // contract (the owner terminated; the abandon/join edge published
        // its writes).
        let (retired, ready) = {
            let dead_local = &mut *self.local(dead);
            dead_local.depth = 0;
            dead_local.allocs = 0;
            dead_local.next_scan = 0;
            (
                std::mem::take(&mut dead_local.retired),
                std::mem::take(&mut dead_local.ready),
            )
        };
        // Ordering: Release — force-close the dead section. Scanners that
        // now read EMPTY may eject entries the dead announcement pinned;
        // that is sound precisely because the owner is dead: no post-fence
        // reads of its section can ever execute.
        self.slots[dead.index()].ann.store(EMPTY, Ordering::Release);
        // Migrate the orphaned deferred state into the caller's slot so its
        // scans (rather than the slot's eventual next owner) drain it.
        let local = &mut *self.local(into);
        local.retired.extend(retired);
        local.ready.extend(ready);
        self.scan(local);
    }
}

impl fmt::Debug for Ebr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ebr")
            .field("epoch", &self.clock.load())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::current_tid;

    fn new_ebr() -> Ebr {
        Ebr::new(Arc::new(GlobalEpoch::new()), Ebr::default_config())
    }

    #[test]
    fn acquire_returns_current_value() {
        let ebr = new_ebr();
        let t = current_tid();
        let src = AtomicUsize::new(0xbeef0);
        ebr.begin_critical_section(t);
        let (v, g) = ebr.acquire(t, &src);
        assert_eq!(v, 0xbeef0);
        ebr.release(t, g);
        let (v2, _) = ebr.try_acquire(t, &src).expect("EBR try_acquire is total");
        assert_eq!(v2, 0xbeef0);
        ebr.end_critical_section(t);
    }

    #[test]
    fn retire_is_not_ejectable_while_any_section_is_active() {
        let ebr = new_ebr();
        let t = current_tid();
        ebr.begin_critical_section(t);
        ebr.retire(t, Retired::new(0x1000, 0));
        ebr.flush(t);
        // Our own announcement pins the epoch.
        assert_eq!(ebr.eject(t), None);
        ebr.end_critical_section(t);
        // Epoch must advance past the retirement epoch before ejection.
        ebr.clock.advance();
        ebr.flush(t);
        assert_eq!(ebr.eject(t), Some(Retired::new(0x1000, 0)));
        assert_eq!(ebr.eject(t), None);
    }

    #[test]
    fn eject_requires_epoch_progress() {
        let ebr = new_ebr();
        let t = current_tid();
        ebr.retire(t, Retired::new(0x2000, 0));
        // Nobody is in a critical section and the retire epoch (0) is less
        // than no announcement, but min over an empty set is MAX: ejectable
        // immediately once flushed.
        ebr.flush(t);
        assert_eq!(ebr.eject(t), Some(Retired::new(0x2000, 0)));
    }

    #[test]
    fn multi_retire_yields_multiple_ejects() {
        let ebr = new_ebr();
        let t = current_tid();
        let r = Retired::new(0x3000, 0);
        for _ in 0..3 {
            ebr.retire(t, r);
        }
        ebr.clock.advance();
        ebr.flush(t);
        assert_eq!(ebr.eject(t), Some(r));
        assert_eq!(ebr.eject(t), Some(r));
        assert_eq!(ebr.eject(t), Some(r));
        assert_eq!(ebr.eject(t), None);
    }

    #[test]
    fn concurrent_reader_blocks_ejection() {
        use std::sync::mpsc;
        let ebr = Arc::new(new_ebr());
        let (entered_tx, entered_rx) = mpsc::channel();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let reader = {
            let ebr = Arc::clone(&ebr);
            std::thread::spawn(move || {
                let t = current_tid();
                ebr.begin_critical_section(t);
                entered_tx.send(()).unwrap();
                done_rx.recv().unwrap();
                ebr.end_critical_section(t);
            })
        };
        entered_rx.recv().unwrap();

        let t = current_tid();
        // Retire *after* the reader entered: its announcement (epoch e)
        // equals the retire epoch, so the entry must stay protected.
        ebr.retire(t, Retired::new(0x4000, 0));
        ebr.clock.advance();
        ebr.flush(t);
        assert_eq!(ebr.eject(t), None, "active reader must block ejection");

        done_tx.send(()).unwrap();
        reader.join().unwrap();
        ebr.flush(t);
        assert!(ebr.eject(t).is_some(), "reader gone; entry must eject");
    }

    #[test]
    fn threshold_triggers_automatic_scan() {
        let cfg = SmrConfig {
            eject_threshold: 4,
            ..Ebr::default_config()
        };
        let ebr = Ebr::new(Arc::new(GlobalEpoch::new()), cfg);
        let t = current_tid();
        for i in 0..4 {
            ebr.retire(t, Retired::new(0x1000 + i * 8, 0));
        }
        // Threshold reached: scan ran inside retire, no flush needed.
        assert!(ebr.eject(t).is_some());
    }

    #[test]
    fn birth_epoch_advances_clock_at_freq() {
        let cfg = SmrConfig {
            epoch_freq: 5,
            ..Ebr::default_config()
        };
        let clock = Arc::new(GlobalEpoch::new());
        let ebr = Ebr::new(Arc::clone(&clock), cfg);
        let t = current_tid();
        for _ in 0..10 {
            ebr.birth_epoch(t);
        }
        assert_eq!(clock.load(), 2);
    }

    #[test]
    fn drain_all_recovers_everything() {
        let ebr = new_ebr();
        let t = current_tid();
        ebr.begin_critical_section(t);
        ebr.retire(t, Retired::new(0x5000, 0));
        ebr.retire(t, Retired::new(0x6000, 0));
        ebr.end_critical_section(t);
        let drained = unsafe { ebr.drain_all() };
        assert_eq!(drained.len(), 2);
        assert_eq!(unsafe { ebr.drain_all() }.len(), 0);
    }

    #[test]
    fn nested_critical_sections() {
        let ebr = new_ebr();
        let t = current_tid();
        ebr.begin_critical_section(t);
        ebr.begin_critical_section(t);
        ebr.end_critical_section(t);
        // Still inside: announcement must be live.
        assert_ne!(ebr.slots[t.index()].ann.load(Ordering::SeqCst), EMPTY);
        ebr.end_critical_section(t);
        assert_eq!(ebr.slots[t.index()].ann.load(Ordering::SeqCst), EMPTY);
    }
}
