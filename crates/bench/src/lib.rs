//! Shared plumbing for the figure-reproduction bench binaries.

use bench_harness::{prefill, run_map, thread_counts, Row, Workload};
use cdrc::Scheme;
use lockfree::ConcurrentMap;

/// Runs one (structure, scheme) series over the thread sweep, printing one
/// CSV row per thread count. `make` builds a fresh structure per cell;
/// `settle` runs after each cell (draining the default global domain keeps
/// deferred teardown work from one cell competing for CPU with the next).
///
/// # Reclamation domains
///
/// Every structure meters its *own* reclamation domain (see
/// `lockfree::ConcurrentMap::in_flight_nodes`), so the "extra nodes"
/// samples are exact per structure and several structures — even on one
/// scheme — may coexist without polluting each other's numbers. Bench
/// binaries that want per-cell isolation down to the scan cadence can pass
/// a `make` closure using the `new_in`/`with_buckets_in` constructors with
/// a fresh `cdrc::DomainRef` per cell.
pub fn map_series<M, F, G>(
    figure: &str,
    structure: &str,
    scheme: &str,
    spec: &Workload,
    make: F,
    settle: G,
) where
    M: ConcurrentMap<u64, u64>,
    F: Fn() -> M,
    G: Fn(),
{
    for &threads in &thread_counts() {
        let map = make();
        prefill(&map, spec);
        let (mops, extra_avg, extra_peak) = run_map(&map, spec, threads);
        drop(map);
        settle();
        let row = Row {
            figure: figure.to_string(),
            structure: structure.to_string(),
            scheme: scheme.to_string(),
            threads,
            mops,
            extra_nodes_avg: extra_avg,
            extra_nodes_peak: extra_peak,
        };
        println!("{}", row.csv());
    }
}

/// Drains scheme `S`'s global (default) reference-counting domain.
/// Structures created with explicit domains settle themselves on `Drop`.
pub fn settle_scheme<S: Scheme>() {
    S::global_domain().process_deferred(smr::current_tid());
}

/// Section filter for multi-section binaries: `FIG13_ONLY=c,e` etc.
pub fn section_enabled(var: &str, section: &str) -> bool {
    match std::env::var(var) {
        Ok(v) => v.split(',').any(|s| s.trim().eq_ignore_ascii_case(section)),
        Err(_) => true,
    }
}
