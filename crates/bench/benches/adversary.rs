//! Adversarial fault-injection bench: the measured garbage-bound story.
//!
//! Every cell drives update-heavy writers against a reference-counted
//! Michael hash map while one fault from `smr::fault` is active, sampling
//! the domain's unreclaimed garbage over time:
//!
//! * `stall/<scheme>` — a victim reader pins a critical section for the
//!   stall window, with each scheme's escape hatch armed
//!   (`SmrConfig::max_garbage`): HP and IBR are bounded by construction,
//!   EBR and Hyaline by retire-side backpressure.
//! * `stall/EBR (no hatch)` — the honest unbounded baseline: plain EBR with
//!   no watermark, showing what the hatch exists to prevent.
//! * `dead/<scheme>` — a victim dies *inside* an open section without
//!   unregistering; at the recovery point its slot is reclaimed through
//!   `smr::reclaim_orphaned_slot` and the registry reaper chain, and the
//!   curve must come back down.
//! * `dropbatch/EBR` — the victim dies with a half-full deferred-decrement
//!   batch; recovery must also drain the orphaned batch.
//! * `delayscan/EBR` — every scan sleeps: a slow collector, not a dead one.
//!
//! Doubles as the CI robustness smoke: the process exits nonzero if any
//! hatched stall peak exceeds its computed bound, any recovery fails or
//! leaves more than the bound behind, or the unbounded baseline fails to
//! out-garbage the hatched run (which would mean the fault never bit).
//! `ADVERSARY_SMOKE=1` shortens every window.
//!
//! Environment: `ADVERSARY_MS` (per cell, default 1500), `BENCH_JSON`
//! (append one JSON line per cell), `ADVERSARY_THREADS` (default 4),
//! `ADVERSARY_SMOKE`.

use std::time::Duration;

use bench::settle_scheme;
use bench_harness::{run_adversarial, AdversaryOutcome, Workload};
use cdrc::{DomainRef, EbrScheme, HpScheme, HyalineScheme, IbrScheme, Scheme};
use lockfree::rc::RcMichaelHashMap;
use smr::fault::FaultPlan;

/// Escape-hatch watermark (`SmrConfig::max_garbage`) for the hatched cells.
const CAP: usize = 512;

fn emit_json(line: String) {
    if let Ok(path) = std::env::var("BENCH_JSON") {
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "{line}");
        }
    }
}

fn adversary_millis() -> u64 {
    std::env::var("ADVERSARY_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1500)
}

fn adversary_threads() -> usize {
    std::env::var("ADVERSARY_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(4)
}

/// The measured bound a hatched/recovered cell must stay under: per-thread
/// watermark overshoot on three acquire-retire instances for every
/// participating thread (workers, sampler, victim), plus the structure's
/// own churn slack proportional to the live set. Deliberately generous —
/// the point is "finite and small", not a tight constant.
fn bound(writers: usize, spec: &Workload) -> u64 {
    (3 * (writers + 2) * (CAP + 1024)) as u64 + 4 * spec.initial_size
}

struct Cell {
    name: String,
    out: AdversaryOutcome,
    /// `Some(bound)` when the smoke gate must check peak ≤ bound.
    peak_bound: Option<u64>,
    /// `Some(bound)` when the gate must check recovery happened and the
    /// final sample settled back under the bound.
    recovery_bound: Option<u64>,
}

/// Downsamples the curve to at most 40 points for the JSON line.
fn curve_json(curve: &[(u64, u64)]) -> String {
    let step = curve.len().div_ceil(40).max(1);
    let pts: Vec<String> = curve
        .iter()
        .step_by(step)
        .map(|&(ms, g)| format!("[{ms},{g}]"))
        .collect();
    format!("[{}]", pts.join(","))
}

fn report(cell: &Cell) {
    let o = &cell.out;
    println!(
        "{:<28} {:>7.3} Mop/s  peak {:>8}  final {:>8}  stalls {}  recovered {:?}",
        cell.name, o.mops, o.garbage_peak, o.garbage_final, o.stalls, o.recovered
    );
    emit_json(format!(
        "{{\"name\":\"{}\",\"mops\":{:.3},\"garbage_peak\":{},\"garbage_final\":{},\"stalls\":{},\"scans_delayed\":{},\"recovered\":{},\"peak_bound\":{},\"recovery_bound\":{},\"curve\":{}}}",
        cell.name,
        o.mops,
        o.garbage_peak,
        o.garbage_final,
        o.stalls,
        o.scans_delayed,
        match o.recovered {
            Some(b) => b.to_string(),
            None => "null".into(),
        },
        cell.peak_bound
            .map(|b| b.to_string())
            .unwrap_or_else(|| "null".into()),
        cell.recovery_bound
            .map(|b| b.to_string())
            .unwrap_or_else(|| "null".into()),
        curve_json(&o.curve),
    ));
}

/// Runs one (scheme, plan) cell on a fresh domain. `hatch` arms the
/// scheme's `max_garbage` watermark.
fn cell<S: Scheme>(
    name: &str,
    plan: FaultPlan,
    hatch: bool,
    spec: &Workload,
    peak_bound: Option<u64>,
    recovery_bound: Option<u64>,
) -> Cell {
    let writers = adversary_threads();
    let total = Duration::from_millis(adversary_millis());
    let fault_at = total / 5;
    let recover_at = total * 3 / 5;
    let mut cfg = S::default_config();
    if hatch {
        cfg.max_garbage = Some(CAP);
    }
    let map: RcMichaelHashMap<u64, u64, S> =
        RcMichaelHashMap::with_buckets_in(64, DomainRef::with_config(cfg));
    let out = run_adversarial(&map, plan, spec, writers, total, fault_at, recover_at);
    drop(map);
    settle_scheme::<S>();
    Cell {
        name: name.to_string(),
        out,
        peak_bound,
        recovery_bound,
    }
}

fn main() {
    let spec = Workload::points(4096, 100);
    let writers = adversary_threads();
    let bound = bound(writers, &spec);
    let total = Duration::from_millis(adversary_millis());
    // The victim stalls from total/5 until total*3/5: 40% of the run.
    let stall = total * 2 / 5;
    // `vec!` elements evaluate in order, which keeps the one-armed-fault-
    // at-a-time invariant: each `cell` disarms before the next arms.
    let cells: Vec<Cell> = vec![
        // Stalled reader, escape hatch armed: every scheme must stay
        // bounded.
        cell::<EbrScheme>(
            "stall/EBR",
            FaultPlan::stalled_reader(stall),
            true,
            &spec,
            Some(bound),
            None,
        ),
        cell::<IbrScheme>(
            "stall/IBR",
            FaultPlan::stalled_reader(stall),
            true,
            &spec,
            Some(bound),
            None,
        ),
        cell::<HpScheme>(
            "stall/HP",
            FaultPlan::stalled_reader(stall),
            true,
            &spec,
            Some(bound),
            None,
        ),
        cell::<HyalineScheme>(
            "stall/Hyaline",
            FaultPlan::stalled_reader(stall),
            true,
            &spec,
            Some(bound),
            None,
        ),
        // The documented-unbounded baseline: EBR with no hatch. Excluded
        // from the bound check; the gate instead requires it to *exceed*
        // the hatched EBR peak, proving the fault actually bit.
        cell::<EbrScheme>(
            "stall/EBR (no hatch)",
            FaultPlan::stalled_reader(stall),
            false,
            &spec,
            None,
            None,
        ),
        // Dead thread inside a section, reclaimed at the recovery point.
        cell::<EbrScheme>(
            "dead/EBR",
            FaultPlan::dead_thread_in_section(),
            true,
            &spec,
            None,
            Some(bound),
        ),
        cell::<IbrScheme>(
            "dead/IBR",
            FaultPlan::dead_thread_in_section(),
            true,
            &spec,
            None,
            Some(bound),
        ),
        cell::<HpScheme>(
            "dead/HP",
            FaultPlan::dead_thread_in_section(),
            true,
            &spec,
            None,
            Some(bound),
        ),
        cell::<HyalineScheme>(
            "dead/Hyaline",
            FaultPlan::dead_thread_in_section(),
            true,
            &spec,
            None,
            Some(bound),
        ),
        // Death with a half-full decrement batch, and a merely-slow
        // collector.
        cell::<EbrScheme>(
            "dropbatch/EBR",
            FaultPlan::drop_mid_batch(),
            true,
            &spec,
            None,
            Some(bound),
        ),
        cell::<EbrScheme>(
            "delayscan/EBR",
            FaultPlan::delay_scan(Duration::from_micros(200)),
            true,
            &spec,
            Some(bound),
            None,
        ),
    ];

    for c in &cells {
        report(c);
    }

    // Smoke gate.
    let mut bad = false;
    for c in &cells {
        if !(c.out.mops > 0.0 && c.out.mops.is_finite()) {
            eprintln!("adversary: {}: no writer progress", c.name);
            bad = true;
        }
        if let Some(b) = c.peak_bound {
            if c.out.garbage_peak > b {
                eprintln!(
                    "adversary: {}: peak {} exceeds bound {b}",
                    c.name, c.out.garbage_peak
                );
                bad = true;
            }
        }
        if let Some(b) = c.recovery_bound {
            if c.out.recovered != Some(true) {
                eprintln!("adversary: {}: orphaned slot not reclaimed", c.name);
                bad = true;
            }
            if c.out.garbage_final > b {
                eprintln!(
                    "adversary: {}: post-recovery garbage {} exceeds bound {b}",
                    c.name, c.out.garbage_final
                );
                bad = true;
            }
        }
    }
    let hatched = cells.iter().find(|c| c.name == "stall/EBR").unwrap();
    let baseline = cells
        .iter()
        .find(|c| c.name == "stall/EBR (no hatch)")
        .unwrap();
    if baseline.out.garbage_peak <= hatched.out.garbage_peak {
        eprintln!(
            "adversary: unhatched baseline peak {} did not exceed hatched peak {} — the stall never bit",
            baseline.out.garbage_peak, hatched.out.garbage_peak
        );
        bad = true;
    }
    if bad {
        std::process::exit(1);
    }
    eprintln!(
        "adversary: all {} cells within bounds (hatched bound {bound} nodes)",
        cells.len()
    );
}
