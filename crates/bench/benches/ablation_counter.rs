//! Ablation (§4.3): wait-free sticky counter vs the traditional CAS-loop
//! increment-if-not-zero, under contention.
//!
//! P threads hammer one shared counter with upgrade/downgrade pairs while
//! one thread performs linearizable loads. The CAS loop degrades as P grows
//! (O(P) amortized per upgrade); the sticky counter stays flat.

use smr::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Duration;

use bench_harness::{bench_millis, print_header, thread_counts, Row};
use sticky::{CasCounter, Counter, StickyCounter};

fn run<C: Counter>(threads: usize) -> f64 {
    let c = C::with_count(1);
    let stop = AtomicBool::new(false);
    let ops = AtomicU64::new(0);
    let barrier = Barrier::new(threads + 1);
    std::thread::scope(|s| {
        for i in 0..threads {
            let c = &c;
            let stop = &stop;
            let ops = &ops;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..128 {
                        if i % 4 == 3 {
                            // A quarter of the threads read.
                            std::hint::black_box(c.load());
                        } else if c.increment_if_not_zero() {
                            c.decrement();
                        }
                        n += 1;
                    }
                }
                ops.fetch_add(n, Ordering::Relaxed);
            });
        }
        barrier.wait();
        std::thread::sleep(Duration::from_millis(bench_millis()));
        stop.store(true, Ordering::Relaxed);
    });
    ops.load(Ordering::Relaxed) as f64 / (bench_millis() as f64 / 1e3) / 1e6
}

fn main() {
    print_header();
    for &threads in &thread_counts() {
        let mops = run::<StickyCounter>(threads);
        println!(
            "{}",
            Row {
                figure: "ablation_counter".into(),
                structure: "counter".into(),
                scheme: "sticky (wait-free)".into(),
                threads,
                mops,
                extra_nodes_avg: 0,
                extra_nodes_peak: 0,
            }
            .csv()
        );
        let mops = run::<CasCounter>(threads);
        println!(
            "{}",
            Row {
                figure: "ablation_counter".into(),
                structure: "counter".into(),
                scheme: "CAS loop".into(),
                threads,
                mops,
                extra_nodes_avg: 0,
                extra_nodes_peak: 0,
            }
            .csv()
        );
    }
}
