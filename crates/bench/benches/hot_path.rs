//! Hot-path micro-benchmark: threads × schemes over the three pointer
//! operations every workload is built from (`load`, `snapshot`, `store`)
//! plus a guard-batched hash-map mixed-ops cell per scheme.
//!
//! This is the regression harness for the fence-discipline overhaul: the
//! single-threaded (`t1`) pointer cells use the same tight-loop methodology
//! as the `micro` bench behind `BENCH_seed.json`, so each JSON line carries
//! the seed measurement as its `before` field and the before/after delta is
//! read directly off the file. The multi-threaded cells measure aggregate
//! ns/op over N threads hammering one shared `AtomicSharedPtr`, which is
//! where the relaxed orderings and sharded `Domain` counters pay off.
//!
//! The hash cells replay the `guard_api` bench's batch=64 workload
//! (16384-key Michael hash map, 10% updates, 4 threads), with that bench's
//! recorded throughput as the `before` field — the "no mixed-ops
//! regression" gate of the overhaul.
//!
//! The `ptr_local` t1 cells repeat the pointer ops against a slot bound to
//! a per-instance `DomainRef` (the instance-scoped-domain refactor's new
//! configuration); each JSON line records the same-run global-domain
//! latency as `global_ns_per_op`, so the cost of the handle indirection is
//! read directly off the file.
//!
//! The `cas` family records the witness-returning CAS redesign:
//!
//! * `cas/slot` — N threads storm one shared `AtomicSharedPtr` with
//!   compare-exchange, reusing each success's displaced pointer as the
//!   next desired (zero allocation). Each cell is measured twice in the
//!   same run: the *witness* loop reseeds `expected` from the CAS failure
//!   value, the *reload* loop re-reads the slot after every failure (the
//!   pre-witness idiom) — the JSON line carries both (`ns_per_op` vs
//!   `reload_ns_per_op`), so the win is read directly off the file.
//! * `cas/list` — a list-insert retry storm: 100%-update churn over a
//!   small key range on the RC Harris-Michael list, whose unlink/insert
//!   loops now consume witnesses. New coverage (no pre-redesign binary to
//!   compare against); gated on nonzero throughput like every other cell.
//!
//! Doubles as a CI smoke with the same contract as `guard_api`: after
//! printing its cells the process exits nonzero if any measured latency or
//! throughput is not strictly positive and finite. `HOT_PATH_SMOKE=1`
//! restricts the run to a handful of fast cells.
//!
//! Environment: `BENCH_MS` (per cell, default 300), `BENCH_JSON` (append
//! one JSON line per cell), `HOT_PATH_THREADS` (comma list, default
//! `1,2,4`), `HOT_PATH_SMOKE`.

use smr::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::hint::black_box;
use std::sync::Barrier;
use std::time::{Duration, Instant};

use bench::settle_scheme;
use bench_harness::{bench_millis, prefill, run_map_batched, Workload};
use cdrc::{
    AtomicSharedPtr, DomainRef, EbrScheme, HpScheme, HyalineScheme, IbrScheme, Scheme, SharedPtr,
    TaggedPtr,
};
use lockfree::rc::{RcHarrisMichaelList, RcMichaelHashMap};

#[derive(Clone, Copy, PartialEq)]
enum Op {
    Load,
    Snapshot,
    Store,
}

impl Op {
    fn name(self) -> &'static str {
        match self {
            Op::Load => "load",
            Op::Snapshot => "snapshot",
            Op::Store => "store",
        }
    }
}

/// Single-threaded baselines recorded in `BENCH_seed.json` (ns/iter), the
/// pre-overhaul "before" cells: (scheme, load, snapshot, store).
const SEED_PTR_NS: [(&str, f64, f64, f64); 4] = [
    ("ebr", 33.949, 1.003, 81.459),
    ("ibr", 47.222, 1.508, 84.970),
    ("hp", 36.034, 19.063, 157.757),
    ("hyaline", 34.335, 1.119, 86.091),
];

/// Batch=64 hash-map throughput of the pre-overhaul code (Mop/s), the
/// "before" cells for the mixed-ops regression gate. Re-measured on the
/// same machine as the after cells (commit 6be2d19, `BENCH_MS=1000
/// GUARD_API_THREADS=4 cargo bench --bench guard_api`) rather than taken
/// from `BENCH_guard_api.json`, whose PR 2 numbers were recorded under
/// different machine load and are not comparable run-to-run.
const GUARD_API_HASH_MOPS: [(&str, f64); 4] = [
    ("RC (EBR)", 6.799),
    ("RC (IBR)", 6.654),
    ("RC (HP)", 10.433),
    ("RC (Hyaline)", 13.744),
];

fn thread_sweep() -> Vec<usize> {
    if let Ok(v) = std::env::var("HOT_PATH_THREADS") {
        return v
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|&n| n > 0)
            .collect();
    }
    vec![1, 2, 4]
}

fn emit_json(line: String) {
    if let Ok(path) = std::env::var("BENCH_JSON") {
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "{line}");
        }
    }
}

/// Runs `op` with `threads` workers hammering one shared location for
/// `dur`; returns aggregate ns per completed operation.
///
/// The single-thread cells run *inline* on the calling thread with a
/// warm-up pass — the same chunked-loop methodology the criterion shim used
/// for `BENCH_seed.json`, so `t1` after-numbers compare directly against
/// the seed's before-numbers. Multi-thread cells use a spawn-and-signal
/// harness whose scheduling overhead (worker threads + sleeping timer) is
/// shared by every scheme equally.
fn run_ptr_op<S: Scheme>(op: Op, threads: usize, dur: Duration) -> f64 {
    if threads == 1 {
        run_ptr_op_inline::<S>(op, dur)
    } else {
        // Run twice, report the second: the first run warms caches, thread
        // registration and the scheme's retired-list capacity.
        run_ptr_op_spawned::<S>(op, threads, dur);
        run_ptr_op_spawned::<S>(op, threads, dur)
    }
}

/// Warm-up then timed chunked loop on the calling thread (the criterion
/// shim's `Bencher::iter`, with `dur` as both phases' budget).
fn run_ptr_op_inline<S: Scheme>(op: Op, dur: Duration) -> f64 {
    let ns = run_ptr_op_inline_in::<S>(op, dur, S::global_domain().clone());
    settle_scheme::<S>();
    ns
}

/// As [`run_ptr_op_inline`], against a slot bound to `domain` — the
/// per-instance-domain cells that price the `DomainRef` handle indirection
/// against the global-domain cells of the same run.
fn run_ptr_op_inline_in<S: Scheme>(op: Op, dur: Duration, domain: DomainRef<S>) -> f64 {
    let slot: AtomicSharedPtr<u64, S> =
        AtomicSharedPtr::new_in(SharedPtr::new_in(7, &domain), &domain);
    let body = |budget: Duration, timed: bool| -> f64 {
        let started = Instant::now();
        let mut iters = 0u64;
        match op {
            Op::Load => loop {
                for _ in 0..64 {
                    black_box(slot.load());
                }
                iters += 64;
                if started.elapsed() >= budget {
                    break;
                }
            },
            Op::Snapshot => {
                let cs = domain.cs();
                loop {
                    for _ in 0..64 {
                        let snap = slot.get_snapshot(&cs);
                        black_box(snap.as_ref());
                    }
                    iters += 64;
                    if started.elapsed() >= budget {
                        break;
                    }
                }
            }
            Op::Store => loop {
                for _ in 0..64 {
                    slot.store(SharedPtr::new_in(9, &domain));
                }
                iters += 64;
                if started.elapsed() >= budget {
                    break;
                }
            },
        }
        if timed {
            started.elapsed().as_nanos() as f64 / iters as f64
        } else {
            0.0
        }
    };
    body(dur, false); // warm-up
    let ns = body(dur, true);
    drop(slot);
    domain.process_deferred(smr::current_tid());
    ns
}

fn run_ptr_op_spawned<S: Scheme>(op: Op, threads: usize, dur: Duration) -> f64 {
    let slot: AtomicSharedPtr<u64, S> = AtomicSharedPtr::new(SharedPtr::new(7));
    let stop = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let barrier = Barrier::new(threads + 1);
    let elapsed = std::thread::scope(|s| {
        for _ in 0..threads {
            let slot = &slot;
            let stop = &stop;
            let total_ops = &total_ops;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                let mut ops = 0u64;
                match op {
                    Op::Load => {
                        while !stop.load(Ordering::Relaxed) {
                            for _ in 0..64 {
                                black_box(slot.load());
                            }
                            ops += 64;
                        }
                    }
                    Op::Snapshot => {
                        // One section for the whole cell, matching the
                        // `micro` bench the seed numbers came from.
                        let cs = S::global_domain().cs();
                        while !stop.load(Ordering::Relaxed) {
                            for _ in 0..64 {
                                let snap = slot.get_snapshot(&cs);
                                black_box(snap.as_ref());
                            }
                            ops += 64;
                        }
                    }
                    Op::Store => {
                        while !stop.load(Ordering::Relaxed) {
                            for _ in 0..64 {
                                slot.store(SharedPtr::new(9));
                            }
                            ops += 64;
                        }
                    }
                }
                total_ops.fetch_add(ops, Ordering::Relaxed);
            });
        }
        barrier.wait();
        let started = Instant::now();
        std::thread::sleep(dur);
        stop.store(true, Ordering::Relaxed);
        started.elapsed()
        // Scope joins the workers; total_ops is complete afterwards.
    });
    drop(slot);
    settle_scheme::<S>();
    // Aggregate latency: thread-seconds spent divided by operations done.
    elapsed.as_nanos() as f64 * threads as f64 / total_ops.load(Ordering::Relaxed).max(1) as f64
}

/// One (scheme, thread-count) row: the three pointer ops in sequence.
/// Returns the measured [load, snapshot, store] latencies.
fn ptr_cells_at<S: Scheme>(
    scheme: &str,
    threads: usize,
    dur: Duration,
    out: &mut Vec<f64>,
) -> [f64; 3] {
    let seed = SEED_PTR_NS
        .iter()
        .find(|(s, ..)| *s == scheme)
        .copied()
        .expect("seed row");
    let mut row = [0.0f64; 3];
    for (i, op) in [Op::Load, Op::Snapshot, Op::Store].into_iter().enumerate() {
        let ns = run_ptr_op::<S>(op, threads, dur);
        let name = format!("hot_path/ptr/{scheme}/{}/t{threads}", op.name());
        println!("{name:<44} {ns:>9.1} ns/op");
        // The t1 cells are methodology-compatible with the seed run: attach
        // the before value so the delta is in the file.
        if threads == 1 {
            let before = match op {
                Op::Load => seed.1,
                Op::Snapshot => seed.2,
                Op::Store => seed.3,
            };
            emit_json(format!(
                "{{\"name\":\"{name}\",\"ns_per_op\":{ns:.3},\"before_ns_per_op\":{before:.3}}}"
            ));
        } else {
            emit_json(format!("{{\"name\":\"{name}\",\"ns_per_op\":{ns:.3}}}"));
        }
        out.push(ns);
        row[i] = ns;
    }
    row
}

/// The per-instance-domain t1 cells: the same three pointer ops against a
/// slot bound to a fresh `DomainRef`. Each JSON line carries the same-run
/// global-domain measurement (`global_ns_per_op`) so the cost of the
/// domain-handle indirection is read directly off the file — it should be
/// within noise (≤ a few ns) of the global cells.
fn ptr_local_cells<S: Scheme>(scheme: &str, dur: Duration, global: [f64; 3], out: &mut Vec<f64>) {
    for (i, op) in [Op::Load, Op::Snapshot, Op::Store].into_iter().enumerate() {
        // A fresh domain per cell: the `new_in` configuration under test.
        let ns = run_ptr_op_inline_in::<S>(op, dur, DomainRef::new());
        let name = format!("hot_path/ptr_local/{scheme}/{}/t1", op.name());
        println!("{name:<44} {ns:>9.1} ns/op  (global {:.1})", global[i]);
        emit_json(format!(
            "{{\"name\":\"{name}\",\"ns_per_op\":{ns:.3},\"global_ns_per_op\":{:.3}}}",
            global[i]
        ));
        out.push(ns);
    }
}

/// All four schemes at one thread count. Sweeping threads in the *outer*
/// loop matters: the t1 cells must all run before any cell spawns worker
/// threads, because spawned workers raise the registry high-water mark for
/// the rest of the process and inflate every later single-thread scan —
/// which would make the t1 cells incomparable with the seed baseline.
/// At t1 each scheme's global cells are followed by its instance-domain
/// (`ptr_local`) cells, priced against the global numbers just measured.
fn ptr_row(threads: usize, dur: Duration, out: &mut Vec<f64>, smoke: bool) {
    let g = ptr_cells_at::<EbrScheme>("ebr", threads, dur, out);
    if threads == 1 {
        ptr_local_cells::<EbrScheme>("ebr", dur, g, out);
    }
    if !smoke {
        let g = ptr_cells_at::<IbrScheme>("ibr", threads, dur, out);
        if threads == 1 {
            ptr_local_cells::<IbrScheme>("ibr", dur, g, out);
        }
        let g = ptr_cells_at::<HpScheme>("hp", threads, dur, out);
        if threads == 1 {
            ptr_local_cells::<HpScheme>("hp", dur, g, out);
        }
        let g = ptr_cells_at::<HyalineScheme>("hyaline", threads, dur, out);
        if threads == 1 {
            ptr_local_cells::<HyalineScheme>("hyaline", dur, g, out);
        }
    }
}

fn hash_cell<S: Scheme>(scheme: &str, dur: Duration, out: &mut Vec<f64>) {
    let spec = Workload::points(16_384, 10);
    // Best of two runs: on a small shared box, scheduler interference can
    // only *lower* a throughput measurement, so the max is the better
    // estimate of the code's capability (the first run also serves as the
    // warm-up the ptr cells get).
    let mut mops = 0.0f64;
    for _ in 0..2 {
        let map = RcMichaelHashMap::<u64, u64, S>::with_buckets(16_384);
        prefill(&map, &spec);
        let (m, _, _) = run_map_batched(&map, &spec, 4, dur, 64);
        drop(map);
        settle_scheme::<S>();
        mops = mops.max(m);
    }
    let before = GUARD_API_HASH_MOPS
        .iter()
        .find(|(s, _)| *s == scheme)
        .map(|(_, m)| *m)
        .expect("guard_api row");
    let name = format!("hot_path/hash/{scheme}/t4");
    println!("{name:<44} {mops:>9.3} Mop/s");
    emit_json(format!(
        "{{\"name\":\"{name}\",\"mops\":{mops:.3},\"before_mops\":{before:.3}}}"
    ));
    out.push(mops);
}

/// How a contended-CAS worker reseeds `expected` after a failed attempt.
#[derive(Clone, Copy, PartialEq)]
enum Reseed {
    /// From the CAS's own failure witness (the new API's point).
    Witness,
    /// By re-loading the slot (the pre-witness idiom, kept as the
    /// same-machine baseline).
    Reload,
}

/// N threads storm one shared slot with compare-exchange for `dur`;
/// returns aggregate ns per CAS attempt. Every success recycles the
/// displaced pointer as the next desired, so the loop allocates nothing
/// and the slot stays maximally contended.
fn run_cas_slot<S: Scheme>(threads: usize, dur: Duration, reseed: Reseed) -> f64 {
    let slot: AtomicSharedPtr<u64, S> = AtomicSharedPtr::new(SharedPtr::new(u64::MAX));
    let stop = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let barrier = Barrier::new(threads + 1);
    let elapsed = std::thread::scope(|s| {
        for i in 0..threads as u64 {
            let slot = &slot;
            let stop = &stop;
            let total_ops = &total_ops;
            let barrier = &barrier;
            s.spawn(move || {
                let mut mine: SharedPtr<u64, S> = SharedPtr::new(i);
                let mut expected = slot.load_tagged();
                barrier.wait();
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..64 {
                        match slot.compare_exchange(expected, &mine) {
                            Ok(displaced) => {
                                // Next attempt swings the displaced value
                                // back in; we know the current word without
                                // loading — it is the one we installed.
                                expected = TaggedPtr::from_strong(&mine);
                                mine = displaced;
                            }
                            Err(w) => {
                                expected = match reseed {
                                    Reseed::Witness => w,
                                    Reseed::Reload => slot.load_tagged(),
                                };
                            }
                        }
                    }
                    ops += 64;
                }
                total_ops.fetch_add(ops, Ordering::Relaxed);
            });
        }
        barrier.wait();
        let started = Instant::now();
        std::thread::sleep(dur);
        stop.store(true, Ordering::Relaxed);
        started.elapsed()
    });
    drop(slot);
    settle_scheme::<S>();
    elapsed.as_nanos() as f64 * threads as f64 / total_ops.load(Ordering::Relaxed).max(1) as f64
}

/// One `cas/slot` cell: witness loop first, then the same-run reload
/// baseline, both in one JSON line.
fn cas_slot_cell<S: Scheme>(scheme: &str, threads: usize, dur: Duration, out: &mut Vec<f64>) {
    // A discarded warm-up run first: caches, thread registration and the
    // scheme's retired-list capacity would otherwise bias whichever
    // variant runs first.
    let _ = run_cas_slot::<S>(threads, dur, Reseed::Witness);
    let witness = run_cas_slot::<S>(threads, dur, Reseed::Witness);
    let reload = run_cas_slot::<S>(threads, dur, Reseed::Reload);
    let name = format!("hot_path/cas/slot/{scheme}/t{threads}");
    println!("{name:<44} {witness:>9.1} ns/op  (reload {reload:.1})");
    emit_json(format!(
        "{{\"name\":\"{name}\",\"ns_per_op\":{witness:.3},\"reload_ns_per_op\":{reload:.3}}}"
    ));
    out.push(witness);
    out.push(reload);
}

/// The list-insert retry storm: 100%-update churn over a small key range on
/// the RC Harris-Michael list — every operation is an insert or remove whose
/// CAS loop now runs on witnesses.
fn cas_list_cell<S: Scheme>(scheme: &str, threads: usize, dur: Duration, out: &mut Vec<f64>) {
    // 64 keys on one list: deliberately contended (the retry storm).
    let spec = Workload::points(64, 100);
    let mut mops = 0.0f64;
    for _ in 0..2 {
        let list = RcHarrisMichaelList::<u64, u64, S>::new_in(DomainRef::new());
        prefill(&list, &spec);
        let (m, _, _) = run_map_batched(&list, &spec, threads, dur, 64);
        drop(list);
        settle_scheme::<S>();
        mops = mops.max(m);
    }
    let name = format!("hot_path/cas/list/{scheme}/t{threads}");
    println!("{name:<44} {mops:>9.3} Mop/s");
    emit_json(format!("{{\"name\":\"{name}\",\"mops\":{mops:.3}}}"));
    out.push(mops);
}

fn cas_cells(threads: usize, dur: Duration, out: &mut Vec<f64>, smoke: bool) {
    cas_slot_cell::<EbrScheme>("ebr", threads, dur, out);
    if !smoke {
        cas_slot_cell::<IbrScheme>("ibr", threads, dur, out);
        cas_slot_cell::<HpScheme>("hp", threads, dur, out);
        cas_slot_cell::<HyalineScheme>("hyaline", threads, dur, out);
    }
    cas_list_cell::<EbrScheme>("ebr", threads, dur, out);
    if !smoke {
        cas_list_cell::<IbrScheme>("ibr", threads, dur, out);
        cas_list_cell::<HpScheme>("hp", threads, dur, out);
        cas_list_cell::<HyalineScheme>("hyaline", threads, dur, out);
    }
}

fn main() {
    let dur = Duration::from_millis(bench_millis());
    let smoke = std::env::var("HOT_PATH_SMOKE").is_ok();
    let sweep = if smoke { vec![1] } else { thread_sweep() };
    let mut measured = Vec::new();

    for &threads in &sweep {
        ptr_row(threads, dur, &mut measured, smoke);
    }
    // The cas cells spawn worker threads even at t1 (uniform harness), so
    // they run after every t1 ptr cell to keep the registry high-water
    // mark comparable with the seed methodology (see `ptr_row`).
    for &threads in &sweep {
        cas_cells(threads, dur, &mut measured, smoke);
    }
    if !smoke {
        hash_cell::<EbrScheme>("RC (EBR)", dur, &mut measured);
        hash_cell::<IbrScheme>("RC (IBR)", dur, &mut measured);
        hash_cell::<HpScheme>("RC (HP)", dur, &mut measured);
        hash_cell::<HyalineScheme>("RC (Hyaline)", dur, &mut measured);
    } else {
        hash_cell::<EbrScheme>("RC (EBR)", dur, &mut measured);
    }

    // Regression gate (same contract as `guard_api`): every cell must be a
    // strictly positive, finite measurement — a stall, deadlock or div-by-
    // zero shows up as 0, NaN or infinity and fails CI.
    if let Some(bad) = measured.iter().find(|&&v| !(v > 0.0 && v.is_finite())) {
        eprintln!("hot_path: non-positive or non-finite measurement ({bad}); failing");
        std::process::exit(1);
    }
    eprintln!("hot_path: all {} cells strictly positive", measured.len());
}
