//! Ablation (§3.4): the snapshot fast path vs the reference-count fallback.
//!
//! A thread holds `k` live snapshots of distinct locations and measures the
//! rate of taking one more. Under the hazard-pointer scheme, once `k`
//! exhausts the announcement slots, `get_snapshot` falls back to the
//! acquire + increment slow path — the mechanism behind RC (HP)'s collapse
//! in Fig. 11. Protected-region schemes (EBR here as the contrast) never
//! fall back.

use std::time::Instant;

use bench_harness::{bench_millis, print_header, Row};
use cdrc::{AtomicSharedPtr, Scheme, SharedPtr};

fn run<S: Scheme>(scheme: &str, held: usize) {
    let slots: Vec<AtomicSharedPtr<u64, S>> = (0..held + 1)
        .map(|i| AtomicSharedPtr::new(SharedPtr::new(i as u64)))
        .collect();
    let domain = S::global_domain();
    let cs = domain.cs();
    // Pin `held` snapshots.
    let pinned: Vec<_> = slots[..held].iter().map(|s| s.get_snapshot(&cs)).collect();
    let fast = pinned.iter().filter(|s| s.used_fast_path()).count();
    let target = &slots[held];
    let deadline = Instant::now() + std::time::Duration::from_millis(bench_millis());
    let mut ops = 0u64;
    let mut last_fast = true;
    while Instant::now() < deadline {
        for _ in 0..256 {
            let snap = target.get_snapshot(&cs);
            last_fast = snap.used_fast_path();
            std::hint::black_box(snap.as_ref());
            ops += 1;
        }
    }
    let mops = ops as f64 / (bench_millis() as f64 / 1e3) / 1e6;
    println!(
        "{}",
        Row {
            figure: "ablation_snapshot".into(),
            structure: "atomic_shared_ptr".into(),
            scheme: format!("{scheme} held={held} pinned_fast={fast} probe_fast={last_fast}"),
            threads: 1,
            mops,
            extra_nodes_avg: 0,
            extra_nodes_peak: 0,
        }
        .csv()
    );
    drop(pinned);
    drop(cs);
    drop(slots);
    domain.process_deferred(smr::current_tid());
}

fn main() {
    print_header();
    // HP has 16 try_acquire slots by default: at held=16 the probe must take
    // the slow path; EBR never does.
    for held in [0usize, 8, 15, 16, 32] {
        run::<cdrc::HpScheme>("RC (HP)", held);
    }
    for held in [0usize, 16, 32] {
        run::<cdrc::EbrScheme>("RC (EBR)", held);
    }
}
