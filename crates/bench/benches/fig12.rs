//! Figure 12: atomic weak pointers on the DoubleLink queue.
//!
//! Seed the queue with one element per thread; each thread repeatedly pops
//! and reinserts. Series:
//!
//! * "Original" — manual DoubleLink queue (EBR instance; see DESIGN.md for
//!   the substitution of the authors' custom hazard scheme),
//! * "Our Weak Pointers" — the Fig. 10 queue over `cdrc` atomic weak
//!   pointers, powered (as in the paper) by the hazard-pointer
//!   acquire-retire,
//! * "just::thread" — the lock-based atomic shared/weak pointer baseline.
//!
//! Expected shape: Original > Ours (modest factor), Ours ≫ lock-based at
//! high thread counts (the paper reports up to 10×).

use bench::settle_scheme;
use bench_harness::{print_header, run_queue, thread_counts, Row};
use cdrc::HpScheme;
use lockfree::locked::LockedDoubleLinkQueue;
use lockfree::manual::DoubleLinkQueue;
use lockfree::rc::RcDoubleLinkQueue;
use lockfree::ConcurrentQueue;
use smr::Ebr;

fn series<Q: ConcurrentQueue<u64>>(name: &str, make: impl Fn() -> Q, settle: impl Fn()) {
    for &threads in &thread_counts() {
        let q = make();
        let mops = run_queue(&q, threads);
        drop(q);
        settle();
        let row = Row {
            figure: "fig12".into(),
            structure: "dlqueue".into(),
            scheme: name.into(),
            threads,
            mops,
            extra_nodes_avg: 0,
            extra_nodes_peak: 0,
        };
        println!("{}", row.csv());
    }
}

fn main() {
    print_header();
    series("Original", DoubleLinkQueue::<u64, Ebr>::new, || {});
    series(
        "Our Weak Pointers",
        RcDoubleLinkQueue::<u64, HpScheme>::new,
        settle_scheme::<HpScheme>,
    );
    series("just::thread", LockedDoubleLinkQueue::<u64>::new, || {});
}
