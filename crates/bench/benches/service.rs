//! Long-running kv-store service bench over the resizable (split-ordered)
//! hash maps: zipfian key traffic, a get/put/delete mix, and per-operation
//! latency recorded into an HDR-style log-bucketed histogram.
//!
//! Two sections:
//!
//! * `service` — one cell per (variant, scheme, skew): 4 worker threads
//!   drive the update-heavy mix against a prefilled resizable map at
//!   zipfian skews θ = 0.6 and θ = 0.99, reporting throughput, p50/p99/
//!   p999 latency (ns) and the garbage high-water mark (peak in-flight
//!   nodes above the post-prefill baseline). Both the RC and the manual
//!   variant run under all four schemes.
//! * `grow` — the resize A/B: starting from a *minimal* table, 4 threads
//!   insert far more keys than the initial capacity (insert-only, disjoint
//!   ranges). The resizable table is compared against the fixed-bucket
//!   Michael table frozen at its small initial size — the configuration
//!   the resizable design replaces — with both cells in one JSON line.
//!
//! Doubles as a CI smoke with the usual contract: after printing its cells
//! the process exits nonzero if any throughput is non-positive/non-finite
//! or any latency histogram came back empty. `SERVICE_SMOKE=1` restricts
//! the run to one scheme, one skew and a small key count.
//!
//! Environment: `BENCH_MS` (per cell, default 300), `BENCH_JSON` (append
//! one JSON line per cell), `SERVICE_THREADS` (default 4),
//! `SERVICE_KEYS` (default 65536), `SERVICE_SMOKE`.

use std::time::Duration;

use bench::settle_scheme;
use bench_harness::{bench_millis, run_service_for, ServiceMix, ServiceReport};
use cdrc::{DomainRef, EbrScheme, HpScheme, HyalineScheme, IbrScheme, Scheme};
use lockfree::manual::ResizableHashMap;
use lockfree::rc::{RcMichaelHashMap, RcResizableHashMap};
use lockfree::ConcurrentMap;
use smr::{AcquireRetire, Ebr, Hp, Hyaline, Ibr};

fn emit_json(line: String) {
    if let Ok(path) = std::env::var("BENCH_JSON") {
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "{line}");
        }
    }
}

fn service_threads() -> usize {
    std::env::var("SERVICE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(4)
}

fn service_keys() -> u64 {
    std::env::var("SERVICE_KEYS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &u64| n > 0)
        .unwrap_or(65_536)
}

struct Outcome {
    mops: f64,
    ops: u64,
}

fn report_cell(name: &str, theta: f64, r: &ServiceReport, out: &mut Vec<Outcome>) {
    println!(
        "{name:<40} θ={theta:<4} {:>8.3} Mop/s  p50 {:>6} ns  p99 {:>7} ns  p999 {:>8} ns  garbage peak {}",
        r.mops, r.p50_ns, r.p99_ns, r.p999_ns, r.garbage_peak
    );
    emit_json(format!(
        "{{\"name\":\"{name}\",\"theta\":{theta},\"mops\":{:.3},\"ops\":{},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"garbage_avg\":{},\"garbage_peak\":{}}}",
        r.mops, r.ops, r.p50_ns, r.p99_ns, r.p999_ns, r.garbage_avg, r.garbage_peak
    ));
    out.push(Outcome {
        mops: r.mops,
        ops: r.ops,
    });
}

fn rc_cell<S: Scheme>(scheme: &str, theta: f64, dur: Duration, out: &mut Vec<Outcome>) {
    let map: RcResizableHashMap<u64, u64, S> = RcResizableHashMap::new_in(DomainRef::new());
    let r = run_service_for(
        &map,
        service_keys(),
        theta,
        ServiceMix::update_heavy(),
        service_threads(),
        dur,
    );
    drop(map);
    settle_scheme::<S>();
    report_cell(&format!("service/resizable/RC ({scheme})"), theta, &r, out);
}

fn manual_cell<S: AcquireRetire>(scheme: &str, theta: f64, dur: Duration, out: &mut Vec<Outcome>) {
    let map: ResizableHashMap<u64, u64, S> = ResizableHashMap::new();
    let r = run_service_for(
        &map,
        service_keys(),
        theta,
        ServiceMix::update_heavy(),
        service_threads(),
        dur,
    );
    report_cell(&format!("service/resizable/{scheme}"), theta, &r, out);
}

/// Insert-only storm: `threads` workers insert disjoint key ranges
/// totalling `total` keys, far beyond the table's initial capacity.
/// Returns Mop/s for the complete fill.
fn grow_fill<M: ConcurrentMap<u64, u64>>(map: &M, total: u64, threads: usize) -> f64 {
    let per = total / threads as u64;
    let started = std::time::Instant::now();
    std::thread::scope(|s| {
        for i in 0..threads as u64 {
            let map = &map;
            s.spawn(move || {
                let guard = map.pin();
                for k in i * per..(i + 1) * per {
                    map.insert_with(k, k, &guard);
                }
            });
        }
    });
    (per * threads as u64) as f64 / started.elapsed().as_secs_f64() / 1.0e6
}

/// The A/B: a resizable table starting minimal vs the fixed-bucket table
/// frozen at the same small size, both filled with `total` keys — the
/// degenerate long-bucket regime resizing exists to avoid.
fn grow_ab(total: u64, threads: usize, out: &mut Vec<Outcome>) {
    // Best of two runs each, interleaved so machine drift hits both arms.
    let (mut resizable, mut fixed) = (0.0f64, 0.0f64);
    for _ in 0..2 {
        let map: RcResizableHashMap<u64, u64, EbrScheme> =
            RcResizableHashMap::new_in(DomainRef::new());
        resizable = resizable.max(grow_fill(&map, total, threads));
        let buckets = map.buckets();
        drop(map);
        settle_scheme::<EbrScheme>();

        let map: RcMichaelHashMap<u64, u64, EbrScheme> =
            RcMichaelHashMap::with_buckets_in(64, DomainRef::new());
        fixed = fixed.max(grow_fill(&map, total, threads));
        drop(map);
        settle_scheme::<EbrScheme>();

        println!(
            "grow/ab: resizable grew to {buckets} buckets filling {total} keys ({threads} threads)"
        );
    }
    println!(
        "{:<40} {resizable:>8.3} Mop/s  vs fixed-64 {fixed:>8.3} Mop/s ({:.1}x)",
        "grow/resizable-vs-fixed/RC (EBR)",
        resizable / fixed.max(f64::MIN_POSITIVE)
    );
    emit_json(format!(
        "{{\"name\":\"grow/resizable-vs-fixed/RC (EBR)\",\"keys\":{total},\"threads\":{threads},\"resizable_mops\":{resizable:.3},\"fixed_mops\":{fixed:.3}}}"
    ));
    out.push(Outcome {
        mops: resizable,
        ops: 1,
    });
    out.push(Outcome {
        mops: fixed,
        ops: 1,
    });
}

fn main() {
    let dur = Duration::from_millis(bench_millis());
    let smoke = std::env::var("SERVICE_SMOKE").is_ok();
    let mut out = Vec::new();

    let skews: &[f64] = if smoke { &[0.99] } else { &[0.6, 0.99] };
    for &theta in skews {
        rc_cell::<EbrScheme>("EBR", theta, dur, &mut out);
        manual_cell::<Ebr>("EBR", theta, dur, &mut out);
        if !smoke {
            rc_cell::<IbrScheme>("IBR", theta, dur, &mut out);
            rc_cell::<HpScheme>("HP", theta, dur, &mut out);
            rc_cell::<HyalineScheme>("Hyaline", theta, dur, &mut out);
            manual_cell::<Ibr>("IBR", theta, dur, &mut out);
            manual_cell::<Hp>("HP", theta, dur, &mut out);
            manual_cell::<Hyaline>("Hyaline", theta, dur, &mut out);
        }
    }

    let (total, threads) = if smoke {
        (20_000, 2)
    } else {
        (400_000, service_threads())
    };
    grow_ab(total, threads, &mut out);

    // Smoke gate: every cell must have positive finite throughput and a
    // non-empty latency histogram (the grow cells carry a dummy ops=1).
    let bad = out
        .iter()
        .any(|o| !(o.mops > 0.0 && o.mops.is_finite()) || o.ops == 0);
    if bad {
        eprintln!("service: non-positive throughput or empty histogram; failing");
        std::process::exit(1);
    }
    eprintln!(
        "service: all {} cells positive with non-empty histograms",
        out.len()
    );
}
