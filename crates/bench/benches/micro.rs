//! Criterion micro-benchmarks: single-operation latencies of the pointer
//! types and counters, per scheme.

use criterion::{criterion_group, criterion_main, Criterion};

use cdrc::{AtomicSharedPtr, Scheme, SharedPtr};
use sticky::{CasCounter, Counter, StickyCounter};

fn counters(c: &mut Criterion) {
    let mut g = c.benchmark_group("counter");
    let sticky = StickyCounter::new(1);
    g.bench_function("sticky/inc_dec", |b| {
        b.iter(|| {
            if sticky.increment_if_not_zero() {
                sticky.decrement();
            }
        })
    });
    g.bench_function("sticky/load", |b| {
        b.iter(|| std::hint::black_box(sticky.load()))
    });
    let cas = CasCounter::with_count(1);
    g.bench_function("cas/inc_dec", |b| {
        b.iter(|| {
            if cas.increment_if_not_zero() {
                cas.decrement();
            }
        })
    });
    g.finish();
}

fn pointers<S: Scheme>(c: &mut Criterion, scheme: &str) {
    let mut g = c.benchmark_group(format!("ptr/{scheme}"));
    let slot: AtomicSharedPtr<u64, S> = AtomicSharedPtr::new(SharedPtr::new(7));
    g.bench_function("load", |b| b.iter(|| std::hint::black_box(slot.load())));
    g.bench_function("snapshot", |b| {
        let cs = S::global_domain().cs();
        b.iter(|| {
            let snap = slot.get_snapshot(&cs);
            std::hint::black_box(snap.as_ref());
        })
    });
    g.bench_function("shared_clone_drop", |b| {
        let p: SharedPtr<u64, S> = SharedPtr::new(3);
        b.iter(|| std::hint::black_box(p.clone()))
    });
    g.bench_function("store", |b| {
        b.iter(|| slot.store(SharedPtr::new(9)));
    });
    g.finish();
    S::global_domain().process_deferred(smr::current_tid());
}

fn all_pointers(c: &mut Criterion) {
    pointers::<cdrc::EbrScheme>(c, "ebr");
    pointers::<cdrc::IbrScheme>(c, "ibr");
    pointers::<cdrc::HpScheme>(c, "hp");
    pointers::<cdrc::HyalineScheme>(c, "hyaline");
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30);
    targets = counters, all_pointers
}
criterion_main!(benches);
