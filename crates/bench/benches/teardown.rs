//! Teardown bench: time-to-reclaimed for a million-node list and tree per
//! scheme — the headline cell of the immediate-recursive-destruction work.
//!
//! Two node flavours per shape, identical layout:
//!
//! * `graph` — the node implements [`cdrc::GraphNode`] and is allocated
//!   through `SharedPtr::new_graph_in`, so dropping the last root reference
//!   destructs the whole reachable subgraph iteratively on the spot (the
//!   CIRC-style immediate path this PR adds);
//! * `deferred` — the same node without the trait: every child edge
//!   relinquishes from inside the payload's `Drop` and takes one deferral
//!   round-trip per level (the pre-PR behaviour, kept in-binary as the
//!   same-machine baseline — there is no older binary to compare against).
//!
//! Each cell measures from "drop the root" to `allocated() == freed()` on a
//! private domain and reports total ms plus ns/node; the JSON line carries
//! the deferred baseline as `before_ms` / `before_ns_per_node`.
//!
//! Doubles as a CI smoke with the usual contract: after printing its cells
//! the process exits nonzero if any cell is non-positive/non-finite or a
//! domain failed to reclaim every node. `TEARDOWN_SMOKE=1` shrinks the
//! structures (50k nodes) for the smoke matrix; `TEARDOWN_NODES` overrides
//! the node count outright.

use std::time::Instant;

use cdrc::{
    AtomicSharedPtr, DomainRef, EbrScheme, EdgeCollector, GraphNode, HpScheme, HyalineScheme,
    IbrScheme, Scheme, SharedPtr,
};

/// Chain node with the edge trait: immediate iterative destruction.
struct GraphChain<S: Scheme> {
    next: AtomicSharedPtr<GraphChain<S>, S>,
}

impl<S: Scheme> GraphNode<S> for GraphChain<S> {
    fn pop_edges(&mut self, out: &mut EdgeCollector<'_, S>) {
        out.take_atomic(&mut self.next);
    }
}

/// Chain node without the trait: one deferral round-trip per level.
struct DeferredChain<S: Scheme> {
    next: AtomicSharedPtr<DeferredChain<S>, S>,
}

/// Binary node with the edge trait.
struct GraphTree<S: Scheme> {
    left: AtomicSharedPtr<GraphTree<S>, S>,
    right: AtomicSharedPtr<GraphTree<S>, S>,
}

impl<S: Scheme> GraphNode<S> for GraphTree<S> {
    fn pop_edges(&mut self, out: &mut EdgeCollector<'_, S>) {
        out.take_atomic(&mut self.left);
        out.take_atomic(&mut self.right);
    }
}

/// Binary node without the trait.
struct DeferredTree<S: Scheme> {
    left: AtomicSharedPtr<DeferredTree<S>, S>,
    right: AtomicSharedPtr<DeferredTree<S>, S>,
}

fn emit_json(line: String) {
    if let Ok(path) = std::env::var("BENCH_JSON") {
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "{line}");
        }
    }
}

fn node_count() -> usize {
    if let Ok(v) = std::env::var("TEARDOWN_NODES") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    if std::env::var("TEARDOWN_SMOKE").is_ok() {
        50_000
    } else {
        1_000_000
    }
}

/// Drops `root`, drives the domain until every node is reclaimed, and
/// returns the elapsed time. Panics (→ nonzero exit) if the domain does not
/// balance — a leak in the destruct path must fail CI, not report a cell.
fn time_to_reclaimed<T, S: Scheme>(d: &DomainRef<S>, root: SharedPtr<T, S>) -> f64 {
    let t = smr::current_tid();
    let start = Instant::now();
    drop(root);
    let mut rounds = 0u32;
    while d.allocated() != d.freed() {
        d.process_deferred(t);
        rounds += 1;
        assert!(
            rounds < 1_000,
            "teardown did not converge: {} allocated, {} freed",
            d.allocated(),
            d.freed()
        );
    }
    start.elapsed().as_secs_f64() * 1e3
}

/// Chain-shaped node: how to allocate one and reach its `next` edge.
trait ChainShape<S: Scheme>: Sized {
    fn alloc(d: &DomainRef<S>) -> SharedPtr<Self, S>;
    fn next(&self) -> &AtomicSharedPtr<Self, S>;
}

impl<S: Scheme> ChainShape<S> for GraphChain<S> {
    fn alloc(d: &DomainRef<S>) -> SharedPtr<Self, S> {
        SharedPtr::new_graph_in(
            GraphChain {
                next: AtomicSharedPtr::null_in(d),
            },
            d,
        )
    }
    fn next(&self) -> &AtomicSharedPtr<Self, S> {
        &self.next
    }
}

impl<S: Scheme> ChainShape<S> for DeferredChain<S> {
    fn alloc(d: &DomainRef<S>) -> SharedPtr<Self, S> {
        SharedPtr::new_in(
            DeferredChain {
                next: AtomicSharedPtr::null_in(d),
            },
            d,
        )
    }
    fn next(&self) -> &AtomicSharedPtr<Self, S> {
        &self.next
    }
}

/// Tree-shaped node: how to allocate one and reach its child edges.
trait TreeShape<S: Scheme>: Sized {
    fn alloc(d: &DomainRef<S>) -> SharedPtr<Self, S>;
    fn children(&self) -> (&AtomicSharedPtr<Self, S>, &AtomicSharedPtr<Self, S>);
}

impl<S: Scheme> TreeShape<S> for GraphTree<S> {
    fn alloc(d: &DomainRef<S>) -> SharedPtr<Self, S> {
        SharedPtr::new_graph_in(
            GraphTree {
                left: AtomicSharedPtr::null_in(d),
                right: AtomicSharedPtr::null_in(d),
            },
            d,
        )
    }
    fn children(&self) -> (&AtomicSharedPtr<Self, S>, &AtomicSharedPtr<Self, S>) {
        (&self.left, &self.right)
    }
}

impl<S: Scheme> TreeShape<S> for DeferredTree<S> {
    fn alloc(d: &DomainRef<S>) -> SharedPtr<Self, S> {
        SharedPtr::new_in(
            DeferredTree {
                left: AtomicSharedPtr::null_in(d),
                right: AtomicSharedPtr::null_in(d),
            },
            d,
        )
    }
    fn children(&self) -> (&AtomicSharedPtr<Self, S>, &AtomicSharedPtr<Self, S>) {
        (&self.left, &self.right)
    }
}

/// Builds an `n`-node singly-linked chain under `d` and returns its head.
fn build_chain<T: ChainShape<S>, S: Scheme>(d: &DomainRef<S>, n: usize) -> SharedPtr<T, S> {
    let mut head: SharedPtr<T, S> = SharedPtr::null();
    for _ in 0..n {
        let node = T::alloc(d);
        let old = std::mem::replace(&mut head, node);
        head.as_ref().unwrap().next().store(old);
    }
    head
}

/// Builds a perfect binary tree of `depth` levels (2^depth - 1 nodes).
fn build_tree<T: TreeShape<S>, S: Scheme>(d: &DomainRef<S>, depth: u32) -> SharedPtr<T, S> {
    let node = T::alloc(d);
    if depth > 1 {
        let (l, r) = node.as_ref().unwrap().children();
        l.store(build_tree(d, depth - 1));
        r.store(build_tree(d, depth - 1));
    }
    node
}

/// Depth whose perfect tree is the largest not exceeding `n` nodes.
fn tree_depth(n: usize) -> u32 {
    let mut depth = 1u32;
    while (1usize << (depth + 1)) - 1 <= n {
        depth += 1;
    }
    depth
}

fn list_cell<S: Scheme>(scheme: &str, n: usize, out: &mut Vec<f64>) {
    // Graph flavour: immediate iterative destruction.
    let d: DomainRef<S> = DomainRef::new();
    let head = build_chain::<GraphChain<S>, S>(&d, n);
    let ms = time_to_reclaimed(&d, head);

    // Deferred flavour: the in-binary baseline.
    let d: DomainRef<S> = DomainRef::new();
    let head = build_chain::<DeferredChain<S>, S>(&d, n);
    let before_ms = time_to_reclaimed(&d, head);

    let ns = ms * 1e6 / n as f64;
    let before_ns = before_ms * 1e6 / n as f64;
    let name = format!("teardown/list/{scheme}");
    println!("{name:<28} {ms:>9.1} ms  ({ns:.1} ns/node; deferred {before_ms:.1} ms)");
    emit_json(format!(
        "{{\"name\":\"{name}\",\"nodes\":{n},\"ms\":{ms:.3},\"ns_per_node\":{ns:.3},\
         \"before_ms\":{before_ms:.3},\"before_ns_per_node\":{before_ns:.3}}}"
    ));
    out.extend([ms, before_ms]);
}

fn tree_cell<S: Scheme>(scheme: &str, n: usize, out: &mut Vec<f64>) {
    let depth = tree_depth(n);
    let nodes = (1usize << depth) - 1;

    let d: DomainRef<S> = DomainRef::new();
    let root = build_tree::<GraphTree<S>, S>(&d, depth);
    let ms = time_to_reclaimed(&d, root);

    let d: DomainRef<S> = DomainRef::new();
    let root = build_tree::<DeferredTree<S>, S>(&d, depth);
    let before_ms = time_to_reclaimed(&d, root);

    let ns = ms * 1e6 / nodes as f64;
    let before_ns = before_ms * 1e6 / nodes as f64;
    let name = format!("teardown/tree/{scheme}");
    println!("{name:<28} {ms:>9.1} ms  ({ns:.1} ns/node; deferred {before_ms:.1} ms)");
    emit_json(format!(
        "{{\"name\":\"{name}\",\"nodes\":{nodes},\"ms\":{ms:.3},\"ns_per_node\":{ns:.3},\
         \"before_ms\":{before_ms:.3},\"before_ns_per_node\":{before_ns:.3}}}"
    ));
    out.extend([ms, before_ms]);
}

fn main() {
    let n = node_count();
    let mut measured = Vec::new();

    list_cell::<EbrScheme>("ebr", n, &mut measured);
    list_cell::<IbrScheme>("ibr", n, &mut measured);
    list_cell::<HpScheme>("hp", n, &mut measured);
    list_cell::<HyalineScheme>("hyaline", n, &mut measured);

    tree_cell::<EbrScheme>("ebr", n, &mut measured);
    tree_cell::<IbrScheme>("ibr", n, &mut measured);
    tree_cell::<HpScheme>("hp", n, &mut measured);
    tree_cell::<HyalineScheme>("hyaline", n, &mut measured);

    // Smoke contract: every cell strictly positive and finite (the
    // allocated()==freed() convergence is asserted inside each cell).
    if let Some(bad) = measured.iter().find(|&&v| !(v > 0.0 && v.is_finite())) {
        eprintln!("teardown: non-positive or non-finite measurement ({bad}); failing");
        std::process::exit(1);
    }
    eprintln!("teardown: all {} cells strictly positive", measured.len());
}
