//! Guard-API micro-benchmark: quantifies the §3.4 amortization the
//! guard-centric operation API enables, per scheme.
//!
//! Every cell runs the same read-heavy workload twice: with `batch=1` (one
//! critical section per operation — exactly what the guard-free wrappers
//! pay) and with `batch=64` (one [`pin`](lockfree::ConcurrentMap::pin) per
//! 64 operations, the paper's methodology). The ratio is the measured win
//! of holding a guard across a batch; the HP-backed variants gain the most
//! because every section of theirs costs announcement traffic on both the
//! strong pointer reads and the section bookkeeping.
//!
//! # The PR-2 `dlqueue/EBR/batch64` inversion, diagnosed
//!
//! The first recording of this bench showed batched EBR dlqueue *losing*
//! to unbatched (984 ns vs 789 ns per op) — batching should never lose.
//! The mechanism: every engine used to trigger a scan whenever
//! `retired.len() >= eject_threshold`, re-checking on *each* retire. A
//! batched dlqueue worker retires one node per pop while holding its own
//! section open, and its own announcement pins every entry retired during
//! the section (for EBR, `min_ann <= retire epoch` always), so once the
//! list reached the threshold it could not shrink until the guard dropped —
//! and from then on *every retire* paid a full slot-array scan plus a
//! retired-list rebuild (with allocation). Unbatched workers close their
//! section between operations, so their scans actually ejected and the
//! list stayed short: the batched run was strictly adding work. The fix
//! (smr engines' `Local::next_scan`) spaces automatic scans a full
//! threshold apart regardless of outcome and retains the list in place;
//! see BENCH_guard_api.json's note for the before/after cells.
//!
//! Doubles as the CI regression gate for the guard API: after printing its
//! cells it *fails the process* if any measured throughput is not strictly
//! positive — an API regression that deadlocks inside a held guard (e.g. a
//! structure operation that blocks on its own open section) shows up as a
//! hung or zero-throughput cell. `GUARD_API_SMOKE=1` restricts the run to
//! one fast cell for CI.
//!
//! Environment: `BENCH_MS`, `BENCH_JSON` (append one JSON line per cell),
//! `GUARD_API_THREADS` (default 4), `GUARD_API_SMOKE`.

use std::time::Duration;

use bench::settle_scheme;
use bench_harness::{
    bench_millis, prefill, print_header, run_map_batched, run_queue_batched, Row, Workload,
};
use cdrc::{EbrScheme, HpScheme, HyalineScheme, IbrScheme};
use lockfree::manual::{DoubleLinkQueue, MichaelHashMap};
use lockfree::rc::{RcDoubleLinkQueue, RcMichaelHashMap};
use lockfree::{ConcurrentMap, ConcurrentQueue};

const BATCHES: [usize; 2] = [1, 64];

fn threads() -> usize {
    std::env::var("GUARD_API_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(4)
}

fn emit(structure: &str, scheme: &str, batch: usize, threads: usize, mops: f64) {
    let row = Row {
        figure: "guard_api".into(),
        structure: structure.into(),
        scheme: format!("{scheme} batch={batch}"),
        threads,
        mops,
        extra_nodes_avg: 0,
        extra_nodes_peak: 0,
    };
    println!("{}", row.csv());
    if let Ok(path) = std::env::var("BENCH_JSON") {
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let ns_per_op = if mops > 0.0 { 1e3 / mops } else { f64::NAN };
            let _ = writeln!(
                f,
                "{{\"name\":\"guard_api/{structure}/{scheme}/batch{batch}\",\"mops\":{mops:.3},\"ns_per_op\":{ns_per_op:.3}}}"
            );
        }
    }
}

/// One (structure, scheme) pair across both batch sizes; returns the
/// measured throughputs for the final positivity gate.
fn map_cells<M: ConcurrentMap<u64, u64>>(
    structure: &str,
    scheme: &str,
    spec: &Workload,
    make: impl Fn() -> M,
    settle: impl Fn(),
    out: &mut Vec<f64>,
) {
    let dur = Duration::from_millis(bench_millis());
    let threads = threads();
    for batch in BATCHES {
        let map = make();
        prefill(&map, spec);
        let (mops, _, _) = run_map_batched(&map, spec, threads, dur, batch);
        drop(map);
        settle();
        emit(structure, scheme, batch, threads, mops);
        out.push(mops);
    }
}

fn queue_cells<Q: ConcurrentQueue<u64>>(
    scheme: &str,
    make: impl Fn() -> Q,
    settle: impl Fn(),
    out: &mut Vec<f64>,
) {
    let dur = Duration::from_millis(bench_millis());
    let threads = threads();
    for batch in BATCHES {
        let q = make();
        let mops = run_queue_batched(&q, threads, dur, batch);
        drop(q);
        settle();
        emit("dlqueue", scheme, batch, threads, mops);
        out.push(mops);
    }
}

fn main() {
    print_header();
    let spec = Workload::points(16_384, 10);
    let buckets = 16_384usize;
    let mut mops = Vec::new();

    // The one-cell CI smoke: the HP-backed RC hash map, the variant the
    // guard API helps most and the one most likely to deadlock if an
    // operation re-entered its own section incorrectly.
    map_cells(
        "hash",
        "RC (HP)",
        &spec,
        || RcMichaelHashMap::<u64, u64, HpScheme>::with_buckets(buckets),
        settle_scheme::<HpScheme>,
        &mut mops,
    );

    if std::env::var("GUARD_API_SMOKE").is_err() {
        map_cells(
            "hash",
            "RC (EBR)",
            &spec,
            || RcMichaelHashMap::<u64, u64, EbrScheme>::with_buckets(buckets),
            settle_scheme::<EbrScheme>,
            &mut mops,
        );
        map_cells(
            "hash",
            "RC (IBR)",
            &spec,
            || RcMichaelHashMap::<u64, u64, IbrScheme>::with_buckets(buckets),
            settle_scheme::<IbrScheme>,
            &mut mops,
        );
        map_cells(
            "hash",
            "RC (Hyaline)",
            &spec,
            || RcMichaelHashMap::<u64, u64, HyalineScheme>::with_buckets(buckets),
            settle_scheme::<HyalineScheme>,
            &mut mops,
        );
        map_cells(
            "hash",
            "HP",
            &spec,
            || MichaelHashMap::<u64, u64, smr::Hp>::with_buckets(buckets),
            || {},
            &mut mops,
        );
        map_cells(
            "hash",
            "EBR",
            &spec,
            || MichaelHashMap::<u64, u64, smr::Ebr>::with_buckets(buckets),
            || {},
            &mut mops,
        );
        queue_cells(
            "RC (HP)",
            RcDoubleLinkQueue::<u64, HpScheme>::new,
            settle_scheme::<HpScheme>,
            &mut mops,
        );
        queue_cells(
            "EBR",
            DoubleLinkQueue::<u64, smr::Ebr>::new,
            || {},
            &mut mops,
        );
    }

    // Regression gate: every cell must have made forward progress (NaN is
    // caught too: it fails the `> 0.0` test).
    if let Some(bad) = mops
        .iter()
        .find(|&&m| m.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater))
    {
        eprintln!("guard_api: non-positive throughput measured ({bad}); failing");
        std::process::exit(1);
    }
    eprintln!("guard_api: all {} cells strictly positive", mops.len());
}
