//! Figure 11: Natarajan-Mittal tree, 50% updates / 50% range queries of
//! size 64, N = 100K keys from [0, 200K).
//!
//! Series: manual EBR / IBR / Hyaline (manual HP cannot protect an
//! unbounded range query, so — as in the paper — it has no series) and the
//! four automatic schemes. The paper's headline: the protected-region RC
//! schemes beat RC (HP) by ~7× at high thread counts, because RCHP's range
//! queries exhaust hazard slots and fall back to reference-count
//! increments, and the RC-region schemes track their manual counterparts
//! within 10–15%.

use bench::{map_series, section_enabled, settle_scheme};
use bench_harness::{print_header, Workload};
use cdrc::{EbrScheme, HpScheme, HyalineScheme, IbrScheme};
use lockfree::manual::NatarajanMittalTree;
use lockfree::rc::RcNatarajanMittalTree;
use smr::{Ebr, Hyaline, Ibr};

fn main() {
    let spec = Workload::fig11();
    print_header();
    if section_enabled("FIG11_ONLY", "manual") {
        map_series(
            "fig11",
            "nmtree-rq",
            "EBR",
            &spec,
            NatarajanMittalTree::<u64, u64, Ebr>::new,
            || {},
        );
        map_series(
            "fig11",
            "nmtree-rq",
            "IBR",
            &spec,
            NatarajanMittalTree::<u64, u64, Ibr>::new,
            || {},
        );
        map_series(
            "fig11",
            "nmtree-rq",
            "Hyaline",
            &spec,
            NatarajanMittalTree::<u64, u64, Hyaline>::new,
            || {},
        );
    }
    if section_enabled("FIG11_ONLY", "rc") {
        map_series(
            "fig11",
            "nmtree-rq",
            "RC (HP)",
            &spec,
            RcNatarajanMittalTree::<u64, u64, HpScheme>::new,
            settle_scheme::<HpScheme>,
        );
        map_series(
            "fig11",
            "nmtree-rq",
            "RC (EBR)",
            &spec,
            RcNatarajanMittalTree::<u64, u64, EbrScheme>::new,
            settle_scheme::<EbrScheme>,
        );
        map_series(
            "fig11",
            "nmtree-rq",
            "RC (IBR)",
            &spec,
            RcNatarajanMittalTree::<u64, u64, IbrScheme>::new,
            settle_scheme::<IbrScheme>,
        );
        map_series(
            "fig11",
            "nmtree-rq",
            "RC (Hyaline)",
            &spec,
            RcNatarajanMittalTree::<u64, u64, HyalineScheme>::new,
            settle_scheme::<HyalineScheme>,
        );
    }
}
