//! Ablation (§5.1): sensitivity of EBR and IBR to `epoch_freq` (the number
//! of allocations between epoch advances). The paper tunes EBR to 10 and
//! IBR to 40: advancing too often bottlenecks the shared epoch counter,
//! advancing too rarely inflates the retired backlog ("extra nodes").

use std::sync::Arc;

use bench_harness::{prefill, print_header, run_map, thread_counts, Row, Workload};
use lockfree::manual::HarrisMichaelList;
use lockfree::NodeStats;
use smr::{AcquireRetire, Ebr, GlobalEpoch, Ibr, SmrConfig};

fn series<S: AcquireRetire>(scheme: &str, freq: u64, spec: &Workload) {
    let threads = *thread_counts().last().unwrap_or(&4);
    let cfg = SmrConfig {
        epoch_freq: freq,
        ..S::default_config()
    };
    let smr = Arc::new(S::new(Arc::new(GlobalEpoch::new()), cfg));
    let list: HarrisMichaelList<u64, u64, S> =
        HarrisMichaelList::with_shared(smr, Arc::new(NodeStats::new()));
    prefill(&list, spec);
    let (mops, avg, peak) = run_map(&list, spec, threads);
    println!(
        "{}",
        Row {
            figure: "ablation_epoch_freq".into(),
            structure: "list".into(),
            scheme: format!("{scheme} freq={freq}"),
            threads,
            mops,
            extra_nodes_avg: avg,
            extra_nodes_peak: peak,
        }
        .csv()
    );
}

fn main() {
    print_header();
    let spec = Workload::points(1_000, 50);
    for freq in [1u64, 10, 40, 100, 1000] {
        series::<Ebr>("EBR", freq, &spec);
    }
    for freq in [1u64, 10, 40, 100, 1000] {
        series::<Ibr>("IBR", freq, &spec);
    }
}
