//! Figure 13: throughput and memory ("extra nodes") for manual vs automatic
//! reclamation across structures and update rates.
//!
//! Sections (select with `FIG13_ONLY=a,c`):
//!
//! * a — Harris-Michael list, N=1000, 10% updates
//! * b — Michael hash table, N=100K (load factor 1), 10% updates
//! * c — NM tree, N=100K, 10% updates
//! * d — NM tree, N=100M in the paper, scaled by `FIG13D_SIZE`
//!   (default 1M) — the cache-cold large-tree point
//! * e — NM tree, N=100K, 1% updates
//! * f — NM tree, N=100K, 50% updates
//!
//! Series: HP / EBR / IBR / Hyaline manual, and their four RC conversions.

use bench::{map_series, section_enabled, settle_scheme};
use bench_harness::{print_header, Workload};
use cdrc::{EbrScheme, HpScheme, HyalineScheme, IbrScheme, Scheme};
use lockfree::manual::{HarrisMichaelList, MichaelHashMap, NatarajanMittalTree};
use lockfree::rc::{RcHarrisMichaelList, RcMichaelHashMap, RcNatarajanMittalTree};
use smr::{AcquireRetire, Ebr, Hp, Hyaline, Ibr};

fn list_section(figure: &str, spec: &Workload) {
    fn one<S: AcquireRetire>(figure: &str, name: &str, spec: &Workload) {
        map_series(
            figure,
            "list",
            name,
            spec,
            HarrisMichaelList::<u64, u64, S>::new,
            || {},
        );
    }
    fn one_rc<S: Scheme>(figure: &str, name: &str, spec: &Workload) {
        map_series(
            figure,
            "list",
            name,
            spec,
            RcHarrisMichaelList::<u64, u64, S>::new,
            settle_scheme::<S>,
        );
    }
    one::<Hp>(figure, "HP", spec);
    one::<Ebr>(figure, "EBR", spec);
    one::<Ibr>(figure, "IBR", spec);
    one::<Hyaline>(figure, "Hyaline", spec);
    one_rc::<HpScheme>(figure, "RC (HP)", spec);
    one_rc::<EbrScheme>(figure, "RC (EBR)", spec);
    one_rc::<IbrScheme>(figure, "RC (IBR)", spec);
    one_rc::<HyalineScheme>(figure, "RC (Hyaline)", spec);
}

fn hash_section(figure: &str, spec: &Workload) {
    let buckets = spec.initial_size as usize; // load factor 1
    fn one<S: AcquireRetire>(figure: &str, name: &str, spec: &Workload, buckets: usize) {
        map_series(
            figure,
            "hash",
            name,
            spec,
            move || MichaelHashMap::<u64, u64, S>::with_buckets(buckets),
            || {},
        );
    }
    fn one_rc<S: Scheme>(figure: &str, name: &str, spec: &Workload, buckets: usize) {
        map_series(
            figure,
            "hash",
            name,
            spec,
            move || RcMichaelHashMap::<u64, u64, S>::with_buckets(buckets),
            settle_scheme::<S>,
        );
    }
    one::<Hp>(figure, "HP", spec, buckets);
    one::<Ebr>(figure, "EBR", spec, buckets);
    one::<Ibr>(figure, "IBR", spec, buckets);
    one::<Hyaline>(figure, "Hyaline", spec, buckets);
    one_rc::<HpScheme>(figure, "RC (HP)", spec, buckets);
    one_rc::<EbrScheme>(figure, "RC (EBR)", spec, buckets);
    one_rc::<IbrScheme>(figure, "RC (IBR)", spec, buckets);
    one_rc::<HyalineScheme>(figure, "RC (Hyaline)", spec, buckets);
}

fn tree_section(figure: &str, spec: &Workload) {
    fn one<S: AcquireRetire>(figure: &str, name: &str, spec: &Workload) {
        map_series(
            figure,
            "nmtree",
            name,
            spec,
            NatarajanMittalTree::<u64, u64, S>::new,
            || {},
        );
    }
    fn one_rc<S: Scheme>(figure: &str, name: &str, spec: &Workload) {
        map_series(
            figure,
            "nmtree",
            name,
            spec,
            RcNatarajanMittalTree::<u64, u64, S>::new,
            settle_scheme::<S>,
        );
    }
    one::<Hp>(figure, "HP", spec);
    one::<Ebr>(figure, "EBR", spec);
    one::<Ibr>(figure, "IBR", spec);
    one::<Hyaline>(figure, "Hyaline", spec);
    one_rc::<HpScheme>(figure, "RC (HP)", spec);
    one_rc::<EbrScheme>(figure, "RC (EBR)", spec);
    one_rc::<IbrScheme>(figure, "RC (IBR)", spec);
    one_rc::<HyalineScheme>(figure, "RC (Hyaline)", spec);
}

fn main() {
    print_header();
    if section_enabled("FIG13_ONLY", "a") {
        list_section("fig13a", &Workload::points(1_000, 10));
    }
    if section_enabled("FIG13_ONLY", "b") {
        hash_section("fig13b", &Workload::points(100_000, 10));
    }
    if section_enabled("FIG13_ONLY", "c") {
        tree_section("fig13c", &Workload::points(100_000, 10));
    }
    if section_enabled("FIG13_ONLY", "d") {
        let n: u64 = std::env::var("FIG13D_SIZE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1_000_000);
        tree_section("fig13d", &Workload::points(n, 10));
    }
    if section_enabled("FIG13_ONLY", "e") {
        tree_section("fig13e", &Workload::points(100_000, 1));
    }
    if section_enabled("FIG13_ONLY", "f") {
        tree_section("fig13f", &Workload::points(100_000, 50));
    }
}
