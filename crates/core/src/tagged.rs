//! Tagged (marked) pointer values.
//!
//! Lock-free data structures mark pointers by setting low-order bits of the
//! stored word (Harris-style deletion marks, Natarajan-Mittal flag/tag
//! edges). [`TaggedPtr`] is a *value* — a snapshot of such a word for
//! comparisons and tag inspection. It confers no protection and cannot be
//! dereferenced; protected access goes through
//! [`SnapshotPtr`](crate::SnapshotPtr).

use std::fmt;
use std::marker::PhantomData;

use smr::TAG_MASK;

/// A raw pointer word (address plus low tag bits) from an atomic pointer.
///
/// `TaggedPtr` is `Copy` and carries no ownership: it is the "expected"
/// argument of compare-and-swap operations and the subject of mark queries.
///
/// # Examples
///
/// ```
/// use cdrc::TaggedPtr;
///
/// let p = TaggedPtr::<u32>::null().with_tag(0b01);
/// assert!(p.is_null());
/// assert_eq!(p.tag(), 0b01);
/// ```
pub struct TaggedPtr<T> {
    word: usize,
    _marker: PhantomData<*mut T>,
}

impl<T> TaggedPtr<T> {
    /// The null pointer with tag 0.
    #[inline]
    pub fn null() -> Self {
        TaggedPtr {
            word: 0,
            _marker: PhantomData,
        }
    }

    #[inline]
    pub(crate) fn from_word(word: usize) -> Self {
        TaggedPtr {
            word,
            _marker: PhantomData,
        }
    }

    /// The word naming the object behind any strong borrow, with tag 0 —
    /// lets a witness loop that just installed `r` form its next `expected`
    /// without re-reading the location.
    #[inline]
    pub fn from_strong<R: crate::StrongRef<T>>(r: &R) -> Self {
        TaggedPtr {
            word: r.addr(),
            _marker: PhantomData,
        }
    }

    /// The raw word: address bits plus tag bits.
    #[inline]
    pub fn word(self) -> usize {
        self.word
    }

    /// The untagged address bits.
    #[inline]
    pub fn addr(self) -> usize {
        self.word & !TAG_MASK
    }

    /// The tag bits (low [`smr::TAG_MASK`] bits).
    #[inline]
    pub fn tag(self) -> usize {
        self.word & TAG_MASK
    }

    /// This value with the tag bits replaced by `tag`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `tag` exceeds [`smr::TAG_MASK`].
    #[inline]
    pub fn with_tag(self, tag: usize) -> Self {
        debug_assert_eq!(tag & !TAG_MASK, 0, "tag exceeds TAG_MASK");
        TaggedPtr {
            word: self.addr() | tag,
            _marker: PhantomData,
        }
    }

    /// Whether the address bits are null (regardless of tag).
    #[inline]
    pub fn is_null(self) -> bool {
        self.addr() == 0
    }

    /// Whether the two values reference the same object, ignoring tags.
    #[inline]
    pub fn ptr_eq(self, other: Self) -> bool {
        self.addr() == other.addr()
    }
}

impl<T> Clone for TaggedPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for TaggedPtr<T> {}

impl<T> PartialEq for TaggedPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.word == other.word
    }
}
impl<T> Eq for TaggedPtr<T> {}

impl<T> fmt::Debug for TaggedPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaggedPtr")
            .field("addr", &format_args!("{:#x}", self.addr()))
            .field("tag", &self.tag())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_algebra() {
        let p = TaggedPtr::<u8>::from_word(0x1000);
        assert_eq!(p.tag(), 0);
        let q = p.with_tag(0b11);
        assert_eq!(q.tag(), 0b11);
        assert_eq!(q.addr(), 0x1000);
        assert!(p.ptr_eq(q));
        assert_ne!(p, q);
        assert_eq!(q.with_tag(0), p);
    }

    #[test]
    fn null_with_tag_is_still_null() {
        let p = TaggedPtr::<u8>::null().with_tag(1);
        assert!(p.is_null());
        assert_eq!(p.word(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "tag exceeds")]
    fn oversized_tag_panics() {
        let _ = TaggedPtr::<u8>::null().with_tag(8);
    }
}
