//! The control block: a managed object together with its strong and weak
//! reference counts and enough type information to destroy and free it from
//! type-erased code.
//!
//! Layout (`#[repr(C)]`, header first) lets the deferred-operation machinery
//! treat every control block as a [`Header`] regardless of the payload type;
//! the per-type vtable restores typing at disposal/deallocation time.
//!
//! Counter convention (§4.2): the weak count stores
//! `#weak refs + (1 if #strong refs > 0 else 0)`, so the control block is
//! freed exactly when the weak count hits zero, and the payload is destroyed
//! (disposed) when the strong count hits zero.
//!
//! Every block also records **which reclamation domain allocated it** (a
//! type-erased `*const Domain<S>`) and owns one `Arc` reference on that
//! domain, released when the block is freed. That is what lets the
//! single-word owned pointer types ([`SharedPtr`](crate::SharedPtr),
//! [`WeakPtr`](crate::WeakPtr)) find their domain without carrying a handle:
//! while a block is alive, its domain is alive.

use std::mem::MaybeUninit;
use std::ptr;
use std::sync::Arc;

use smr::AcquireRetire;
use sticky::{Counter, StickyCounter};

use crate::domain::{Domain, Scheme};
use crate::engine::DISPLACED;

/// Type-erased destruction hooks for a control block.
pub(crate) struct Vtable {
    /// Drops the payload in place (the *dispose* operation).
    pub dispose: unsafe fn(*mut Header),
    /// Frees the whole control block; the payload must already be disposed.
    pub dealloc: unsafe fn(*mut Header),
    /// Releases the block's owning reference on its domain (an
    /// `Arc::decrement_strong_count`); no-op for a null domain pointer.
    /// Callers capture `Header::domain` *before* `dealloc` and invoke this
    /// afterwards — the block must not outlive its own domain reference.
    pub release_domain: unsafe fn(*const ()),
    /// Extracts the payload's outgoing graph edges into an [`EdgeSink`],
    /// nulling the payload's pointer fields so the `dispose` that follows
    /// cannot re-relinquish them. `None` for payloads without a
    /// [`GraphNode`] implementation — the destruct machinery then falls
    /// back to the payload's own `Drop`, which relinquishes edges through
    /// the deferred path one at a time (always safe, never immediate).
    pub pop_edges: Option<unsafe fn(*mut Header, *mut EdgeSink)>,
}

/// The type-erased prefix of every control block.
#[repr(C)]
pub(crate) struct Header {
    pub strong: StickyCounter,
    pub weak: StickyCounter,
    /// Birth epoch recorded by the owning domain's scheme at allocation.
    pub birth: u64,
    /// The `Domain<S>` this block was allocated under, erased to `()` (the
    /// scheme type is restored by the pointer types, whose `S` parameter is
    /// pinned at allocation). Points into a live `Arc` allocation: the block
    /// holds one strong count on it until [`Vtable::release_domain`] runs.
    pub domain: *const (),
    pub vtable: &'static Vtable,
}

/// A managed object: header followed by the payload in one allocation.
#[repr(C)]
pub(crate) struct Counted<T> {
    pub header: Header,
    /// `MaybeUninit` so the payload's drop runs exactly once — at dispose
    /// time — rather than again when the allocation is freed.
    pub value: MaybeUninit<T>,
}

unsafe fn dispose_impl<T>(h: *mut Header) {
    smr::sanitize::on_dispose(h as usize);
    let counted = h as *mut Counted<T>;
    ptr::drop_in_place((*counted).value.as_mut_ptr());
    // Poison the disposed payload so a latent dangling read that slips past
    // the shadow-state checks still fails loudly instead of observing stale
    // but plausible bytes. Sanitize builds only.
    #[cfg(feature = "sanitize")]
    ptr::write_bytes(
        (*counted).value.as_mut_ptr() as *mut u8,
        0xDB,
        std::mem::size_of::<T>(),
    );
}

unsafe fn dealloc_impl<T>(h: *mut Header) {
    smr::sanitize::on_free(h as usize);
    drop(Box::from_raw(h as *mut Counted<T>));
}

unsafe fn release_domain_impl<S: AcquireRetire>(domain: *const ()) {
    if !domain.is_null() {
        // The pointer originated from `Arc::as_ptr` in `DomainRef::allocate`
        // and the block's own count kept the Arc alive until here.
        Arc::decrement_strong_count(domain as *const Domain<S>);
    }
}

struct VtableOf<T, S>(std::marker::PhantomData<(T, fn(S))>);

impl<T, S: AcquireRetire> VtableOf<T, S> {
    const VTABLE: Vtable = Vtable {
        dispose: dispose_impl::<T>,
        dealloc: dealloc_impl::<T>,
        release_domain: release_domain_impl::<S>,
        pop_edges: None,
    };
}

// ---------------------------------------------------------------------
// Graph-aware payloads: immediate recursive destruction support.
// ---------------------------------------------------------------------

/// Type-erased bucket of a dead node's outgoing edges, filled by
/// [`Vtable::pop_edges`] and consumed by the domain's destruct worklist.
///
/// The split is by *safety class*, not by how the field was declared:
/// direct edges are references the dead parent itself owned, whose
/// decrement may be applied immediately under the parent's dispose rights;
/// deferred edges are displaced-class references (a concurrent reader of
/// the location they were displaced from may still be protected), which
/// must go through the domain's deferred machinery.
#[derive(Default)]
pub(crate) struct EdgeSink {
    pub strong_direct: Vec<usize>,
    pub strong_deferred: Vec<usize>,
    pub weak_direct: Vec<usize>,
    pub weak_deferred: Vec<usize>,
}

/// A payload type that can enumerate its outgoing reference-counted edges,
/// enabling *immediate recursive destruction*: when a graph-allocated
/// object's strong count reaches zero with no weak observers, the domain
/// destructs the entire reachable zero-count subgraph iteratively inside
/// the current operation instead of re-deferring each child edge through
/// the reclamation machinery one node at a time.
///
/// # Contract
///
/// `pop_edges` must *move every reference-counted edge the payload owns*
/// into the collector — each [`SharedPtr`](crate::SharedPtr),
/// [`AtomicSharedPtr`](crate::AtomicSharedPtr),
/// [`WeakPtr`](crate::WeakPtr) and [`AtomicWeakPtr`](crate::AtomicWeakPtr)
/// field — using the collector's `take_*` methods, which null the field in
/// place. Missing an edge is safe but forfeits the optimization for it (the
/// payload's `Drop` then relinquishes it through the deferred path);
/// relinquishing an edge by any other means from inside `pop_edges` is
/// **not** allowed. The method is called at most once per object, after its
/// strong count reached zero and before its payload is dropped.
///
/// Implementing the trait has no effect unless the object is allocated
/// through a graph-aware constructor ([`SharedPtr::new_graph`],
/// [`SharedPtr::new_graph_in`](crate::SharedPtr::new_graph_in)).
///
/// [`SharedPtr::new_graph`]: crate::SharedPtr::new_graph
pub trait GraphNode<S: Scheme> {
    /// Moves all outgoing reference-counted edges into `out`, nulling the
    /// corresponding fields.
    fn pop_edges(&mut self, out: &mut EdgeCollector<'_, S>);
}

/// Sink handed to [`GraphNode::pop_edges`]: takes ownership of a dead
/// node's outgoing edges and classifies each for immediate or deferred
/// relinquish.
pub struct EdgeCollector<'a, S: Scheme> {
    sink: &'a mut EdgeSink,
    _scheme: std::marker::PhantomData<fn(S)>,
}

impl<'a, S: Scheme> EdgeCollector<'a, S> {
    pub(crate) fn new(sink: &'a mut EdgeSink) -> Self {
        EdgeCollector {
            sink,
            _scheme: std::marker::PhantomData,
        }
    }

    /// Takes the strong edge out of an owned shared-pointer field, leaving
    /// the field null.
    pub fn take_shared<T>(&mut self, ptr: &mut crate::SharedPtr<T, S>) {
        let word = ptr.extract_word();
        let addr = word & !DISPLACED;
        if addr != 0 {
            if word & DISPLACED != 0 {
                self.sink.strong_deferred.push(addr);
            } else {
                self.sink.strong_direct.push(addr);
            }
        }
    }

    /// Takes the strong edge out of an atomic shared-pointer field, leaving
    /// the field null. Any tag bits are discarded with the dead location.
    pub fn take_atomic<T>(&mut self, ptr: &mut crate::AtomicSharedPtr<T, S>) {
        let addr = smr::untagged(ptr.extract_word());
        if addr != 0 {
            self.sink.strong_direct.push(addr);
        }
    }

    /// Takes the weak edge out of an owned weak-pointer field, leaving the
    /// field null.
    pub fn take_weak<T>(&mut self, ptr: &mut crate::WeakPtr<T, S>) {
        let word = ptr.extract_word();
        let addr = word & !DISPLACED;
        if addr != 0 {
            if word & DISPLACED != 0 {
                self.sink.weak_deferred.push(addr);
            } else {
                self.sink.weak_direct.push(addr);
            }
        }
    }

    /// Takes the weak edge out of an atomic weak-pointer field, leaving the
    /// field null. Any tag bits are discarded with the dead location.
    pub fn take_atomic_weak<T>(&mut self, ptr: &mut crate::AtomicWeakPtr<T, S>) {
        let addr = smr::untagged(ptr.extract_word());
        if addr != 0 {
            self.sink.weak_direct.push(addr);
        }
    }
}

impl<S: Scheme> std::fmt::Debug for EdgeCollector<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeCollector").finish_non_exhaustive()
    }
}

unsafe fn pop_edges_impl<T: GraphNode<S>, S: Scheme>(h: *mut Header, sink: *mut EdgeSink) {
    let counted = h as *mut Counted<T>;
    let mut out = EdgeCollector::<S>::new(&mut *sink);
    T::pop_edges((*counted).value.assume_init_mut(), &mut out);
}

struct GraphVtableOf<T, S>(std::marker::PhantomData<(T, fn(S))>);

impl<T: GraphNode<S>, S: Scheme> GraphVtableOf<T, S> {
    const VTABLE: Vtable = Vtable {
        dispose: dispose_impl::<T>,
        dealloc: dealloc_impl::<T>,
        release_domain: release_domain_impl::<S>,
        pop_edges: Some(pop_edges_impl::<T, S>),
    };
}

impl<T> Counted<T> {
    /// Allocates a control block with strong count 1 and weak count 1 (the
    /// strong side's +1 on the weak count), recording `domain` as its
    /// owner. The caller has already taken the block's strong count on the
    /// domain's `Arc` (or passes null for domain-less test blocks).
    pub(crate) fn allocate<S: AcquireRetire>(
        value: T,
        birth: u64,
        domain: *const (),
    ) -> *mut Counted<T> {
        let p = Box::into_raw(Box::new(Counted {
            header: Header {
                strong: StickyCounter::new(1),
                weak: StickyCounter::new(1),
                birth,
                domain,
                vtable: &VtableOf::<T, S>::VTABLE,
            },
            value: MaybeUninit::new(value),
        }));
        smr::sanitize::on_alloc(p as usize);
        p
    }

    /// As [`allocate`](Self::allocate), but with the graph-aware vtable:
    /// the block's `pop_edges` hook enumerates the payload's outgoing edges
    /// at destruction, enabling immediate recursive destruction.
    pub(crate) fn allocate_graph<S: Scheme>(
        value: T,
        birth: u64,
        domain: *const (),
    ) -> *mut Counted<T>
    where
        T: GraphNode<S>,
    {
        let p = Box::into_raw(Box::new(Counted {
            header: Header {
                strong: StickyCounter::new(1),
                weak: StickyCounter::new(1),
                birth,
                domain,
                vtable: &GraphVtableOf::<T, S>::VTABLE,
            },
            value: MaybeUninit::new(value),
        }));
        smr::sanitize::on_alloc(p as usize);
        p
    }
}

/// Ownership marker shared by the pointer types: owns a `T` (for drop
/// check / auto-trait purposes) while staying `Send`/`Sync`-neutral in the
/// scheme parameter `S`.
pub(crate) type PtrMarker<T, S> = std::marker::PhantomData<(Box<T>, fn(S))>;

/// Views an erased header address as a typed control block pointer.
#[inline]
pub(crate) fn as_counted<T>(addr: usize) -> *mut Counted<T> {
    addr as *mut Counted<T>
}

/// Views an erased address as a header pointer.
#[inline]
pub(crate) fn as_header(addr: usize) -> *mut Header {
    addr as *mut Header
}

// ---------------------------------------------------------------------
// Header-only count operations.
//
// These touch nothing but the control block itself, so — unlike the
// deferred-operation primitives on `Domain` — they need no domain handle.
// Keeping them free functions means `SharedPtr::clone`, `WeakPtr::upgrade`
// and friends never resolve a domain at all.
// ---------------------------------------------------------------------

/// Strong increment-if-not-zero (Fig. 8's `increment`).
///
/// # Safety
///
/// `addr` must be a live control block (caller holds a weak or strong
/// reference, or protection on a location containing one).
#[inline]
pub(crate) unsafe fn increment(addr: usize) -> bool {
    (*as_header(addr)).strong.increment_if_not_zero()
}

/// Strong increment on an address known to have a nonzero count (e.g. read
/// from a location holding a strong reference, under protection).
///
/// # Safety
///
/// As [`increment`], plus the nonzero guarantee.
#[inline]
pub(crate) unsafe fn increment_alive(addr: usize) {
    let ok = increment(addr);
    debug_assert!(ok, "increment of an expired object: protection bug");
}

/// Weak increment (never needs to check: a zero weak count means the block
/// is already freed, which the caller's reference excludes).
///
/// # Safety
///
/// The control block must be alive.
#[inline]
pub(crate) unsafe fn weak_increment(addr: usize) {
    let ok = (*as_header(addr)).weak.increment_if_not_zero();
    debug_assert!(ok, "weak increment of a freed block: protection bug");
}

/// Whether the object's strong count is zero (Fig. 8's `expired`).
///
/// # Safety
///
/// The control block must be alive.
#[inline]
pub(crate) unsafe fn expired(addr: usize) -> bool {
    (*as_header(addr)).strong.load() == 0
}

/// The raw pointer to the domain a live block was allocated under.
///
/// # Safety
///
/// The control block must be alive, and `S` must be the scheme it was
/// allocated under (guaranteed by the pointer types, whose `S` parameter is
/// fixed at allocation).
#[inline]
pub(crate) unsafe fn domain_ptr_of<S: AcquireRetire>(addr: usize) -> *const Domain<S> {
    (*as_header(addr)).domain as *const Domain<S>
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::{AtomicUsize, Ordering};
    use smr::Ebr;

    fn alloc_unowned<T>(value: T, birth: u64) -> *mut Counted<T> {
        // Domain-less blocks: release_domain is a no-op on null.
        Counted::allocate::<Ebr>(value, birth, ptr::null())
    }

    #[test]
    fn header_is_prefix_of_counted() {
        // repr(C) with header first: the erased view must be exact.
        let p = alloc_unowned(42u64, 7);
        let h = p as *mut Header;
        unsafe {
            assert_eq!((*h).birth, 7);
            assert_eq!((*h).strong.load(), 1);
            assert_eq!((*h).weak.load(), 1);
            assert_eq!((*p).value.assume_init_read(), 42);
            // Payload was read out (Copy); dispose is a no-op drop for u64
            // but keeps the dispose-before-free lifecycle uniform (the
            // sanitizer enforces it).
            let release = (*h).vtable.release_domain;
            let domain = (*h).domain;
            ((*h).vtable.dispose)(h);
            ((*h).vtable.dealloc)(h);
            release(domain); // no-op for the null domain
        }
    }

    #[test]
    fn dispose_runs_payload_drop_exactly_once() {
        struct Probe(Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let p = alloc_unowned(Probe(Arc::clone(&drops)), 0);
        let h = p as *mut Header;
        unsafe {
            ((*h).vtable.dispose)(h);
            assert_eq!(drops.load(Ordering::SeqCst), 1);
            ((*h).vtable.dealloc)(h);
            // Dealloc must not re-drop the payload.
            assert_eq!(drops.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn alignment_supports_tag_bits() {
        assert!(std::mem::align_of::<Counted<u8>>() >= 8);
        let p = alloc_unowned(1u8, 0);
        assert_eq!(p as usize & smr::TAG_MASK, 0);
        unsafe {
            ((*(p as *mut Header)).vtable.dispose)(p as *mut Header);
            ((*(p as *mut Header)).vtable.dealloc)(p as *mut Header);
        }
    }
}
