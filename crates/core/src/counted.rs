//! The control block: a managed object together with its strong and weak
//! reference counts and enough type information to destroy and free it from
//! type-erased code.
//!
//! Layout (`#[repr(C)]`, header first) lets the deferred-operation machinery
//! treat every control block as a [`Header`] regardless of the payload type;
//! the per-type vtable restores typing at disposal/deallocation time.
//!
//! Counter convention (§4.2): the weak count stores
//! `#weak refs + (1 if #strong refs > 0 else 0)`, so the control block is
//! freed exactly when the weak count hits zero, and the payload is destroyed
//! (disposed) when the strong count hits zero.

use std::mem::MaybeUninit;
use std::ptr;

use sticky::StickyCounter;

/// Type-erased destruction hooks for a control block.
pub(crate) struct Vtable {
    /// Drops the payload in place (the *dispose* operation).
    pub dispose: unsafe fn(*mut Header),
    /// Frees the whole control block; the payload must already be disposed.
    pub dealloc: unsafe fn(*mut Header),
}

/// The type-erased prefix of every control block.
#[repr(C)]
pub(crate) struct Header {
    pub strong: StickyCounter,
    pub weak: StickyCounter,
    /// Birth epoch recorded by the owning domain's scheme at allocation.
    pub birth: u64,
    pub vtable: &'static Vtable,
}

/// A managed object: header followed by the payload in one allocation.
#[repr(C)]
pub(crate) struct Counted<T> {
    pub header: Header,
    /// `MaybeUninit` so the payload's drop runs exactly once — at dispose
    /// time — rather than again when the allocation is freed.
    pub value: MaybeUninit<T>,
}

unsafe fn dispose_impl<T>(h: *mut Header) {
    let counted = h as *mut Counted<T>;
    ptr::drop_in_place((*counted).value.as_mut_ptr());
}

unsafe fn dealloc_impl<T>(h: *mut Header) {
    drop(Box::from_raw(h as *mut Counted<T>));
}

struct VtableOf<T>(std::marker::PhantomData<T>);

impl<T> VtableOf<T> {
    const VTABLE: Vtable = Vtable {
        dispose: dispose_impl::<T>,
        dealloc: dealloc_impl::<T>,
    };
}

impl<T> Counted<T> {
    /// Allocates a control block with strong count 1 and weak count 1 (the
    /// strong side's +1 on the weak count).
    pub(crate) fn allocate(value: T, birth: u64) -> *mut Counted<T> {
        Box::into_raw(Box::new(Counted {
            header: Header {
                strong: StickyCounter::new(1),
                weak: StickyCounter::new(1),
                birth,
                vtable: &VtableOf::<T>::VTABLE,
            },
            value: MaybeUninit::new(value),
        }))
    }
}

/// Ownership marker shared by the pointer types: owns a `T` (for drop
/// check / auto-trait purposes) while staying `Send`/`Sync`-neutral in the
/// scheme parameter `S`.
pub(crate) type PtrMarker<T, S> = std::marker::PhantomData<(Box<T>, fn(S))>;

/// Views an erased header address as a typed control block pointer.
#[inline]
pub(crate) fn as_counted<T>(addr: usize) -> *mut Counted<T> {
    addr as *mut Counted<T>
}

/// Views an erased address as a header pointer.
#[inline]
pub(crate) fn as_header(addr: usize) -> *mut Header {
    addr as *mut Header
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use sticky::Counter;

    #[test]
    fn header_is_prefix_of_counted() {
        // repr(C) with header first: the erased view must be exact.
        let p = Counted::allocate(42u64, 7);
        let h = p as *mut Header;
        unsafe {
            assert_eq!((*h).birth, 7);
            assert_eq!((*h).strong.load(), 1);
            assert_eq!((*h).weak.load(), 1);
            assert_eq!((*p).value.assume_init_read(), 42);
            // Payload was read out (Copy), dispose not needed for u64.
            ((*h).vtable.dealloc)(h);
        }
    }

    #[test]
    fn dispose_runs_payload_drop_exactly_once() {
        struct Probe(Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let p = Counted::allocate(Probe(Arc::clone(&drops)), 0);
        let h = p as *mut Header;
        unsafe {
            ((*h).vtable.dispose)(h);
            assert_eq!(drops.load(Ordering::SeqCst), 1);
            ((*h).vtable.dealloc)(h);
            // Dealloc must not re-drop the payload.
            assert_eq!(drops.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn alignment_supports_tag_bits() {
        assert!(std::mem::align_of::<Counted<u8>>() >= 8);
        let p = Counted::allocate(1u8, 0);
        assert_eq!(p as usize & smr::TAG_MASK, 0);
        unsafe { ((*(p as *mut Header)).vtable.dealloc)(p as *mut Header) };
    }
}
