//! # cdrc — concurrent deferred reference counting over any manual SMR scheme
//!
//! A Rust implementation of *"Turning Manual Concurrent Memory Reclamation
//! into Automatic Reference Counting"* (Anderson, Blelloch, Wei — PLDI
//! 2022): a family of lock-free, automatically memory-managed smart pointers
//! whose reclamation engine is **any** manual safe-memory-reclamation
//! scheme implementing the generalized acquire-retire interface
//! ([`smr::AcquireRetire`]).
//!
//! Choose the engine by picking a scheme type parameter:
//!
//! * [`EbrScheme`] — epoch-based reclamation (the fastest; "RCEBR"),
//! * [`IbrScheme`] — interval-based reclamation ("RCIBR"),
//! * [`HyalineScheme`] — Hyaline-1 ("RCHyaline"),
//! * [`HpScheme`] — hazard pointers (the original CDRC; "RCHP").
//!
//! ## Pointer types
//!
//! | type | counts | concurrent mutation | dereference |
//! |------|--------|---------------------|-------------|
//! | [`SharedPtr`] | strong | no (owned) | yes |
//! | [`AtomicSharedPtr`] | holds strong | yes | via load/snapshot |
//! | [`SnapshotPtr`] | none (fast path) | n/a (thread-local) | yes |
//! | [`WeakPtr`] | weak | no (owned) | via upgrade |
//! | [`AtomicWeakPtr`] | holds weak | yes | via load/snapshot |
//! | [`WeakSnapshotPtr`] | none (fast path) | n/a (thread-local) | yes |
//!
//! Reads through snapshots do **not** touch reference counts in the common
//! case, which is what closes the performance gap to manual reclamation
//! (§3.4); increments use the wait-free sticky counter of the [`sticky`]
//! crate so weak upgrades are constant-time (§4.3).
//!
//! ### Mutation: the RMW family
//!
//! Both atomics expose the same read-modify-write surface, shaped like
//! [`std::sync::atomic`]:
//!
//! * **store** (`store`, `store_tagged`, `store_from`/`store_strong`) —
//!   installs a value, retiring the displaced reference internally.
//! * **swap / take** (`swap`, `swap_tagged`, `take`) — installs a value and
//!   returns the displaced occupant as an *owned* pointer, with no
//!   reference-count traffic in either direction (take = swap-with-null).
//! * **compare-exchange** (`compare_exchange`, `_tagged`, `_weak`,
//!   `_owned`, and guard-threaded `_with` on the strong side) — returns
//!   `Result<displaced, witness>`: success hands back the displaced
//!   occupant as owned; failure hands back the *witnessed* current word so
//!   retry loops never pay a second protected load. The `_owned` variants
//!   move `desired` in (no count round-trip; failure returns it via
//!   [`CompareExchangeErr`]), and
//!   [`AtomicSharedPtr::compare_exchange_with`] returns the failure witness
//!   as a protected [`SnapshotPtr`] that dereferences immediately.
//! * **tag transitions** (`fetch_or_tag`, `try_set_tag`) — mutate only the
//!   low tag bits; `try_set_tag` is witness-returning too, so tag-state
//!   machines compose with the CAS loops.
//!
//! A displaced pointer handed back by swap or a successful CAS remembers
//! that it was location-owned: its drop defers the decrement through the
//! domain (a concurrent reader may still be mid-`load` on the old word),
//! which makes returning ownership exactly as cheap as the old
//! retire-internally behaviour.
//!
//! ```
//! use cdrc::{AtomicSharedPtr, SharedPtr, EbrScheme, Scheme};
//!
//! let slot: AtomicSharedPtr<u64, EbrScheme> = AtomicSharedPtr::new(SharedPtr::new(1));
//! let cs = EbrScheme::global_domain().cs();
//! let mut desired = SharedPtr::new(2);
//! let mut expected = slot.load_tagged();
//! let displaced = loop {
//!     // The witness loop: a failed CAS feeds the next attempt directly.
//!     match slot.compare_exchange_owned(expected, desired) {
//!         Ok(displaced) => break displaced,
//!         Err(e) => {
//!             expected = e.current; // no re-load
//!             desired = e.desired;  // no reallocation, no count traffic
//!         }
//!     }
//! };
//! assert_eq!(displaced.as_ref(), Some(&1));
//! drop(cs);
//! ```
//!
//! ## Critical sections
//!
//! All racy atomic-pointer operations and all snapshot lifetimes must occur
//! inside a critical section (§3.4). Operations called without one open a
//! section internally; snapshots *require* a guard argument:
//!
//! ```
//! use cdrc::{AtomicSharedPtr, SharedPtr, EbrScheme, Scheme};
//! use smr::Ebr;
//!
//! let slot: AtomicSharedPtr<u64, EbrScheme> = AtomicSharedPtr::new(SharedPtr::new(10));
//! let cs = Ebr::global_domain().cs();           // begin critical section
//! let snap = slot.get_snapshot(&cs);            // count-free protected read
//! assert_eq!(snap.as_ref(), Some(&10));
//! drop(snap);                                   // snapshots end before the guard
//! drop(cs);
//! ```
//!
//! Weak-pointer operations use the *full* guard, [`DomainRef::weak_cs`]:
//!
//! ```
//! use cdrc::{AtomicWeakPtr, SharedPtr, EbrScheme, Scheme};
//! use smr::Ebr;
//!
//! let strong: SharedPtr<u64, EbrScheme> = SharedPtr::new(3);
//! let slot: AtomicWeakPtr<u64, EbrScheme> = AtomicWeakPtr::null();
//! slot.store(&strong.downgrade());
//! let cs = Ebr::global_domain().weak_cs();
//! let snap = slot.get_snapshot(&cs);
//! assert_eq!(snap.as_ref(), Some(&3));
//! ```
//!
//! ## Amortizing critical sections
//!
//! Entering a section costs one announcement fence (a SeqCst store-load
//! round trip for the region schemes). That fence closes the gap to manual
//! reclamation **only when amortized over many operations** (§3.4), so the
//! data-structure layer exposes guard-taking operation variants: open one
//! guard, run a batch, drop the guard. Before — one section per operation:
//!
//! ```
//! use cdrc::{AtomicSharedPtr, EbrScheme, Scheme, SharedPtr};
//!
//! let slot: AtomicSharedPtr<u64, EbrScheme> = AtomicSharedPtr::new(SharedPtr::new(1));
//! for _ in 0..64 {
//!     let _ = slot.load(); // each load opens + closes its own section
//! }
//! ```
//!
//! After — one section per batch:
//!
//! ```
//! use cdrc::{AtomicSharedPtr, EbrScheme, Scheme, SharedPtr};
//!
//! let slot: AtomicSharedPtr<u64, EbrScheme> = AtomicSharedPtr::new(SharedPtr::new(1));
//! let cs = EbrScheme::global_domain().cs();
//! for _ in 0..64 {
//!     let snap = slot.get_snapshot(&cs); // fence already paid by `cs()`
//!     assert_eq!(snap.as_ref(), Some(&1));
//! }
//! drop(cs); // reclamation of the batch's garbage resumes here
//! ```
//!
//! Sections nest, so mixing both styles is always safe; holding a guard too
//! long delays reclamation (the announcement pins the epoch), which is why
//! the bench harness re-pins every 64 operations, as in the paper's
//! methodology. The [`OpGuard`] trait lets generic code accept either a
//! strong [`CsGuard`] or a full [`WeakCsGuard`] uniformly, and the
//! `lockfree` crate threads exactly this guard through every structure
//! operation (`get_with`, `insert_with`, `enqueue_with`, … on its
//! `ConcurrentMap`/`ConcurrentQueue` traits).
//!
//! ## Reclamation domains
//!
//! Every pointer is bound to one reclamation [`Domain`] at creation,
//! identified by its owning handle [`DomainRef`]. The handle-free
//! constructors (`SharedPtr::new`, `AtomicSharedPtr::null`, …) default to
//! the scheme's process-wide [`Scheme::global_domain`]; the `_in` variants
//! (`new_in`, `null_in`) take an explicit handle. Separate domains on the
//! same scheme are fully isolated — distinct epoch clocks, announcement
//! slots, retired lists and allocation counters — so one structure's open
//! critical sections never pin another's garbage, and
//! `allocated() − freed()` is an exact per-domain metric:
//!
//! ```
//! use cdrc::{AtomicSharedPtr, DomainRef, EbrScheme, SharedPtr};
//!
//! let mine: DomainRef<EbrScheme> = DomainRef::new();
//! let slot = AtomicSharedPtr::null_in(&mine);
//! slot.store(SharedPtr::new_in(1u64, &mine));
//! let cs = mine.cs();                       // section on *this* domain only
//! assert_eq!(slot.get_snapshot(&cs).as_ref(), Some(&1));
//! drop(cs);
//! drop(slot);
//! mine.process_deferred(smr::current_tid());
//! assert_eq!(mine.allocated(), mine.freed());
//! ```
//!
//! Share one domain between structures that should reclaim together (a hash
//! table's buckets, or a group of small maps whose combined garbage should
//! amortize one scan cadence); give independent structures independent
//! domains. Mixing is checked: installing a pointer into a location bound
//! to a different domain panics, and snapshot operations assert (debug
//! builds) that the guard covers the location's domain.
//!
//! ## Reference cycles
//!
//! Strong cycles leak (as in every reference-counting system); break them
//! with weak edges — e.g. the doubly-linked queue of the paper's Fig. 10
//! stores `next` strongly and `prev` weakly (see the `lockfree` crate).
//!
//! ## Immediate recursive destruction
//!
//! By default a dead node's outgoing edges relinquish themselves from
//! inside the payload's `Drop`, one deferral round-trip per edge — a long
//! dead chain takes one collection *round per level*. Payloads that
//! implement [`GraphNode`] and are allocated through
//! [`SharedPtr::new_graph`] / [`SharedPtr::new_graph_in`] instead enumerate
//! their edges into an [`EdgeCollector`], letting the domain destruct the
//! whole reachable zero-count subgraph **iteratively, inside the current
//! operation** (CIRC-style): a node whose strong count hits zero with no
//! weak observer is disposed on the spot, its directly-owned edges
//! decremented immediately under its dispose rights, and any child that
//! zeroes joins the worklist. Displaced-class edges and nodes with weak
//! observers still take the deferred path — the optimization never weakens
//! the protection story, it only removes round-trips that deferral never
//! needed.
//!
//! Displaced-pointer decrements themselves are *batched per thread*: each
//! one is buffered and retired in bulk at the next flush point (critical
//! section exit, buffer capacity, [`Domain::process_deferred`], thread
//! unregister), replacing a retire + collect round-trip per store with a
//! vector push.
//!
//! ## Reclamation sanitizer
//!
//! Build with `--features sanitize` and every `cdrc` access is validated
//! against `smr`'s shadow-state checker: payload dereferences must be
//! covered by a live protection of the right kind for the scheme
//! (section, interval, or hazard — snapshot reads on schemes where
//! `PROTECTS_SECTION_READS` is `false` need a per-block acquire), and the
//! engine's installs, retires, disposals and frees must respect the
//! Live → Disposed → Freed lifecycle. Violations — use-after-retire,
//! double retire, cross-domain protection, leaked sections — panic at the
//! offending call site with the block's recent event trail, and disposed
//! payloads are poison-filled (`0xDB`). The hooks compile to empty
//! inline functions without the feature; see the README's "Reclamation
//! sanitizer" section and `tests/sanitizer.rs` for the catalogue of
//! caught bug classes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cas;
mod counted;
mod domain;
mod engine;
mod strong;
mod tagged;
mod weak;

/// The suite-wide `sync` facade (real `std::sync::atomic`, or the
/// `interleave` model checker's wrapper atomics under `model-check`) —
/// re-exported from [`smr`] so `cdrc`-level code and downstream crates
/// route through one switch point.
pub use smr::sync;

pub use cas::CompareExchangeErr;
pub use counted::{EdgeCollector, GraphNode};
pub use domain::{CsGuard, Domain, DomainRef, OpGuard, Scheme, StrongRef, WeakCsGuard};
pub use strong::{AtomicSharedPtr, SharedPtr, SnapshotPtr};
pub use tagged::TaggedPtr;
pub use weak::{AtomicWeakPtr, WeakPtr, WeakSnapshotPtr};

/// Epoch-based reclamation engine (→ "RCEBR").
pub type EbrScheme = smr::Ebr;
/// Interval-based reclamation engine (→ "RCIBR").
pub type IbrScheme = smr::Ibr;
/// Hazard-pointer engine — the original CDRC (→ "RCHP").
pub type HpScheme = smr::Hp;
/// Hyaline-1 engine (→ "RCHyaline").
pub type HyalineScheme = smr::Hyaline;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_types_are_send_sync_when_payload_is() {
        fn send_sync<X: Send + Sync>() {}
        send_sync::<SharedPtr<u64, EbrScheme>>();
        send_sync::<AtomicSharedPtr<u64, EbrScheme>>();
        send_sync::<WeakPtr<u64, EbrScheme>>();
        send_sync::<AtomicWeakPtr<u64, EbrScheme>>();
        send_sync::<Domain<EbrScheme>>();
    }

    #[test]
    fn all_four_schemes_provide_global_domains() {
        fn check<S: Scheme>() {
            let g = S::global_domain();
            assert!(g.ptr_eq(S::global_domain()), "global domain is stable");
            assert!(!g.ptr_eq(&DomainRef::new()), "fresh domains are distinct");
        }
        check::<EbrScheme>();
        check::<IbrScheme>();
        check::<HpScheme>();
        check::<HyalineScheme>();
    }

    #[test]
    fn basic_lifecycle_on_every_scheme() {
        fn run<S: Scheme>() {
            let p: SharedPtr<String, S> = SharedPtr::new("x".into());
            let slot: AtomicSharedPtr<String, S> = AtomicSharedPtr::new(p.clone());
            {
                let cs = S::global_domain().cs();
                let snap = slot.get_snapshot(&cs);
                assert_eq!(snap.as_ref().map(String::as_str), Some("x"));
            }
            let w = p.downgrade();
            assert!(w.upgrade().is_some());
            drop(slot);
            drop(p);
            S::global_domain().process_deferred(smr::current_tid());
            assert!(w.upgrade().is_none());
        }
        run::<EbrScheme>();
        run::<IbrScheme>();
        run::<HpScheme>();
        run::<HyalineScheme>();
    }
}
