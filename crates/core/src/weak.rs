//! Weak reference-counted pointer types: [`WeakPtr`], [`AtomicWeakPtr`] and
//! [`WeakSnapshotPtr`] (§4 of the paper).
//!
//! Weak pointers hold a reference to a managed object without contributing
//! to its strong count, so cycles broken by a weak edge are collected
//! automatically. The machinery differs from the strong-only setting in two
//! ways (§4.4):
//!
//! * upgrades must use *increment-if-not-zero* (the sticky counter), because
//!   the strong count may legitimately be zero;
//! * destruction of the managed object (*disposal*) is itself deferred
//!   through a third acquire-retire instance, so a [`WeakSnapshotPtr`]
//!   remains safely readable even if the object expires during its
//!   lifetime.
//!
//! The mutation surface mirrors [`AtomicSharedPtr`](crate::AtomicSharedPtr)
//! through the same private engine: witness-returning
//! [`compare_exchange`](AtomicWeakPtr::compare_exchange) (plus `_weak` and
//! owned-desired variants) and the [`swap`](AtomicWeakPtr::swap) /
//! [`take`](AtomicWeakPtr::take) RMW family, with displaced weak references
//! handed back as owned [`WeakPtr`]s whose drop defers the decrement. The
//! one asymmetry: there is no `compare_exchange_with` returning a protected
//! weak snapshot — a weak failure witness is a [`TaggedPtr`] comparison
//! token, because minting a dereferenceable [`WeakSnapshotPtr`] requires
//! the full expiry-checking protocol of
//! [`get_snapshot`](AtomicWeakPtr::get_snapshot).
//!
//! Domain binding mirrors the strong types: a [`WeakPtr`] is a single word
//! whose domain lives in the control-block header; an [`AtomicWeakPtr`]
//! carries its own [`DomainRef`] because it must open critical sections
//! before reading its word, and its install-family operations panic on
//! cross-domain pointers.

use crate::sync::atomic::{AtomicUsize, Ordering};
use std::fmt;
use std::marker::PhantomData;

use smr::{untagged, AcquireRetire};
use sticky::Counter;

use crate::cas::CompareExchangeErr;
use crate::counted::{self, as_counted, as_header, PtrMarker};
use crate::domain::{
    check_same_domain, domain_ref_of, DomainHold, DomainRef, Scheme, StrongRef, WeakCsGuard,
};
use crate::engine::{RcWord, WeakKind, DISPLACED};
use crate::strong::SharedPtr;
use crate::tagged::TaggedPtr;

/// An owned weak reference to a `T` managed by a reclamation domain of
/// scheme `S`.
///
/// A `WeakPtr` keeps the *control block* alive but not the object: once the
/// strong count reaches zero the object is destroyed regardless of weak
/// references. Access requires [`upgrade`](WeakPtr::upgrade).
///
/// # Examples
///
/// ```
/// use cdrc::{SharedPtr, EbrScheme};
///
/// let strong: SharedPtr<i32, EbrScheme> = SharedPtr::new(3);
/// let weak = strong.downgrade();
/// assert_eq!(weak.upgrade().and_then(|p| p.as_ref().copied()), Some(3));
/// ```
pub struct WeakPtr<T, S: Scheme> {
    /// Untagged block address, except that the engine's displaced-class bit
    /// may be set on pointers whose drop must defer (see
    /// [`AtomicWeakPtr::swap`]).
    addr: usize,
    _marker: PtrMarker<T, S>,
}

unsafe impl<T: Send + Sync, S: Scheme> Send for WeakPtr<T, S> {}
unsafe impl<T: Send + Sync, S: Scheme> Sync for WeakPtr<T, S> {}

impl<T, S: Scheme> WeakPtr<T, S> {
    /// The null weak pointer.
    pub fn null() -> Self {
        WeakPtr {
            addr: 0,
            _marker: PhantomData,
        }
    }

    pub(crate) fn from_addr(addr: usize) -> Self {
        debug_assert_eq!(addr & smr::TAG_MASK, 0);
        WeakPtr {
            addr,
            _marker: PhantomData,
        }
    }

    /// Adopts one *displaced-class* weak reference (was location-owned; its
    /// drop defers the decrement — a reader may still be mid-increment).
    pub(crate) fn from_displaced(addr: usize) -> Self {
        debug_assert_eq!(addr & smr::TAG_MASK, 0);
        WeakPtr {
            addr: if addr == 0 { 0 } else { addr | DISPLACED },
            _marker: PhantomData,
        }
    }

    /// The untagged block address, flag bits stripped.
    #[inline]
    fn block(&self) -> usize {
        self.addr & !DISPLACED
    }

    pub(crate) fn into_addr(self) -> usize {
        let addr = self.block();
        std::mem::forget(self);
        addr
    }

    /// Takes the raw word (block address plus the displaced-class bit) out
    /// of this pointer, leaving it null — the edge-collection path of
    /// immediate recursive destruction.
    pub(crate) fn extract_word(&mut self) -> usize {
        std::mem::replace(&mut self.addr, 0)
    }

    /// Creates a weak reference from any strong borrow.
    pub fn from_strong<R: StrongRef<T>>(r: &R) -> Self {
        let addr = r.addr();
        if addr != 0 {
            // Safety: `r` keeps the object (hence control block) alive.
            unsafe { counted::weak_increment(addr) };
        }
        WeakPtr::from_addr(addr)
    }

    /// Whether this is the null weak pointer.
    pub fn is_null(&self) -> bool {
        self.block() == 0
    }

    /// Whether the managed object has been destroyed (strong count zero).
    /// Null pointers report `true`.
    #[cfg_attr(feature = "sanitize", track_caller)]
    pub fn expired(&self) -> bool {
        let block = self.block();
        if block == 0 {
            return true;
        }
        smr::sanitize::check_header(block);
        // Safety: our weak reference keeps the control block alive.
        unsafe { counted::expired(block) }
    }

    /// Attempts to obtain a strong reference; `None` if the object has
    /// expired. Wait-free thanks to the sticky counter's constant-time
    /// increment-if-not-zero (§4.3).
    #[cfg_attr(feature = "sanitize", track_caller)]
    pub fn upgrade(&self) -> Option<SharedPtr<T, S>> {
        let block = self.block();
        if block == 0 {
            return None;
        }
        smr::sanitize::check_header(block);
        // Safety: the control block is alive; increment-if-not-zero never
        // resurrects a dead object.
        if unsafe { counted::increment(block) } {
            Some(SharedPtr::from_addr(block))
        } else {
            None
        }
    }

    /// Whether two weak pointers reference the same object.
    pub fn ptr_eq(&self, other: &Self) -> bool {
        self.block() == other.block()
    }
}

impl<T, S: Scheme> Clone for WeakPtr<T, S> {
    fn clone(&self) -> Self {
        let block = self.block();
        if block != 0 {
            // Safety: our own weak reference keeps the block alive.
            unsafe { counted::weak_increment(block) };
        }
        WeakPtr::from_addr(block)
    }
}

impl<T, S: Scheme> Drop for WeakPtr<T, S> {
    fn drop(&mut self) {
        let block = self.block();
        if block != 0 {
            // Safety: we own one weak reference and forfeit it. Domain
            // resolution runs under a hold, because freeing the block
            // releases the reference that may have been keeping the domain
            // alive.
            unsafe {
                if self.addr & DISPLACED != 0 {
                    // Displaced-class: was location-owned when handed out;
                    // defer exactly as the location's retire would have
                    // (batched, like every displaced decrement).
                    let hold = DomainHold::new(counted::domain_ptr_of::<S>(block));
                    let t = smr::current_tid();
                    hold.domain().batch_weak_decrement(t, block);
                } else if (*as_header(block)).weak.decrement() {
                    let hold = DomainHold::new(counted::domain_ptr_of::<S>(block));
                    let t = smr::current_tid();
                    hold.domain().free_block(t, block);
                }
            }
        }
    }
}

impl<T, S: Scheme> Default for WeakPtr<T, S> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T, S: Scheme> fmt::Debug for WeakPtr<T, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WeakPtr")
            .field("addr", &format_args!("{:#x}", self.block()))
            .field("expired", &self.expired())
            .finish()
    }
}

/// A mutable shared location holding a weak reference plus tag bits —
/// analogous to `atomic<weak_ptr>` (§4.1) — bound to one reclamation domain
/// of scheme `S`.
///
/// Every operation must run inside a *full* critical section
/// ([`WeakCsGuard`]) over this location's domain; operations invoked
/// without one open it internally.
///
/// # Examples
///
/// ```
/// use cdrc::{AtomicWeakPtr, SharedPtr, EbrScheme, Scheme};
/// use smr::Ebr;
///
/// let strong: SharedPtr<i32, EbrScheme> = SharedPtr::new(1);
/// let slot: AtomicWeakPtr<i32, EbrScheme> = AtomicWeakPtr::null();
/// slot.store(&strong.downgrade());
/// assert_eq!(slot.load().upgrade().and_then(|p| p.as_ref().copied()), Some(1));
/// ```
pub struct AtomicWeakPtr<T, S: Scheme> {
    inner: RcWord<S, WeakKind>,
    _marker: PtrMarker<T, S>,
}

unsafe impl<T: Send + Sync, S: Scheme> Send for AtomicWeakPtr<T, S> {}
unsafe impl<T: Send + Sync, S: Scheme> Sync for AtomicWeakPtr<T, S> {}

impl<T, S: Scheme> AtomicWeakPtr<T, S> {
    /// Creates a location holding `ptr` (tag 0), consuming its reference.
    /// The location binds to the pointer's own domain (or the global domain
    /// for a null pointer).
    pub fn new(ptr: WeakPtr<T, S>) -> Self {
        let domain = match ptr.block() {
            0 => S::global_domain().clone(),
            // Safety: `ptr` owns a weak reference, so the block is alive.
            addr => unsafe { domain_ref_of::<S>(addr) },
        };
        AtomicWeakPtr {
            inner: RcWord::new_owned(ptr.into_addr(), domain),
            _marker: PhantomData,
        }
    }

    /// Creates a null location bound to the scheme's global domain.
    pub fn null() -> Self {
        Self::null_in(S::global_domain())
    }

    /// Creates a null location bound to an explicit domain.
    pub fn null_in(domain: &DomainRef<S>) -> Self {
        AtomicWeakPtr {
            inner: RcWord::new_owned(0, domain.clone()),
            _marker: PhantomData,
        }
    }

    /// The domain this location is bound to.
    pub fn domain(&self) -> &DomainRef<S> {
        self.inner.domain()
    }

    /// An unprotected read of the raw word, for comparisons only.
    #[inline]
    pub fn load_tagged(&self) -> TaggedPtr<T> {
        TaggedPtr::from_word(self.inner.load_raw())
    }

    /// Stores a copy of `desired` (Fig. 9 `store`): increments its weak
    /// count, swaps it in, and retires the previous weak reference.
    ///
    /// # Panics
    ///
    /// Panics if `desired` is non-null and from a different domain.
    pub fn store(&self, desired: &WeakPtr<T, S>) {
        let addr = desired.block();
        check_same_domain(addr, self.inner.domain());
        if addr != 0 {
            // Safety: `desired` keeps the control block alive.
            unsafe { counted::weak_increment(addr) };
        }
        self.inner.store_owned(addr);
    }

    /// Stores a weak reference to the object behind any strong borrow —
    /// e.g. `node.prev.store_strong(&tail_snapshot)` as in the paper's
    /// doubly-linked queue (Fig. 10).
    ///
    /// # Panics
    ///
    /// Panics if `r` is non-null and from a different domain.
    pub fn store_strong<R: StrongRef<T>>(&self, r: &R) {
        let addr = r.addr();
        check_same_domain(addr, self.inner.domain());
        if addr != 0 {
            // Safety: the strong borrow keeps the object alive.
            unsafe { counted::weak_increment(addr) };
        }
        self.inner.store_owned(addr);
    }

    /// Stores `desired`, transferring its reference (no count traffic).
    ///
    /// # Panics
    ///
    /// Panics if `desired` is non-null and from a different domain.
    pub fn store_owned(&self, desired: WeakPtr<T, S>) {
        self.inner.store_owned(desired.into_addr());
    }

    /// Atomically replaces the occupant with `desired` (tag 0), returning
    /// the displaced weak pointer as owned — no count traffic in either
    /// direction. The displaced tag bits are discarded; use
    /// [`swap_tagged`](Self::swap_tagged) to observe them.
    ///
    /// # Panics
    ///
    /// Panics if `desired` is non-null and from a different domain.
    pub fn swap(&self, desired: WeakPtr<T, S>) -> WeakPtr<T, S> {
        self.swap_tagged(desired, 0).0
    }

    /// As [`swap`](Self::swap) with explicit new tag bits; returns the
    /// displaced pointer together with the tag bits it was stored under.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `new_tag` exceeds [`smr::TAG_MASK`], and
    /// (always) if `desired` is from a different domain.
    pub fn swap_tagged(&self, desired: WeakPtr<T, S>, new_tag: usize) -> (WeakPtr<T, S>, usize) {
        debug_assert_eq!(new_tag & !smr::TAG_MASK, 0);
        let old = self.inner.swap_owned(desired.into_addr() | new_tag);
        (WeakPtr::from_displaced(untagged(old)), old & smr::TAG_MASK)
    }

    /// Swap-with-null: empties the location and returns the displaced weak
    /// pointer (take semantics).
    pub fn take(&self) -> WeakPtr<T, S> {
        self.swap(WeakPtr::null())
    }

    /// Loads the pointer and takes a weak reference to it (tag ignored) —
    /// Fig. 8's `weak_load_and_increment`.
    pub fn load(&self) -> WeakPtr<T, S> {
        WeakPtr::from_addr(self.inner.load_owning())
    }

    /// Atomically replaces the word if it equals `expected`, installing a
    /// weak reference to `desired` with tag `new_tag`; `desired` itself is
    /// only borrowed.
    ///
    /// On success returns the **displaced** weak pointer as owned; on
    /// failure returns the **witnessed** current word (a comparison token —
    /// see the module docs above for why the weak side has no
    /// snapshot-witness variant). Spurious failure does not occur.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `new_tag` exceeds [`smr::TAG_MASK`], and
    /// (always) if `desired` is non-null and from a different domain.
    pub fn compare_exchange_tagged(
        &self,
        expected: TaggedPtr<T>,
        desired: &WeakPtr<T, S>,
        new_tag: usize,
    ) -> Result<WeakPtr<T, S>, TaggedPtr<T>> {
        // Safety: `desired` owns a weak reference, keeping the block alive
        // for the pre-increment.
        unsafe {
            self.inner
                .cas_borrowed(expected.word(), desired.block(), new_tag, false)
        }
        .map(|old| WeakPtr::from_displaced(untagged(old)))
        .map_err(TaggedPtr::from_word)
    }

    /// As [`compare_exchange_tagged`](Self::compare_exchange_tagged) with
    /// tag 0.
    pub fn compare_exchange(
        &self,
        expected: TaggedPtr<T>,
        desired: &WeakPtr<T, S>,
    ) -> Result<WeakPtr<T, S>, TaggedPtr<T>> {
        self.compare_exchange_tagged(expected, desired, 0)
    }

    /// As [`compare_exchange`](Self::compare_exchange), but may fail
    /// spuriously (the witness then equals `expected`).
    pub fn compare_exchange_weak(
        &self,
        expected: TaggedPtr<T>,
        desired: &WeakPtr<T, S>,
    ) -> Result<WeakPtr<T, S>, TaggedPtr<T>> {
        // Safety: as in `compare_exchange_tagged`.
        unsafe {
            self.inner
                .cas_borrowed(expected.word(), desired.block(), 0, true)
        }
        .map(|old| WeakPtr::from_displaced(untagged(old)))
        .map_err(TaggedPtr::from_word)
    }

    /// By-value compare-exchange: on success the **moved** `desired`
    /// installs with no count traffic; on failure the error hands both the
    /// witness and `desired` back.
    ///
    /// # Panics
    ///
    /// Panics if `desired` is non-null and from a different domain.
    pub fn compare_exchange_owned(
        &self,
        expected: TaggedPtr<T>,
        desired: WeakPtr<T, S>,
    ) -> Result<WeakPtr<T, S>, CompareExchangeErr<WeakPtr<T, S>, T>> {
        match self
            .inner
            .cas_owned(expected.word(), desired.block(), false)
        {
            Ok(old) => {
                std::mem::forget(desired);
                Ok(WeakPtr::from_displaced(untagged(old)))
            }
            Err(w) => Err(CompareExchangeErr {
                current: TaggedPtr::from_word(w),
                desired,
            }),
        }
    }

    /// Takes the raw word out of a dead location (`&mut` access), leaving
    /// it null; ownership of the displaced reference transfers to the
    /// caller. Edge-collection path of immediate recursive destruction.
    pub(crate) fn extract_word(&mut self) -> usize {
        self.inner.take_word()
    }

    /// Takes a protected snapshot of the managed object without touching
    /// any count in the common case (Fig. 9's `get_snapshot`). The guard
    /// must cover **this location's domain** (asserted in debug builds).
    ///
    /// Returns a null snapshot iff, at the linearization point, the
    /// location was null or held an expired object. Lock-free (the retry
    /// resolves races between expiry and replacement, §4.5).
    pub fn get_snapshot<'g>(&self, cs: &'g WeakCsGuard<S>) -> WeakSnapshotPtr<'g, T, S> {
        debug_assert!(
            cs.covers(self.inner.domain()),
            "guard from a different reclamation domain used on this location"
        );
        let d = cs.domain();
        let t = cs.tid();
        loop {
            // Protect the control block from weak reclamation while we
            // inspect it.
            let (w, weak_guard) = d.weak_ar.acquire(t, self.inner.word());
            let addr = untagged(w);
            if addr == 0 {
                d.weak_ar.release(t, weak_guard);
                return WeakSnapshotPtr::null(cs);
            }
            // Protect the object from disposal: acquire on a stack location
            // holding the (stable) address.
            let local = AtomicUsize::new(addr);
            let dispose_guard = d.dispose_ar.try_acquire(t, &local).map(|(_, g)| g);
            let mut owns_strong = false;
            if dispose_guard.is_none() {
                // Out of guards (hazard-pointer schemes only): fall back to
                // a real strong reference, if the object is still alive.
                // Safety: weak_guard keeps the control block readable.
                owns_strong = unsafe { counted::increment(addr) };
            }
            // Safety: control block alive under weak_guard.
            let alive = owns_strong || unsafe { !counted::expired(addr) };
            if alive {
                d.weak_ar.release(t, weak_guard);
                return WeakSnapshotPtr {
                    word: w,
                    guard: if owns_strong { None } else { dispose_guard },
                    owns_strong,
                    cs,
                    _marker: PhantomData,
                };
            }
            // Expired. Only report null if the location still holds this
            // object — otherwise the count may have belonged to a previous
            // occupant and we must retry for linearizability (§4.5).
            if let Some(g) = dispose_guard {
                d.dispose_ar.release(t, g);
            }
            d.weak_ar.release(t, weak_guard);
            // Ordering: Acquire — the nullity decision linearizes here: we
            // may only report "expired ⇒ null" if the location *still*
            // holds the expired occupant, so this re-validation must not be
            // satisfied by a value older than the expiry we just observed
            // (§4.5). The value itself is never dereferenced.
            if self.inner.word().load(Ordering::Acquire) == w {
                return WeakSnapshotPtr::null(cs);
            }
        }
    }
}

impl<T, S: Scheme> Default for AtomicWeakPtr<T, S> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T, S: Scheme> fmt::Debug for AtomicWeakPtr<T, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AtomicWeakPtr")
            .field("tagged", &self.load_tagged())
            .finish()
    }
}

/// A protected view of an [`AtomicWeakPtr`]'s pointee (§4.1).
///
/// Unlike a strong [`SnapshotPtr`](crate::SnapshotPtr), the object may
/// *expire* (strong count → 0) during the snapshot's lifetime, but its
/// memory remains safely readable until the snapshot drops: disposal is
/// deferred through the dispose instance this snapshot holds protection on.
pub struct WeakSnapshotPtr<'g, T, S: Scheme> {
    word: usize,
    /// Dispose-instance guard (fast path).
    guard: Option<<S as AcquireRetire>::Guard>,
    /// Slow path: the snapshot owns a full strong reference instead.
    owns_strong: bool,
    cs: &'g WeakCsGuard<S>,
    _marker: PhantomData<Box<T>>,
}

impl<'g, T, S: Scheme> WeakSnapshotPtr<'g, T, S> {
    /// A null weak snapshot.
    pub fn null(cs: &'g WeakCsGuard<S>) -> Self {
        WeakSnapshotPtr {
            word: 0,
            guard: None,
            owns_strong: false,
            cs,
            _marker: PhantomData,
        }
    }

    /// The word as loaded, including tag bits.
    #[inline]
    pub fn tagged(&self) -> TaggedPtr<T> {
        TaggedPtr::from_word(self.word)
    }

    /// Whether the snapshot observed null (or an expired object).
    #[inline]
    pub fn is_null(&self) -> bool {
        untagged(self.word) == 0
    }

    /// Borrows the managed value, or `None` for null. Reading is safe even
    /// if the object has since expired — that is the point of the deferred
    /// dispose instance.
    #[cfg_attr(feature = "sanitize", track_caller)]
    pub fn as_ref(&self) -> Option<&T> {
        let addr = untagged(self.word);
        if addr == 0 {
            None
        } else {
            if self.guard.is_some() {
                // Count-free path: only the thread's protection keeps the
                // (possibly expired) payload undisposed.
                smr::sanitize::check_protected_read(addr);
            } else {
                smr::sanitize::check_payload(addr);
            }
            // Safety: disposal is blocked by our guard (or we own a strong
            // reference), so the payload has not been destroyed.
            unsafe { Some(&*(*as_counted::<T>(addr)).value.as_ptr()) }
        }
    }

    /// Whether the object has expired since the snapshot was taken.
    pub fn expired(&self) -> bool {
        let addr = untagged(self.word);
        if addr == 0 {
            return true;
        }
        // Safety: snapshot protection keeps the control block alive.
        unsafe { counted::expired(addr) }
    }

    /// Attempts to promote to an owned strong reference; fails if the
    /// object expired after the snapshot was taken.
    pub fn try_promote(&self) -> Option<SharedPtr<T, S>> {
        let addr = untagged(self.word);
        if addr == 0 {
            return None;
        }
        // Safety: control block alive under snapshot protection.
        if unsafe { counted::increment(addr) } {
            Some(SharedPtr::from_addr(addr))
        } else {
            None
        }
    }

    /// Creates an owned weak reference to the snapshotted object.
    pub fn to_weak(&self) -> WeakPtr<T, S> {
        let addr = untagged(self.word);
        if addr != 0 {
            // Safety: control block alive under snapshot protection.
            unsafe { counted::weak_increment(addr) };
        }
        WeakPtr::from_addr(addr)
    }

    /// Whether this snapshot took the guard (count-free) path.
    pub fn used_fast_path(&self) -> bool {
        self.guard.is_some()
    }
}

impl<T, S: Scheme> Drop for WeakSnapshotPtr<'_, T, S> {
    fn drop(&mut self) {
        let d = self.cs.domain();
        let t = self.cs.tid();
        if let Some(g) = self.guard.take() {
            d.dispose_ar.release(t, g);
        } else if self.owns_strong {
            let addr = untagged(self.word);
            if addr != 0 {
                // Safety: slow-path snapshots own one strong reference; the
                // guard we borrow keeps the domain alive.
                unsafe { d.decrement(t, addr) };
            }
        }
    }
}

impl<T: fmt::Debug, S: Scheme> fmt::Debug for WeakSnapshotPtr<'_, T, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.as_ref() {
            Some(v) => f.debug_tuple("WeakSnapshotPtr").field(v).finish(),
            None => f.write_str("WeakSnapshotPtr(null)"),
        }
    }
}

/// Reads a weak count for diagnostics (racy).
#[allow(dead_code)]
pub(crate) fn weak_count(addr: usize) -> u64 {
    if addr == 0 {
        0
    } else {
        unsafe { (*as_header(addr)).weak.load() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::AtomicUsize as Std;
    use smr::Ebr;
    use std::sync::Arc;

    type Sp<T> = SharedPtr<T, Ebr>;
    type Awp<T> = AtomicWeakPtr<T, Ebr>;

    fn settle() {
        Ebr::global_domain().process_deferred(smr::current_tid());
    }

    struct Probe(Arc<Std>);
    impl Drop for Probe {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn upgrade_succeeds_while_alive_fails_after() {
        let strong: Sp<u32> = SharedPtr::new(11);
        let weak = strong.downgrade();
        assert!(!weak.expired());
        assert_eq!(weak.upgrade().unwrap().as_ref(), Some(&11));
        drop(strong);
        settle();
        assert!(weak.expired());
        assert!(weak.upgrade().is_none());
        drop(weak);
        settle();
    }

    #[test]
    fn weak_does_not_keep_object_alive_but_keeps_block() {
        let drops = Arc::new(Std::new(0));
        let strong: Sp<Probe> = SharedPtr::new(Probe(Arc::clone(&drops)));
        let weak = strong.downgrade();
        drop(strong);
        settle();
        assert_eq!(drops.load(Ordering::SeqCst), 1, "object destroyed");
        // Control block still usable through the weak pointer.
        assert!(weak.expired());
        assert!(weak.upgrade().is_none());
        drop(weak);
        settle();
    }

    #[test]
    fn weak_ptr_in_instance_domain_balances() {
        let d: DomainRef<Ebr> = DomainRef::new();
        let t = smr::current_tid();
        let strong: Sp<u32> = SharedPtr::new_in(5, &d);
        let weak = strong.downgrade();
        drop(strong);
        d.process_deferred(t);
        assert!(weak.expired());
        drop(weak); // frees the block through the header-resolved domain
        d.process_deferred(t);
        assert_eq!(d.allocated(), 1);
        assert_eq!(d.freed(), 1);
    }

    #[test]
    fn cycle_with_weak_back_edge_is_collected() {
        struct Node {
            _name: &'static str,
            next: std::cell::RefCell<Sp<Node>>,
            prev: std::cell::RefCell<WeakPtr<Node, Ebr>>,
            probe: Probe,
        }
        // RefCell: single-threaded construction only.
        unsafe impl Send for Node {}
        unsafe impl Sync for Node {}

        let drops = Arc::new(Std::new(0));
        {
            let a: Sp<Node> = SharedPtr::new(Node {
                _name: "a",
                next: std::cell::RefCell::new(SharedPtr::null()),
                prev: std::cell::RefCell::new(WeakPtr::null()),
                probe: Probe(Arc::clone(&drops)),
            });
            let b: Sp<Node> = SharedPtr::new(Node {
                _name: "b",
                next: std::cell::RefCell::new(SharedPtr::null()),
                prev: std::cell::RefCell::new(WeakPtr::null()),
                probe: Probe(Arc::clone(&drops)),
            });
            // a.next = b (strong); b.prev = a (weak): no strong cycle.
            *a.as_ref().unwrap().next.borrow_mut() = b.clone();
            *b.as_ref().unwrap().prev.borrow_mut() = a.downgrade();
            let _ = &a.as_ref().unwrap().probe;
        }
        settle();
        assert_eq!(drops.load(Ordering::SeqCst), 2, "both nodes collected");
    }

    #[test]
    fn atomic_weak_store_load_roundtrip() {
        let strong: Sp<u32> = SharedPtr::new(5);
        let slot: Awp<u32> = AtomicWeakPtr::null();
        assert!(slot.load().is_null());
        slot.store(&strong.downgrade());
        let w = slot.load();
        assert_eq!(w.upgrade().unwrap().as_ref(), Some(&5));
        slot.store_owned(WeakPtr::null());
        assert!(slot.load().is_null());
        drop((strong, w, slot));
        settle();
    }

    #[test]
    fn atomic_weak_compare_exchange_witnesses() {
        let a: Sp<u32> = SharedPtr::new(1);
        let b: Sp<u32> = SharedPtr::new(2);
        let wa = a.downgrade();
        let wb = b.downgrade();
        let slot: Awp<u32> = AtomicWeakPtr::new(wa.clone());
        let cur = slot.load_tagged();
        let displaced = slot.compare_exchange(cur, &wb).expect("CAS succeeds");
        assert!(displaced.ptr_eq(&wa), "displaced is the old occupant");
        drop(displaced);
        let w = slot.compare_exchange(cur, &wa).expect_err("stale expected");
        assert_eq!(w.addr(), wb.block(), "witness names the new occupant");
        assert_eq!(slot.load().upgrade().unwrap().as_ref(), Some(&2));
        drop((a, b, wa, wb, slot));
        settle();
    }

    #[test]
    fn atomic_weak_swap_take_and_owned_cas() {
        let a: Sp<u32> = SharedPtr::new(1);
        let b: Sp<u32> = SharedPtr::new(2);
        let slot: Awp<u32> = AtomicWeakPtr::new(a.downgrade());
        let displaced = slot.swap(b.downgrade());
        assert!(!displaced.expired());
        assert_eq!(displaced.upgrade().unwrap().as_ref(), Some(&1));
        drop(displaced);
        // Owned CAS with stale expected hands desired back.
        let wa = a.downgrade();
        let err = slot
            .compare_exchange_owned(TaggedPtr::null(), wa)
            .expect_err("stale expected");
        assert_eq!(
            err.current,
            slot.load_tagged(),
            "witness names the occupant"
        );
        let wa = err.desired;
        // Owned CAS with the witness succeeds without count traffic.
        let displaced = slot
            .compare_exchange_owned(err.current, wa)
            .expect("witness-seeded retry");
        assert_eq!(displaced.upgrade().unwrap().as_ref(), Some(&2));
        drop(displaced);
        let taken = slot.take();
        assert!(!taken.is_null());
        assert!(slot.load_tagged().is_null());
        drop(taken);
        drop((a, b, slot));
        settle();
    }

    #[test]
    fn weak_snapshot_reads_live_object_without_count_traffic() {
        let strong: Sp<u32> = SharedPtr::new(9);
        let slot: Awp<u32> = AtomicWeakPtr::null();
        slot.store(&strong.downgrade());
        {
            let cs = Ebr::global_domain().weak_cs();
            let snap = slot.get_snapshot(&cs);
            assert!(!snap.is_null());
            assert!(snap.used_fast_path(), "EBR never falls back");
            assert_eq!(snap.as_ref(), Some(&9));
            assert_eq!(strong.strong_count(), 1, "snapshot touched no count");
            assert!(!snap.expired());
            let promoted = snap.try_promote().unwrap();
            assert_eq!(promoted.as_ref(), Some(&9));
        }
        drop((strong, slot));
        settle();
    }

    #[test]
    fn weak_snapshot_of_expired_object_is_null() {
        let strong: Sp<u32> = SharedPtr::new(3);
        let slot: Awp<u32> = AtomicWeakPtr::null();
        slot.store(&strong.downgrade());
        drop(strong);
        settle();
        let cs = Ebr::global_domain().weak_cs();
        let snap = slot.get_snapshot(&cs);
        assert!(snap.is_null(), "expired object yields null snapshot");
        drop(snap);
        drop(cs);
        drop(slot);
        settle();
    }

    #[test]
    fn weak_snapshot_survives_concurrent_expiry() {
        // Take a snapshot, then drop the last strong reference while the
        // snapshot is alive: reads must remain valid; expiry must be
        // observable; promote must fail.
        let drops = Arc::new(Std::new(0));
        let strong: Sp<Probe> = SharedPtr::new(Probe(Arc::clone(&drops)));
        let slot: Awp<Probe> = AtomicWeakPtr::null();
        slot.store(&strong.downgrade());
        {
            let cs = Ebr::global_domain().weak_cs();
            let snap = slot.get_snapshot(&cs);
            assert!(!snap.is_null());
            drop(strong);
            // Object cannot be destroyed while the snapshot lives.
            assert_eq!(drops.load(Ordering::SeqCst), 0);
            assert!(snap.as_ref().is_some(), "still readable after expiry");
            assert!(snap.expired());
            assert!(snap.try_promote().is_none());
        }
        settle();
        assert_eq!(drops.load(Ordering::SeqCst), 1, "destroyed after snapshot");
        drop(slot);
        settle();
    }

    #[test]
    fn concurrent_upgrade_vs_drop_races() {
        for _ in 0..30 {
            let strong: Sp<u64> = SharedPtr::new(77);
            let weak = strong.downgrade();
            let upgrader = {
                let weak = weak.clone();
                std::thread::spawn(move || {
                    let mut got = 0u32;
                    for _ in 0..100 {
                        if let Some(p) = weak.upgrade() {
                            assert_eq!(p.as_ref(), Some(&77));
                            got += 1;
                        }
                    }
                    got
                })
            };
            drop(strong);
            let _ = upgrader.join().unwrap();
            assert!(weak.upgrade().is_none() || !weak.expired());
        }
        settle();
    }
}
