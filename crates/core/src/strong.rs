//! Strong reference-counted pointer types: [`SharedPtr`],
//! [`AtomicSharedPtr`] and [`SnapshotPtr`] (§3.4 of the paper).
//!
//! The division of labour mirrors the CDRC C++ library:
//!
//! * [`SharedPtr`] — an owned strong reference, like `Arc` but collected
//!   through the domain's deferred machinery; safe to send between threads.
//! * [`AtomicSharedPtr`] — a mutable shared location holding a strong
//!   reference (plus low-order tag bits), supporting load / store /
//!   compare-exchange under arbitrary races.
//! * [`SnapshotPtr`] — a short-lived protected view obtained from an
//!   [`AtomicSharedPtr`] **without touching the reference count** in the
//!   common case (Fig. 5): the fast path protects the pointer with
//!   `try_acquire`; only when the scheme runs out of protection resources
//!   does it fall back to an increment. Snapshots are confined to a
//!   critical section ([`CsGuard`]) and to their creating thread.
//!
//! # Domains
//!
//! Every pointer is bound to one reclamation [`Domain`](crate::Domain) at
//! creation: the `_in` constructors take an explicit [`DomainRef`], the
//! plain constructors default to [`Scheme::global_domain`]. A `SharedPtr`
//! stays a single word — its domain is recorded in the control-block header
//! (which also keeps the domain alive for as long as the block exists). An
//! `AtomicSharedPtr` carries its own handle, because operations must know
//! which domain to open a critical section on *before* reading the word.
//! Mixing domains is a logic error: the store-family operations panic if
//! the pointer being installed was allocated under a different domain, and
//! snapshot operations assert (debug builds) that the supplied guard covers
//! this location's domain.

use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};

use smr::{untagged, AcquireRetire};
use sticky::Counter;

use crate::counted::{self, as_counted, as_header, PtrMarker};
use crate::domain::{
    check_same_domain, domain_ref_of, load_and_increment, with_strong_cs, CsGuard, DomainHold,
    DomainRef, Scheme, StrongRef,
};
use crate::tagged::TaggedPtr;
use crate::weak::WeakPtr;

/// An owned strong reference to a `T` managed by a reclamation domain of
/// scheme `S` ([`Scheme::global_domain`] unless created with
/// [`new_in`](SharedPtr::new_in)).
///
/// Dropping a `SharedPtr` decrements the strong count *directly* (the
/// reference is caller-owned, so the decrement cannot race with a protected
/// increment — see DESIGN.md); destruction of the object itself is always
/// deferred through the dispose instance of the block's own domain, which
/// the pointer resolves from the control-block header — a `SharedPtr` is a
/// single word regardless of which domain manages it.
///
/// # Examples
///
/// ```
/// use cdrc::{SharedPtr, EbrScheme};
///
/// let p: SharedPtr<String, EbrScheme> = SharedPtr::new("hello".to_string());
/// let q = p.clone();
/// assert_eq!(q.as_ref().map(String::as_str), Some("hello"));
/// ```
pub struct SharedPtr<T, S: Scheme> {
    addr: usize,
    _marker: PtrMarker<T, S>,
}

// Safety: like `Arc` — a SharedPtr hands out `&T` and can be dropped from
// any thread, so both bounds require `T: Send + Sync`.
unsafe impl<T: Send + Sync, S: Scheme> Send for SharedPtr<T, S> {}
unsafe impl<T: Send + Sync, S: Scheme> Sync for SharedPtr<T, S> {}

impl<T, S: Scheme> SharedPtr<T, S> {
    /// Allocates a new managed object holding `value` (strong count 1)
    /// under the scheme's global domain.
    pub fn new(value: T) -> Self {
        Self::new_in(value, S::global_domain())
    }

    /// Allocates a new managed object holding `value` (strong count 1)
    /// under an explicit domain.
    pub fn new_in(value: T, domain: &DomainRef<S>) -> Self {
        let t = smr::current_tid();
        let ptr = domain.allocate(t, value);
        SharedPtr {
            addr: ptr as usize,
            _marker: PhantomData,
        }
    }

    /// The null pointer.
    pub fn null() -> Self {
        SharedPtr {
            addr: 0,
            _marker: PhantomData,
        }
    }

    /// Adopts ownership of one strong reference at `addr` (0 = null).
    pub(crate) fn from_addr(addr: usize) -> Self {
        SharedPtr {
            addr,
            _marker: PhantomData,
        }
    }

    /// Releases ownership without decrementing; returns the address.
    pub(crate) fn into_addr(self) -> usize {
        let addr = self.addr;
        std::mem::forget(self);
        addr
    }

    /// Whether this is the null pointer.
    pub fn is_null(&self) -> bool {
        self.addr == 0
    }

    /// Borrows the managed value, or `None` for null.
    pub fn as_ref(&self) -> Option<&T> {
        if self.addr == 0 {
            None
        } else {
            // Safety: we own a strong reference, so the payload is alive.
            unsafe { Some(&*(*as_counted::<T>(self.addr)).value.as_ptr()) }
        }
    }

    /// Whether two pointers manage the same object.
    pub fn ptr_eq(&self, other: &Self) -> bool {
        self.addr == other.addr
    }

    /// Creates a strong reference from any borrow that guarantees liveness
    /// (a [`SnapshotPtr`] or another `SharedPtr`), incrementing the count.
    pub fn from_strong<R: StrongRef<T>>(r: &R) -> Self {
        let addr = r.addr();
        if addr != 0 {
            // Safety: `r` guarantees a nonzero strong count for the borrow.
            // Header-only: no domain resolution needed.
            unsafe { counted::increment_alive(addr) };
        }
        SharedPtr::from_addr(addr)
    }

    /// Creates a weak reference to the same object.
    pub fn downgrade(&self) -> WeakPtr<T, S> {
        WeakPtr::from_strong(self)
    }

    /// The current strong count (diagnostic; racy by nature).
    pub fn strong_count(&self) -> u64 {
        if self.addr == 0 {
            0
        } else {
            unsafe { (*as_header(self.addr)).strong.load() }
        }
    }
}

impl<T, S: Scheme> StrongRef<T> for SharedPtr<T, S> {
    fn addr(&self) -> usize {
        self.addr
    }
}

impl<T, S: Scheme> Clone for SharedPtr<T, S> {
    fn clone(&self) -> Self {
        SharedPtr::from_strong(self)
    }
}

impl<T, S: Scheme> Drop for SharedPtr<T, S> {
    fn drop(&mut self) {
        if self.addr != 0 {
            // Safety: we own one strong reference and forfeit it. The
            // decrement itself is header-only; only on the zero transition
            // do we resolve the block's domain to defer disposal — under a
            // hold, because the dispose cascade may free the very block
            // whose reference was keeping the domain alive.
            unsafe {
                if (*as_header(self.addr)).strong.decrement() {
                    let hold = DomainHold::new(counted::domain_ptr_of::<S>(self.addr));
                    let t = smr::current_tid();
                    hold.domain().delayed_dispose(t, self.addr);
                }
            }
        }
    }
}

impl<T, S: Scheme> Default for SharedPtr<T, S> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T: fmt::Debug, S: Scheme> fmt::Debug for SharedPtr<T, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.as_ref() {
            Some(v) => f.debug_tuple("SharedPtr").field(v).finish(),
            None => f.write_str("SharedPtr(null)"),
        }
    }
}

/// A mutable shared location holding a strong reference plus tag bits,
/// bound to one reclamation domain of scheme `S`.
///
/// All operations are lock-free (given a lock-free scheme). Racy operations
/// open the needed critical sections internally — on *this location's*
/// domain; hold a [`CsGuard`] from the same domain across a sequence of
/// operations to pay the scheme's per-section fence once (performance only —
/// correctness never depends on the caller's guard for these methods, since
/// sections nest).
///
/// # Examples
///
/// ```
/// use cdrc::{AtomicSharedPtr, SharedPtr, EbrScheme};
///
/// let slot: AtomicSharedPtr<i32, EbrScheme> = AtomicSharedPtr::new(SharedPtr::new(1));
/// let one = slot.load();
/// slot.store(SharedPtr::new(2));
/// assert_eq!(one.as_ref(), Some(&1));
/// assert_eq!(slot.load().as_ref(), Some(&2));
/// ```
pub struct AtomicSharedPtr<T, S: Scheme> {
    word: AtomicUsize,
    domain: DomainRef<S>,
    _marker: PtrMarker<T, S>,
}

unsafe impl<T: Send + Sync, S: Scheme> Send for AtomicSharedPtr<T, S> {}
unsafe impl<T: Send + Sync, S: Scheme> Sync for AtomicSharedPtr<T, S> {}

impl<T, S: Scheme> AtomicSharedPtr<T, S> {
    /// Creates a location holding `ptr` (tag 0), consuming its reference.
    /// The location binds to the pointer's own domain (or the global domain
    /// for a null pointer).
    pub fn new(ptr: SharedPtr<T, S>) -> Self {
        let domain = match ptr.addr {
            0 => S::global_domain().clone(),
            // Safety: `ptr` owns a strong reference, so the block is alive.
            addr => unsafe { domain_ref_of::<S>(addr) },
        };
        AtomicSharedPtr {
            word: AtomicUsize::new(ptr.into_addr()),
            domain,
            _marker: PhantomData,
        }
    }

    /// Creates a location holding `ptr` (tag 0) bound to an explicit
    /// domain, consuming the reference.
    ///
    /// # Panics
    ///
    /// Panics if `ptr` is non-null and was allocated under a different
    /// domain.
    pub fn new_in(ptr: SharedPtr<T, S>, domain: &DomainRef<S>) -> Self {
        check_same_domain(ptr.addr, domain);
        AtomicSharedPtr {
            word: AtomicUsize::new(ptr.into_addr()),
            domain: domain.clone(),
            _marker: PhantomData,
        }
    }

    /// Creates a null location bound to the scheme's global domain.
    pub fn null() -> Self {
        Self::null_in(S::global_domain())
    }

    /// Creates a null location bound to an explicit domain.
    pub fn null_in(domain: &DomainRef<S>) -> Self {
        AtomicSharedPtr {
            word: AtomicUsize::new(0),
            domain: domain.clone(),
            _marker: PhantomData,
        }
    }

    /// The domain this location is bound to.
    pub fn domain(&self) -> &DomainRef<S> {
        &self.domain
    }

    /// An unprotected read of the raw word — for tag checks and CAS
    /// `expected` values only; the result must never be dereferenced.
    #[inline]
    pub fn load_tagged(&self) -> TaggedPtr<T> {
        // Ordering: Relaxed — the word is an opaque comparison token here:
        // it is never dereferenced, and any CAS that uses it as `expected`
        // re-validates against the live word with its own (AcqRel)
        // ordering.
        TaggedPtr::from_word(self.word.load(Ordering::Relaxed))
    }

    /// Loads the pointer and takes a strong reference to it (tag ignored).
    pub fn load(&self) -> SharedPtr<T, S> {
        let d = &*self.domain;
        let t = smr::current_tid();
        let addr = with_strong_cs(d, t, || {
            // Safety: this location owns a strong reference to whatever it
            // stores, with decrements deferred via the strong instance.
            unsafe {
                load_and_increment(&d.strong_ar, t, &self.word, |a| counted::increment_alive(a))
            }
        });
        SharedPtr::from_addr(addr)
    }

    /// Takes a protected snapshot without incrementing the count in the
    /// common case (Fig. 5). The snapshot lives at most as long as the
    /// critical section `cs`, which must be a guard over **this location's
    /// domain** (asserted in debug builds — a foreign guard provides no
    /// protection here).
    pub fn get_snapshot<'g>(&self, cs: &'g CsGuard<S>) -> SnapshotPtr<'g, T, S> {
        debug_assert!(
            cs.covers(&self.domain),
            "guard from a different reclamation domain used on this location"
        );
        let d = cs.domain();
        let t = cs.tid();
        match d.strong_ar.try_acquire(t, &self.word) {
            Some((w, g)) => SnapshotPtr {
                word: w,
                guard: Some(g),
                cs,
                _marker: PhantomData,
            },
            None => {
                // Slow path: protect with the reserved `acquire` slot just
                // long enough to take a real reference.
                let (w, g) = d.strong_ar.acquire(t, &self.word);
                let addr = untagged(w);
                if addr != 0 {
                    // Safety: the location holds a strong reference and the
                    // acquire blocks its deferred decrement.
                    unsafe { counted::increment_alive(addr) };
                }
                d.strong_ar.release(t, g);
                SnapshotPtr {
                    word: w,
                    guard: None,
                    cs,
                    _marker: PhantomData,
                }
            }
        }
    }

    /// Stores `desired` (with tag 0), consuming its reference; the previous
    /// pointer's reference is retired (deferred decrement).
    ///
    /// # Panics
    ///
    /// Panics if `desired` is non-null and was allocated under a different
    /// domain than this location's.
    pub fn store(&self, desired: SharedPtr<T, S>) {
        self.store_tagged(desired, 0);
    }

    /// Stores a new strong reference to the object behind any strong borrow
    /// (with tag 0) — e.g. `prev.next.store_from(&tail_snapshot)` as in the
    /// paper's doubly-linked queue (Fig. 10, line 18).
    ///
    /// # Panics
    ///
    /// Panics if `r` is non-null and from a different domain.
    pub fn store_from<R: StrongRef<T>>(&self, r: &R) {
        let addr = r.addr();
        check_same_domain(addr, &self.domain);
        if addr != 0 {
            // Safety: the strong borrow keeps the object alive.
            unsafe { counted::increment_alive(addr) };
        }
        // Ordering: SeqCst swap — the Release half publishes the pointee
        // and its pre-incremented count to readers' Acquire loads, and the
        // Acquire half makes the displaced occupant's header readable for
        // the deferred decrement; it must additionally be SeqCst because
        // `delayed_decrement` stamps the retire with a clock value read
        // *after* this unlink, and the epoch-based eject rules are only
        // sound if that read cannot be ordered before the swap (see
        // `GlobalEpoch::load`). On x86-64 every swap is a `lock xchg`
        // regardless of ordering, so this costs nothing over AcqRel.
        let old = self.word.swap(addr, Ordering::SeqCst);
        let old_addr = untagged(old);
        if old_addr != 0 {
            let t = smr::current_tid();
            // Safety: the location owned a strong reference to `old_addr`.
            unsafe { self.domain.delayed_decrement(t, old_addr) };
        }
    }

    /// As [`store`](Self::store) with explicit tag bits.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `tag` exceeds [`smr::TAG_MASK`], and
    /// (always) if `desired` is from a different domain.
    pub fn store_tagged(&self, desired: SharedPtr<T, S>, tag: usize) {
        debug_assert_eq!(tag & !smr::TAG_MASK, 0);
        check_same_domain(desired.addr, &self.domain);
        let new = desired.into_addr() | tag;
        // Ordering: SeqCst swap — as in [`store_from`](Self::store_from):
        // publishes the new pointee, acquires the old header, and keeps the
        // subsequent retire's epoch stamp ordered after the unlink.
        let old = self.word.swap(new, Ordering::SeqCst);
        let old_addr = untagged(old);
        if old_addr != 0 {
            let t = smr::current_tid();
            // Safety: the location owned a strong reference to `old_addr`.
            unsafe { self.domain.delayed_decrement(t, old_addr) };
        }
    }

    /// Atomically replaces the word if it equals `expected`, installing a
    /// new strong reference to `desired` with tag `new_tag`. On success the
    /// previous reference is retired; `desired` itself is only borrowed.
    ///
    /// Returns `true` on success. Spurious failure does not occur.
    ///
    /// # Panics
    ///
    /// Panics if `desired` is non-null and from a different domain.
    pub fn compare_exchange_tagged<R: StrongRef<T>>(
        &self,
        expected: TaggedPtr<T>,
        desired: &R,
        new_tag: usize,
    ) -> bool {
        debug_assert_eq!(new_tag & !smr::TAG_MASK, 0);
        let d = &*self.domain;
        let t = smr::current_tid();
        let new_addr = desired.addr();
        check_same_domain(new_addr, &self.domain);
        if new_addr != 0 {
            // Pre-increment: if the CAS succeeds the location must already
            // own its reference (§3.4 / Fig. 9 ordering).
            // Safety: `desired` guarantees liveness for the borrow.
            unsafe { counted::increment_alive(new_addr) };
        }
        // Ordering: SeqCst on success — publishes the new pointee (and its
        // pre-increment), acquires the displaced occupant's header for the
        // deferred decrement, and keeps that retire's epoch stamp ordered
        // after this unlink (see `GlobalEpoch::load`; free on x86-64, where
        // the CAS is `lock cmpxchg` at any ordering). Relaxed on failure —
        // the observed word is discarded (we only roll back our own
        // pre-increment).
        match self.word.compare_exchange(
            expected.word(),
            new_addr | new_tag,
            Ordering::SeqCst,
            Ordering::Relaxed,
        ) {
            Ok(_) => {
                let old = expected.addr();
                if old != 0 {
                    // Safety: the location owned a strong reference to it.
                    unsafe { d.delayed_decrement(t, old) };
                }
                true
            }
            Err(_) => {
                if new_addr != 0 {
                    // Safety: we own the pre-increment and forfeit it.
                    unsafe { d.decrement(t, new_addr) };
                }
                false
            }
        }
    }

    /// As [`compare_exchange_tagged`](Self::compare_exchange_tagged) with
    /// tag 0 on the new value.
    pub fn compare_exchange<R: StrongRef<T>>(&self, expected: TaggedPtr<T>, desired: &R) -> bool {
        self.compare_exchange_tagged(expected, desired, 0)
    }

    /// Atomically ORs `tag_bits` into the word unconditionally, returning
    /// the previous word (Natarajan-Mittal edge tagging). No reference
    /// counts change: the location keeps the same pointer.
    pub fn fetch_or_tag(&self, tag_bits: usize) -> TaggedPtr<T> {
        debug_assert_eq!(tag_bits & !smr::TAG_MASK, 0);
        // Ordering: AcqRel — tag edges linearize structure mutations
        // (Natarajan-Mittal flag/tag, Harris marks): Release orders the
        // caller's prior writes before the mark becomes visible, Acquire
        // orders the caller's subsequent cleanup after the word it
        // observed. The pointer bits do not change, so no publication of a
        // new pointee is involved.
        TaggedPtr::from_word(self.word.fetch_or(tag_bits, Ordering::AcqRel))
    }

    /// Atomically ORs tag bits into the word if it still equals `expected`
    /// (e.g. Harris-style delete marking). No reference counts change: the
    /// location keeps the same pointer.
    ///
    /// Returns `true` on success.
    pub fn try_set_tag(&self, expected: TaggedPtr<T>, tag_bits: usize) -> bool {
        debug_assert_eq!(tag_bits & !smr::TAG_MASK, 0);
        // Ordering: AcqRel on success — as in
        // [`fetch_or_tag`](Self::fetch_or_tag); the mark is a linearization
        // point, not a pointer publication. Relaxed on failure — the
        // observed word is discarded.
        self.word
            .compare_exchange(
                expected.word(),
                expected.word() | tag_bits,
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
    }
}

impl<T, S: Scheme> Drop for AtomicSharedPtr<T, S> {
    fn drop(&mut self) {
        let addr = untagged(*self.word.get_mut());
        if addr != 0 {
            let t = smr::current_tid();
            // Safety: the location owns a strong reference. Deferral (not a
            // direct decrement) matters: a concurrent reader that loaded
            // this pointer before we were unlinked may still be protected.
            // `self.domain` is alive throughout (field drop runs after us).
            unsafe { self.domain.delayed_decrement(t, addr) };
        }
    }
}

impl<T, S: Scheme> Default for AtomicSharedPtr<T, S> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T, S: Scheme> From<SharedPtr<T, S>> for AtomicSharedPtr<T, S> {
    fn from(p: SharedPtr<T, S>) -> Self {
        AtomicSharedPtr::new(p)
    }
}

impl<T, S: Scheme> fmt::Debug for AtomicSharedPtr<T, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AtomicSharedPtr")
            .field("tagged", &self.load_tagged())
            .finish()
    }
}

/// A protected view of an [`AtomicSharedPtr`]'s pointee, valid within the
/// critical section that created it (§3.4: snapshot lifetimes must be
/// contained in a critical section — enforced here by borrowing the guard).
///
/// While a snapshot is alive, the object's strong count cannot reach zero,
/// so dereferencing is safe even though the snapshot usually holds **no**
/// reference of its own. Not `Send`: protection is thread-local.
pub struct SnapshotPtr<'g, T, S: Scheme> {
    word: usize,
    /// `Some` — fast path, protection held via an acquire-retire guard.
    /// `None` — slow path, the snapshot owns a real strong reference.
    guard: Option<<S as AcquireRetire>::Guard>,
    cs: &'g CsGuard<S>,
    _marker: PhantomData<Box<T>>,
}

impl<'g, T, S: Scheme> SnapshotPtr<'g, T, S> {
    /// A null snapshot (no protection needed).
    pub fn null(cs: &'g CsGuard<S>) -> Self {
        SnapshotPtr {
            word: 0,
            guard: None,
            cs,
            _marker: PhantomData,
        }
    }

    /// The word as loaded, including tag bits.
    #[inline]
    pub fn tagged(&self) -> TaggedPtr<T> {
        TaggedPtr::from_word(self.word)
    }

    /// The tag bits observed at load time.
    #[inline]
    pub fn tag(&self) -> usize {
        self.tagged().tag()
    }

    /// Whether the snapshot observed null.
    #[inline]
    pub fn is_null(&self) -> bool {
        untagged(self.word) == 0
    }

    /// Borrows the managed value, or `None` for null.
    pub fn as_ref(&self) -> Option<&T> {
        let addr = untagged(self.word);
        if addr == 0 {
            None
        } else {
            // Safety: the snapshot's protection (guard or owned reference)
            // keeps the strong count positive, hence the payload alive.
            unsafe { Some(&*(*as_counted::<T>(addr)).value.as_ptr()) }
        }
    }

    /// Whether this snapshot took the fast (guard-protected, count-free)
    /// path — exposed for tests and the snapshot ablation benchmark.
    pub fn used_fast_path(&self) -> bool {
        self.guard.is_some()
    }

    /// This snapshot with its witnessed tag bits replaced (protection is on
    /// the address, so retagging is free) — used by list traversals that
    /// unlink a marked node and continue with the unmarked word they
    /// installed.
    pub fn with_tag(mut self, tag: usize) -> Self {
        debug_assert_eq!(tag & !smr::TAG_MASK, 0);
        self.word = untagged(self.word) | tag;
        self
    }

    /// Promotes to an owned [`SharedPtr`] (increments the count).
    pub fn to_shared(&self) -> SharedPtr<T, S> {
        SharedPtr::from_strong(self)
    }
}

impl<T, S: Scheme> StrongRef<T> for SnapshotPtr<'_, T, S> {
    fn addr(&self) -> usize {
        untagged(self.word)
    }
}

impl<T, S: Scheme> Drop for SnapshotPtr<'_, T, S> {
    fn drop(&mut self) {
        let d = self.cs.domain();
        let t = self.cs.tid();
        match self.guard.take() {
            Some(g) => d.strong_ar.release(t, g),
            None => {
                let addr = untagged(self.word);
                if addr != 0 {
                    // Safety: slow-path snapshots own one strong reference;
                    // the guard we borrow keeps the domain alive.
                    unsafe { d.decrement(t, addr) };
                }
            }
        }
    }
}

impl<T: fmt::Debug, S: Scheme> fmt::Debug for SnapshotPtr<'_, T, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.as_ref() {
            Some(v) => f.debug_tuple("SnapshotPtr").field(v).finish(),
            None => f.write_str("SnapshotPtr(null)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Scheme;
    use smr::Ebr;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;
    use std::sync::Arc;

    type Sp<T> = SharedPtr<T, Ebr>;
    type Asp<T> = AtomicSharedPtr<T, Ebr>;

    struct Probe(Arc<StdAtomicUsize>);
    impl Drop for Probe {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn settle() {
        let d = Ebr::global_domain();
        d.process_deferred(smr::current_tid());
    }

    #[test]
    fn shared_ptr_clone_and_drop_dispose_once() {
        let drops = Arc::new(StdAtomicUsize::new(0));
        let p: Sp<Probe> = SharedPtr::new(Probe(Arc::clone(&drops)));
        let q = p.clone();
        assert!(p.ptr_eq(&q));
        drop(p);
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(q);
        settle();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn null_shared_ptr_behaves() {
        let p: Sp<u32> = SharedPtr::null();
        assert!(p.is_null());
        assert_eq!(p.as_ref(), None);
        assert_eq!(p.strong_count(), 0);
        let q = p.clone();
        drop(q);
        drop(p);
    }

    #[test]
    fn atomic_load_store_roundtrip() {
        let slot: Asp<i64> = AtomicSharedPtr::new(SharedPtr::new(7));
        let a = slot.load();
        assert_eq!(a.as_ref(), Some(&7));
        slot.store(SharedPtr::new(8));
        assert_eq!(slot.load().as_ref(), Some(&8));
        assert_eq!(a.as_ref(), Some(&7), "old reference stays valid");
        drop(slot);
        settle();
    }

    #[test]
    fn snapshot_fast_path_avoids_count_changes() {
        let slot: Asp<u32> = AtomicSharedPtr::new(SharedPtr::new(5));
        let keeper = slot.load(); // count 2 (slot + keeper)
        {
            let cs = Ebr::global_domain().cs();
            let snap = slot.get_snapshot(&cs);
            assert!(snap.used_fast_path(), "EBR snapshots never fall back");
            assert_eq!(snap.as_ref(), Some(&5));
            assert_eq!(keeper.strong_count(), 2, "no increment on fast path");
            let promoted = snap.to_shared();
            assert_eq!(keeper.strong_count(), 3);
            drop(promoted);
        }
        drop(slot);
        drop(keeper);
        settle();
    }

    #[test]
    fn compare_exchange_success_and_failure() {
        let slot: Asp<u32> = AtomicSharedPtr::new(SharedPtr::new(1));
        let two = Sp::new(2);
        let cur = slot.load_tagged();
        assert!(slot.compare_exchange(cur, &two));
        assert_eq!(slot.load().as_ref(), Some(&2));
        // Stale expected now fails and must not leak the pre-increment.
        assert!(!slot.compare_exchange(cur, &two));
        assert_eq!(two.strong_count(), 2, "slot + local");
        drop(slot);
        drop(two);
        settle();
    }

    #[test]
    fn tag_manipulation() {
        let slot: Asp<u32> = AtomicSharedPtr::new(SharedPtr::new(9));
        let cur = slot.load_tagged();
        assert_eq!(cur.tag(), 0);
        assert!(slot.try_set_tag(cur, 0b1));
        assert_eq!(slot.load_tagged().tag(), 0b1);
        assert!(!slot.try_set_tag(cur, 0b10), "stale expected fails");
        // Tagged load still reaches the object.
        {
            let cs = Ebr::global_domain().cs();
            let snap = slot.get_snapshot(&cs);
            assert_eq!(snap.tag(), 0b1);
            assert_eq!(snap.as_ref(), Some(&9));
        }
        drop(slot);
        settle();
    }

    #[test]
    fn store_tagged_and_cas_with_tags() {
        let slot: Asp<u32> = AtomicSharedPtr::new(SharedPtr::new(1));
        let nxt = Sp::new(2);
        let exp = slot.load_tagged();
        assert!(slot.compare_exchange_tagged(exp, &nxt, 0b10));
        let now = slot.load_tagged();
        assert_eq!(now.tag(), 0b10);
        assert_eq!(slot.load().as_ref(), Some(&2));
        drop(nxt);
        drop(slot);
        settle();
    }

    #[test]
    fn deep_chain_teardown_does_not_overflow_stack() {
        struct Node {
            _v: u64,
            #[allow(dead_code)] // held for its Drop cascade
            next: Sp<Node>,
        }
        let mut head: Sp<Node> = SharedPtr::null();
        for i in 0..20_000 {
            head = SharedPtr::new(Node { _v: i, next: head });
        }
        drop(head); // must not recurse 20k deep
        settle();
    }

    #[test]
    fn instance_domain_lifecycle_and_isolation() {
        let da: DomainRef<Ebr> = DomainRef::new();
        let db: DomainRef<Ebr> = DomainRef::new();
        let t = smr::current_tid();
        let slot: Asp<u64> = AtomicSharedPtr::null_in(&da);
        for i in 0..100u64 {
            slot.store(SharedPtr::new_in(i, &da));
        }
        assert_eq!(db.allocated(), 0, "sibling domain saw no allocations");
        assert!(da.allocated() >= 100);
        drop(slot);
        da.process_deferred(t);
        assert_eq!(da.allocated(), da.freed(), "clean teardown balances");
        db.process_deferred(t);
        assert_eq!(db.freed(), 0);
    }

    #[test]
    fn shared_ptr_may_outlive_its_domain_handle() {
        // The block's owning reference keeps the domain alive after the
        // last user handle drops; the final SharedPtr drop tears it down.
        let p: Sp<u64> = {
            let d: DomainRef<Ebr> = DomainRef::new();
            SharedPtr::new_in(41, &d)
        };
        assert_eq!(p.as_ref(), Some(&41));
        let q = p.clone();
        drop(p);
        drop(q);
        // Nothing to assert beyond "no crash/leak": the domain (and the
        // block) are gone; miri/asan builds would flag a use-after-free.
    }

    #[test]
    fn orphaned_chain_is_reclaimed_regardless_of_size() {
        // Regression: the orphan-teardown check must not have a size
        // cliff. A long chain whose domain handle is gone before the head
        // drops must still be torn down in full by that final drop.
        struct Node {
            #[allow(dead_code)] // held for its Drop side effect
            probe: Probe,
            #[allow(dead_code)] // held for its Drop cascade
            next: Sp<Node>,
        }
        let drops = Arc::new(StdAtomicUsize::new(0));
        const N: usize = 500;
        let head: Sp<Node> = {
            let d: DomainRef<Ebr> = DomainRef::new();
            let mut head: Sp<Node> = SharedPtr::null();
            for _ in 0..N {
                head = SharedPtr::new_in(
                    Node {
                        probe: Probe(Arc::clone(&drops)),
                        next: head,
                    },
                    &d,
                );
            }
            head
        }; // last handle gone; only the chain keeps the domain alive
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(head);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            N,
            "every payload reclaimed by the orphaning drop"
        );
    }

    #[test]
    #[should_panic(expected = "cross-domain")]
    fn cross_domain_store_panics() {
        let da: DomainRef<Ebr> = DomainRef::new();
        let db: DomainRef<Ebr> = DomainRef::new();
        let slot: Asp<u64> = AtomicSharedPtr::null_in(&da);
        slot.store(SharedPtr::new_in(1, &db));
    }

    #[test]
    fn concurrent_load_store_stress() {
        let slot: Arc<Asp<u64>> = Arc::new(AtomicSharedPtr::new(SharedPtr::new(0)));
        let threads: Vec<_> = (0..6)
            .map(|i| {
                let slot = Arc::clone(&slot);
                std::thread::spawn(move || {
                    for j in 0..2_000u64 {
                        if j % 3 == 0 {
                            slot.store(SharedPtr::new(i * 1_000_000 + j));
                        } else {
                            let p = slot.load();
                            if let Some(v) = p.as_ref() {
                                assert!(*v < 6_000_000);
                            }
                        }
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        drop(slot);
        settle();
    }

    #[test]
    fn concurrent_snapshot_stress() {
        let slot: Arc<Asp<u64>> = Arc::new(AtomicSharedPtr::new(SharedPtr::new(0)));
        let threads: Vec<_> = (0..6)
            .map(|i| {
                let slot = Arc::clone(&slot);
                std::thread::spawn(move || {
                    let d = Ebr::global_domain();
                    for j in 0..2_000u64 {
                        if i == 0 {
                            slot.store(SharedPtr::new(j));
                        } else {
                            let cs = d.cs();
                            let snap = slot.get_snapshot(&cs);
                            if let Some(v) = snap.as_ref() {
                                assert!(*v < 2_000);
                            }
                        }
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        drop(slot);
        settle();
    }
}
