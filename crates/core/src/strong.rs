//! Strong reference-counted pointer types: [`SharedPtr`],
//! [`AtomicSharedPtr`] and [`SnapshotPtr`] (§3.4 of the paper).
//!
//! The division of labour mirrors the CDRC C++ library:
//!
//! * [`SharedPtr`] — an owned strong reference, like `Arc` but collected
//!   through the domain's deferred machinery; safe to send between threads.
//! * [`AtomicSharedPtr`] — a mutable shared location holding a strong
//!   reference (plus low-order tag bits), supporting load / store / swap /
//!   compare-exchange under arbitrary races.
//! * [`SnapshotPtr`] — a short-lived protected view obtained from an
//!   [`AtomicSharedPtr`] **without touching the reference count** in the
//!   common case (Fig. 5): the fast path protects the pointer with
//!   `try_acquire`; only when the scheme runs out of protection resources
//!   does it fall back to an increment. Snapshots are confined to a
//!   critical section ([`CsGuard`]) and to their creating thread.
//!
//! # Mutation: witnesses and displaced values
//!
//! The mutation surface is *witness-returning*, shaped like
//! [`std::sync::atomic`] and CIRC's `AtomicRc`: every compare-exchange
//! returns `Result<displaced, witness>` — on success the **displaced**
//! occupant comes back as an owned [`SharedPtr`] (drop it, inspect it, or
//! reinstall it elsewhere), on failure the **witnessed** current word comes
//! back so retry loops never pay a second protected load. The
//! guard-threaded [`compare_exchange_with`](AtomicSharedPtr::compare_exchange_with)
//! variants return the failure witness as a protected [`SnapshotPtr`] that
//! can be dereferenced immediately. [`swap`](AtomicSharedPtr::swap) /
//! [`take`](AtomicSharedPtr::take) round out the RMW family.
//!
//! Handing the displaced value out is free: the returned pointer remembers
//! (in a private bit) that it was location-owned, so its drop defers the
//! decrement through the domain exactly as the location's retire would have
//! — concurrent readers mid-`load` stay safe, and the caller pays no count
//! round-trip. The word-level protocol shared with the weak types lives in
//! the private `engine` module.
//!
//! # Domains
//!
//! Every pointer is bound to one reclamation [`Domain`](crate::Domain) at
//! creation: the `_in` constructors take an explicit [`DomainRef`], the
//! plain constructors default to [`Scheme::global_domain`]. A `SharedPtr`
//! stays a single word — its domain is recorded in the control-block header
//! (which also keeps the domain alive for as long as the block exists). An
//! `AtomicSharedPtr` carries its own handle, because operations must know
//! which domain to open a critical section on *before* reading the word.
//! Mixing domains is a logic error: the install-family operations panic if
//! the pointer being installed was allocated under a different domain, and
//! snapshot operations assert (debug builds) that the supplied guard covers
//! this location's domain.

use crate::sync::atomic::AtomicUsize;
use std::fmt;
use std::marker::PhantomData;

use smr::{untagged, AcquireRetire};
use sticky::Counter;

use crate::cas::CompareExchangeErr;
use crate::counted::{self, as_counted, as_header, PtrMarker};
use crate::domain::{
    check_same_domain, domain_ref_of, CsGuard, DomainHold, DomainRef, OpGuard, Scheme, StrongRef,
};
use crate::engine::{RcWord, StrongKind, DISPLACED};
use crate::tagged::TaggedPtr;
use crate::weak::WeakPtr;

/// An owned strong reference to a `T` managed by a reclamation domain of
/// scheme `S` ([`Scheme::global_domain`] unless created with
/// [`new_in`](SharedPtr::new_in)).
///
/// Dropping a `SharedPtr` decrements the strong count *directly* (the
/// reference is caller-owned, so the decrement cannot race with a protected
/// increment — see DESIGN.md); destruction of the object itself is always
/// deferred through the dispose instance of the block's own domain, which
/// the pointer resolves from the control-block header — a `SharedPtr` is a
/// single word regardless of which domain manages it.
///
/// The exception is a pointer obtained as the *displaced* result of a
/// [`swap`](AtomicSharedPtr::swap) or successful compare-exchange: that
/// reference was location-owned when it was handed out, so its drop defers
/// the decrement through the domain (as the location's retire would have) —
/// invisible to the caller beyond being exactly as cheap as the old
/// retire-internally behaviour.
///
/// # Examples
///
/// ```
/// use cdrc::{SharedPtr, EbrScheme};
///
/// let p: SharedPtr<String, EbrScheme> = SharedPtr::new("hello".to_string());
/// let q = p.clone();
/// assert_eq!(q.as_ref().map(String::as_str), Some("hello"));
/// ```
pub struct SharedPtr<T, S: Scheme> {
    /// Untagged block address, except that [`DISPLACED`] may be set on
    /// pointers whose drop must defer (see the module docs).
    addr: usize,
    _marker: PtrMarker<T, S>,
}

// Safety: like `Arc` — a SharedPtr hands out `&T` and can be dropped from
// any thread, so both bounds require `T: Send + Sync`.
unsafe impl<T: Send + Sync, S: Scheme> Send for SharedPtr<T, S> {}
unsafe impl<T: Send + Sync, S: Scheme> Sync for SharedPtr<T, S> {}

impl<T, S: Scheme> SharedPtr<T, S> {
    /// Allocates a new managed object holding `value` (strong count 1)
    /// under the scheme's global domain.
    pub fn new(value: T) -> Self {
        Self::new_in(value, S::global_domain())
    }

    /// Allocates a new managed object holding `value` (strong count 1)
    /// under an explicit domain.
    pub fn new_in(value: T, domain: &DomainRef<S>) -> Self {
        let t = smr::current_tid();
        let ptr = domain.allocate(t, value);
        SharedPtr {
            addr: ptr as usize,
            _marker: PhantomData,
        }
    }

    /// As [`new`](Self::new), for payloads that enumerate their outgoing
    /// edges ([`GraphNode`](crate::GraphNode)): when the object's strong
    /// count reaches zero with no weak observers, the whole reachable
    /// zero-count subgraph is destructed immediately instead of one
    /// deferral round-trip per edge.
    pub fn new_graph(value: T) -> Self
    where
        T: crate::GraphNode<S>,
    {
        Self::new_graph_in(value, S::global_domain())
    }

    /// As [`new_graph`](Self::new_graph) under an explicit domain.
    pub fn new_graph_in(value: T, domain: &DomainRef<S>) -> Self
    where
        T: crate::GraphNode<S>,
    {
        let t = smr::current_tid();
        let ptr = domain.allocate_graph(t, value);
        SharedPtr {
            addr: ptr as usize,
            _marker: PhantomData,
        }
    }

    /// The null pointer.
    pub fn null() -> Self {
        SharedPtr {
            addr: 0,
            _marker: PhantomData,
        }
    }

    /// Adopts ownership of one caller-class strong reference at `addr`
    /// (0 = null).
    pub(crate) fn from_addr(addr: usize) -> Self {
        debug_assert_eq!(addr & smr::TAG_MASK, 0);
        SharedPtr {
            addr,
            _marker: PhantomData,
        }
    }

    /// Adopts ownership of one *displaced-class* strong reference: it was
    /// location-owned when handed out, so the eventual drop must defer the
    /// decrement (readers that loaded the old word may still be protected).
    pub(crate) fn from_displaced(addr: usize) -> Self {
        debug_assert_eq!(addr & smr::TAG_MASK, 0);
        SharedPtr {
            addr: if addr == 0 { 0 } else { addr | DISPLACED },
            _marker: PhantomData,
        }
    }

    /// The untagged block address (0 = null), flag bits stripped.
    #[inline]
    fn block(&self) -> usize {
        self.addr & !DISPLACED
    }

    /// Releases ownership without decrementing; returns the block address.
    /// (Install paths: the reference becomes location-owned, which erases
    /// the displaced/caller class distinction — locations always retire.)
    pub(crate) fn into_addr(self) -> usize {
        let addr = self.block();
        std::mem::forget(self);
        addr
    }

    /// Takes the raw word (block address plus the displaced-class bit) out
    /// of this pointer, leaving it null — the edge-collection path of
    /// immediate recursive destruction, where the class decides whether the
    /// edge's decrement may be applied directly.
    pub(crate) fn extract_word(&mut self) -> usize {
        std::mem::replace(&mut self.addr, 0)
    }

    /// Whether this is the null pointer.
    pub fn is_null(&self) -> bool {
        self.block() == 0
    }

    /// Borrows the managed value, or `None` for null.
    #[cfg_attr(feature = "sanitize", track_caller)]
    pub fn as_ref(&self) -> Option<&T> {
        let block = self.block();
        if block == 0 {
            None
        } else {
            smr::sanitize::check_payload(block);
            // Safety: we own a strong reference, so the payload is alive.
            unsafe { Some(&*(*as_counted::<T>(block)).value.as_ptr()) }
        }
    }

    /// Whether two pointers manage the same object.
    pub fn ptr_eq(&self, other: &Self) -> bool {
        self.block() == other.block()
    }

    /// Creates a strong reference from any borrow that guarantees liveness
    /// (a [`SnapshotPtr`] or another `SharedPtr`), incrementing the count.
    pub fn from_strong<R: StrongRef<T>>(r: &R) -> Self {
        let addr = r.addr();
        if addr != 0 {
            // Safety: `r` guarantees a nonzero strong count for the borrow.
            // Header-only: no domain resolution needed.
            unsafe { counted::increment_alive(addr) };
        }
        SharedPtr::from_addr(addr)
    }

    /// Creates a weak reference to the same object.
    pub fn downgrade(&self) -> WeakPtr<T, S> {
        WeakPtr::from_strong(self)
    }

    /// The current strong count (diagnostic; racy by nature).
    pub fn strong_count(&self) -> u64 {
        let block = self.block();
        if block == 0 {
            0
        } else {
            unsafe { (*as_header(block)).strong.load() }
        }
    }
}

impl<T, S: Scheme> StrongRef<T> for SharedPtr<T, S> {
    fn addr(&self) -> usize {
        self.block()
    }
}

impl<T, S: Scheme> Clone for SharedPtr<T, S> {
    fn clone(&self) -> Self {
        SharedPtr::from_strong(self)
    }
}

impl<T, S: Scheme> Drop for SharedPtr<T, S> {
    fn drop(&mut self) {
        let block = self.block();
        if block != 0 {
            // Safety: we own one strong reference and forfeit it. Domain
            // resolution runs under a hold, because the dispose cascade may
            // free the very block whose reference was keeping the domain
            // alive.
            unsafe {
                if self.addr & DISPLACED != 0 {
                    // Displaced-class: this reference was location-owned
                    // when handed out, so a concurrent reader that loaded
                    // the old word may still be mid-increment on it — the
                    // decrement must go through the deferred machinery
                    // exactly as the location's retire would have (batched,
                    // like every displaced decrement).
                    let hold = DomainHold::new(counted::domain_ptr_of::<S>(block));
                    let t = smr::current_tid();
                    hold.domain().batch_decrement(t, block);
                } else if (*as_header(block)).strong.decrement() {
                    let hold = DomainHold::new(counted::domain_ptr_of::<S>(block));
                    let t = smr::current_tid();
                    if (*as_header(block)).weak.load() == 1
                        && (*as_header(block)).vtable.pop_edges.is_some()
                    {
                        // No weak observer can exist (and none can appear:
                        // the zero strong count is sticky), and the payload
                        // enumerates its edges: destruct the reachable
                        // subgraph right now, iteratively. Non-graph
                        // payloads stay on the deferred path — their edges
                        // relinquish from inside `Drop`, and disposing here
                        // would recurse one stack frame per chain level.
                        hold.domain().destruct(t, block);
                    } else {
                        hold.domain().delayed_dispose(t, block);
                    }
                }
            }
        }
    }
}

impl<T, S: Scheme> Default for SharedPtr<T, S> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T: fmt::Debug, S: Scheme> fmt::Debug for SharedPtr<T, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.as_ref() {
            Some(v) => f.debug_tuple("SharedPtr").field(v).finish(),
            None => f.write_str("SharedPtr(null)"),
        }
    }
}

/// A mutable shared location holding a strong reference plus tag bits,
/// bound to one reclamation domain of scheme `S`.
///
/// All operations are lock-free (given a lock-free scheme). Racy operations
/// open the needed critical sections internally — on *this location's*
/// domain; hold a [`CsGuard`] from the same domain across a sequence of
/// operations to pay the scheme's per-section fence once (performance only —
/// correctness never depends on the caller's guard for these methods, since
/// sections nest).
///
/// The compare-exchange family returns `Result<displaced, witness>`; see
/// the crate-level "RMW family" docs and
/// [`compare_exchange`](AtomicSharedPtr::compare_exchange).
///
/// # Examples
///
/// ```
/// use cdrc::{AtomicSharedPtr, SharedPtr, EbrScheme};
///
/// let slot: AtomicSharedPtr<i32, EbrScheme> = AtomicSharedPtr::new(SharedPtr::new(1));
/// let one = slot.load();
/// let displaced = slot.swap(SharedPtr::new(2));
/// assert!(displaced.ptr_eq(&one));
/// assert_eq!(slot.load().as_ref(), Some(&2));
/// ```
pub struct AtomicSharedPtr<T, S: Scheme> {
    inner: RcWord<S, StrongKind>,
    _marker: PtrMarker<T, S>,
}

unsafe impl<T: Send + Sync, S: Scheme> Send for AtomicSharedPtr<T, S> {}
unsafe impl<T: Send + Sync, S: Scheme> Sync for AtomicSharedPtr<T, S> {}

impl<T, S: Scheme> AtomicSharedPtr<T, S> {
    /// Creates a location holding `ptr` (tag 0), consuming its reference.
    /// The location binds to the pointer's own domain (or the global domain
    /// for a null pointer).
    pub fn new(ptr: SharedPtr<T, S>) -> Self {
        let domain = match ptr.block() {
            0 => S::global_domain().clone(),
            // Safety: `ptr` owns a strong reference, so the block is alive.
            addr => unsafe { domain_ref_of::<S>(addr) },
        };
        AtomicSharedPtr {
            inner: RcWord::new_owned(ptr.into_addr(), domain),
            _marker: PhantomData,
        }
    }

    /// Creates a location holding `ptr` (tag 0) bound to an explicit
    /// domain, consuming the reference.
    ///
    /// # Panics
    ///
    /// Panics if `ptr` is non-null and was allocated under a different
    /// domain.
    pub fn new_in(ptr: SharedPtr<T, S>, domain: &DomainRef<S>) -> Self {
        check_same_domain(ptr.block(), domain);
        AtomicSharedPtr {
            inner: RcWord::new_owned(ptr.into_addr(), domain.clone()),
            _marker: PhantomData,
        }
    }

    /// Creates a null location bound to the scheme's global domain.
    pub fn null() -> Self {
        Self::null_in(S::global_domain())
    }

    /// Creates a null location bound to an explicit domain.
    pub fn null_in(domain: &DomainRef<S>) -> Self {
        AtomicSharedPtr {
            inner: RcWord::new_owned(0, domain.clone()),
            _marker: PhantomData,
        }
    }

    /// The domain this location is bound to.
    pub fn domain(&self) -> &DomainRef<S> {
        self.inner.domain()
    }

    /// An unprotected read of the raw word — for tag checks and CAS
    /// `expected` values only; the result must never be dereferenced.
    #[inline]
    pub fn load_tagged(&self) -> TaggedPtr<T> {
        TaggedPtr::from_word(self.inner.load_raw())
    }

    /// Loads the pointer and takes a strong reference to it (tag ignored).
    pub fn load(&self) -> SharedPtr<T, S> {
        SharedPtr::from_addr(self.inner.load_owning())
    }

    /// Takes a protected snapshot without incrementing the count in the
    /// common case (Fig. 5). The snapshot lives at most as long as the
    /// critical section `cs`, which must be a guard over **this location's
    /// domain** (asserted in debug builds — a foreign guard provides no
    /// protection here).
    pub fn get_snapshot<'g>(&self, cs: &'g CsGuard<S>) -> SnapshotPtr<'g, T, S> {
        debug_assert!(
            cs.covers(self.inner.domain()),
            "guard from a different reclamation domain used on this location"
        );
        let d = cs.domain();
        let t = cs.tid();
        match d.strong_ar.try_acquire(t, self.inner.word()) {
            Some((w, g)) => SnapshotPtr {
                word: w,
                guard: Some(g),
                cs,
                _marker: PhantomData,
            },
            None => {
                // Slow path: protect with the reserved `acquire` slot just
                // long enough to take a real reference.
                let (w, g) = d.strong_ar.acquire(t, self.inner.word());
                let addr = untagged(w);
                if addr != 0 {
                    // Safety: the location holds a strong reference and the
                    // acquire blocks its deferred decrement.
                    unsafe { counted::increment_alive(addr) };
                }
                d.strong_ar.release(t, g);
                SnapshotPtr {
                    word: w,
                    guard: None,
                    cs,
                    _marker: PhantomData,
                }
            }
        }
    }

    /// Wraps a word this location held while `cs`'s section was active into
    /// a protected snapshot — the failure-witness path of the `_with` CAS
    /// family.
    ///
    /// Schemes whose active section alone protects every word read from a
    /// live location ([`smr::AcquireRetire::PROTECTS_SECTION_READS`]: EBR,
    /// Hyaline) need no re-read — the stack-local acquire only mints a
    /// trivially-releasable guard. The others must revalidate against the
    /// live word — IBR because a witness born after the announced interval
    /// is not yet covered (extending the interval is exactly `acquire`'s
    /// announce-then-revalidate loop), HP because protection is per
    /// announced pointer — so they fall back to
    /// [`get_snapshot`](Self::get_snapshot): the witness then seeds only
    /// the failed comparison, and the snapshot may observe a newer value.
    fn protect_witness<'g>(&self, cs: &'g CsGuard<S>, w: usize) -> SnapshotPtr<'g, T, S> {
        if untagged(w) == 0 {
            return SnapshotPtr {
                word: w,
                guard: None,
                cs,
                _marker: PhantomData,
            };
        }
        if S::PROTECTS_SECTION_READS {
            let d = cs.domain();
            let t = cs.tid();
            let local = AtomicUsize::new(w);
            if let Some((w2, g)) = d.strong_ar.try_acquire(t, &local) {
                debug_assert_eq!(w2, w);
                return SnapshotPtr {
                    word: w,
                    guard: Some(g),
                    cs,
                    _marker: PhantomData,
                };
            }
        }
        self.get_snapshot(cs)
    }

    /// Stores `desired` (with tag 0), consuming its reference; the previous
    /// pointer's reference is retired (deferred decrement).
    ///
    /// # Panics
    ///
    /// Panics if `desired` is non-null and was allocated under a different
    /// domain than this location's.
    pub fn store(&self, desired: SharedPtr<T, S>) {
        self.store_tagged(desired, 0);
    }

    /// Stores a new strong reference to the object behind any strong borrow
    /// (with tag 0) — e.g. `prev.next.store_from(&tail_snapshot)` as in the
    /// paper's doubly-linked queue (Fig. 10, line 18).
    ///
    /// # Panics
    ///
    /// Panics if `r` is non-null and from a different domain.
    pub fn store_from<R: StrongRef<T>>(&self, r: &R) {
        let addr = r.addr();
        check_same_domain(addr, self.inner.domain());
        if addr != 0 {
            // Safety: the strong borrow keeps the object alive.
            unsafe { counted::increment_alive(addr) };
        }
        self.inner.store_owned(addr);
    }

    /// As [`store`](Self::store) with explicit tag bits.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `tag` exceeds [`smr::TAG_MASK`], and
    /// (always) if `desired` is from a different domain.
    pub fn store_tagged(&self, desired: SharedPtr<T, S>, tag: usize) {
        debug_assert_eq!(tag & !smr::TAG_MASK, 0);
        self.inner.store_owned(desired.into_addr() | tag);
    }

    /// Atomically replaces the occupant with `desired` (tag 0), returning
    /// the displaced pointer as owned. No reference count is touched: the
    /// caller's reference moves into the location and the location's moves
    /// out (displaced-class — its eventual drop defers, see the module
    /// docs). The displaced tag bits are discarded; use
    /// [`swap_tagged`](Self::swap_tagged) to observe them.
    ///
    /// # Panics
    ///
    /// Panics if `desired` is non-null and from a different domain.
    pub fn swap(&self, desired: SharedPtr<T, S>) -> SharedPtr<T, S> {
        self.swap_tagged(desired, 0).0
    }

    /// As [`swap`](Self::swap) with explicit new tag bits; returns the
    /// displaced pointer together with the tag bits it was stored under.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `new_tag` exceeds [`smr::TAG_MASK`], and
    /// (always) if `desired` is from a different domain.
    pub fn swap_tagged(
        &self,
        desired: SharedPtr<T, S>,
        new_tag: usize,
    ) -> (SharedPtr<T, S>, usize) {
        debug_assert_eq!(new_tag & !smr::TAG_MASK, 0);
        let old = self.inner.swap_owned(desired.into_addr() | new_tag);
        (
            SharedPtr::from_displaced(untagged(old)),
            old & smr::TAG_MASK,
        )
    }

    /// Swap-with-null: empties the location and returns the displaced
    /// pointer (take semantics). Equivalent to `swap(SharedPtr::null())`.
    pub fn take(&self) -> SharedPtr<T, S> {
        self.swap(SharedPtr::null())
    }

    /// Atomically replaces the word if it equals `expected`, installing a
    /// new strong reference to `desired` with tag `new_tag`; `desired`
    /// itself is only borrowed.
    ///
    /// On success, returns the **displaced** pointer as owned (drop it,
    /// keep it, reinstall it — the location's old reference is yours). On
    /// failure, returns the **witnessed** current word, ready to be the
    /// next attempt's `expected` without re-loading the location. Spurious
    /// failure does not occur.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `new_tag` exceeds [`smr::TAG_MASK`], and
    /// (always) if `desired` is non-null and from a different domain.
    pub fn compare_exchange_tagged<R: StrongRef<T>>(
        &self,
        expected: TaggedPtr<T>,
        desired: &R,
        new_tag: usize,
    ) -> Result<SharedPtr<T, S>, TaggedPtr<T>> {
        // Safety: `desired` is a strong borrow, guaranteeing liveness and a
        // nonzero count for the pre-increment.
        unsafe {
            self.inner
                .cas_borrowed(expected.word(), desired.addr(), new_tag, false)
        }
        .map(|old| SharedPtr::from_displaced(untagged(old)))
        .map_err(TaggedPtr::from_word)
    }

    /// As [`compare_exchange_tagged`](Self::compare_exchange_tagged) with
    /// tag 0 on the new value.
    pub fn compare_exchange<R: StrongRef<T>>(
        &self,
        expected: TaggedPtr<T>,
        desired: &R,
    ) -> Result<SharedPtr<T, S>, TaggedPtr<T>> {
        self.compare_exchange_tagged(expected, desired, 0)
    }

    /// As [`compare_exchange`](Self::compare_exchange), but may fail
    /// spuriously (the witness then equals `expected`) — cheaper on
    /// LL/SC architectures inside a retry loop that re-attempts anyway.
    pub fn compare_exchange_weak<R: StrongRef<T>>(
        &self,
        expected: TaggedPtr<T>,
        desired: &R,
    ) -> Result<SharedPtr<T, S>, TaggedPtr<T>> {
        self.compare_exchange_weak_tagged(expected, desired, 0)
    }

    /// As [`compare_exchange_tagged`](Self::compare_exchange_tagged), but
    /// may fail spuriously.
    ///
    /// # Panics
    ///
    /// As [`compare_exchange_tagged`](Self::compare_exchange_tagged).
    pub fn compare_exchange_weak_tagged<R: StrongRef<T>>(
        &self,
        expected: TaggedPtr<T>,
        desired: &R,
        new_tag: usize,
    ) -> Result<SharedPtr<T, S>, TaggedPtr<T>> {
        // Safety: as in `compare_exchange_tagged`.
        unsafe {
            self.inner
                .cas_borrowed(expected.word(), desired.addr(), new_tag, true)
        }
        .map(|old| SharedPtr::from_displaced(untagged(old)))
        .map_err(TaggedPtr::from_word)
    }

    /// By-value compare-exchange: on success the **moved** `desired`
    /// installs with *no reference-count traffic at all* (its reference
    /// transfers to the location) and the displaced pointer comes back
    /// owned; on failure the error returns both the witnessed current word
    /// and `desired` itself, untouched, so the retry loop neither
    /// reallocates nor pays a count round-trip.
    ///
    /// # Panics
    ///
    /// Panics if `desired` is non-null and from a different domain.
    pub fn compare_exchange_owned(
        &self,
        expected: TaggedPtr<T>,
        desired: SharedPtr<T, S>,
    ) -> Result<SharedPtr<T, S>, CompareExchangeErr<SharedPtr<T, S>, T>> {
        self.compare_exchange_tagged_owned(expected, desired, 0)
    }

    /// As [`compare_exchange_owned`](Self::compare_exchange_owned) with
    /// explicit tag bits on the new value.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `new_tag` exceeds [`smr::TAG_MASK`], and
    /// (always) if `desired` is non-null and from a different domain.
    pub fn compare_exchange_tagged_owned(
        &self,
        expected: TaggedPtr<T>,
        desired: SharedPtr<T, S>,
        new_tag: usize,
    ) -> Result<SharedPtr<T, S>, CompareExchangeErr<SharedPtr<T, S>, T>> {
        debug_assert_eq!(new_tag & !smr::TAG_MASK, 0);
        match self
            .inner
            .cas_owned(expected.word(), desired.block() | new_tag, false)
        {
            Ok(old) => {
                std::mem::forget(desired);
                Ok(SharedPtr::from_displaced(untagged(old)))
            }
            Err(w) => Err(CompareExchangeErr {
                current: TaggedPtr::from_word(w),
                desired,
            }),
        }
    }

    /// Guard-threaded compare-exchange: as
    /// [`compare_exchange`](Self::compare_exchange), but the failure
    /// witness comes back as a *protected* [`SnapshotPtr`] that can be
    /// dereferenced immediately — retry loops read the current value
    /// without any further load. Accepts either guard flavour via
    /// [`OpGuard`]; the guard must cover this location's domain (asserted
    /// in debug builds).
    ///
    /// Under EBR and Hyaline the returned snapshot is exactly the
    /// witnessed word, protected for free by the active section; IBR and
    /// HP must revalidate against the live location, so their snapshot may
    /// observe a value newer than the one that failed the comparison (see
    /// [`smr::AcquireRetire::PROTECTS_SECTION_READS`]).
    pub fn compare_exchange_with<'g, R: StrongRef<T>, G: OpGuard<S>>(
        &self,
        guard: &'g G,
        expected: TaggedPtr<T>,
        desired: &R,
    ) -> Result<SharedPtr<T, S>, SnapshotPtr<'g, T, S>> {
        self.compare_exchange_tagged_with(guard, expected, desired, 0)
    }

    /// As [`compare_exchange_with`](Self::compare_exchange_with) with
    /// explicit tag bits on the new value.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `new_tag` exceeds [`smr::TAG_MASK`], and
    /// (always) if `desired` is non-null and from a different domain.
    pub fn compare_exchange_tagged_with<'g, R: StrongRef<T>, G: OpGuard<S>>(
        &self,
        guard: &'g G,
        expected: TaggedPtr<T>,
        desired: &R,
        new_tag: usize,
    ) -> Result<SharedPtr<T, S>, SnapshotPtr<'g, T, S>> {
        let cs = guard.strong_cs();
        debug_assert!(
            cs.covers(self.inner.domain()),
            "guard from a different reclamation domain used on this location"
        );
        // Safety: as in `compare_exchange_tagged`.
        unsafe {
            self.inner
                .cas_borrowed(expected.word(), desired.addr(), new_tag, false)
        }
        .map(|old| SharedPtr::from_displaced(untagged(old)))
        .map_err(|w| self.protect_witness(cs, w))
    }

    /// Atomically ORs `tag_bits` into the word unconditionally, returning
    /// the previous word (Natarajan-Mittal edge tagging). No reference
    /// counts change: the location keeps the same pointer.
    pub fn fetch_or_tag(&self, tag_bits: usize) -> TaggedPtr<T> {
        TaggedPtr::from_word(self.inner.fetch_or_tag(tag_bits))
    }

    /// Atomically ORs tag bits into the word if it still equals `expected`
    /// (e.g. Harris-style delete marking). No reference counts change: the
    /// location keeps the same pointer.
    ///
    /// On success returns the word as installed (`expected | tag_bits`),
    /// handy for continuing a tag-state machine; on failure returns the
    /// witnessed current word.
    pub fn try_set_tag(
        &self,
        expected: TaggedPtr<T>,
        tag_bits: usize,
    ) -> Result<TaggedPtr<T>, TaggedPtr<T>> {
        self.inner
            .try_set_tag(expected.word(), tag_bits)
            .map(TaggedPtr::from_word)
            .map_err(TaggedPtr::from_word)
    }

    /// Takes the raw word out of a dead location (`&mut` access), leaving
    /// it null; ownership of the displaced reference transfers to the
    /// caller. Edge-collection path of immediate recursive destruction.
    pub(crate) fn extract_word(&mut self) -> usize {
        self.inner.take_word()
    }
}

impl<T, S: Scheme> Default for AtomicSharedPtr<T, S> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T, S: Scheme> From<SharedPtr<T, S>> for AtomicSharedPtr<T, S> {
    fn from(p: SharedPtr<T, S>) -> Self {
        AtomicSharedPtr::new(p)
    }
}

impl<T, S: Scheme> fmt::Debug for AtomicSharedPtr<T, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AtomicSharedPtr")
            .field("tagged", &self.load_tagged())
            .finish()
    }
}

/// A protected view of an [`AtomicSharedPtr`]'s pointee, valid within the
/// critical section that created it (§3.4: snapshot lifetimes must be
/// contained in a critical section — enforced here by borrowing the guard).
///
/// While a snapshot is alive, the object's strong count cannot reach zero,
/// so dereferencing is safe even though the snapshot usually holds **no**
/// reference of its own. Not `Send`: protection is thread-local.
pub struct SnapshotPtr<'g, T, S: Scheme> {
    word: usize,
    /// `Some` — fast path, protection held via an acquire-retire guard.
    /// `None` — slow path, the snapshot owns a real strong reference.
    guard: Option<<S as AcquireRetire>::Guard>,
    cs: &'g CsGuard<S>,
    _marker: PhantomData<Box<T>>,
}

impl<'g, T, S: Scheme> SnapshotPtr<'g, T, S> {
    /// A null snapshot (no protection needed).
    pub fn null(cs: &'g CsGuard<S>) -> Self {
        SnapshotPtr {
            word: 0,
            guard: None,
            cs,
            _marker: PhantomData,
        }
    }

    /// The word as loaded, including tag bits.
    #[inline]
    pub fn tagged(&self) -> TaggedPtr<T> {
        TaggedPtr::from_word(self.word)
    }

    /// The tag bits observed at load time.
    #[inline]
    pub fn tag(&self) -> usize {
        self.tagged().tag()
    }

    /// Whether the snapshot observed null.
    #[inline]
    pub fn is_null(&self) -> bool {
        untagged(self.word) == 0
    }

    /// Borrows the managed value, or `None` for null.
    #[cfg_attr(feature = "sanitize", track_caller)]
    pub fn as_ref(&self) -> Option<&T> {
        let addr = untagged(self.word);
        if addr == 0 {
            None
        } else {
            if self.guard.is_some() {
                // Count-free fast path: liveness rests entirely on the
                // thread's protection covering this block.
                smr::sanitize::check_protected_read(addr);
            } else {
                smr::sanitize::check_payload(addr);
            }
            // Safety: the snapshot's protection (guard or owned reference)
            // keeps the strong count positive, hence the payload alive.
            unsafe { Some(&*(*as_counted::<T>(addr)).value.as_ptr()) }
        }
    }

    /// Whether this snapshot took the fast (guard-protected, count-free)
    /// path — exposed for tests and the snapshot ablation benchmark.
    pub fn used_fast_path(&self) -> bool {
        self.guard.is_some()
    }

    /// This snapshot with its witnessed tag bits replaced (protection is on
    /// the address, so retagging is free) — used by list traversals that
    /// unlink a marked node and continue with the unmarked word they
    /// installed.
    pub fn with_tag(mut self, tag: usize) -> Self {
        debug_assert_eq!(tag & !smr::TAG_MASK, 0);
        self.word = untagged(self.word) | tag;
        self
    }

    /// Promotes to an owned [`SharedPtr`] (increments the count).
    pub fn to_shared(&self) -> SharedPtr<T, S> {
        SharedPtr::from_strong(self)
    }
}

impl<T, S: Scheme> StrongRef<T> for SnapshotPtr<'_, T, S> {
    fn addr(&self) -> usize {
        untagged(self.word)
    }
}

impl<T, S: Scheme> Drop for SnapshotPtr<'_, T, S> {
    fn drop(&mut self) {
        let d = self.cs.domain();
        let t = self.cs.tid();
        match self.guard.take() {
            Some(g) => d.strong_ar.release(t, g),
            None => {
                let addr = untagged(self.word);
                if addr != 0 {
                    // Safety: slow-path snapshots own one strong reference;
                    // the guard we borrow keeps the domain alive.
                    unsafe { d.decrement(t, addr) };
                }
            }
        }
    }
}

impl<T: fmt::Debug, S: Scheme> fmt::Debug for SnapshotPtr<'_, T, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.as_ref() {
            Some(v) => f.debug_tuple("SnapshotPtr").field(v).finish(),
            None => f.write_str("SnapshotPtr(null)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Scheme;
    use crate::sync::atomic::AtomicUsize as StdAtomicUsize;
    use crate::sync::atomic::Ordering;
    use smr::Ebr;
    use std::sync::Arc;

    type Sp<T> = SharedPtr<T, Ebr>;
    type Asp<T> = AtomicSharedPtr<T, Ebr>;

    struct Probe(Arc<StdAtomicUsize>);
    impl Drop for Probe {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn settle() {
        let d = Ebr::global_domain();
        d.process_deferred(smr::current_tid());
    }

    #[test]
    fn shared_ptr_clone_and_drop_dispose_once() {
        let drops = Arc::new(StdAtomicUsize::new(0));
        let p: Sp<Probe> = SharedPtr::new(Probe(Arc::clone(&drops)));
        let q = p.clone();
        assert!(p.ptr_eq(&q));
        drop(p);
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(q);
        settle();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn null_shared_ptr_behaves() {
        let p: Sp<u32> = SharedPtr::null();
        assert!(p.is_null());
        assert_eq!(p.as_ref(), None);
        assert_eq!(p.strong_count(), 0);
        let q = p.clone();
        drop(q);
        drop(p);
    }

    #[test]
    fn atomic_load_store_roundtrip() {
        let slot: Asp<i64> = AtomicSharedPtr::new(SharedPtr::new(7));
        let a = slot.load();
        assert_eq!(a.as_ref(), Some(&7));
        slot.store(SharedPtr::new(8));
        assert_eq!(slot.load().as_ref(), Some(&8));
        assert_eq!(a.as_ref(), Some(&7), "old reference stays valid");
        drop(slot);
        settle();
    }

    #[test]
    fn snapshot_fast_path_avoids_count_changes() {
        let slot: Asp<u32> = AtomicSharedPtr::new(SharedPtr::new(5));
        let keeper = slot.load(); // count 2 (slot + keeper)
        {
            let cs = Ebr::global_domain().cs();
            let snap = slot.get_snapshot(&cs);
            assert!(snap.used_fast_path(), "EBR snapshots never fall back");
            assert_eq!(snap.as_ref(), Some(&5));
            assert_eq!(keeper.strong_count(), 2, "no increment on fast path");
            let promoted = snap.to_shared();
            assert_eq!(keeper.strong_count(), 3);
            drop(promoted);
        }
        drop(slot);
        drop(keeper);
        settle();
    }

    #[test]
    fn compare_exchange_success_returns_displaced_failure_returns_witness() {
        let slot: Asp<u32> = AtomicSharedPtr::new(SharedPtr::new(1));
        let one = slot.load();
        let two = Sp::new(2);
        let cur = slot.load_tagged();
        let displaced = slot.compare_exchange(cur, &two).expect("CAS succeeds");
        assert!(
            displaced.ptr_eq(&one),
            "displaced value is the old occupant"
        );
        assert_eq!(displaced.as_ref(), Some(&1));
        assert_eq!(slot.load().as_ref(), Some(&2));
        drop(displaced);
        // Stale expected now fails, must not leak the pre-increment, and the
        // witness names the current occupant.
        let w = slot
            .compare_exchange(cur, &two)
            .expect_err("stale expected");
        assert_eq!(w.addr(), TaggedPtr::from_strong(&two).addr());
        assert_eq!(two.strong_count(), 2, "slot + local");
        drop(slot);
        drop(two);
        drop(one);
        settle();
    }

    #[test]
    fn compare_exchange_owned_transfers_without_count_traffic() {
        let slot: Asp<u32> = AtomicSharedPtr::new(SharedPtr::new(1));
        let cur = slot.load_tagged();
        let two = Sp::new(2);
        let keeper = two.clone(); // count 2
        let displaced = slot.compare_exchange_owned(cur, two).expect("CAS succeeds");
        assert_eq!(displaced.as_ref(), Some(&1));
        assert_eq!(keeper.strong_count(), 2, "slot took the moved reference");
        drop(displaced);
        // Failure hands `desired` back untouched.
        let three = Sp::new(3);
        let err = slot
            .compare_exchange_owned(cur, three)
            .expect_err("stale expected");
        assert_eq!(err.current.addr(), keeper.addr());
        assert_eq!(err.desired.as_ref(), Some(&3));
        assert_eq!(err.desired.strong_count(), 1, "no count round-trip");
        drop(err.desired);
        drop((slot, keeper));
        settle();
    }

    #[test]
    fn compare_exchange_with_returns_protected_witness() {
        let slot: Asp<u32> = AtomicSharedPtr::new(SharedPtr::new(1));
        let two = Sp::new(2);
        let cs = Ebr::global_domain().cs();
        let stale = TaggedPtr::null();
        let w = slot
            .compare_exchange_with(&cs, stale, &two)
            .expect_err("stale expected fails");
        assert_eq!(w.as_ref(), Some(&1), "witness dereferences immediately");
        // The witness is a valid expected for the retry.
        let displaced = slot
            .compare_exchange_with(&cs, w.tagged(), &two)
            .expect("witness-seeded retry succeeds");
        assert_eq!(displaced.as_ref(), Some(&1));
        drop(displaced);
        drop(w);
        drop(cs);
        drop((slot, two));
        settle();
    }

    #[test]
    fn compare_exchange_weak_eventually_succeeds() {
        let slot: Asp<u32> = AtomicSharedPtr::new(SharedPtr::new(1));
        let two = Sp::new(2);
        let mut cur = slot.load_tagged();
        loop {
            match slot.compare_exchange_weak(cur, &two) {
                Ok(displaced) => {
                    assert_eq!(displaced.as_ref(), Some(&1));
                    break;
                }
                Err(w) => cur = w,
            }
        }
        assert_eq!(slot.load().as_ref(), Some(&2));
        drop((slot, two));
        settle();
    }

    #[test]
    fn swap_and_take_move_ownership() {
        let drops = Arc::new(StdAtomicUsize::new(0));
        let slot: Asp<Probe> = AtomicSharedPtr::new(SharedPtr::new(Probe(Arc::clone(&drops))));
        let displaced = slot.swap(SharedPtr::new(Probe(Arc::clone(&drops))));
        assert!(!displaced.is_null());
        drop(displaced);
        settle();
        assert_eq!(drops.load(Ordering::SeqCst), 1, "displaced drop disposes");
        let taken = slot.take();
        assert!(!taken.is_null());
        assert!(slot.load_tagged().is_null(), "take empties the slot");
        assert!(slot.take().is_null(), "second take observes null");
        drop(taken);
        drop(slot);
        settle();
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn swap_tagged_reports_displaced_tag() {
        let slot: Asp<u32> = AtomicSharedPtr::new(SharedPtr::new(4));
        let cur = slot.load_tagged();
        slot.try_set_tag(cur, 0b10).expect("tag lands");
        let (displaced, tag) = slot.swap_tagged(SharedPtr::new(5), 0b1);
        assert_eq!(tag, 0b10, "displaced tag observed");
        assert_eq!(displaced.as_ref(), Some(&4));
        assert_eq!(slot.load_tagged().tag(), 0b1, "new tag installed");
        drop(displaced);
        drop(slot);
        settle();
    }

    #[test]
    fn tag_manipulation() {
        let slot: Asp<u32> = AtomicSharedPtr::new(SharedPtr::new(9));
        let cur = slot.load_tagged();
        assert_eq!(cur.tag(), 0);
        let installed = slot.try_set_tag(cur, 0b1).expect("tag CAS succeeds");
        assert_eq!(installed.tag(), 0b1);
        assert_eq!(slot.load_tagged().tag(), 0b1);
        let w = slot
            .try_set_tag(cur, 0b10)
            .expect_err("stale expected fails");
        assert_eq!(w, installed, "witness is the current word");
        // Tagged load still reaches the object.
        {
            let cs = Ebr::global_domain().cs();
            let snap = slot.get_snapshot(&cs);
            assert_eq!(snap.tag(), 0b1);
            assert_eq!(snap.as_ref(), Some(&9));
        }
        drop(slot);
        settle();
    }

    #[test]
    fn store_tagged_and_cas_with_tags() {
        let slot: Asp<u32> = AtomicSharedPtr::new(SharedPtr::new(1));
        let nxt = Sp::new(2);
        let exp = slot.load_tagged();
        let displaced = slot
            .compare_exchange_tagged(exp, &nxt, 0b10)
            .expect("CAS succeeds");
        assert_eq!(displaced.as_ref(), Some(&1));
        drop(displaced);
        let now = slot.load_tagged();
        assert_eq!(now.tag(), 0b10);
        assert_eq!(slot.load().as_ref(), Some(&2));
        drop(nxt);
        drop(slot);
        settle();
    }

    #[test]
    fn deep_chain_teardown_does_not_overflow_stack() {
        struct Node {
            _v: u64,
            #[allow(dead_code)] // held for its Drop cascade
            next: Sp<Node>,
        }
        let mut head: Sp<Node> = SharedPtr::null();
        for i in 0..20_000 {
            head = SharedPtr::new(Node { _v: i, next: head });
        }
        drop(head); // must not recurse 20k deep
        settle();
    }

    #[test]
    fn instance_domain_lifecycle_and_isolation() {
        let da: DomainRef<Ebr> = DomainRef::new();
        let db: DomainRef<Ebr> = DomainRef::new();
        let t = smr::current_tid();
        let slot: Asp<u64> = AtomicSharedPtr::null_in(&da);
        for i in 0..100u64 {
            slot.store(SharedPtr::new_in(i, &da));
        }
        assert_eq!(db.allocated(), 0, "sibling domain saw no allocations");
        assert!(da.allocated() >= 100);
        drop(slot);
        da.process_deferred(t);
        assert_eq!(da.allocated(), da.freed(), "clean teardown balances");
        db.process_deferred(t);
        assert_eq!(db.freed(), 0);
    }

    #[test]
    fn displaced_pointer_balances_instance_domain() {
        // A displaced pointer dropped after its location is gone must still
        // tear the domain down to allocated() == freed().
        let d: DomainRef<Ebr> = DomainRef::new();
        let t = smr::current_tid();
        let slot: Asp<u64> = AtomicSharedPtr::null_in(&d);
        slot.store(SharedPtr::new_in(1, &d));
        let displaced = slot.swap(SharedPtr::new_in(2, &d));
        drop(slot);
        drop(displaced);
        d.process_deferred(t);
        assert_eq!(d.allocated(), d.freed());
    }

    #[test]
    fn shared_ptr_may_outlive_its_domain_handle() {
        // The block's owning reference keeps the domain alive after the
        // last user handle drops; the final SharedPtr drop tears it down.
        let p: Sp<u64> = {
            let d: DomainRef<Ebr> = DomainRef::new();
            SharedPtr::new_in(41, &d)
        };
        assert_eq!(p.as_ref(), Some(&41));
        let q = p.clone();
        drop(p);
        drop(q);
        // Nothing to assert beyond "no crash/leak": the domain (and the
        // block) are gone; miri/asan builds would flag a use-after-free.
    }

    #[test]
    fn orphaned_chain_is_reclaimed_regardless_of_size() {
        // Regression: the orphan-teardown check must not have a size
        // cliff. A long chain whose domain handle is gone before the head
        // drops must still be torn down in full by that final drop.
        struct Node {
            #[allow(dead_code)] // held for its Drop side effect
            probe: Probe,
            #[allow(dead_code)] // held for its Drop cascade
            next: Sp<Node>,
        }
        let drops = Arc::new(StdAtomicUsize::new(0));
        const N: usize = 500;
        let head: Sp<Node> = {
            let d: DomainRef<Ebr> = DomainRef::new();
            let mut head: Sp<Node> = SharedPtr::null();
            for _ in 0..N {
                head = SharedPtr::new_in(
                    Node {
                        probe: Probe(Arc::clone(&drops)),
                        next: head,
                    },
                    &d,
                );
            }
            head
        }; // last handle gone; only the chain keeps the domain alive
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(head);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            N,
            "every payload reclaimed by the orphaning drop"
        );
    }

    #[test]
    #[should_panic(expected = "cross-domain")]
    fn cross_domain_store_panics() {
        let da: DomainRef<Ebr> = DomainRef::new();
        let db: DomainRef<Ebr> = DomainRef::new();
        let slot: Asp<u64> = AtomicSharedPtr::null_in(&da);
        slot.store(SharedPtr::new_in(1, &db));
    }

    #[test]
    #[should_panic(expected = "cross-domain")]
    fn cross_domain_swap_panics() {
        let da: DomainRef<Ebr> = DomainRef::new();
        let db: DomainRef<Ebr> = DomainRef::new();
        let slot: Asp<u64> = AtomicSharedPtr::null_in(&da);
        let _ = slot.swap(SharedPtr::new_in(1, &db));
    }

    #[test]
    fn concurrent_load_store_stress() {
        let slot: Arc<Asp<u64>> = Arc::new(AtomicSharedPtr::new(SharedPtr::new(0)));
        let threads: Vec<_> = (0..6)
            .map(|i| {
                let slot = Arc::clone(&slot);
                std::thread::spawn(move || {
                    for j in 0..2_000u64 {
                        if j % 3 == 0 {
                            slot.store(SharedPtr::new(i * 1_000_000 + j));
                        } else {
                            let p = slot.load();
                            if let Some(v) = p.as_ref() {
                                assert!(*v < 6_000_000);
                            }
                        }
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        drop(slot);
        settle();
    }

    #[test]
    fn concurrent_swap_stress_conserves_values() {
        // Each thread repeatedly swaps its token in and the displaced value
        // out; the multiset of tokens is conserved.
        let slot: Arc<Asp<u64>> = Arc::new(AtomicSharedPtr::new(SharedPtr::new(999)));
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let slot = Arc::clone(&slot);
                std::thread::spawn(move || {
                    let mut mine: Sp<u64> = SharedPtr::new(i);
                    for _ in 0..2_000 {
                        mine = slot.swap(mine);
                        assert!(!mine.is_null());
                    }
                    *mine.as_ref().unwrap()
                })
            })
            .collect();
        let mut final_vals: Vec<u64> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        final_vals.push(*slot.load().as_ref().unwrap());
        final_vals.sort_unstable();
        assert_eq!(final_vals, vec![0, 1, 2, 3, 999]);
        drop(slot);
        settle();
    }

    #[test]
    fn concurrent_snapshot_stress() {
        let slot: Arc<Asp<u64>> = Arc::new(AtomicSharedPtr::new(SharedPtr::new(0)));
        let threads: Vec<_> = (0..6)
            .map(|i| {
                let slot = Arc::clone(&slot);
                std::thread::spawn(move || {
                    let d = Ebr::global_domain();
                    for j in 0..2_000u64 {
                        if i == 0 {
                            slot.store(SharedPtr::new(j));
                        } else {
                            let cs = d.cs();
                            let snap = slot.get_snapshot(&cs);
                            if let Some(v) = snap.as_ref() {
                                assert!(*v < 2_000);
                            }
                        }
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        drop(slot);
        settle();
    }
}
