//! The private generic engine behind [`AtomicSharedPtr`] and
//! [`AtomicWeakPtr`]: one word-level implementation of the
//! load / witness / install / retire protocol, instantiated twice through
//! [`RefKind`] (strong vs weak reference accounting).
//!
//! Everything here is *untyped* — words, addresses, tag bits. The pointer
//! modules wrap these primitives in `SharedPtr` / `WeakPtr` /
//! `SnapshotPtr` values and own all payload typing; this module owns the
//! concurrency protocol:
//!
//! * every install path checks the incoming block against the location's
//!   domain ([`check_same_domain`]);
//! * displaced references are either retired through the kind's
//!   acquire-retire instance (store) or handed to the caller as
//!   *displaced-class* ownership (swap / successful CAS) — see
//!   [`DISPLACED`];
//! * failed CASes return the witnessed current word so retry loops never
//!   re-read the location;
//! * pre-increment / rollback sequencing for borrowed-desired CASes follows
//!   the paper's Fig. 9 ordering (the location must own its reference the
//!   moment the CAS lands).
//!
//! [`AtomicSharedPtr`]: crate::AtomicSharedPtr
//! [`AtomicWeakPtr`]: crate::AtomicWeakPtr
//!
//! # Displaced-class references
//!
//! A reference that a shared location owned may only be relinquished through
//! the domain's deferred machinery: a concurrent reader that already loaded
//! the word may still be mid-`load_and_increment` (or holding a count-free
//! snapshot), and only the acquire-retire deferral orders the decrement
//! after every such reader. The bool-returning API enforced this by retiring
//! displaced references internally. The witness API instead *hands the
//! displaced value back* — so the owned pointer types record, in an unused
//! low bit of their single word ([`DISPLACED`]), that this particular
//! reference is location-class: its `Drop` defers the decrement exactly as
//! the location would have, while every other operation (clone, deref,
//! re-install into a location) is unaffected. Transferring the reference
//! back into an atomic location erases the bit — locations always retire.

use crate::sync::atomic::{AtomicUsize, Ordering};
use std::marker::PhantomData;

use smr::{untagged, Tid};

use crate::counted;
use crate::domain::{
    check_same_domain, load_and_increment, with_full_cs, with_strong_cs, Domain, DomainRef, Scheme,
};

/// Low bit set in the *owned pointer types'* private word (never in an
/// atomic location's word) to mark a displaced-class reference: one whose
/// relinquish must be deferred because it was location-owned when handed
/// out. Distinct namespace from [`smr::TAG_MASK`]: owned pointers store
/// untagged block addresses, so bit 0 is free.
pub(crate) const DISPLACED: usize = 0b1;

/// How one flavour of reference (strong or weak) plugs into the engine.
pub(crate) trait RefKind<S: Scheme> {
    /// The acquire-retire instance deferring this kind's decrements.
    fn ar(d: &Domain<S>) -> &S;

    /// Takes one reference of this kind on a live block (header-only).
    ///
    /// # Safety
    ///
    /// `addr` must be a live control block the caller holds a borrow on
    /// (directly or via protection); for the strong kind the strong count
    /// must additionally be nonzero.
    unsafe fn incr(addr: usize);

    /// Defers relinquishing one location-class reference.
    ///
    /// # Safety
    ///
    /// One reference of this kind to `addr` is transferred to the domain.
    unsafe fn retire(d: &Domain<S>, t: Tid, addr: usize);

    /// Relinquishes one caller-owned reference directly (the CAS-failure
    /// rollback of a pre-increment that never became visible).
    ///
    /// # Safety
    ///
    /// The caller owns one reference of this kind to `addr` and forfeits it.
    unsafe fn rollback(d: &Domain<S>, t: Tid, addr: usize);

    /// Runs `f` inside the critical-section flavour this kind's protected
    /// loads require (strong: strong-only section; weak: full section).
    fn with_cs<R>(d: &Domain<S>, t: Tid, f: impl FnOnce() -> R) -> R;
}

/// Strong references: counted in `strong`, deferred through `strong_ar`.
pub(crate) struct StrongKind;

impl<S: Scheme> RefKind<S> for StrongKind {
    #[inline]
    fn ar(d: &Domain<S>) -> &S {
        &d.strong_ar
    }

    #[inline]
    unsafe fn incr(addr: usize) {
        counted::increment_alive(addr);
    }

    #[inline]
    unsafe fn retire(d: &Domain<S>, t: Tid, addr: usize) {
        d.batch_decrement(t, addr);
    }

    #[inline]
    unsafe fn rollback(d: &Domain<S>, t: Tid, addr: usize) {
        d.decrement(t, addr);
    }

    #[inline]
    fn with_cs<R>(d: &Domain<S>, t: Tid, f: impl FnOnce() -> R) -> R {
        with_strong_cs(d, t, f)
    }
}

/// Weak references: counted in `weak`, deferred through `weak_ar`.
pub(crate) struct WeakKind;

impl<S: Scheme> RefKind<S> for WeakKind {
    #[inline]
    fn ar(d: &Domain<S>) -> &S {
        &d.weak_ar
    }

    #[inline]
    unsafe fn incr(addr: usize) {
        counted::weak_increment(addr);
    }

    #[inline]
    unsafe fn retire(d: &Domain<S>, t: Tid, addr: usize) {
        d.batch_weak_decrement(t, addr);
    }

    #[inline]
    unsafe fn rollback(d: &Domain<S>, t: Tid, addr: usize) {
        d.weak_decrement(t, addr);
    }

    #[inline]
    fn with_cs<R>(d: &Domain<S>, t: Tid, f: impl FnOnce() -> R) -> R {
        with_full_cs(d, t, f)
    }
}

/// One shared mutable pointer word bound to a domain, speaking kind `K`'s
/// reference-accounting protocol. [`AtomicSharedPtr`](crate::AtomicSharedPtr)
/// and [`AtomicWeakPtr`](crate::AtomicWeakPtr) are typed shells around this.
pub(crate) struct RcWord<S: Scheme, K: RefKind<S>> {
    word: AtomicUsize,
    domain: DomainRef<S>,
    _kind: PhantomData<fn(K) -> K>,
}

impl<S: Scheme, K: RefKind<S>> RcWord<S, K> {
    /// Creates a location holding `word`, whose (untagged) address the
    /// location takes ownership of one `K`-reference to. The caller has
    /// already validated the domain.
    pub(crate) fn new_owned(word: usize, domain: DomainRef<S>) -> Self {
        RcWord {
            word: AtomicUsize::new(word),
            domain,
            _kind: PhantomData,
        }
    }

    /// The raw word location (for the snapshot paths, which stay in the
    /// typed modules).
    #[inline]
    pub(crate) fn word(&self) -> &AtomicUsize {
        &self.word
    }

    /// Takes the raw word out of a dead location (`&mut` access: no
    /// concurrent readers exist), leaving it null so the location's `Drop`
    /// becomes a no-op. Ownership of the displaced `K`-reference (if any)
    /// transfers to the caller — the edge-collection path of immediate
    /// recursive destruction.
    #[inline]
    pub(crate) fn take_word(&mut self) -> usize {
        std::mem::replace(self.word.get_mut(), 0)
    }

    /// The domain this location is bound to.
    #[inline]
    pub(crate) fn domain(&self) -> &DomainRef<S> {
        &self.domain
    }

    /// An unprotected read of the raw word, for comparisons only.
    #[inline]
    pub(crate) fn load_raw(&self) -> usize {
        // Ordering: Relaxed — the word is an opaque comparison token here:
        // it is never dereferenced, and any CAS that uses it as `expected`
        // re-validates against the live word with its own ordering.
        self.word.load(Ordering::Relaxed)
    }

    /// Protected load-and-increment (Fig. 8): returns the untagged address
    /// carrying one fresh caller-owned `K`-reference (0 for null).
    pub(crate) fn load_owning(&self) -> usize {
        let d = &*self.domain;
        let t = smr::current_tid();
        K::with_cs(d, t, || {
            // Safety: this location owns a `K`-reference to whatever it
            // stores, with decrements deferred via `K`'s instance, so the
            // acquire-protected increment targets a live block.
            unsafe { load_and_increment(K::ar(d), t, &self.word, |a| K::incr(a)) }
        })
    }

    /// Installs `new` (address + tag bits), taking ownership of one
    /// `K`-reference to its address; the displaced reference is retired.
    ///
    /// # Panics
    ///
    /// Panics if `new`'s address is non-null and from a foreign domain.
    pub(crate) fn store_owned(&self, new: usize) {
        let old = self.install(new);
        let old_addr = untagged(old);
        if old_addr != 0 {
            let t = smr::current_tid();
            // Safety: the location owned a `K`-reference to `old_addr`.
            unsafe { K::retire(&self.domain, t, old_addr) };
        }
    }

    /// Installs `new` as [`store_owned`](Self::store_owned) but returns the
    /// displaced word raw: ownership of the displaced `K`-reference
    /// transfers to the caller, who must treat it as displaced-class
    /// (relinquish via retire, i.e. wrap it with the owned pointer types'
    /// displaced constructors).
    ///
    /// # Panics
    ///
    /// Panics if `new`'s address is non-null and from a foreign domain.
    pub(crate) fn swap_owned(&self, new: usize) -> usize {
        self.install(new)
    }

    /// The shared install swap.
    fn install(&self, new: usize) -> usize {
        check_same_domain(untagged(new), &self.domain);
        // The reference being installed must target a live block — storing
        // a disposed or freed pointer publishes a dangling reference.
        smr::sanitize::on_install(new);
        // Ordering: SeqCst swap — the Release half publishes the pointee
        // (and any pre-taken reference on it) to readers' Acquire loads, the
        // Acquire half makes the displaced occupant's header readable for
        // its deferred decrement (`rc_unlink_relaxed_swap_is_unsound` shows
        // this half tearing at Relaxed), and SeqCst places the unlink in the
        // SC order *before* the retire stamp that follows — the epoch eject
        // rules lean on the chain unlink ≤ stamp ≤ a reader's clock read ≤
        // its announcement fence, which forces any reader announcing a
        // newer-than-stamp epoch to observe this unlink. AcqRel is not
        // enough: `unlink_acqrel_swap_is_unsound` (model_check) exhibits a
        // reader that announces a fresh epoch yet still loads the stale
        // pointer while the scan under-stamps and frees it. On x86-64 every
        // swap is a `lock xchg` regardless, so this costs nothing here.
        self.word.swap(new, Ordering::SeqCst)
    }

    /// CAS installing a *new* `K`-reference to `new_addr` (borrowed-desired
    /// protocol): pre-increments so the location owns its reference the
    /// moment the CAS lands (§3.4 / Fig. 9 ordering), rolls the increment
    /// back on failure.
    ///
    /// On success returns the displaced word — ownership of the displaced
    /// `K`-reference transfers to the caller (displaced-class). On failure
    /// returns the witnessed current word.
    ///
    /// # Panics
    ///
    /// Panics if `new_addr` is non-null and from a foreign domain.
    ///
    /// # Safety
    ///
    /// `new_addr` must be 0 or a live control block the caller holds a
    /// `K`-compatible borrow on for the duration of the call.
    pub(crate) unsafe fn cas_borrowed(
        &self,
        expected: usize,
        new_addr: usize,
        new_tag: usize,
        weak_cas: bool,
    ) -> Result<usize, usize> {
        debug_assert_eq!(new_tag & !smr::TAG_MASK, 0);
        debug_assert_eq!(new_addr & smr::TAG_MASK, 0);
        check_same_domain(new_addr, &self.domain);
        if new_addr != 0 {
            // Safety: the caller's borrow guarantees liveness.
            K::incr(new_addr);
        }
        match self.cex(expected, new_addr | new_tag, weak_cas) {
            Ok(old) => Ok(old),
            Err(w) => {
                if new_addr != 0 {
                    let t = smr::current_tid();
                    // Safety: we own the pre-increment and forfeit it; it
                    // was never visible to readers, so a direct decrement
                    // is sound.
                    K::rollback(&self.domain, t, new_addr);
                }
                Err(w)
            }
        }
    }

    /// CAS transferring the *caller's own* `K`-reference (owned-desired
    /// protocol): no count traffic at all. On success the caller's
    /// reference now belongs to the location (the caller must forget its
    /// handle) and the displaced word comes back displaced-class; on
    /// failure the caller keeps its reference and receives the witness.
    ///
    /// # Panics
    ///
    /// Panics if `new`'s address is non-null and from a foreign domain.
    pub(crate) fn cas_owned(
        &self,
        expected: usize,
        new: usize,
        weak_cas: bool,
    ) -> Result<usize, usize> {
        check_same_domain(untagged(new), &self.domain);
        self.cex(expected, new, weak_cas)
    }

    /// The shared compare-exchange.
    #[inline]
    fn cex(&self, expected: usize, new: usize, weak_cas: bool) -> Result<usize, usize> {
        // Liveness holds whether or not the CAS lands: the caller's borrow
        // or pre-increment keeps `new` alive for the duration of the call.
        smr::sanitize::on_install(new);
        // Ordering: SeqCst on success — publishes the new occupant (and its
        // reference), acquires the displaced occupant's header for the
        // deferred decrement, and keeps this unlink in the SC order before
        // the retire stamp that follows, exactly as in `install`: the epoch
        // eject rules need the chain unlink ≤ stamp ≤ reader's clock read ≤
        // its announcement fence, and `unlink_acqrel_swap_is_unsound`
        // (model_check) shows AcqRel breaking it — a freshly-announced
        // reader loads the stale pointer while the scan under-stamps and
        // frees it. Free on x86-64, where the CAS is `lock cmpxchg` at any
        // ordering.
        // Ordering: Acquire on failure — the witnessed word is handed back
        // to the caller, who may seed a protected snapshot from it
        // (`compare_exchange_with`) and dereference: the publisher's Release
        // must be visible.
        if weak_cas {
            self.word
                .compare_exchange_weak(expected, new, Ordering::SeqCst, Ordering::Acquire)
        } else {
            self.word
                .compare_exchange(expected, new, Ordering::SeqCst, Ordering::Acquire)
        }
    }

    /// Unconditionally ORs tag bits into the word, returning the previous
    /// word. No reference counts change: the location keeps its pointer.
    pub(crate) fn fetch_or_tag(&self, tag_bits: usize) -> usize {
        debug_assert_eq!(tag_bits & !smr::TAG_MASK, 0);
        // Ordering: AcqRel — tag edges linearize structure mutations
        // (Natarajan-Mittal flag/tag, Harris marks): Release orders the
        // caller's prior writes before the mark becomes visible, Acquire
        // orders the caller's subsequent cleanup after the word it
        // observed. The pointer bits do not change, so no publication of a
        // new pointee is involved.
        self.word.fetch_or(tag_bits, Ordering::AcqRel)
    }

    /// ORs tag bits into the word if it still equals `expected`. Returns
    /// the installed word on success and the witnessed current word on
    /// failure. No reference counts change.
    pub(crate) fn try_set_tag(&self, expected: usize, tag_bits: usize) -> Result<usize, usize> {
        debug_assert_eq!(tag_bits & !smr::TAG_MASK, 0);
        // Ordering: AcqRel on success — as in
        // [`fetch_or_tag`](Self::fetch_or_tag); the mark is a linearization
        // point, not a pointer publication. Acquire on failure — the
        // witness is handed back and may seed further witness logic.
        self.word
            .compare_exchange(
                expected,
                expected | tag_bits,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .map(|_| expected | tag_bits)
    }
}

impl<S: Scheme, K: RefKind<S>> Drop for RcWord<S, K> {
    fn drop(&mut self) {
        let addr = untagged(*self.word.get_mut());
        if addr != 0 {
            let t = smr::current_tid();
            // Safety: the location owns a `K`-reference. Deferral (not a
            // direct decrement) matters: a concurrent reader that loaded
            // this pointer before we were unlinked may still be protected.
            // `self.domain` is alive throughout (field drop runs after us).
            unsafe { K::retire(&self.domain, t, addr) };
        }
    }
}
