//! The reclamation domain: three acquire-retire instances (strong
//! decrements, weak decrements, disposals — §4.4 of the paper) sharing one
//! epoch clock, plus the deferred-operation primitives of Figure 8.

use std::cell::Cell;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;

use smr::util::{CachePadded, ShardedCounter};
use smr::{AcquireRetire, GlobalEpoch, Retired, SmrConfig, Tid, MAX_THREADS};
use sticky::Counter;

use crate::counted::{as_header, Counted, Header};

/// An SMR scheme usable as the engine of the reference-counting library.
///
/// The single obligation beyond [`AcquireRetire`] is a process-global
/// [`Domain`] so that pointer types need not thread a domain handle through
/// every signature. Implemented here for all four schemes of the `smr`
/// crate; implement it for your own scheme to plug it into the same pointer
/// types.
pub trait Scheme: AcquireRetire + Sized {
    /// The process-wide domain that the pointer types of this crate bind to.
    fn global_domain() -> &'static Domain<Self>;
}

macro_rules! impl_scheme {
    ($ty:ty) => {
        impl Scheme for $ty {
            fn global_domain() -> &'static Domain<Self> {
                static DOMAIN: std::sync::OnceLock<Domain<$ty>> = std::sync::OnceLock::new();
                DOMAIN.get_or_init(Domain::new)
            }
        }
    };
}

impl_scheme!(smr::Ebr);
impl_scheme!(smr::Ibr);
impl_scheme!(smr::Hp);
impl_scheme!(smr::Hyaline);

struct DomainLocal {
    /// True while this thread is applying ejected deferred operations —
    /// nested `collect` calls become no-ops, flattening what would otherwise
    /// be unbounded recursive destruction (§3.2: `eject` must not recurse).
    applying: Cell<bool>,
}

/// A reclamation domain for scheme `S`.
///
/// Holds the three acquire-retire instances of §4.4 — one delaying strong
/// reference-count decrements, one delaying weak decrements, and one delaying
/// disposal of managed objects — all sharing a [`GlobalEpoch`] so that birth
/// epochs are comparable across instances.
///
/// Pointer types bind to [`Scheme::global_domain`]; standalone domains are
/// mainly useful for tests and for embedding.
pub struct Domain<S: AcquireRetire> {
    pub(crate) strong_ar: S,
    pub(crate) weak_ar: S,
    pub(crate) dispose_ar: S,
    clock: Arc<GlobalEpoch>,
    /// Control-block allocation count, sharded per thread: a shared
    /// `fetch_add` on the allocation path serializes every allocating core
    /// on one cache line.
    allocs: ShardedCounter,
    /// Control-block free count, sharded likewise.
    frees: ShardedCounter,
    locals: Box<[CachePadded<DomainLocal>]>,
}

// Safety: `locals` entries are only touched by the thread whose Tid indexes
// them; everything else is Sync.
unsafe impl<S: AcquireRetire> Send for Domain<S> {}
unsafe impl<S: AcquireRetire> Sync for Domain<S> {}

impl<S: AcquireRetire> Default for Domain<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: AcquireRetire> Domain<S> {
    /// Creates a domain with the scheme's preferred configuration.
    pub fn new() -> Self {
        Self::with_config(S::default_config())
    }

    /// Creates a domain with explicit scheme tuning.
    pub fn with_config(cfg: SmrConfig) -> Self {
        let clock = Arc::new(GlobalEpoch::new());
        Domain {
            strong_ar: S::new(Arc::clone(&clock), cfg.clone()),
            weak_ar: S::new(Arc::clone(&clock), cfg.clone()),
            dispose_ar: S::new(Arc::clone(&clock), cfg),
            clock,
            allocs: ShardedCounter::new(),
            frees: ShardedCounter::new(),
            locals: (0..MAX_THREADS)
                .map(|_| {
                    CachePadded::new(DomainLocal {
                        applying: Cell::new(false),
                    })
                })
                .collect(),
        }
    }

    /// Control blocks allocated through this domain so far.
    ///
    /// Monotone diagnostic counter: the sum over per-thread lanes observes
    /// every allocation that happened-before the call (e.g. via a join) and
    /// needs no ordering beyond that — see [`ShardedCounter::sum`].
    pub fn allocated(&self) -> u64 {
        self.allocs.sum()
    }

    /// Control blocks freed so far. Same contract as
    /// [`allocated`](Self::allocated).
    pub fn freed(&self) -> u64 {
        self.frees.sum()
    }

    /// Control blocks currently alive (allocated − freed): live objects plus
    /// deferred garbage. The benchmark harness samples this for the paper's
    /// "extra nodes" memory metric.
    pub fn in_flight(&self) -> u64 {
        self.allocated().saturating_sub(self.freed())
    }

    /// The shared epoch clock (exposed for tests and benchmarks).
    pub fn epoch(&self) -> u64 {
        self.clock.load()
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    pub(crate) fn allocate<T>(&self, t: Tid, value: T) -> *mut Counted<T> {
        let birth = self.strong_ar.birth_epoch(t);
        self.allocs.add(t, 1);
        Counted::allocate(value, birth)
    }

    // ------------------------------------------------------------------
    // Figure 8 primitives. `addr` is always an untagged control-block
    // address. All `unsafe fn`s require: `addr` points to a live control
    // block and the caller upholds the reference-count ownership rules
    // stated on each.
    // ------------------------------------------------------------------

    /// Strong increment-if-not-zero.
    ///
    /// # Safety
    ///
    /// The control block must be alive (caller holds a weak or strong
    /// reference, or protection on a location containing one).
    #[inline]
    pub(crate) unsafe fn increment(&self, addr: usize) -> bool {
        (*as_header(addr)).strong.increment_if_not_zero()
    }

    /// Strong increment on an address known to have a nonzero count (e.g.
    /// read from a location holding a strong reference, under protection).
    ///
    /// # Safety
    ///
    /// As [`increment`](Self::increment), plus the nonzero guarantee.
    #[inline]
    pub(crate) unsafe fn increment_alive(&self, addr: usize) {
        let ok = self.increment(addr);
        debug_assert!(ok, "increment of an expired object: protection bug");
    }

    /// Weak increment (never needs to check: a zero weak count means the
    /// block is already freed, which the caller's reference excludes).
    ///
    /// # Safety
    ///
    /// The control block must be alive.
    #[inline]
    pub(crate) unsafe fn weak_increment(&self, addr: usize) {
        let ok = (*as_header(addr)).weak.increment_if_not_zero();
        debug_assert!(ok, "weak increment of a freed block: protection bug");
    }

    /// Direct strong decrement of a reference the caller owns. If it zeroes
    /// the count, disposal is *deferred* through the dispose instance so
    /// weak snapshots stay readable (§4.4).
    ///
    /// # Safety
    ///
    /// Caller owns one strong reference to `addr` and forfeits it.
    pub(crate) unsafe fn decrement(&self, t: Tid, addr: usize) {
        if (*as_header(addr)).strong.decrement() {
            self.delayed_dispose(t, addr);
        }
    }

    /// Direct weak decrement of a reference the caller owns. Frees the
    /// control block when the weak count reaches zero.
    ///
    /// # Safety
    ///
    /// Caller owns one weak reference to `addr` and forfeits it.
    pub(crate) unsafe fn weak_decrement(&self, t: Tid, addr: usize) {
        let h = as_header(addr);
        if (*h).weak.decrement() {
            self.frees.add(t, 1);
            ((*h).vtable.dealloc)(h);
        }
    }

    /// Destroys the managed object and drops the strong side's weak
    /// reference (Fig. 8's `dispose`).
    ///
    /// # Safety
    ///
    /// The strong count of `addr` is zero and nobody else will dispose it.
    pub(crate) unsafe fn dispose(&self, t: Tid, addr: usize) {
        let h = as_header(addr);
        ((*h).vtable.dispose)(h);
        self.weak_decrement(t, addr);
    }

    /// Defers a strong decrement of a location-owned reference (the object
    /// was just unlinked from a shared location).
    ///
    /// # Safety
    ///
    /// One strong reference to `addr` is transferred to the domain.
    pub(crate) unsafe fn delayed_decrement(&self, t: Tid, addr: usize) {
        let birth = (*as_header(addr)).birth;
        self.strong_ar.retire(t, Retired::new(addr, birth));
        self.collect(t);
    }

    /// Defers a weak decrement of a location-owned weak reference.
    ///
    /// # Safety
    ///
    /// One weak reference to `addr` is transferred to the domain.
    pub(crate) unsafe fn delayed_weak_decrement(&self, t: Tid, addr: usize) {
        let birth = (*as_header(addr)).birth;
        self.weak_ar.retire(t, Retired::new(addr, birth));
        self.collect(t);
    }

    /// Defers destruction of an object whose strong count just hit zero.
    ///
    /// # Safety
    ///
    /// The strong count of `addr` is zero; disposal responsibility is
    /// transferred to the domain.
    pub(crate) unsafe fn delayed_dispose(&self, t: Tid, addr: usize) {
        let birth = (*as_header(addr)).birth;
        self.dispose_ar.retire(t, Retired::new(addr, birth));
        self.collect(t);
    }

    /// Whether the object's strong count is zero (Fig. 8's `expired`).
    ///
    /// # Safety
    ///
    /// The control block must be alive.
    #[inline]
    pub(crate) unsafe fn expired(&self, addr: usize) -> bool {
        (*as_header(addr)).strong.load() == 0
    }

    /// Reads an object's birth epoch (diagnostics / future schemes).
    ///
    /// # Safety
    ///
    /// The control block must be alive.
    #[allow(dead_code)]
    pub(crate) unsafe fn birth_of(&self, addr: usize) -> u64 {
        (*as_header(addr)).birth
    }

    // ------------------------------------------------------------------
    // Applying ejected deferred operations
    // ------------------------------------------------------------------

    /// Applies every ready ejected operation on all three instances.
    ///
    /// Re-entrant calls (triggered by retires issued while destroying
    /// objects) return immediately; the outermost call loops until no
    /// channel has ready ejects, bounding both recursion depth and the
    /// amount of ready-but-unapplied garbage.
    pub(crate) fn collect(&self, t: Tid) {
        self.collect_counted(t);
    }

    /// As [`collect`](Self::collect) but reports how many deferred
    /// operations were applied (0 when re-entered).
    fn collect_counted(&self, t: Tid) -> usize {
        // Fast path: nothing is ready on any instance — the overwhelmingly
        // common case for the per-retire calls (ready queues only fill when
        // a threshold scan runs). Three thread-local peeks instead of the
        // re-entrancy bookkeeping and triple eject loop below.
        if !self.strong_ar.has_ready(t)
            && !self.weak_ar.has_ready(t)
            && !self.dispose_ar.has_ready(t)
        {
            return 0;
        }
        let local = &self.locals[t.index()];
        if local.applying.get() {
            return 0;
        }
        local.applying.set(true);
        // Reset the flag even if a payload destructor panics: subsequent
        // operations then leak instead of deadlocking collection.
        struct Reset<'a>(&'a Cell<bool>);
        impl Drop for Reset<'_> {
            fn drop(&mut self) {
                self.0.set(false);
            }
        }
        let _reset = Reset(&local.applying);
        let mut applied = 0;
        loop {
            let mut any = false;
            while let Some(r) = self.strong_ar.eject(t) {
                any = true;
                // Safety: an ejected strong retire carries exactly one
                // strong reference transferred at `delayed_decrement`.
                unsafe { self.decrement(t, r.addr) };
            }
            while let Some(r) = self.weak_ar.eject(t) {
                any = true;
                // Safety: carries one weak reference.
                unsafe { self.weak_decrement(t, r.addr) };
            }
            while let Some(r) = self.dispose_ar.eject(t) {
                any = true;
                // Safety: carries the disposal responsibility for an object
                // whose strong count is zero.
                unsafe { self.dispose(t, r.addr) };
            }
            if !any {
                break;
            }
            applied += 1;
        }
        applied
    }

    /// Flushes all three instances and applies everything that becomes
    /// ready, repeating until a round makes no progress. Recursive teardown
    /// of linked structures completes here (each round releases one more
    /// "level").
    ///
    /// Intended for tests, benchmark phase boundaries and orderly shutdown;
    /// concurrent use is safe, but entries protected by other threads'
    /// critical sections or guards necessarily remain deferred.
    pub fn process_deferred(&self, t: Tid) {
        loop {
            self.strong_ar.flush(t);
            self.weak_ar.flush(t);
            self.dispose_ar.flush(t);
            if self.collect_counted(t) == 0 {
                break;
            }
        }
    }

    /// Drains every retired record from all three instances — protected or
    /// not — and applies the deferred operations, repeating to a fixpoint.
    ///
    /// # Safety
    ///
    /// No other thread may be using this domain (no live pointers on other
    /// threads, no active critical sections).
    pub unsafe fn drain_and_apply_all(&self, t: Tid) {
        loop {
            let strong: Vec<Retired> = self.strong_ar.drain_all();
            let weak: Vec<Retired> = self.weak_ar.drain_all();
            let disp: Vec<Retired> = self.dispose_ar.drain_all();
            if strong.is_empty() && weak.is_empty() && disp.is_empty() {
                break;
            }
            for r in strong {
                self.decrement(t, r.addr);
            }
            for r in weak {
                self.weak_decrement(t, r.addr);
            }
            for r in disp {
                self.dispose(t, r.addr);
            }
            // Applying may have retired more (possibly on other slots via
            // recycled Tids); loop until nothing is left anywhere.
            self.collect(t);
        }
    }

    // ------------------------------------------------------------------
    // Critical sections
    // ------------------------------------------------------------------

    /// Begins a *strong* critical section: read protection for atomic
    /// shared pointers and snapshots. See [`CsGuard`].
    pub fn cs(&self) -> CsGuard<'_, S> {
        let t = smr::current_tid();
        self.strong_ar.begin_critical_section(t);
        CsGuard {
            domain: self,
            t,
            _not_send: PhantomData,
        }
    }

    /// Begins a *full* critical section additionally covering the weak and
    /// dispose instances — required for every `AtomicWeakPtr` operation and
    /// weak snapshot lifetime. See [`WeakCsGuard`].
    pub fn weak_cs(&self) -> WeakCsGuard<'_, S> {
        let t = smr::current_tid();
        self.weak_ar.begin_critical_section(t);
        self.dispose_ar.begin_critical_section(t);
        WeakCsGuard { inner: self.cs() }
    }
}

impl<S: AcquireRetire> Drop for Domain<S> {
    fn drop(&mut self) {
        // Exclusive access (`&mut self`): apply whatever is still deferred
        // so locally-scoped domains do not leak.
        let t = smr::current_tid();
        unsafe { self.drain_and_apply_all(t) };
    }
}

impl<S: AcquireRetire> fmt::Debug for Domain<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Domain")
            .field("scheme", &S::scheme_name())
            .field("allocated", &self.allocated())
            .field("freed", &self.freed())
            .finish()
    }
}

/// RAII strong critical section (the paper's `critical_section_guard`,
/// strong-only flavour).
///
/// All racy atomic-shared-pointer operations and every
/// [`SnapshotPtr`](crate::SnapshotPtr) lifetime must be contained in one
/// (§3.4). Pointer operations that are invoked without an explicit guard
/// open one internally for their own duration; holding a guard across an
/// operation sequence amortizes the scheme's per-section fence.
///
/// Not `Send`: the guard encapsulates per-thread announcements.
pub struct CsGuard<'d, S: AcquireRetire> {
    pub(crate) domain: &'d Domain<S>,
    pub(crate) t: Tid,
    _not_send: PhantomData<*mut ()>,
}

impl<'d, S: AcquireRetire> CsGuard<'d, S> {
    /// The domain this section protects.
    pub fn domain(&self) -> &'d Domain<S> {
        self.domain
    }

    pub(crate) fn tid(&self) -> Tid {
        self.t
    }
}

impl<S: AcquireRetire> Drop for CsGuard<'_, S> {
    fn drop(&mut self) {
        self.domain.strong_ar.end_critical_section(self.t);
        // Leaving a section is where region schemes (Hyaline in particular)
        // ready new ejects; apply them now.
        self.domain.collect(self.t);
    }
}

impl<S: AcquireRetire> fmt::Debug for CsGuard<'_, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CsGuard").field("tid", &self.t).finish()
    }
}

/// RAII full critical section: strong + weak + dispose instances.
///
/// Required for [`AtomicWeakPtr`](crate::AtomicWeakPtr) operations and
/// [`WeakSnapshotPtr`](crate::WeakSnapshotPtr) lifetimes; usable anywhere a
/// strong [`CsGuard`] is accepted via [`as_cs`](WeakCsGuard::as_cs).
pub struct WeakCsGuard<'d, S: AcquireRetire> {
    inner: CsGuard<'d, S>,
}

impl<'d, S: AcquireRetire> WeakCsGuard<'d, S> {
    /// The strong section view, for APIs that only need strong protection.
    pub fn as_cs(&self) -> &CsGuard<'d, S> {
        &self.inner
    }

    /// The domain this section protects.
    pub fn domain(&self) -> &'d Domain<S> {
        self.inner.domain
    }

    pub(crate) fn tid(&self) -> Tid {
        self.inner.t
    }
}

impl<S: AcquireRetire> Drop for WeakCsGuard<'_, S> {
    fn drop(&mut self) {
        self.inner.domain.weak_ar.end_critical_section(self.inner.t);
        self.inner
            .domain
            .dispose_ar
            .end_critical_section(self.inner.t);
        // `inner` drops afterwards, ending the strong section and running
        // collection.
    }
}

impl<S: AcquireRetire> fmt::Debug for WeakCsGuard<'_, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WeakCsGuard")
            .field("tid", &self.inner.t)
            .finish()
    }
}

/// Uniform view over the two critical-section guard flavours.
///
/// Code that only needs *strong* protection (snapshots of
/// [`AtomicSharedPtr`](crate::AtomicSharedPtr) locations) can accept any
/// `impl OpGuard` and work under either a plain [`CsGuard`] or a full
/// [`WeakCsGuard`] — this is what lets a weak-edge structure (the paper's
/// Fig. 10 queue, whose `prev` pointers need the full section) share one
/// guard-taking operation interface with the strong-only structures.
///
/// Hold one guard across a batch of operations to pay the scheme's
/// per-section announcement fence once instead of per operation (§3.4).
pub trait OpGuard<'d, S: AcquireRetire> {
    /// The strong-section view of this guard, accepted by every
    /// snapshot-taking strong-pointer operation (the domain is reachable
    /// from it via [`CsGuard::domain`]).
    fn strong_cs(&self) -> &CsGuard<'d, S>;
}

impl<'d, S: AcquireRetire> OpGuard<'d, S> for CsGuard<'d, S> {
    fn strong_cs(&self) -> &CsGuard<'d, S> {
        self
    }
}

impl<'d, S: AcquireRetire> OpGuard<'d, S> for WeakCsGuard<'d, S> {
    fn strong_cs(&self) -> &CsGuard<'d, S> {
        self.as_cs()
    }
}

/// Internal helper: runs `f` inside a temporary strong critical section.
#[inline]
pub(crate) fn with_strong_cs<S: AcquireRetire, R>(
    domain: &Domain<S>,
    t: Tid,
    f: impl FnOnce() -> R,
) -> R {
    domain.strong_ar.begin_critical_section(t);
    let r = f();
    domain.strong_ar.end_critical_section(t);
    domain.collect(t);
    r
}

/// Internal helper: runs `f` inside a temporary full critical section.
#[inline]
pub(crate) fn with_full_cs<S: AcquireRetire, R>(
    domain: &Domain<S>,
    t: Tid,
    f: impl FnOnce() -> R,
) -> R {
    domain.strong_ar.begin_critical_section(t);
    domain.weak_ar.begin_critical_section(t);
    domain.dispose_ar.begin_critical_section(t);
    let r = f();
    domain.dispose_ar.end_critical_section(t);
    domain.weak_ar.end_critical_section(t);
    domain.strong_ar.end_critical_section(t);
    domain.collect(t);
    r
}

/// Marker: a borrowed handle that guarantees the referent's strong count is
/// at least one for the duration of the borrow, enabling plain fetch-add
/// increments (no increment-if-not-zero needed).
///
/// Implemented by [`SharedPtr`](crate::SharedPtr) and
/// [`SnapshotPtr`](crate::SnapshotPtr).
pub trait StrongRef<T> {
    /// The untagged control-block address, or 0 for null.
    fn addr(&self) -> usize;
}

pub(crate) fn _assert_traits() {
    fn is_send_sync<X: Send + Sync>() {}
    is_send_sync::<Domain<smr::Ebr>>();
}

/// Shared helper for the atomic pointer types: the word is loaded and
/// protected via `acquire` on the given instance, then the strong/weak count
/// incremented and protection released — Fig. 8's `load_and_increment` and
/// `weak_load_and_increment`.
///
/// Returns the untagged address (0 for null).
///
/// # Safety
///
/// `word` must be a location managed under the domain's counting protocol
/// for the chosen instance: while it stores a non-null address, it owns a
/// (strong / weak, matching `inc`) reference to it whose decrement is
/// deferred through that same instance.
pub(crate) unsafe fn load_and_increment<S: AcquireRetire>(
    ar: &S,
    t: Tid,
    word: &AtomicUsize,
    inc: impl FnOnce(usize),
) -> usize {
    let (w, guard) = ar.acquire(t, word);
    let addr = smr::untagged(w);
    if addr != 0 {
        inc(addr);
    }
    ar.release(t, guard);
    addr
}

/// Asserts at compile time that header erasure is sound for any `T`.
#[allow(dead_code)]
fn _header_prefix_is_stable<T>(c: *mut Counted<T>) -> *mut Header {
    c as *mut Header
}
