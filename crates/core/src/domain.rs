//! The reclamation domain: three acquire-retire instances (strong
//! decrements, weak decrements, disposals — §4.4 of the paper) sharing one
//! epoch clock, plus the deferred-operation primitives of Figure 8.
//!
//! # Domain handles
//!
//! A [`Domain`] is owned through [`DomainRef`], a cheap-to-clone
//! `Arc`-backed handle. Every pointer type is bound to exactly one domain at
//! creation — [`Scheme::global_domain`] is merely the *convenience default*
//! used by the handle-free constructors (`SharedPtr::new`,
//! `AtomicSharedPtr::null`, …); the `_in` constructors take an explicit
//! handle. Two structures on the same scheme with separate domains are fully
//! isolated: neither's open critical sections, epoch advancement or
//! allocation counters affect the other.
//!
//! Domain lifetime is reference-counted three ways: user handles
//! ([`DomainRef`] clones), the guards ([`CsGuard`], [`WeakCsGuard`]) and
//! atomic pointer locations, and *every control block allocated under the
//! domain* (released when the block is freed). The domain is therefore alive
//! whenever anything that could still reach it exists. A `SharedPtr` or
//! `WeakPtr` may even outlive the last handle: when such a pointer's final
//! drop leaves the domain with no references besides its own blocks', the
//! drop flushes the deferred work itself (the orphan-teardown check in
//! `DomainHold`), so the blocks and the domain are reclaimed rather than
//! leaked. The remaining caveat: discarding the last handle while deferred
//! garbage is pinned by a concurrent section — with no later pointer drop
//! to trigger the orphan check — leaks those blocks; flush with
//! [`Domain::process_deferred`] first (the `lockfree` structures do this in
//! their `Drop`).

use crate::sync::atomic::AtomicUsize;
use std::cell::{Cell, UnsafeCell};
use std::fmt;
use std::marker::PhantomData;
use std::ops::Deref;
use std::sync::Arc;

use smr::util::{CachePadded, ShardedCounter};
use smr::{AcquireRetire, ExitHook, GlobalEpoch, Retired, SmrConfig, Tid, MAX_THREADS};
use sticky::Counter;

use crate::counted::{as_header, Counted, EdgeSink, GraphNode};

/// An SMR scheme usable as the engine of the reference-counting library.
///
/// The single obligation beyond [`AcquireRetire`] is a process-global
/// *default* [`Domain`] for the handle-free constructors. Pointer types and
/// structures that want isolation create their own domain with
/// [`DomainRef::new`] and use the `_in` constructors instead. Implemented
/// here for all four schemes of the `smr` crate; implement it for your own
/// scheme to plug it into the same pointer types.
pub trait Scheme: AcquireRetire + Sized {
    /// The process-wide default domain that the handle-free constructors of
    /// this crate bind to.
    fn global_domain() -> &'static DomainRef<Self>;
}

macro_rules! impl_scheme {
    ($ty:ty) => {
        impl Scheme for $ty {
            fn global_domain() -> &'static DomainRef<Self> {
                static DOMAIN: std::sync::OnceLock<DomainRef<$ty>> = std::sync::OnceLock::new();
                DOMAIN.get_or_init(DomainRef::new_default)
            }
        }
    };
}

impl_scheme!(smr::Ebr);
impl_scheme!(smr::Ibr);
impl_scheme!(smr::Hp);
impl_scheme!(smr::Hyaline);

/// An owning handle on a reclamation [`Domain`] for scheme `S`.
///
/// Clones are cheap (`Arc`) and all refer to the same domain; the handle
/// [`Deref`]s to [`Domain`] for the metric and maintenance API. A domain's
/// identity *is* its allocation — compare handles with
/// [`ptr_eq`](DomainRef::ptr_eq).
///
/// # Examples
///
/// Two structures on one scheme, each with its own domain:
///
/// ```
/// use cdrc::{DomainRef, EbrScheme};
///
/// let a: DomainRef<EbrScheme> = DomainRef::new();
/// let b: DomainRef<EbrScheme> = DomainRef::new();
/// assert!(!a.ptr_eq(&b));
/// assert!(a.ptr_eq(&a.clone()));
/// assert_eq!(a.in_flight(), 0);
/// ```
pub struct DomainRef<S: AcquireRetire>(Arc<Domain<S>>);

impl<S: AcquireRetire> Clone for DomainRef<S> {
    fn clone(&self) -> Self {
        DomainRef(Arc::clone(&self.0))
    }
}

impl<S: AcquireRetire> Drop for DomainRef<S> {
    fn drop(&mut self) {
        // Orphan teardown, handle-side twin of the check in
        // `DomainHold::drop`: if every reference remaining after this one is
        // a control block's own, no handle or guard survives to flush this
        // thread's pending decrement batch or collect what it retires —
        // batch entries pin their blocks and blocks pin the domain, so the
        // whole domain would leak. The default domain's static handle makes
        // it exempt; drops inside an apply cascade are covered by the
        // outermost flush loop. Both reads are racy in exactly the benign
        // directions described in `DomainHold::drop`.
        let t = smr::current_tid();
        if !self.0.is_default && !self.0.applying(t) {
            let sc = Arc::strong_count(&self.0) as u64;
            if sc - 1 == self.0.in_flight() {
                self.0.process_deferred(t);
            }
        }
    }
}

impl<S: AcquireRetire> Deref for DomainRef<S> {
    type Target = Domain<S>;
    fn deref(&self) -> &Domain<S> {
        &self.0
    }
}

impl<S: AcquireRetire> Default for DomainRef<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: AcquireRetire> fmt::Debug for DomainRef<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("DomainRef").field(&*self.0).finish()
    }
}

impl<S: AcquireRetire> DomainRef<S> {
    /// Creates a fresh, fully independent domain with the scheme's preferred
    /// configuration.
    pub fn new() -> Self {
        Self::with_config(S::default_config())
    }

    /// Creates a fresh domain with explicit scheme tuning.
    pub fn with_config(cfg: SmrConfig) -> Self {
        let d = DomainRef(Arc::new(Domain::with_config(cfg, false)));
        d.register_reaper();
        d
    }

    /// The process-wide default domain for [`Scheme::global_domain`]: held
    /// by a static forever, so the orphan-teardown check can skip it.
    pub(crate) fn new_default() -> Self {
        let d = DomainRef(Arc::new(Domain::with_config(S::default_config(), true)));
        d.register_reaper();
        d
    }

    /// Registers this domain with the registry's dead-thread reaper so that
    /// [`smr::reclaim_orphaned_slot`] recovers the domain's per-thread state
    /// (announcements on all three instances, retired lists, pending
    /// decrement batches) for a thread that died without unregistering. The
    /// closure holds only a weak handle — it never keeps the domain alive,
    /// and returns `false` (pruning itself) once the domain is gone.
    fn register_reaper(&self) {
        let weak = Arc::downgrade(&self.0);
        smr::register_orphan_reaper(Box::new(move |dead| match weak.upgrade() {
            // Safety: reapers run only from inside
            // `smr::reclaim_orphaned_slot`, whose (unsafe) caller vouches
            // that `dead`'s owner terminated and that its death
            // happened-before this call — exactly the contract
            // `Domain::reclaim_orphaned_slot` requires.
            Some(d) => {
                unsafe { d.reclaim_orphaned_slot(dead) };
                true
            }
            None => false,
        }));
    }

    /// Whether two handles refer to the *same* domain. Domain identity is
    /// what the misuse checks compare: a guard or pointer from a different
    /// domain provides no protection here even when the scheme type matches.
    #[inline]
    pub fn ptr_eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// The domain's address, used for identity checks against the domain
    /// pointer recorded in control-block headers.
    #[inline]
    pub(crate) fn as_raw(&self) -> *const Domain<S> {
        Arc::as_ptr(&self.0)
    }

    /// Allocates a control block under this domain. The block records the
    /// domain and owns one `Arc` reference on it (released when the block is
    /// freed), so single-word pointers can resolve their domain from the
    /// header for as long as the block lives.
    pub(crate) fn allocate<T>(&self, t: Tid, value: T) -> *mut Counted<T> {
        let birth = self.strong_ar.birth_epoch(t);
        self.allocs.add(t, 1);
        let ptr = Arc::as_ptr(&self.0);
        // Safety: `ptr` comes from a live Arc we hold.
        unsafe { Arc::increment_strong_count(ptr) };
        Counted::allocate::<S>(value, birth, ptr as *const ())
    }

    /// As [`allocate`](Self::allocate), but with the graph-aware vtable so
    /// the destruct machinery can enumerate the payload's outgoing edges.
    pub(crate) fn allocate_graph<T>(&self, t: Tid, value: T) -> *mut Counted<T>
    where
        S: Scheme,
        T: GraphNode<S>,
    {
        let birth = self.strong_ar.birth_epoch(t);
        self.allocs.add(t, 1);
        let ptr = Arc::as_ptr(&self.0);
        // Safety: `ptr` comes from a live Arc we hold.
        unsafe { Arc::increment_strong_count(ptr) };
        Counted::allocate_graph::<S>(value, birth, ptr as *const ())
    }

    /// Begins a *strong* critical section: read protection for atomic
    /// shared pointers and snapshots. See [`CsGuard`].
    pub fn cs(&self) -> CsGuard<S> {
        let t = smr::current_tid();
        self.strong_ar.begin_critical_section(t);
        CsGuard {
            domain: self.clone(),
            t,
            _not_send: PhantomData,
        }
    }

    /// Begins a *full* critical section additionally covering the weak and
    /// dispose instances — required for every `AtomicWeakPtr` operation and
    /// weak snapshot lifetime. See [`WeakCsGuard`].
    pub fn weak_cs(&self) -> WeakCsGuard<S> {
        let inner = self.cs();
        let t = inner.t;
        self.weak_ar.begin_critical_section(t);
        self.dispose_ar.begin_critical_section(t);
        WeakCsGuard { inner }
    }
}

/// Rebuilds an owning [`DomainRef`] from the domain pointer recorded in a
/// live control block's header.
///
/// # Safety
///
/// `addr` must be a live control block allocated under scheme `S` via
/// [`DomainRef::allocate`] (so its domain pointer is non-null and the
/// block's own reference keeps the `Arc` alive across this call).
pub(crate) unsafe fn domain_ref_of<S: AcquireRetire>(addr: usize) -> DomainRef<S> {
    let ptr = crate::counted::domain_ptr_of::<S>(addr);
    Arc::increment_strong_count(ptr);
    DomainRef(Arc::from_raw(ptr))
}

/// Panics if a non-null block was not allocated under `domain`.
///
/// Installing a pointer into a location bound to a different domain would
/// defer its reclamation through an instance its readers never announce to —
/// a protection hole — so the store-family operations refuse it outright.
#[inline]
pub(crate) fn check_same_domain<S: AcquireRetire>(addr: usize, domain: &DomainRef<S>) {
    if addr != 0 {
        // Safety: callers pass addresses of live blocks (strong or weak
        // borrows they hold).
        let owner = unsafe { crate::counted::domain_ptr_of::<S>(addr) };
        assert!(
            std::ptr::eq(owner, domain.as_raw()),
            "cross-domain pointer: this location is bound to a different reclamation domain \
             than the one the pointer was allocated in"
        );
    }
}

/// A temporary strong count on a domain, held across deferred-operation
/// cascades entered from header-resolved (handle-free) paths such as
/// `SharedPtr::drop`: the cascade may free the very block whose domain
/// reference was keeping the domain alive, and this hold keeps the domain's
/// teardown from running re-entrantly inside its own methods.
pub(crate) struct DomainHold<S: AcquireRetire> {
    ptr: *const Domain<S>,
}

impl<S: AcquireRetire> DomainHold<S> {
    /// # Safety
    ///
    /// `ptr` must come from a control-block header whose block is still
    /// alive (i.e. it points into a live `Arc<Domain<S>>` allocation).
    #[inline]
    pub(crate) unsafe fn new(ptr: *const Domain<S>) -> Self {
        Arc::increment_strong_count(ptr);
        DomainHold { ptr }
    }

    /// The held domain.
    #[inline]
    pub(crate) fn domain(&self) -> &Domain<S> {
        // Safety: we hold a strong count on the Arc.
        unsafe { &*self.ptr }
    }
}

impl<S: AcquireRetire> Drop for DomainHold<S> {
    fn drop(&mut self) {
        // Safety: we own one strong count, so borrowing the Arc here is
        // sound; `ManuallyDrop` keeps the borrow from consuming it.
        unsafe {
            let arc = std::mem::ManuallyDrop::new(Arc::from_raw(self.ptr));
            // Orphan teardown: holds exist only on paths that just deferred
            // (or applied) an operation from a handle-free pointer. If —
            // apart from this hold — every remaining reference on the
            // domain is a control block's own, then no handle or guard
            // exists to ever run collection again, and whatever we just
            // deferred would leak together with the domain. Flush it now.
            //
            // The scheme-global default domain is exempt outright (its
            // static handle exists forever, so it can never be orphaned) —
            // which also keeps this check off the default hot path. Holds
            // created *inside* a collection cascade skip too: the outermost
            // flush loops to a fixpoint and covers them, so a deep chain
            // tears down with one flush instead of one per node. Both
            // counter reads are racy: a spurious flush is merely redundant
            // work, and a mismatch implies some other thread holds a live
            // reference and is responsible for its own collection.
            let t = smr::current_tid();
            if !arc.is_default && !arc.applying(t) {
                let sc = Arc::strong_count(&arc) as u64;
                if sc - 1 == arc.in_flight() {
                    arc.process_deferred(t);
                }
            }
            // Balances the increment in `new`. If this is the last
            // reference anywhere, the domain tears down here — outside all
            // of its own methods.
            Arc::decrement_strong_count(self.ptr);
        }
    }
}

struct DomainLocal {
    /// True while this thread is applying ejected deferred operations —
    /// nested `collect` calls become no-ops, flattening what would otherwise
    /// be unbounded recursive destruction (§3.2: `eject` must not recurse).
    applying: Cell<bool>,
    /// Batched displaced-pointer strong decrements: each entry owes the
    /// domain one deferred strong decrement, retired in bulk at the next
    /// flush point (section exit, capacity overflow, `process_deferred`,
    /// thread unregister) instead of one retire + collect per store.
    pending_strong: Batch,
    /// Batched displaced weak decrements; same protocol.
    pending_weak: Batch,
    /// Whether this thread has registered its unregister-time flush
    /// callback with this domain. Reset by the callback itself so a
    /// recycled slot's next owner re-registers.
    flush_registered: Cell<bool>,
    /// Reusable worklist + edge sink for `destruct`, so steady-state
    /// reclamation of graph nodes is allocation-free. `None` while a
    /// destruct on this thread is using it; the bounded-depth nested
    /// destruct (entered through a non-graph payload's `Drop`) then
    /// allocates fresh buffers.
    destruct_scratch: Cell<Option<Box<DestructScratch>>>,
}

/// Scratch buffers for one `destruct` cascade; capacities persist across
/// cascades via `DomainLocal::destruct_scratch`.
#[derive(Default)]
struct DestructScratch {
    worklist: Vec<usize>,
    sink: EdgeSink,
}

/// Per-thread batch capacity: overflowing a buffer forces a flush, bounding
/// how much unreclaimed memory a thread that never reaches a natural flush
/// point can strand.
const BATCH_CAP: usize = 64;

/// A fixed-capacity decrement buffer: an inline array instead of a `Vec`, so
/// the batching hot path (one push per displaced pointer) never allocates
/// and a flush never frees — the `Vec` version paid a realloc ladder on
/// every fill cycle, which ate the batching win.
struct Batch {
    /// Entries below `len`. Owner-thread access only (or exclusive access
    /// during `drain_and_apply_all`), like every other `DomainLocal` field.
    entries: UnsafeCell<[Retired; BATCH_CAP]>,
    len: Cell<usize>,
}

impl Batch {
    fn new() -> Self {
        Batch {
            // Placeholder padding, never read: only `entries[..len]` is.
            // (A struct literal because `Retired::new` rejects null.)
            entries: UnsafeCell::new([Retired { addr: 0, birth: 0 }; BATCH_CAP]),
            len: Cell::new(0),
        }
    }

    /// Appends an entry; returns `true` when the buffer is now full.
    ///
    /// # Safety
    ///
    /// Caller must be the slot's owner thread (the `DomainLocal` access
    /// contract); the buffer must not be full.
    unsafe fn push(&self, r: Retired) -> bool {
        let n = self.len.get();
        debug_assert!(n < BATCH_CAP);
        (*self.entries.get())[n] = r;
        self.len.set(n + 1);
        n + 1 == BATCH_CAP
    }

    /// Copies the entries out and empties the buffer. The copy makes the
    /// drain re-entrancy-safe: applying an entry can batch new entries,
    /// which land at index 0 of the now-empty buffer.
    ///
    /// # Safety
    ///
    /// As [`push`](Self::push): owner thread or exclusive access.
    unsafe fn take(&self) -> ([Retired; BATCH_CAP], usize) {
        let n = self.len.get();
        let copy = *self.entries.get();
        self.len.set(0);
        (copy, n)
    }

    fn is_empty(&self) -> bool {
        self.len.get() == 0
    }
}

/// A reclamation domain for scheme `S`.
///
/// Holds the three acquire-retire instances of §4.4 — one delaying strong
/// reference-count decrements, one delaying weak decrements, and one delaying
/// disposal of managed objects — all sharing a [`GlobalEpoch`] so that birth
/// epochs are comparable across instances.
///
/// Owned through [`DomainRef`]; every pointer type and every `lockfree::rc`
/// structure is bound to exactly one domain ([`Scheme::global_domain`] by
/// default, or an explicit handle via the `_in` constructors).
pub struct Domain<S: AcquireRetire> {
    pub(crate) strong_ar: S,
    pub(crate) weak_ar: S,
    pub(crate) dispose_ar: S,
    clock: Arc<GlobalEpoch>,
    /// Control-block allocation count, sharded per thread: a shared
    /// `fetch_add` on the allocation path serializes every allocating core
    /// on one cache line.
    allocs: ShardedCounter,
    /// Control-block free count, sharded likewise.
    frees: ShardedCounter,
    locals: Box<[CachePadded<DomainLocal>]>,
    /// Whether this is a scheme's process-global default domain (held by a
    /// static forever): exempts it from the orphan-teardown check.
    is_default: bool,
}

// Safety: `locals` entries are only touched by the thread whose Tid indexes
// them; everything else is Sync.
unsafe impl<S: AcquireRetire> Send for Domain<S> {}
unsafe impl<S: AcquireRetire> Sync for Domain<S> {}

impl<S: AcquireRetire> Domain<S> {
    /// Creates a domain with explicit scheme tuning. (Use [`DomainRef`] to
    /// obtain an owned, usable handle — a bare `Domain` value only exposes
    /// the metric and maintenance API.)
    pub(crate) fn with_config(cfg: SmrConfig, is_default: bool) -> Self {
        let clock = Arc::new(GlobalEpoch::new());
        Domain {
            strong_ar: S::new(Arc::clone(&clock), cfg.clone()),
            weak_ar: S::new(Arc::clone(&clock), cfg.clone()),
            dispose_ar: S::new(Arc::clone(&clock), cfg),
            clock,
            allocs: ShardedCounter::new(),
            frees: ShardedCounter::new(),
            locals: (0..MAX_THREADS)
                .map(|_| {
                    CachePadded::new(DomainLocal {
                        applying: Cell::new(false),
                        pending_strong: Batch::new(),
                        pending_weak: Batch::new(),
                        flush_registered: Cell::new(false),
                        destruct_scratch: Cell::new(None),
                    })
                })
                .collect(),
            is_default,
        }
    }

    /// Whether thread `t` is currently inside this domain's collection
    /// cascade (applying ejected deferred operations).
    pub(crate) fn applying(&self, t: Tid) -> bool {
        self.locals[t.index()].applying.get()
    }

    /// Control blocks allocated through this domain so far.
    ///
    /// Monotone diagnostic counter: the sum over per-thread lanes observes
    /// every allocation that happened-before the call (e.g. via a join) and
    /// needs no ordering beyond that — see [`ShardedCounter::sum`].
    pub fn allocated(&self) -> u64 {
        self.allocs.sum()
    }

    /// Control blocks freed so far. Same contract as
    /// [`allocated`](Self::allocated).
    pub fn freed(&self) -> u64 {
        self.frees.sum()
    }

    /// Control blocks currently alive (allocated − freed): live objects plus
    /// deferred garbage. The benchmark harness samples this for the paper's
    /// "extra nodes" memory metric.
    ///
    /// Concurrent samples only ever **over**-report, never under-report: the
    /// fold sums `frees` strictly before `allocs` (see the comment in the
    /// body). This one-sidedness is what makes the adversarial garbage
    /// curves trustworthy — while a stalled reader pins a scheme's
    /// reclamation, a sampler racing the writers may blame the scheme for a
    /// few extra nodes, but a reported bound is never an artifact of the
    /// counter losing track of garbage that actually existed.
    pub fn in_flight(&self) -> u64 {
        // Fold order matters under concurrency: `frees` is summed *before*
        // `allocs`. Every free has a matching alloc that happened-before it,
        // so a sample that reads frees first can at worst miss concurrent
        // frees (over-reporting garbage). The reverse order could count a
        // free whose alloc the earlier fold had not yet seen, silently
        // *under*-reporting live garbage in the very samples the bench
        // harness records.
        let freed = self.freed();
        self.allocated().saturating_sub(freed)
    }

    /// The shared epoch clock (exposed for tests and benchmarks).
    pub fn epoch(&self) -> u64 {
        self.clock.load()
    }

    /// Whether no critical section is currently open on any of the domain's
    /// three instances. Inherently racy (a section may open right after the
    /// check) and useful as a diagnostic: a dead thread that stranded an
    /// open announcement keeps this `false` until
    /// [`reclaim_orphaned_slot`](Self::reclaim_orphaned_slot) force-closes
    /// it.
    pub fn quiescent(&self) -> bool {
        self.strong_ar.quiescent() && self.weak_ar.quiescent() && self.dispose_ar.quiescent()
    }

    // ------------------------------------------------------------------
    // Figure 8 primitives. `addr` is always an untagged control-block
    // address. All `unsafe fn`s require: `addr` points to a live control
    // block allocated under this domain and the caller upholds the
    // reference-count ownership rules stated on each. (The header-only
    // count operations — increment, weak increment, expired — live in
    // `counted` as free functions; they need no domain.)
    // ------------------------------------------------------------------

    /// Direct strong decrement of a reference the caller owns.
    ///
    /// If it zeroes the count, the object is destructed *immediately* when
    /// no weak observer can exist (weak count is exactly the strong side's
    /// own +1 — stable, since a zero strong count is sticky and weak
    /// references can only be minted from strong ones or other weak ones);
    /// otherwise disposal is deferred through the dispose instance so weak
    /// snapshots stay readable (§4.4).
    ///
    /// The immediate path is sound because a zero strong count proves every
    /// location-owned reference has had its deferred decrement *applied*,
    /// each application ordered after the end of all critical sections that
    /// could have read that location — so no count-free strong snapshot of
    /// the object can still be live, and the weak gate excludes weak
    /// snapshots.
    ///
    /// # Safety
    ///
    /// Caller owns one strong reference to `addr` and forfeits it.
    pub(crate) unsafe fn decrement(&self, t: Tid, addr: usize) {
        smr::sanitize::on_decrement(addr, smr::sanitize::Channel::Strong);
        let h = as_header(addr);
        if (*h).strong.decrement() {
            if (*h).weak.load() == 1 {
                // No weak observers (the 1 is the strong side's own), so
                // this call holds full dispose rights: destruct right now
                // instead of a second round-trip through `dispose_ar`.
                // Graph payloads tear down on the iterative worklist; a
                // non-graph payload's `Drop` may drop child pointers, but
                // those defer (the `SharedPtr` zero branch and the
                // worklist both gate on the edge trait), so the recursion
                // depth stays constant either way.
                self.destruct(t, addr);
            } else {
                self.delayed_dispose(t, addr);
            }
        }
    }

    /// Direct weak decrement of a reference the caller owns. Frees the
    /// control block when the weak count reaches zero.
    ///
    /// # Safety
    ///
    /// Caller owns one weak reference to `addr` and forfeits it.
    pub(crate) unsafe fn weak_decrement(&self, t: Tid, addr: usize) {
        smr::sanitize::on_decrement(addr, smr::sanitize::Channel::Weak);
        if (*as_header(addr)).weak.decrement() {
            self.free_block(t, addr);
        }
    }

    /// Frees a control block whose weak count has reached zero, releasing
    /// the block's owning reference on this domain last.
    ///
    /// # Safety
    ///
    /// The weak count of `addr` is zero and nobody else will free it. The
    /// caller must hold its own reference on this domain (a handle, a
    /// guard, or a [`DomainHold`]) — the block's reference released here may
    /// otherwise be the domain's last.
    pub(crate) unsafe fn free_block(&self, t: Tid, addr: usize) {
        let h = as_header(addr);
        self.frees.add(t, 1);
        let release = (*h).vtable.release_domain;
        let domain = (*h).domain;
        ((*h).vtable.dealloc)(h);
        release(domain);
    }

    /// Destroys the managed object and drops the strong side's weak
    /// reference (Fig. 8's `dispose`), destructing the reachable
    /// zero-count subgraph along the way.
    ///
    /// # Safety
    ///
    /// The strong count of `addr` is zero, nobody else will dispose it, and
    /// the caller holds dispose rights: no critical section that could hold
    /// a snapshot of the object (strong or weak) is still open. The
    /// dispose-instance eject path guarantees exactly this.
    pub(crate) unsafe fn dispose(&self, t: Tid, addr: usize) {
        self.destruct(t, addr);
    }

    /// Immediate iterative destruction (worklist, never recursion) of the
    /// zero-strong-count subgraph rooted at `addr` — the CIRC-style fast
    /// path that replaces one deferral round-trip per edge.
    ///
    /// For each node: the graph vtable hook (if any) moves the node's
    /// outgoing edges out of the payload, the payload is disposed, and the
    /// strong side's weak reference dropped. *Direct* edges (references the
    /// dead node itself owned) are decremented on the spot — the node's
    /// dispose rights extend to them, because reaching them through the
    /// node required a section that provably ended. A child that zeroes
    /// with no weak observer joins the worklist; one with weak observers
    /// takes the deferred-dispose path. *Deferred* (displaced-class) edges
    /// go through the decrement batch as always — readers of the location
    /// they were displaced from may still be protected.
    ///
    /// # Safety
    ///
    /// As [`dispose`](Self::dispose): strong count of `addr` is zero and
    /// the caller holds dispose rights for it.
    pub(crate) unsafe fn destruct(&self, t: Tid, addr: usize) {
        let h = as_header(addr);
        if (*h).vtable.pop_edges.is_none() {
            // Leaf fast path (also taken by non-graph payloads, whose
            // edges — if any — relinquish themselves through the deferred
            // machinery from inside the payload's own `Drop`).
            ((*h).vtable.dispose)(h);
            self.weak_decrement(t, addr);
            return;
        }
        // Steady-state allocation-free: reuse this thread's scratch
        // buffers; a nested destruct (bounded depth) finds `None` and
        // allocates its own.
        let local = &self.locals[t.index()];
        let mut scratch = local.destruct_scratch.take().unwrap_or_default();
        let DestructScratch {
            ref mut worklist,
            ref mut sink,
        } = *scratch;
        debug_assert!(worklist.is_empty());
        worklist.push(addr);
        while let Some(a) = worklist.pop() {
            let h = as_header(a);
            if let Some(pop) = (*h).vtable.pop_edges {
                pop(h, &mut *sink as *mut EdgeSink);
            }
            ((*h).vtable.dispose)(h);
            smr::sanitize::on_decrement(a, smr::sanitize::Channel::Weak);
            if (*h).weak.decrement() {
                self.free_block(t, a);
            }
            for e in sink.strong_direct.drain(..) {
                let eh = as_header(e);
                smr::sanitize::on_decrement(e, smr::sanitize::Channel::Strong);
                if (*eh).strong.decrement() {
                    // Only graph children join the worklist; a non-graph
                    // child's `Drop` relinquishes its own edges and could
                    // recurse, so it takes the deferred path.
                    if (*eh).weak.load() == 1 && (*eh).vtable.pop_edges.is_some() {
                        worklist.push(e);
                    } else {
                        self.delayed_dispose(t, e);
                    }
                }
            }
            for e in sink.weak_direct.drain(..) {
                smr::sanitize::on_decrement(e, smr::sanitize::Channel::Weak);
                if (*as_header(e)).weak.decrement() {
                    self.free_block(t, e);
                }
            }
            for e in sink.strong_deferred.drain(..) {
                self.batch_decrement(t, e);
            }
            for e in sink.weak_deferred.drain(..) {
                self.batch_weak_decrement(t, e);
            }
        }
        local.destruct_scratch.set(Some(scratch));
    }

    /// Defers a strong decrement of a location-owned reference (the object
    /// was just unlinked from a shared location).
    ///
    /// # Safety
    ///
    /// One strong reference to `addr` is transferred to the domain.
    pub(crate) unsafe fn delayed_decrement(&self, t: Tid, addr: usize) {
        smr::sanitize::on_retire(addr, smr::sanitize::Channel::Strong);
        let birth = (*as_header(addr)).birth;
        self.strong_ar.retire(t, Retired::new(addr, birth));
        self.collect(t);
    }

    /// Defers a weak decrement of a location-owned weak reference.
    ///
    /// # Safety
    ///
    /// One weak reference to `addr` is transferred to the domain.
    pub(crate) unsafe fn delayed_weak_decrement(&self, t: Tid, addr: usize) {
        smr::sanitize::on_retire(addr, smr::sanitize::Channel::Weak);
        let birth = (*as_header(addr)).birth;
        self.weak_ar.retire(t, Retired::new(addr, birth));
        self.collect(t);
    }

    /// Defers destruction of an object whose strong count just hit zero.
    ///
    /// # Safety
    ///
    /// The strong count of `addr` is zero; disposal responsibility is
    /// transferred to the domain.
    pub(crate) unsafe fn delayed_dispose(&self, t: Tid, addr: usize) {
        smr::sanitize::on_retire(addr, smr::sanitize::Channel::Dispose);
        let birth = (*as_header(addr)).birth;
        self.dispose_ar.retire(t, Retired::new(addr, birth));
        self.collect(t);
    }

    /// Reads an object's birth epoch (diagnostics / future schemes).
    ///
    /// # Safety
    ///
    /// The control block must be alive.
    #[allow(dead_code)]
    pub(crate) unsafe fn birth_of(&self, addr: usize) -> u64 {
        (*as_header(addr)).birth
    }

    // ------------------------------------------------------------------
    // Per-thread decrement batching
    // ------------------------------------------------------------------

    /// Batched flavour of [`delayed_decrement`](Self::delayed_decrement):
    /// the retire is accumulated in a per-thread buffer and issued at the
    /// next flush point. Deferring the retire to flush time only *widens*
    /// protection: the later retire stamp classifies strictly more readers
    /// as concurrent, so every section that could reach the reference at
    /// unlink time is still waited out.
    ///
    /// # Safety
    ///
    /// One strong reference to `addr` is transferred to the domain.
    pub(crate) unsafe fn batch_decrement(&self, t: Tid, addr: usize) {
        self.batch_push(t, addr, false);
    }

    /// Batched flavour of
    /// [`delayed_weak_decrement`](Self::delayed_weak_decrement).
    ///
    /// # Safety
    ///
    /// One weak reference to `addr` is transferred to the domain.
    pub(crate) unsafe fn batch_weak_decrement(&self, t: Tid, addr: usize) {
        self.batch_push(t, addr, true);
    }

    unsafe fn batch_push(&self, t: Tid, addr: usize, weak: bool) {
        // The batch entry *is* a retire whose engine-level issue is merely
        // deferred to the flush; ownership transfers to the domain here.
        smr::sanitize::on_retire(
            addr,
            if weak {
                smr::sanitize::Channel::Weak
            } else {
                smr::sanitize::Channel::Strong
            },
        );
        let local = &self.locals[t.index()];
        if !local.flush_registered.get() {
            if !self.register_thread_flush() {
                // The thread is already unregistering: nothing would ever
                // flush a batch entry, so apply the deferral synchronously.
                if weak {
                    self.delayed_weak_decrement(t, addr);
                } else {
                    self.delayed_decrement(t, addr);
                }
                return;
            }
            local.flush_registered.set(true);
        }
        // Read the birth epoch now, while the displacing operation still has
        // the block's header warm; the flush only copies records.
        let r = Retired::new(addr, (*as_header(addr)).birth);
        let buf = if weak {
            &local.pending_weak
        } else {
            &local.pending_strong
        };
        // Safety: `t` is the calling thread's slot.
        if buf.push(r) {
            self.flush_batches(t);
        }
    }

    /// Retires every batched decrement of the calling thread, repeating
    /// until the buffers stay empty (applying a batch can destruct objects
    /// whose displaced edges batch new decrements).
    pub(crate) fn flush_batches(&self, t: Tid) {
        let local = &self.locals[t.index()];
        loop {
            // Safety: `t` is the calling thread's slot.
            let (strong, ns) = unsafe { local.pending_strong.take() };
            let (weak, nw) = unsafe { local.pending_weak.take() };
            if ns == 0 && nw == 0 {
                break;
            }
            // Quiescent fast path: every batched entry was displaced from
            // its shared location *before* it was pushed, so if no section
            // is active on either instance now, no reader can still hold an
            // uncounted snapshot of it — the whole batch may be applied on
            // the spot, skipping the retire/scan/eject round-trip entirely.
            // (A section that opens after the check revalidates against the
            // live locations, none of which still name these references.)
            // Both sweeps must pass: strong snapshots are taken under
            // `strong_ar` sections and weak ones under `weak_ar`, but guard
            // flavours may hold both.
            if self.strong_ar.quiescent() && self.weak_ar.quiescent() {
                for r in &strong[..ns] {
                    // Safety: each entry owes one strong reference
                    // transferred at `batch_decrement`; quiescence grants
                    // the apply rights the eject path would.
                    unsafe { self.decrement(t, r.addr) };
                }
                for r in &weak[..nw] {
                    // Safety: as above, for one weak reference.
                    unsafe { self.weak_decrement(t, r.addr) };
                }
            } else {
                for r in &strong[..ns] {
                    // Safety: each entry owes one strong reference
                    // transferred at `batch_decrement`; the block is alive
                    // (its count still includes that reference).
                    self.strong_ar.retire(t, *r);
                }
                for r in &weak[..nw] {
                    // Safety: as above, for one weak reference.
                    self.weak_ar.retire(t, *r);
                }
            }
            self.collect(t);
        }
    }

    /// Whether the calling thread has batched decrements not yet retired.
    fn has_pending_batch(&self, t: Tid) -> bool {
        let local = &self.locals[t.index()];
        !local.pending_strong.is_empty() || !local.pending_weak.is_empty()
    }

    /// Installs the two flush triggers for the calling thread: the
    /// section-exit hook on the strong instance (idempotent, per domain)
    /// and a thread-unregister callback (per thread × domain). Returns
    /// `false` when the thread is already unregistering and can no longer
    /// defer work.
    fn register_thread_flush(&self) -> bool {
        // Section-exit trigger. Every guard flavour and internal section
        // helper ends the *strong* section last, so hooking only `strong_ar`
        // flushes once per outermost section of any flavour. The hook holds
        // a raw pointer to `self`; it only fires inside
        // `end_critical_section`, whose callers by contract keep the
        // instance (and thus the whole domain) reachable until it returns.
        unsafe {
            self.strong_ar.set_exit_hook(ExitHook::new(
                self as *const Self as *const (),
                exit_flush::<S>,
            ));
        }
        // Thread-unregister trigger. Captures a weak handle: the callback
        // must not keep the domain alive, and a dead domain has (provably)
        // nothing left to flush — batch entries pin their blocks, and every
        // block pins the domain.
        let weak = {
            // Safety: a `Domain` only ever lives inside the `Arc` created
            // by `DomainRef`, so `self` is the Arc's data pointer; the
            // temporary strong count makes `from_raw` sound and is given
            // back when `arc` drops.
            unsafe {
                let ptr = self as *const Self;
                Arc::increment_strong_count(ptr);
                let arc = Arc::from_raw(ptr);
                Arc::downgrade(&arc)
            }
        };
        smr::on_thread_exit(Box::new(move |t| {
            if let Some(d) = weak.upgrade() {
                d.flush_batches(t);
                // The slot is about to be recycled: its next owner is a
                // different thread that must register its own callback.
                d.locals[t.index()].flush_registered.set(false);
            }
        }))
    }

    // ------------------------------------------------------------------
    // Applying ejected deferred operations
    // ------------------------------------------------------------------

    /// Applies every ready ejected operation on all three instances.
    ///
    /// Re-entrant calls (triggered by retires issued while destroying
    /// objects) return immediately; the outermost call loops until no
    /// channel has ready ejects, bounding both recursion depth and the
    /// amount of ready-but-unapplied garbage.
    pub(crate) fn collect(&self, t: Tid) {
        self.collect_counted(t);
    }

    /// As [`collect`](Self::collect) but reports how many deferred
    /// operations were applied (0 when re-entered).
    fn collect_counted(&self, t: Tid) -> usize {
        // Fast path: nothing is ready on any instance — the overwhelmingly
        // common case for the per-retire calls (ready queues only fill when
        // a threshold scan runs). Three thread-local peeks instead of the
        // re-entrancy bookkeeping and triple eject loop below.
        if !self.strong_ar.has_ready(t)
            && !self.weak_ar.has_ready(t)
            && !self.dispose_ar.has_ready(t)
        {
            return 0;
        }
        let local = &self.locals[t.index()];
        if local.applying.get() {
            return 0;
        }
        local.applying.set(true);
        // Reset the flag even if a payload destructor panics: subsequent
        // operations then leak instead of deadlocking collection.
        struct Reset<'a>(&'a Cell<bool>);
        impl Drop for Reset<'_> {
            fn drop(&mut self) {
                self.0.set(false);
            }
        }
        let _reset = Reset(&local.applying);
        let mut applied = 0;
        loop {
            let mut any = false;
            while let Some(r) = self.strong_ar.eject(t) {
                any = true;
                // Safety: an ejected strong retire carries exactly one
                // strong reference transferred at `delayed_decrement`.
                unsafe { self.decrement(t, r.addr) };
            }
            while let Some(r) = self.weak_ar.eject(t) {
                any = true;
                // Safety: carries one weak reference.
                unsafe { self.weak_decrement(t, r.addr) };
            }
            while let Some(r) = self.dispose_ar.eject(t) {
                any = true;
                // Safety: carries the disposal responsibility for an object
                // whose strong count is zero.
                unsafe { self.dispose(t, r.addr) };
            }
            if !any {
                break;
            }
            applied += 1;
        }
        applied
    }

    /// Flushes all three instances and applies everything that becomes
    /// ready, repeating until a round makes no progress. Recursive teardown
    /// of linked structures completes here (each round releases one more
    /// "level").
    ///
    /// Intended for tests, benchmark phase boundaries and orderly shutdown;
    /// concurrent use is safe, but entries protected by other threads'
    /// critical sections or guards necessarily remain deferred.
    pub fn process_deferred(&self, t: Tid) {
        loop {
            self.flush_batches(t);
            self.strong_ar.flush(t);
            self.weak_ar.flush(t);
            self.dispose_ar.flush(t);
            if self.collect_counted(t) == 0 && !self.has_pending_batch(t) {
                break;
            }
        }
    }

    /// Drains every retired record from all three instances — protected or
    /// not — and applies the deferred operations, repeating to a fixpoint.
    ///
    /// # Safety
    ///
    /// No other thread may be using this domain (no live pointers on other
    /// threads, no active critical sections).
    pub unsafe fn drain_and_apply_all(&self, t: Tid) {
        loop {
            // Exclusive access: pending decrement batches on *every* slot
            // (including slots of exited threads whose flush callback
            // never ran) can be applied directly. `take` copies the entries
            // out first — applying a decrement can batch new entries onto
            // the calling thread's own (now empty) buffer.
            let mut batched = false;
            for local in self.locals.iter() {
                let (strong, ns) = local.pending_strong.take();
                let (weak, nw) = local.pending_weak.take();
                for r in &strong[..ns] {
                    batched = true;
                    self.decrement(t, r.addr);
                }
                for r in &weak[..nw] {
                    batched = true;
                    self.weak_decrement(t, r.addr);
                }
            }
            let strong: Vec<Retired> = self.strong_ar.drain_all();
            let weak: Vec<Retired> = self.weak_ar.drain_all();
            let disp: Vec<Retired> = self.dispose_ar.drain_all();
            if !batched && strong.is_empty() && weak.is_empty() && disp.is_empty() {
                break;
            }
            for r in strong {
                self.decrement(t, r.addr);
            }
            for r in weak {
                self.weak_decrement(t, r.addr);
            }
            for r in disp {
                self.dispose(t, r.addr);
            }
            // Applying may have retired more (possibly on other slots via
            // recycled Tids); loop until nothing is left anywhere.
            self.collect(t);
        }
    }

    /// Recovers the per-thread state a dead thread stranded in this domain:
    /// force-closes its announcements on all three instances (migrating its
    /// retired lists into the calling thread's), drains its orphaned pending
    /// decrement batches — the `on_thread_exit` flush that would normally
    /// retire them never ran — and resets its slot-local flags so the slot's
    /// next owner starts clean.
    ///
    /// Batch entries are applied directly when both snapshot-bearing
    /// instances are quiescent (the same re-validation as `flush_batches`:
    /// every entry was displaced from its location before the owner died, so
    /// with no open section anywhere no reader can still hold an uncounted
    /// snapshot); otherwise they are retired through the ordinary deferred
    /// machinery under the *calling* thread's slot.
    ///
    /// Normally invoked through the registry reaper chain
    /// ([`smr::reclaim_orphaned_slot`]) rather than directly.
    ///
    /// # Safety
    ///
    /// The thread owning slot `dead` has terminated (or will provably never
    /// touch this domain again), its death happened-before this call (e.g.
    /// via `join` or the `Acquire` load in [`smr::slot_abandoned`]), and no
    /// other thread concurrently reclaims the same slot. `dead` must not be
    /// the calling thread's own slot.
    pub unsafe fn reclaim_orphaned_slot(&self, dead: Tid) {
        let t = smr::current_tid();
        assert_ne!(
            t.index(),
            dead.index(),
            "a thread cannot reclaim its own slot"
        );
        // Force-close the dead thread's sections and adopt its retired
        // lists. Instance order does not matter: the owner is dead, so no
        // scheme-level invariant links the three announcements any more.
        self.strong_ar.reclaim_slot(dead, t);
        self.weak_ar.reclaim_slot(dead, t);
        self.dispose_ar.reclaim_slot(dead, t);
        // Drain the orphaned decrement batches. Exclusive access to the dead
        // slot's cells follows from the safety contract.
        let local = &self.locals[dead.index()];
        let (strong, ns) = local.pending_strong.take();
        let (weak, nw) = local.pending_weak.take();
        if ns != 0 || nw != 0 {
            if self.strong_ar.quiescent() && self.weak_ar.quiescent() {
                for r in &strong[..ns] {
                    // Safety: each entry owes one strong reference
                    // transferred at `batch_decrement`; quiescence grants
                    // apply rights as in `flush_batches`.
                    self.decrement(t, r.addr);
                }
                for r in &weak[..nw] {
                    // Safety: as above, for one weak reference.
                    self.weak_decrement(t, r.addr);
                }
            } else {
                for r in &strong[..ns] {
                    self.strong_ar.retire(t, *r);
                }
                for r in &weak[..nw] {
                    self.weak_ar.retire(t, *r);
                }
            }
        }
        // Reset slot-local flags for the slot's next owner: the unregister
        // callback that would have cleared `flush_registered` never ran, and
        // the owner may have died mid-collection with `applying` set.
        local.flush_registered.set(false);
        local.applying.set(false);
        self.collect(t);
    }
}

impl<S: AcquireRetire> Drop for Domain<S> {
    fn drop(&mut self) {
        // Exclusive access (`&mut self`): the last reference — handle,
        // guard, or block — is gone. Blocks hold references (and batched
        // decrement entries pin their blocks), so at this point no block
        // allocated under this domain exists and the drains are
        // belt-and-braces no-ops; they still run so a future scheme that
        // retires domain-less records cannot leak them.
        let t = smr::current_tid();
        // Safety: exclusive access; drains pending batches on every slot
        // before applying the retired lists.
        unsafe { self.drain_and_apply_all(t) };
    }
}

/// Section-exit trampoline: flushes the exiting thread's decrement batch.
/// `data` is the domain the hook was installed for; see
/// [`Domain::register_thread_flush`] for why it is still alive here.
unsafe fn exit_flush<S: AcquireRetire>(data: *const (), t: Tid) {
    // A section can end while the thread is unwinding from a panic (the
    // RAII guards close it on purpose). Flushing would run user destructors
    // and a second panic aborts; leave the batch for the next natural flush
    // point — entries pin their blocks, so nothing is lost, merely deferred.
    if std::thread::panicking() {
        return;
    }
    let d = &*(data as *const Domain<S>);
    if d.has_pending_batch(t) {
        d.flush_batches(t);
    }
}

impl<S: AcquireRetire> fmt::Debug for Domain<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Domain")
            .field("scheme", &S::scheme_name())
            .field("allocated", &self.allocated())
            .field("freed", &self.freed())
            .finish()
    }
}

/// RAII strong critical section (the paper's `critical_section_guard`,
/// strong-only flavour), obtained from [`DomainRef::cs`].
///
/// All racy atomic-shared-pointer operations and every
/// [`SnapshotPtr`](crate::SnapshotPtr) lifetime must be contained in one
/// (§3.4). Pointer operations that are invoked without an explicit guard
/// open one internally for their own duration; holding a guard across an
/// operation sequence amortizes the scheme's per-section fence.
///
/// The guard owns a handle on its domain, so it may outlive the
/// [`DomainRef`] it was opened from. It only protects operations on
/// locations bound to *that same domain* — [`covers`](CsGuard::covers)
/// checks identity, and the snapshot operations assert it in debug builds.
///
/// Not `Send`: the guard encapsulates per-thread announcements.
pub struct CsGuard<S: AcquireRetire> {
    pub(crate) domain: DomainRef<S>,
    pub(crate) t: Tid,
    _not_send: PhantomData<*mut ()>,
}

impl<S: AcquireRetire> CsGuard<S> {
    /// The domain this section protects.
    pub fn domain(&self) -> &Domain<S> {
        &self.domain
    }

    /// Whether this guard's section protects reads of locations bound to
    /// `domain` — i.e. both refer to the *same domain instance* (pointer
    /// equality on the handle). A guard over a different domain of the same
    /// scheme provides no protection at all; structure operations taking a
    /// caller-provided guard assert this in debug builds.
    #[inline]
    pub fn covers(&self, domain: &DomainRef<S>) -> bool {
        self.domain.ptr_eq(domain)
    }

    pub(crate) fn tid(&self) -> Tid {
        self.t
    }
}

impl<S: AcquireRetire> Drop for CsGuard<S> {
    fn drop(&mut self) {
        self.domain.strong_ar.end_critical_section(self.t);
        // Leaving a section is where region schemes (Hyaline in particular)
        // ready new ejects; apply them now — unless this drop runs during a
        // panic unwind, where applying ejects executes user destructors and
        // a second panic would abort the process. The section itself is
        // still exited above (never pinning other threads' garbage); the
        // skipped work runs at the next natural flush point.
        if !std::thread::panicking() {
            self.domain.collect(self.t);
        }
    }
}

impl<S: AcquireRetire> fmt::Debug for CsGuard<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CsGuard").field("tid", &self.t).finish()
    }
}

/// RAII full critical section: strong + weak + dispose instances, obtained
/// from [`DomainRef::weak_cs`].
///
/// Required for [`AtomicWeakPtr`](crate::AtomicWeakPtr) operations and
/// [`WeakSnapshotPtr`](crate::WeakSnapshotPtr) lifetimes; usable anywhere a
/// strong [`CsGuard`] is accepted via [`as_cs`](WeakCsGuard::as_cs).
pub struct WeakCsGuard<S: AcquireRetire> {
    inner: CsGuard<S>,
}

impl<S: AcquireRetire> WeakCsGuard<S> {
    /// The strong section view, for APIs that only need strong protection.
    pub fn as_cs(&self) -> &CsGuard<S> {
        &self.inner
    }

    /// The domain this section protects.
    pub fn domain(&self) -> &Domain<S> {
        self.inner.domain()
    }

    /// Domain-identity check; see [`CsGuard::covers`].
    #[inline]
    pub fn covers(&self, domain: &DomainRef<S>) -> bool {
        self.inner.covers(domain)
    }

    pub(crate) fn tid(&self) -> Tid {
        self.inner.t
    }
}

impl<S: AcquireRetire> Drop for WeakCsGuard<S> {
    fn drop(&mut self) {
        self.inner.domain.weak_ar.end_critical_section(self.inner.t);
        self.inner
            .domain
            .dispose_ar
            .end_critical_section(self.inner.t);
        // `inner` drops afterwards, ending the strong section and running
        // collection.
    }
}

impl<S: AcquireRetire> fmt::Debug for WeakCsGuard<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WeakCsGuard")
            .field("tid", &self.inner.t)
            .finish()
    }
}

/// Uniform view over the two critical-section guard flavours.
///
/// Code that only needs *strong* protection (snapshots of
/// [`AtomicSharedPtr`](crate::AtomicSharedPtr) locations) can accept any
/// `impl OpGuard` and work under either a plain [`CsGuard`] or a full
/// [`WeakCsGuard`] — this is what lets a weak-edge structure (the paper's
/// Fig. 10 queue, whose `prev` pointers need the full section) share one
/// guard-taking operation interface with the strong-only structures.
///
/// Hold one guard across a batch of operations to pay the scheme's
/// per-section announcement fence once instead of per operation (§3.4).
pub trait OpGuard<S: AcquireRetire> {
    /// The strong-section view of this guard, accepted by every
    /// snapshot-taking strong-pointer operation (the domain is reachable
    /// from it via [`CsGuard::domain`]).
    fn strong_cs(&self) -> &CsGuard<S>;
}

impl<S: AcquireRetire> OpGuard<S> for CsGuard<S> {
    fn strong_cs(&self) -> &CsGuard<S> {
        self
    }
}

impl<S: AcquireRetire> OpGuard<S> for WeakCsGuard<S> {
    fn strong_cs(&self) -> &CsGuard<S> {
        self.as_cs()
    }
}

/// Internal helper: runs `f` inside a temporary strong critical section.
///
/// Panic-safe: the section is ended by a drop guard, so a panic in `f`
/// unwinds with the announcement closed rather than pinning the epoch (and
/// thus all other threads' garbage) forever. Collection is skipped while
/// unwinding — see [`CsGuard`]'s `Drop` for why — and runs at the next
/// natural flush point instead.
#[inline]
pub(crate) fn with_strong_cs<S: AcquireRetire, R>(
    domain: &Domain<S>,
    t: Tid,
    f: impl FnOnce() -> R,
) -> R {
    struct End<'a, S: AcquireRetire>(&'a Domain<S>, Tid);
    impl<S: AcquireRetire> Drop for End<'_, S> {
        fn drop(&mut self) {
            self.0.strong_ar.end_critical_section(self.1);
            if !std::thread::panicking() {
                self.0.collect(self.1);
            }
        }
    }
    domain.strong_ar.begin_critical_section(t);
    let _end = End(domain, t);
    f()
}

/// Internal helper: runs `f` inside a temporary full critical section.
///
/// Panic-safe on the same pattern as [`with_strong_cs`]; the strong section
/// ends last so the exit-hook flush (skipped while unwinding) keeps its
/// "once per outermost section of any flavour" contract.
#[inline]
pub(crate) fn with_full_cs<S: AcquireRetire, R>(
    domain: &Domain<S>,
    t: Tid,
    f: impl FnOnce() -> R,
) -> R {
    struct End<'a, S: AcquireRetire>(&'a Domain<S>, Tid);
    impl<S: AcquireRetire> Drop for End<'_, S> {
        fn drop(&mut self) {
            self.0.dispose_ar.end_critical_section(self.1);
            self.0.weak_ar.end_critical_section(self.1);
            self.0.strong_ar.end_critical_section(self.1);
            if !std::thread::panicking() {
                self.0.collect(self.1);
            }
        }
    }
    domain.strong_ar.begin_critical_section(t);
    domain.weak_ar.begin_critical_section(t);
    domain.dispose_ar.begin_critical_section(t);
    let _end = End(domain, t);
    f()
}

/// Marker: a borrowed handle that guarantees the referent's strong count is
/// at least one for the duration of the borrow, enabling plain fetch-add
/// increments (no increment-if-not-zero needed).
///
/// Implemented by [`SharedPtr`](crate::SharedPtr) and
/// [`SnapshotPtr`](crate::SnapshotPtr).
pub trait StrongRef<T> {
    /// The untagged control-block address, or 0 for null.
    fn addr(&self) -> usize;
}

pub(crate) fn _assert_traits() {
    fn is_send_sync<X: Send + Sync>() {}
    is_send_sync::<Domain<smr::Ebr>>();
    is_send_sync::<DomainRef<smr::Ebr>>();
}

/// Shared helper for the atomic pointer types: the word is loaded and
/// protected via `acquire` on the given instance, then the strong/weak count
/// incremented and protection released — Fig. 8's `load_and_increment` and
/// `weak_load_and_increment`.
///
/// Returns the untagged address (0 for null).
///
/// # Safety
///
/// `word` must be a location managed under the domain's counting protocol
/// for the chosen instance: while it stores a non-null address, it owns a
/// (strong / weak, matching `inc`) reference to it whose decrement is
/// deferred through that same instance.
pub(crate) unsafe fn load_and_increment<S: AcquireRetire>(
    ar: &S,
    t: Tid,
    word: &AtomicUsize,
    inc: impl FnOnce(usize),
) -> usize {
    let (w, guard) = ar.acquire(t, word);
    let addr = smr::untagged(w);
    if addr != 0 {
        inc(addr);
    }
    ar.release(t, guard);
    addr
}

/// Asserts at compile time that header erasure is sound for any `T`.
#[allow(dead_code)]
fn _header_prefix_is_stable<T>(c: *mut Counted<T>) -> *mut crate::counted::Header {
    c as *mut crate::counted::Header
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AtomicSharedPtr, EbrScheme, SharedPtr};

    /// The thread-unregister callback must flush a dying thread's pending
    /// decrement batch into the deferred machinery: after the thread joins,
    /// the dead slot's buffers are empty — its entries sit in the slot's
    /// retired lists, where a successor thread reusing the slot (or an
    /// exclusive drain) applies them through ordinary collection.
    #[test]
    fn unregister_flushes_pending_batch() {
        let d: DomainRef<EbrScheme> = DomainRef::new();
        let worker_t = {
            let d = d.clone();
            std::thread::spawn(move || {
                let t = smr::current_tid();
                let slot: AtomicSharedPtr<u64, EbrScheme> = AtomicSharedPtr::null_in(&d);
                for i in 0..8 {
                    slot.store(SharedPtr::new_in(i, &d));
                }
                assert!(d.has_pending_batch(t), "displaced stores should batch");
                t
            })
            .join()
            .unwrap()
        };
        assert!(
            !d.has_pending_batch(worker_t),
            "exit callback did not flush the dead slot's batch"
        );
    }
}
