//! Result types for the witness-returning compare-and-swap family.

use std::fmt;

use crate::tagged::TaggedPtr;

/// The error of an owned-desired compare-exchange
/// ([`AtomicSharedPtr::compare_exchange_owned`] and friends): the witnessed
/// current word plus the untouched `desired` pointer, handed back so the
/// caller can retry without reallocating or paying a count round-trip.
///
/// [`AtomicSharedPtr::compare_exchange_owned`]:
///     crate::AtomicSharedPtr::compare_exchange_owned
pub struct CompareExchangeErr<P, T> {
    /// The word the location actually held at the failed CAS — the retry
    /// loop's next `expected`, no re-load needed.
    pub current: TaggedPtr<T>,
    /// The pointer that was to be installed, returned with its reference
    /// intact.
    pub desired: P,
}

impl<P: fmt::Debug, T> fmt::Debug for CompareExchangeErr<P, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompareExchangeErr")
            .field("current", &self.current)
            .field("desired", &self.desired)
            .finish()
    }
}
