//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the subset of the proptest API our property tests use: the [`proptest!`]
//! macro, integer-range / tuple / mapped / union strategies,
//! `collection::vec`, `option::of`, and the `prop_assert*` macros.
//!
//! Unlike the real crate there is **no shrinking** and no persisted failure
//! seeds: each test runs `cases` deterministic pseudo-random cases (seeded
//! from the test name), and a failing case panics with the ordinary assert
//! message. Swap the path dependency for crates.io `proptest` when network
//! access is available.

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// The RNG handed to strategies. One per test case.
    pub type TestRng = SmallRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Applies `f` to every generated value.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe strategy view used by [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.dyn_generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (see [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `arms`; each case picks one arm uniformly.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Generates vectors of `elem` values with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Option<V>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some` (3 in 4 cases, as in real proptest) or `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0..4u32) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Run-time configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of pseudo-random cases each test runs.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Derives the per-case RNG: deterministic in (test name, case index).
pub fn case_rng(test_name: &str, case: u32) -> SmallRng {
    // FNV-1a over the test name, mixed with the case counter.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// Declares property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::case_rng(stringify!($name), __case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies yielding a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

pub mod prelude {
    //! The usual imports.
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let st = (0u64..10).prop_map(|v| v * 2);
        let mut rng = crate::case_rng("t", 0);
        for _ in 0..100 {
            let v = st.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_multiple_args(a in 1u64..5, b in 0u32..3) {
            prop_assert!((1..5).contains(&a));
            prop_assert!(b < 3);
        }

        #[test]
        fn vec_and_option_compose(ops in crate::collection::vec(crate::option::of(0u64..10), 0..50)) {
            prop_assert!(ops.len() < 50);
            for v in ops.into_iter().flatten() {
                prop_assert!(v < 10);
            }
        }

        #[test]
        fn oneof_picks_every_arm(xs in crate::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 64..65)) {
            for x in xs {
                prop_assert!(x == 1 || x == 2);
            }
        }
    }
}
