//! The checker kernel: cooperative scheduler, DFS schedule explorer, and
//! the operational C11 memory model.
//!
//! One *run* executes the scenario closure once under a fixed schedule
//! prefix (the replay tape). Model threads are real OS threads serialized
//! by a token turnstile: exactly one model thread executes user code at a
//! time, and every modeled operation (atomic access, fence, spawn, join,
//! yield) is a *schedule point* where the explorer chooses which thread
//! runs next. Choices — both thread scheduling and which store a load
//! observes — are recorded on the tape as `(chosen, arity)` pairs;
//! depth-first backtracking over the tape enumerates every bounded
//! schedule.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::atomic::{AtomicU64 as RawU64, Ordering as RawOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

// ---------------------------------------------------------------------------
// Public configuration and results
// ---------------------------------------------------------------------------

/// Exploration bounds for [`try_check`](crate::try_check).
#[derive(Debug, Clone)]
pub struct Config {
    /// CHESS-style preemption bound: maximum number of *involuntary*
    /// context switches (switching away from a thread that could have
    /// continued) per execution. `None` explores the full schedule space.
    /// Most ordering bugs surface within two preemptions, and the bound is
    /// what keeps the DFS polynomial in scenario size.
    pub preemption_bound: Option<usize>,
    /// Hard cap on explored executions; exceeding it panics (the scenario
    /// is too big to explore exhaustively — shrink it or lower the bound).
    pub max_iterations: u64,
    /// Hard cap on schedule points within one execution; exceeding it
    /// reports a violation (an unbounded spin loop in the scenario).
    pub max_ops: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: Some(2),
            max_iterations: 1_000_000,
            max_ops: 50_000,
        }
    }
}

/// Successful exhaustive exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Number of distinct executions explored.
    pub iterations: u64,
    /// Deepest replay tape (schedule points with a real choice) seen.
    pub max_depth: usize,
}

/// A failed execution: the first panic (assertion failure, deadlock,
/// nondeterminism) encountered during exploration.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Index of the failing execution.
    pub iteration: u64,
    /// Panic message (or internal diagnosis) of the failure.
    pub message: String,
    /// The replay tape of the failing schedule, `(chosen, arity)` per
    /// choice point.
    pub tape: Vec<(u32, u32)>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "violation at iteration {} (tape depth {}): {}",
            self.iteration,
            self.tape.len(),
            self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Thread-local context
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct Ctx {
    kernel: Arc<Kernel>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
    static EXEMPT_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Runs `f` with modeling suppressed: facade atomics accessed inside go
/// straight to the underlying `std` atomics and create no schedule points.
///
/// This is the escape hatch for *infrastructure* state that is shared
/// across checker iterations and must not enter the model: thread-slot
/// registries, heartbeat gauges, fault-injection checkpoints, test
/// bookkeeping (e.g. freed-object flags asserted by scenarios). Exempt
/// accesses are executed in program order by whichever model thread holds
/// the scheduler token, so within a run they behave sequentially
/// consistently.
pub fn exempt<R>(f: impl FnOnce() -> R) -> R {
    EXEMPT_DEPTH.with(|d| d.set(d.get() + 1));
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            EXEMPT_DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
    let _restore = Restore;
    f()
}

/// Whether the current thread is a model thread with modeling active
/// (inside a run, not under [`exempt`]).
pub(crate) fn in_model() -> bool {
    EXEMPT_DEPTH.with(|d| d.get()) == 0 && CTX.with(|c| c.borrow().is_some())
}

pub(crate) fn current_ctx() -> Option<(Arc<Kernel>, usize)> {
    CTX.with(|c| c.borrow().as_ref().map(|x| (x.kernel.clone(), x.tid)))
}

// ---------------------------------------------------------------------------
// Location identity
// ---------------------------------------------------------------------------

static NEXT_LOC_ID: RawU64 = RawU64::new(0);

/// Allocates a process-unique location id (never zero). Ids — not
/// addresses — key the per-run location table, so heap reuse of a freed
/// atomic's address within a run can never alias its dead tenant's store
/// history.
pub(crate) fn fresh_loc_id() -> u64 {
    NEXT_LOC_ID.fetch_add(1, RawOrdering::Relaxed) + 1
}

// ---------------------------------------------------------------------------
// Views and the memory model
// ---------------------------------------------------------------------------

/// A view: for each (dense) location index, the modification-order index
/// of the newest store the owner is aware of. Reads below one's view are
/// forbidden (coherence); acquiring joins the message view of the store
/// read.
type View = Vec<usize>;

fn vget(v: &View, l: usize) -> usize {
    v.get(l).copied().unwrap_or(0)
}

fn vset(v: &mut View, l: usize, i: usize) {
    if v.len() <= l {
        v.resize(l + 1, 0);
    }
    if v[l] < i {
        v[l] = i;
    }
}

fn vjoin(dst: &mut View, src: &View) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        if *d < *s {
            *d = *s;
        }
    }
}

/// One store in a location's modification order: the value plus the
/// *message view* a reader synchronizing with it acquires.
struct StoreElem {
    val: u64,
    view: View,
}

struct Loc {
    /// Modification order. Index 0 is the initial value (snapshotted from
    /// the real atomic on the location's first modeled access this run).
    stores: Vec<StoreElem>,
    /// `SeqCst` floor: SC loads of this location must read a store with
    /// index ≥ this (raised by SC stores/RMWs to their own index, by SC
    /// loads to the index they read, and by SC fences to the fencing
    /// thread's view). Together with the SC-fence view exchange this
    /// realizes the C++20 [atomics.order] coherence rules under the
    /// approximation that the SC order S is the execution order.
    sc_floor: usize,
}

#[derive(Default)]
struct Mem {
    by_id: HashMap<u64, usize>,
    locs: Vec<Loc>,
    /// Join of every SC-fencing thread's view, exchanged two-ways at SC
    /// *fences* only. SC loads/stores deliberately do not touch it: an SC
    /// operation is acquire/release plus the per-location `sc_floor`
    /// constraint, nothing more — modeling SC ops as global view joins
    /// would over-synchronize and hide real acquire/release bugs.
    sc_view: View,
    /// For each location, the index of the newest `SeqCst` *store/RMW* to
    /// it. An SC fence joins this into the fencing thread's coherence
    /// floors: C++20 [atomics.order] requires a load sequenced after an SC
    /// fence Y to observe any SC write that precedes Y in S (= execution
    /// order here) or something newer. Indices only — no message views —
    /// so the fence orders reads without manufacturing happens-before.
    sc_write_floor: View,
}

// ---------------------------------------------------------------------------
// Kernel state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked,
    Finished,
}

struct TState {
    status: Status,
    /// The thread's current view (what it has observed).
    cur: View,
    /// View at the thread's last release fence (relaxed stores carry it).
    frel: View,
    /// Accumulated message views of relaxed loads, consumed (joined into
    /// `cur`) by the next acquire fence.
    pending: View,
    joiners: Vec<usize>,
}

impl TState {
    fn new(cur: View) -> Self {
        TState {
            status: Status::Runnable,
            cur,
            frel: Vec::new(),
            pending: Vec::new(),
            joiners: Vec::new(),
        }
    }
}

struct KState {
    threads: Vec<TState>,
    current: usize,
    unfinished: usize,
    tape: Vec<(u32, u32)>,
    pos: usize,
    preemptions: usize,
    bound: Option<usize>,
    mem: Mem,
    violation: Option<String>,
    /// Set on deadlock / runaway / nondeterminism: the turnstile is
    /// abandoned and every thread free-runs (ops still execute under the
    /// kernel lock) so the iteration can terminate and report.
    bail: bool,
    ops: u64,
    max_ops: u64,
}

impl KState {
    /// Consults (extending if needed) the replay tape for a choice among
    /// `n` alternatives. Choices with `n == 1` are not recorded.
    fn choose(&mut self, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        let c = if self.pos < self.tape.len() {
            let (c, arity) = self.tape[self.pos];
            if arity as usize != n && self.violation.is_none() {
                self.violation = Some(format!(
                    "nondeterministic scenario: replay expected {arity} alternatives \
                     at choice {} but found {n} (scenario must be a pure function \
                     of the schedule)",
                    self.pos
                ));
                self.bail = true;
            }
            (c as usize).min(n - 1)
        } else {
            self.tape.push((0, n as u32));
            0
        };
        self.pos += 1;
        c
    }

    fn enabled(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    fn fail(&mut self, msg: String) {
        if self.violation.is_none() {
            self.violation = Some(msg);
        }
        self.bail = true;
    }
}

pub(crate) struct Kernel {
    m: Mutex<KState>,
    cv: Condvar,
}

fn lock(k: &Kernel) -> MutexGuard<'_, KState> {
    k.m.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait_until_scheduled<'a>(
    kernel: &'a Kernel,
    mut st: MutexGuard<'a, KState>,
    me: usize,
) -> MutexGuard<'a, KState> {
    while !(st.bail || st.current == me && st.threads[me].status == Status::Runnable) {
        st = kernel.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    st
}

/// The pre-operation schedule point: the running thread offers the
/// explorer a switch before executing its next modeled operation. Switching
/// away (while the current thread could continue) consumes one unit of the
/// preemption budget; once the budget is spent the current thread runs on.
fn schedule<'a>(kernel: &'a Kernel, me: usize) -> MutexGuard<'a, KState> {
    let mut st = lock(kernel);
    if st.bail {
        // The run has been abandoned (violation recorded). Unwind this
        // thread so even non-terminating scenarios (spin loops whose
        // partner will never run) reach their catch_unwind boundary —
        // unless we are *already* unwinding (a modeled op in a destructor),
        // where a second panic would abort: then free-run the op.
        if !std::thread::panicking() {
            drop(st);
            panic!("interleave: run abandoned after violation");
        }
        return st;
    }
    st.ops += 1;
    if st.ops > st.max_ops {
        let cap = st.max_ops;
        st.fail(format!(
            "execution exceeded max_ops = {cap} schedule points — unbounded spin loop \
             in the scenario, or a scenario too large to model"
        ));
        kernel.cv.notify_all();
        return st;
    }
    let mut choices = st.enabled();
    // Current thread first, so choice 0 continues it: iteration 0 is then
    // the natural switch-free execution and the DFS finds shallow
    // schedules first.
    choices.retain(|&t| t != me);
    choices.insert(0, me);
    let budget_left = st.bound.is_none_or(|b| st.preemptions < b);
    if !budget_left {
        choices.truncate(1);
    }
    let k = st.choose(choices.len());
    if st.bail {
        // `choose` diagnosed nondeterminism: keep running this op so the
        // thread reaches its next schedule point (which unwinds), and wake
        // everyone else so they can bail out of their waits.
        kernel.cv.notify_all();
        return st;
    }
    let next = choices[k];
    if next != me {
        st.preemptions += 1;
        st.current = next;
        kernel.cv.notify_all();
        st = wait_until_scheduled(kernel, st, me);
    }
    st
}

/// A voluntary hand-off: the caller cannot (or chooses not to) continue,
/// so switching away costs no preemption budget. Blocks until rescheduled.
fn yield_token<'a>(
    kernel: &'a Kernel,
    mut st: MutexGuard<'a, KState>,
    me: usize,
) -> MutexGuard<'a, KState> {
    let choices: Vec<usize> = st.enabled().into_iter().filter(|&t| t != me).collect();
    if choices.is_empty() {
        if st.threads[me].status != Status::Runnable && st.unfinished > 0 {
            st.fail(
                "deadlock: no runnable thread (every unfinished thread is blocked)".to_string(),
            );
            kernel.cv.notify_all();
            return st;
        }
        // `me` is still runnable and alone: keep the token.
        return st;
    }
    let k = st.choose(choices.len());
    st.current = choices[k];
    kernel.cv.notify_all();
    wait_until_scheduled(kernel, st, me)
}

// ---------------------------------------------------------------------------
// Thread operations (called from `crate::thread`)
// ---------------------------------------------------------------------------

pub(crate) fn op_spawn(kernel: &Arc<Kernel>, me: usize) -> usize {
    let mut st = schedule(kernel, me);
    let tid = st.threads.len();
    // Thread start synchronizes-with: the child begins with the spawner's
    // view (release fence and pending start empty).
    let cur = st.threads[me].cur.clone();
    st.threads.push(TState::new(cur));
    st.unfinished += 1;
    tid
}

pub(crate) fn op_join(kernel: &Arc<Kernel>, me: usize, target: usize) {
    let mut st = schedule(kernel, me);
    loop {
        if st.bail {
            return;
        }
        if st.threads[target].status == Status::Finished {
            // Join synchronizes-with thread completion: inherit the
            // child's final view.
            let child_cur = st.threads[target].cur.clone();
            vjoin(&mut st.threads[me].cur, &child_cur);
            return;
        }
        st.threads[me].status = Status::Blocked;
        st.threads[target].joiners.push(me);
        st = yield_token(kernel, st, me);
    }
}

pub(crate) fn op_yield(kernel: &Arc<Kernel>, me: usize) {
    let st = schedule(kernel, me);
    if st.bail {
        return;
    }
    // A voluntary reschedule on top of the involuntary one `schedule`
    // already offered: lets the explorer switch away for free.
    let _st = yield_token(kernel, st, me);
}

/// Installs the model-thread context and parks until first scheduled.
pub(crate) fn enter_model_thread(kernel: &Arc<Kernel>, tid: usize) {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            kernel: kernel.clone(),
            tid,
        })
    });
    let st = lock(kernel);
    let _st = wait_until_scheduled(kernel, st, tid);
}

/// Clears the model-thread context: everything the OS thread does after
/// this (result publication, TLS destructors) uses real atomics.
pub(crate) fn leave_model_thread() {
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Marks `tid` finished, wakes its joiners, records a panic as the run's
/// violation, and passes the token on.
pub(crate) fn finish_model_thread(kernel: &Arc<Kernel>, tid: usize, panic_msg: Option<String>) {
    let mut st = lock(kernel);
    st.threads[tid].status = Status::Finished;
    st.unfinished -= 1;
    let joiners = std::mem::take(&mut st.threads[tid].joiners);
    for j in joiners {
        st.threads[j].status = Status::Runnable;
    }
    if let Some(msg) = panic_msg {
        if st.violation.is_none() {
            st.violation = Some(msg);
        }
    }
    if st.unfinished > 0 && !st.bail {
        let choices = st.enabled();
        if choices.is_empty() {
            st.fail("deadlock: all unfinished threads are blocked".to_string());
        } else {
            let k = st.choose(choices.len());
            st.current = choices[k];
        }
    }
    kernel.cv.notify_all();
}

pub(crate) fn spawn_ctx() -> Option<(Arc<Kernel>, usize)> {
    if in_model() {
        current_ctx()
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Memory operations (called from `crate::sync::atomic` wrappers)
// ---------------------------------------------------------------------------

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn ensure_loc(st: &mut KState, id: u64, init: impl FnOnce() -> u64) -> usize {
    if let Some(&l) = st.mem.by_id.get(&id) {
        return l;
    }
    let l = st.mem.locs.len();
    st.mem.locs.push(Loc {
        stores: vec![StoreElem {
            val: init(),
            view: Vec::new(),
        }],
        sc_floor: 0,
    });
    st.mem.by_id.insert(id, l);
    l
}

fn model_ctx(what: &str) -> (Arc<Kernel>, usize) {
    current_ctx().unwrap_or_else(|| panic!("modeled {what} outside a model thread"))
}

pub(crate) fn atomic_load(id: u64, init: impl FnOnce() -> u64, ord: Ordering) -> u64 {
    let (kernel, me) = model_ctx("load");
    let mut st = schedule(&kernel, me);
    let l = ensure_loc(&mut st, id, init);
    let mut floor = vget(&st.threads[me].cur, l);
    if ord == Ordering::SeqCst {
        floor = floor.max(st.mem.locs[l].sc_floor);
    }
    let n = st.mem.locs[l].stores.len() - floor;
    // Choice 0 reads the newest store; higher choices read progressively
    // staler (but still coherent) ones.
    let k = st.choose(n);
    let idx = st.mem.locs[l].stores.len() - 1 - k;
    let (val, view) = {
        let s = &st.mem.locs[l].stores[idx];
        (s.val, s.view.clone())
    };
    let t = &mut st.threads[me];
    vset(&mut t.cur, l, idx);
    if is_acquire(ord) {
        vjoin(&mut t.cur, &view);
    } else {
        vjoin(&mut t.pending, &view);
    }
    if ord == Ordering::SeqCst {
        let fl = &mut st.mem.locs[l].sc_floor;
        *fl = (*fl).max(idx);
    }
    val
}

pub(crate) fn atomic_store(id: u64, init: impl FnOnce() -> u64, val: u64, ord: Ordering) {
    let (kernel, me) = model_ctx("store");
    let mut st = schedule(&kernel, me);
    let l = ensure_loc(&mut st, id, init);
    let idx = st.mem.locs[l].stores.len();
    let mut view = if is_release(ord) {
        st.threads[me].cur.clone()
    } else {
        st.threads[me].frel.clone()
    };
    vset(&mut view, l, idx);
    st.mem.locs[l].stores.push(StoreElem { val, view });
    vset(&mut st.threads[me].cur, l, idx);
    if ord == Ordering::SeqCst {
        let fl = &mut st.mem.locs[l].sc_floor;
        *fl = (*fl).max(idx);
        vset(&mut st.mem.sc_write_floor, l, idx);
    }
}

/// Shared read-modify-write core: reads the modification-order-newest
/// store (RMWs are atomic, so they always see the latest value), appends
/// the new store, and continues the release sequence by joining the
/// predecessor's message view into the new one.
fn rmw_core(st: &mut KState, me: usize, l: usize, new_val: u64, ord: Ordering) -> u64 {
    let idx_old = st.mem.locs[l].stores.len() - 1;
    let (old_val, old_view) = {
        let s = &st.mem.locs[l].stores[idx_old];
        (s.val, s.view.clone())
    };
    {
        let t = &mut st.threads[me];
        vset(&mut t.cur, l, idx_old);
        if is_acquire(ord) {
            vjoin(&mut t.cur, &old_view);
        } else {
            vjoin(&mut t.pending, &old_view);
        }
    }
    let idx = idx_old + 1;
    let mut view = old_view;
    {
        let t = &st.threads[me];
        let own = if is_release(ord) { &t.cur } else { &t.frel };
        vjoin(&mut view, own);
    }
    vset(&mut view, l, idx);
    st.mem.locs[l].stores.push(StoreElem { val: new_val, view });
    vset(&mut st.threads[me].cur, l, idx);
    if ord == Ordering::SeqCst {
        let fl = &mut st.mem.locs[l].sc_floor;
        *fl = (*fl).max(idx);
        vset(&mut st.mem.sc_write_floor, l, idx);
    }
    old_val
}

pub(crate) fn atomic_rmw(
    id: u64,
    init: impl FnOnce() -> u64,
    ord: Ordering,
    f: impl FnOnce(u64) -> u64,
) -> u64 {
    let (kernel, me) = model_ctx("rmw");
    let mut st = schedule(&kernel, me);
    let l = ensure_loc(&mut st, id, init);
    let old = st.mem.locs[l].stores.last().expect("nonempty").val;
    let new_val = f(old);
    rmw_core(&mut st, me, l, new_val, ord)
}

/// Compare-exchange. Failure reads the modification-order-newest store
/// (approximation: a failed CAS never reads a stale value) with the
/// failure ordering's acquire semantics.
pub(crate) fn atomic_cas(
    id: u64,
    init: impl FnOnce() -> u64,
    expected: u64,
    new_val: u64,
    success: Ordering,
    failure: Ordering,
) -> Result<u64, u64> {
    let (kernel, me) = model_ctx("compare_exchange");
    let mut st = schedule(&kernel, me);
    let l = ensure_loc(&mut st, id, init);
    let idx_old = st.mem.locs[l].stores.len() - 1;
    let (old_val, old_view) = {
        let s = &st.mem.locs[l].stores[idx_old];
        (s.val, s.view.clone())
    };
    if old_val == expected {
        Ok(rmw_core(&mut st, me, l, new_val, success))
    } else {
        let t = &mut st.threads[me];
        vset(&mut t.cur, l, idx_old);
        if is_acquire(failure) {
            vjoin(&mut t.cur, &old_view);
        } else {
            vjoin(&mut t.pending, &old_view);
        }
        Err(old_val)
    }
}

pub(crate) fn fence_op(ord: Ordering) {
    let (kernel, me) = model_ctx("fence");
    let mut st = schedule(&kernel, me);
    let acq = is_acquire(ord);
    let rel = is_release(ord);
    if acq {
        let pending = std::mem::take(&mut st.threads[me].pending);
        vjoin(&mut st.threads[me].cur, &pending);
    }
    if ord == Ordering::SeqCst {
        // Two-way view exchange with the global SC-fence view: the precise
        // C++20 fence-to-fence visibility rule. Then floor every location
        // at this thread's (post-exchange) view: a later SC load anywhere
        // must not read a store this fence already superseded
        // ([atomics.order] p6, with S = execution order).
        let cur = st.threads[me].cur.clone();
        vjoin(&mut st.mem.sc_view, &cur);
        let sc = st.mem.sc_view.clone();
        vjoin(&mut st.threads[me].cur, &sc);
        // [atomics.order]: loads after this fence observe every SC write
        // that precedes the fence in S (indices only, no views).
        let scw = st.mem.sc_write_floor.clone();
        vjoin(&mut st.threads[me].cur, &scw);
        let cur = st.threads[me].cur.clone();
        for (l, loc) in st.mem.locs.iter_mut().enumerate() {
            let known = vget(&cur, l);
            if loc.sc_floor < known {
                loc.sc_floor = known;
            }
        }
    }
    if rel {
        st.threads[me].frel = st.threads[me].cur.clone();
    }
}

/// Collapses a modeled location back into its real atomic: returns the
/// modification-order-newest modeled value and forgets the location, so
/// the caller (holding `&mut` — exclusive access) can fold the value into
/// the real cell and hand out `get_mut`/`into_inner` access. The atomic's
/// next shared modeled use re-registers under a fresh id.
pub(crate) fn collapse(id: u64) -> Option<u64> {
    if !in_model() {
        return None;
    }
    let (kernel, me) = model_ctx("get_mut/into_inner");
    let mut st = schedule(&kernel, me);
    let l = st.mem.by_id.remove(&id)?;
    Some(st.mem.locs[l].stores.last().expect("nonempty").val)
}

// ---------------------------------------------------------------------------
// Driver: the DFS exploration loop
// ---------------------------------------------------------------------------

static RUN_LOCK: Mutex<()> = Mutex::new(());

pub(crate) fn payload_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

fn backtrack(tape: &mut Vec<(u32, u32)>) -> bool {
    while let Some(&(c, arity)) = tape.last() {
        if c + 1 < arity {
            tape.last_mut().expect("nonempty").0 = c + 1;
            return true;
        }
        tape.pop();
    }
    false
}

/// Explores every schedule of `f` within `cfg`'s bounds. Returns a
/// [`Report`] if every execution completed without panicking, or the
/// first [`Violation`] otherwise.
///
/// # Panics
///
/// Panics if `cfg.max_iterations` is exhausted before the schedule space
/// is (the scenario is too large), or when called from inside a model
/// thread (checks do not nest).
pub fn try_check(cfg: Config, f: impl Fn() + Send + Sync + 'static) -> Result<Report, Violation> {
    assert!(
        !in_model(),
        "interleave::try_check called from inside a model thread"
    );
    let _run = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let f = Arc::new(f);
    let mut tape: Vec<(u32, u32)> = Vec::new();
    let mut iterations: u64 = 0;
    let mut max_depth = 0usize;
    loop {
        assert!(
            iterations < cfg.max_iterations,
            "interleave: exploration exceeded max_iterations = {} (tape depth {}) — \
             shrink the scenario or lower the preemption bound",
            cfg.max_iterations,
            tape.len()
        );
        let kernel = Arc::new(Kernel {
            m: Mutex::new(KState {
                threads: vec![TState::new(Vec::new())],
                current: 0,
                unfinished: 1,
                tape: tape.clone(),
                pos: 0,
                preemptions: 0,
                bound: cfg.preemption_bound,
                mem: Mem::default(),
                violation: None,
                bail: false,
                ops: 0,
                max_ops: cfg.max_ops,
            }),
            cv: Condvar::new(),
        });
        let root_f = Arc::clone(&f);
        let root_kernel = Arc::clone(&kernel);
        let root = std::thread::spawn(move || {
            enter_model_thread(&root_kernel, 0);
            let r = panic::catch_unwind(AssertUnwindSafe(|| root_f()));
            leave_model_thread();
            let msg = r.err().map(|p| payload_msg(p.as_ref()));
            finish_model_thread(&root_kernel, 0, msg);
        });
        {
            let mut st = lock(&kernel);
            while st.unfinished > 0 {
                st = kernel.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
        root.join().expect("model root thread infrastructure panic");
        iterations += 1;
        let (final_tape, violation) = {
            let mut st = lock(&kernel);
            (std::mem::take(&mut st.tape), st.violation.take())
        };
        if let Some(message) = violation {
            return Err(Violation {
                iteration: iterations - 1,
                message,
                tape: final_tape,
            });
        }
        max_depth = max_depth.max(final_tape.len());
        tape = final_tape;
        if !backtrack(&mut tape) {
            return Ok(Report {
                iterations,
                max_depth,
            });
        }
    }
}

/// Like [`try_check`] but panics (with the failing schedule's tape) on the
/// first violation — the assert-style entry point for tests.
pub fn check_with(cfg: Config, f: impl Fn() + Send + Sync + 'static) {
    match try_check(cfg, f) {
        Ok(_) => {}
        Err(v) => panic!("interleave: {v}"),
    }
}

/// [`check_with`] under the default [`Config`].
pub fn check(f: impl Fn() + Send + Sync + 'static) {
    check_with(Config::default(), f)
}
