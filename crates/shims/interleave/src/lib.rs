//! `interleave` — a minimal vendored loom-style model checker.
//!
//! [`check`] runs a scenario closure under **every** bounded interleaving
//! of the model threads it spawns ([`thread::spawn`]), with atomic
//! operations on the [`sync::atomic`] wrapper types interpreted under an
//! operational C11 acquire/release memory model: each location keeps its
//! full modification order, each thread a view of how much of each
//! location it must observe, and loads *choose* among the coherent stale
//! stores — so Relaxed/Acquire/Release bugs that an x86 host physically
//! cannot exhibit are actually explored. A schedule is a replay tape of
//! `(choice, arity)` pairs covering both scheduling and load-value
//! choices; the driver enumerates tapes depth-first with a CHESS-style
//! preemption bound ([`Config::preemption_bound`]).
//!
//! Any panic in any thread under any schedule — assertion failures,
//! detected deadlocks, runaway loops — is reported as a [`Violation`]
//! carrying the failing tape.
//!
//! # What is deliberately approximated
//!
//! - **Modification order = execution order.** Stores to a location are
//!   appended in the order threads execute them. Because the scheduler
//!   serializes threads at every operation, distinct modification orders
//!   are still explored via distinct schedules; what is lost is only
//!   orders that no interleaving of whole operations can produce.
//! - **`SeqCst` accesses** are acquire/release plus a per-location
//!   `SeqCst` floor (an SC load may not read a store older than the
//!   newest one any SC access has fixed); the total order *S* is the
//!   execution order. SC **fences** do the full two-way view exchange.
//!   This is deliberately *not* a global synchronize at every SC op —
//!   that over-approximation would hide real acquire/release bugs, the
//!   very thing this crate exists to find.
//! - **Failed `compare_exchange`** reads the modification-order-newest
//!   store, and `compare_exchange_weak` never fails spuriously.
//! - **No data-race detection for non-atomic accesses.** Scenarios
//!   assert protocol properties (balance counters, use-after-free flags)
//!   instead.
//!
//! # Scenario discipline
//!
//! Runs are repeated thousands of times and modeled stores are *not*
//! written back to the real atomics, so scenarios must:
//!
//! - confine shared protocol state to objects created and dropped inside
//!   the closure (for this repo: instance domains, never the global
//!   domain);
//! - join every spawned thread before returning;
//! - drain any deferred per-thread work *inside* the closure (so TLS
//!   destructors that run after a model thread exits touch no modeled
//!   atomics);
//! - avoid unbounded spinning — a loop that cannot terminate without
//!   another thread being scheduled must call [`thread::yield_now`],
//!   and anything truly unbounded trips [`Config::max_ops`];
//! - be a pure function of the schedule (no time, randomness, or
//!   ambient state), or the checker reports a nondeterminism violation.
//!
//! Cross-iteration infrastructure (slot registries, test bookkeeping
//! such as freed-object flags) goes through [`exempt`], which suppresses
//! modeling for the extent of a closure.
//!
//! # Example
//!
//! ```
//! use interleave::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! // Message passing: Release store of the flag publishes the data.
//! interleave::check(|| {
//!     let data = Arc::new(AtomicUsize::new(0));
//!     let flag = Arc::new(AtomicUsize::new(0));
//!     let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
//!     let t = interleave::thread::spawn(move || {
//!         d2.store(42, Ordering::Relaxed);
//!         f2.store(1, Ordering::Release);
//!     });
//!     if flag.load(Ordering::Acquire) == 1 {
//!         assert_eq!(data.load(Ordering::Relaxed), 42);
//!     }
//!     t.join().unwrap();
//! });
//! ```

mod atomic_impl;
mod kernel;
mod thread_impl;

pub use kernel::{check, check_with, exempt, try_check, Config, Report, Violation};

/// Model-aware mirror of `std::sync`: only the `atomic` submodule is
/// provided (the repo's protocol paths use no blocking primitives).
pub mod sync {
    /// Model-aware mirror of `std::sync::atomic`.
    pub mod atomic {
        pub use crate::atomic_impl::{
            fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

/// Model-aware mirror of `std::thread` (spawn / join / yield only).
pub mod thread {
    pub use crate::thread_impl::{spawn, yield_now, JoinHandle};
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{fence, AtomicUsize, Ordering};
    use super::{thread, try_check, Config};
    use std::collections::HashSet;
    use std::sync::{Arc, Mutex};

    fn cfg(bound: Option<usize>) -> Config {
        Config {
            preemption_bound: bound,
            ..Config::default()
        }
    }

    /// Store buffering: with relaxed (or even acquire/release) accesses
    /// both threads may read 0 — the checker must find that outcome.
    #[test]
    fn store_buffering_relaxed_fails() {
        let r = try_check(cfg(None), || {
            let x = Arc::new(AtomicUsize::new(0));
            let y = Arc::new(AtomicUsize::new(0));
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t = thread::spawn(move || {
                x2.store(1, Ordering::Relaxed);
                y2.load(Ordering::Relaxed)
            });
            y.store(1, Ordering::Relaxed);
            let rx = x.load(Ordering::Relaxed);
            let ry = t.join().unwrap();
            assert!(rx == 1 || ry == 1, "both threads read 0");
        });
        let v = r.expect_err("relaxed store buffering must be observable");
        assert!(v.message.contains("both threads read 0"), "{}", v.message);
    }

    /// Store buffering with SeqCst accesses: the 0/0 outcome is excluded.
    #[test]
    fn store_buffering_seqcst_passes() {
        let r = try_check(cfg(None), || {
            let x = Arc::new(AtomicUsize::new(0));
            let y = Arc::new(AtomicUsize::new(0));
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t = thread::spawn(move || {
                x2.store(1, Ordering::SeqCst);
                y2.load(Ordering::SeqCst)
            });
            y.store(1, Ordering::SeqCst);
            let rx = x.load(Ordering::SeqCst);
            let ry = t.join().unwrap();
            assert!(rx == 1 || ry == 1, "both threads read 0");
        });
        r.expect("SeqCst forbids the 0/0 outcome");
    }

    /// The announce idiom this repo uses on non-x86: relaxed store then a
    /// SeqCst *fence* on both sides must also exclude 0/0.
    #[test]
    fn store_buffering_fence_idiom_passes() {
        let r = try_check(cfg(None), || {
            let x = Arc::new(AtomicUsize::new(0));
            let y = Arc::new(AtomicUsize::new(0));
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t = thread::spawn(move || {
                x2.store(1, Ordering::Relaxed);
                fence(Ordering::SeqCst);
                y2.load(Ordering::Relaxed)
            });
            y.store(1, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            let rx = x.load(Ordering::Relaxed);
            let ry = t.join().unwrap();
            assert!(rx == 1 || ry == 1, "both threads read 0");
        });
        r.expect("store;SeqCst-fence;load forbids the 0/0 outcome");
    }

    /// C++20 [atomics.order]: a load sequenced after a SeqCst fence must
    /// observe a SeqCst store that precedes the fence in S — even when the
    /// storing side has no fence of its own.
    #[test]
    fn sc_store_before_fence_orders_relaxed_load() {
        let r = try_check(cfg(None), || {
            let x = Arc::new(AtomicUsize::new(0));
            let y = Arc::new(AtomicUsize::new(0));
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t = thread::spawn(move || {
                x2.store(1, Ordering::SeqCst);
                y2.load(Ordering::SeqCst)
            });
            y.store(1, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            let rx = x.load(Ordering::Relaxed);
            let ry = t.join().unwrap();
            assert!(rx == 1 || ry == 1, "both threads read 0");
        });
        r.expect("SC store + SC fence on the reader side forbids 0/0");
    }

    /// Message passing with release/acquire: reader seeing the flag must
    /// see the data.
    #[test]
    fn message_passing_rel_acq_passes() {
        let r = try_check(cfg(None), || {
            let data = Arc::new(AtomicUsize::new(0));
            let flag = Arc::new(AtomicUsize::new(0));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42, "flag without data");
            }
            t.join().unwrap();
        });
        r.expect("release/acquire message passing is sound");
    }

    /// Message passing fully relaxed: the checker must find the schedule
    /// where the flag is visible but the data is not.
    #[test]
    fn message_passing_relaxed_fails() {
        let r = try_check(cfg(None), || {
            let data = Arc::new(AtomicUsize::new(0));
            let flag = Arc::new(AtomicUsize::new(0));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Relaxed);
            });
            if flag.load(Ordering::Relaxed) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42, "flag without data");
            }
            t.join().unwrap();
        });
        let v = r.expect_err("relaxed message passing must be broken");
        assert!(v.message.contains("flag without data"), "{}", v.message);
    }

    /// A release sequence continued through a relaxed RMW still transfers
    /// the original release view to an acquiring reader (C++20 semantics).
    #[test]
    fn release_sequence_through_rmw() {
        let r = try_check(cfg(None), || {
            let data = Arc::new(AtomicUsize::new(0));
            let flag = Arc::new(AtomicUsize::new(0));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let (d3, f3) = (Arc::clone(&data), Arc::clone(&flag));
            let t1 = thread::spawn(move || {
                d2.store(7, Ordering::Relaxed);
                f2.store(1, Ordering::Release);
            });
            let t2 = thread::spawn(move || {
                // Relaxed RMW in the middle of the release sequence.
                f3.fetch_add(1, Ordering::Relaxed);
                let _ = d3;
            });
            if flag.load(Ordering::Acquire) == 2 {
                // Reading the RMW (value 2) must still acquire t1's release.
                assert_eq!(data.load(Ordering::Relaxed), 7, "release sequence broken");
            }
            t1.join().unwrap();
            t2.join().unwrap();
        });
        r.expect("release sequences continue through RMWs");
    }

    /// RMW atomicity: two concurrent increments never lose an update.
    #[test]
    fn fetch_add_never_loses_updates() {
        let r = try_check(cfg(None), || {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&c);
            let t = thread::spawn(move || {
                c2.fetch_add(1, Ordering::Relaxed);
            });
            c.fetch_add(1, Ordering::Relaxed);
            t.join().unwrap();
            assert_eq!(c.load(Ordering::Relaxed), 2, "lost increment");
        });
        r.expect("RMWs are atomic");
    }

    /// Join edge: everything the child did (even relaxed) is visible to
    /// the parent after join().
    #[test]
    fn join_publishes_child_writes() {
        let r = try_check(cfg(None), || {
            let d = Arc::new(AtomicUsize::new(0));
            let d2 = Arc::clone(&d);
            let t = thread::spawn(move || {
                d2.store(9, Ordering::Relaxed);
            });
            t.join().unwrap();
            assert_eq!(d.load(Ordering::Relaxed), 9, "join edge missing");
        });
        r.expect("join synchronizes with thread completion");
    }

    /// Exhaustiveness: a relaxed load concurrent with a relaxed store must
    /// observe BOTH the old and the new value across the exploration.
    #[test]
    fn explores_both_load_values() {
        let seen: Arc<Mutex<HashSet<usize>>> = Arc::new(Mutex::new(HashSet::new()));
        let seen2 = Arc::clone(&seen);
        let r = try_check(cfg(None), move || {
            let x = Arc::new(AtomicUsize::new(0));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || {
                x2.store(1, Ordering::Relaxed);
            });
            let v = x.load(Ordering::Relaxed);
            t.join().unwrap();
            let seen3 = Arc::clone(&seen2);
            super::exempt(move || {
                seen3.lock().unwrap().insert(v);
            });
        });
        r.expect("scenario has no assertion");
        let seen = seen.lock().unwrap();
        assert_eq!(
            &*seen,
            &HashSet::from([0, 1]),
            "exploration missed a load value"
        );
    }

    /// The preemption bound actually prunes: bound 0 forbids involuntary
    /// switches, so the racy read sees only the post-join... nothing —
    /// with bound 0 the child never runs before the parent's load.
    #[test]
    fn preemption_bound_zero_is_switch_free() {
        let seen: Arc<Mutex<HashSet<usize>>> = Arc::new(Mutex::new(HashSet::new()));
        let seen2 = Arc::clone(&seen);
        let r = try_check(cfg(Some(0)), move || {
            let x = Arc::new(AtomicUsize::new(0));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || {
                x2.store(1, Ordering::Relaxed);
            });
            let v = x.load(Ordering::Relaxed);
            t.join().unwrap();
            let seen3 = Arc::clone(&seen2);
            super::exempt(move || {
                seen3.lock().unwrap().insert(v);
            });
        });
        r.expect("bound-0 run");
        // With no preemptions the parent runs to its join before the child
        // starts, so the load can only see the initial value.
        assert_eq!(&*seen.lock().unwrap(), &HashSet::from([0]));
    }

    /// Deadlock detection: self-inflicted lost-wakeup (a thread joins a
    /// thread that joins it back is impossible here, so block via a spin
    /// that never yields the token is max_ops instead) — use two joiners.
    #[test]
    fn detects_runaway_spin() {
        let r = try_check(
            Config {
                preemption_bound: Some(1),
                max_ops: 500,
                ..Config::default()
            },
            || {
                let x = Arc::new(AtomicUsize::new(0));
                let x2 = Arc::clone(&x);
                let t = thread::spawn(move || {
                    // Never set by anyone: unbounded spin.
                    while x2.load(Ordering::Relaxed) == 0 {}
                });
                x.store(0, Ordering::Relaxed);
                t.join().unwrap();
            },
        );
        let v = r.expect_err("unbounded spin must be reported");
        assert!(v.message.contains("max_ops"), "{}", v.message);
    }

    /// Three threads, still exhaustive under a small bound.
    #[test]
    fn three_thread_counter() {
        let r = try_check(cfg(Some(2)), || {
            let c = Arc::new(AtomicUsize::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let c2 = Arc::clone(&c);
                    thread::spawn(move || {
                        c2.fetch_add(1, Ordering::AcqRel);
                    })
                })
                .collect();
            c.fetch_add(1, Ordering::AcqRel);
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(c.load(Ordering::Acquire), 3);
        });
        r.expect("three-way counter is exact");
    }
}
