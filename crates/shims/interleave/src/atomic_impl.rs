//! Model-aware drop-in replacements for `std::sync::atomic`.
//!
//! Each wrapper pairs the real `std` atomic with a lazily-assigned
//! process-unique location id. Outside a model run (or under
//! [`exempt`](crate::exempt)) every operation routes straight to the real
//! atomic with the caller's ordering; inside a run it becomes a kernel
//! operation — a schedule point plus a C11-model memory access. The real
//! cell then holds only the location's *initial* value (snapshotted on
//! first modeled access each run); modeled stores are not written back,
//! which is why scenarios must confine shared state to objects created
//! and destroyed inside the checked closure.

use crate::kernel;
use std::sync::atomic as real;

pub use std::sync::atomic::Ordering;

/// A memory fence: modeled (schedule point + view/fence semantics) inside
/// a run, `std::sync::atomic::fence` outside.
#[inline]
pub fn fence(order: Ordering) {
    assert!(
        order != Ordering::Relaxed,
        "there is no such thing as a relaxed fence"
    );
    if kernel::in_model() {
        kernel::fence_op(order);
    } else {
        real::fence(order);
    }
}

macro_rules! model_atomic {
    ($name:ident, $prim:ty, $raw:ty, $doc:expr) => {
        #[doc = $doc]
        ///
        /// Drop-in model-aware replacement for the `std::sync::atomic`
        /// type of the same name (see the module docs).
        #[derive(Debug)]
        #[repr(C)]
        pub struct $name {
            real: $raw,
            slot: real::AtomicU64,
        }

        impl $name {
            /// Creates a new atomic (const, so statics work).
            #[inline]
            pub const fn new(v: $prim) -> Self {
                $name {
                    real: <$raw>::new(v),
                    slot: real::AtomicU64::new(0),
                }
            }

            #[inline]
            fn model_id(&self) -> Option<u64> {
                if !kernel::in_model() {
                    return None;
                }
                let id = self.slot.load(Ordering::Relaxed);
                if id != 0 {
                    return Some(id);
                }
                let fresh = kernel::fresh_loc_id();
                match self
                    .slot
                    .compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => Some(fresh),
                    Err(raced) => Some(raced),
                }
            }

            #[inline]
            fn snapshot(&self) -> u64 {
                Self::to_bits(self.real.load(Ordering::Relaxed))
            }

            /// Loads the value.
            #[inline]
            pub fn load(&self, order: Ordering) -> $prim {
                match self.model_id() {
                    Some(id) => Self::from_bits(kernel::atomic_load(id, || self.snapshot(), order)),
                    None => self.real.load(order),
                }
            }

            /// Stores `val`.
            #[inline]
            pub fn store(&self, val: $prim, order: Ordering) {
                match self.model_id() {
                    Some(id) => {
                        kernel::atomic_store(id, || self.snapshot(), Self::to_bits(val), order)
                    }
                    None => self.real.store(val, order),
                }
            }

            /// Swaps in `val`, returning the previous value.
            #[inline]
            pub fn swap(&self, val: $prim, order: Ordering) -> $prim {
                match self.model_id() {
                    Some(id) => Self::from_bits(kernel::atomic_rmw(
                        id,
                        || self.snapshot(),
                        order,
                        |_| Self::to_bits(val),
                    )),
                    None => self.real.swap(val, order),
                }
            }

            /// Strong compare-exchange.
            #[inline]
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                match self.model_id() {
                    Some(id) => kernel::atomic_cas(
                        id,
                        || self.snapshot(),
                        Self::to_bits(current),
                        Self::to_bits(new),
                        success,
                        failure,
                    )
                    .map(Self::from_bits)
                    .map_err(Self::from_bits),
                    None => self.real.compare_exchange(current, new, success, failure),
                }
            }

            /// Weak compare-exchange. Modeled as the strong variant
            /// (spurious failures are not explored — see the crate docs).
            #[inline]
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                match self.model_id() {
                    Some(_) => self.compare_exchange(current, new, success, failure),
                    None => self
                        .real
                        .compare_exchange_weak(current, new, success, failure),
                }
            }

            /// Mutable access to the value. Under modeling this first
            /// collapses the modeled history into the real cell (exclusive
            /// access proves no concurrent observer exists).
            #[inline]
            pub fn get_mut(&mut self) -> &mut $prim {
                self.collapse_into_real();
                self.real.get_mut()
            }

            /// Consumes the atomic, returning its value (collapsing the
            /// modeled history first, as for `get_mut`).
            #[inline]
            pub fn into_inner(mut self) -> $prim {
                self.collapse_into_real();
                self.real.into_inner()
            }

            fn collapse_into_real(&mut self) {
                let id = self.slot.load(Ordering::Relaxed);
                if id != 0 {
                    if let Some(bits) = kernel::collapse(id) {
                        self.real.store(Self::from_bits(bits), Ordering::Relaxed);
                    }
                    self.slot.store(0, Ordering::Relaxed);
                }
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(Default::default())
            }
        }

        impl From<$prim> for $name {
            fn from(v: $prim) -> Self {
                Self::new(v)
            }
        }
    };
}

macro_rules! int_ops {
    ($name:ident, $prim:ty) => {
        impl $name {
            /// Wrapping add; returns the previous value.
            #[inline]
            pub fn fetch_add(&self, val: $prim, order: Ordering) -> $prim {
                match self.model_id() {
                    Some(id) => Self::from_bits(kernel::atomic_rmw(
                        id,
                        || self.snapshot(),
                        order,
                        |old| Self::to_bits(Self::from_bits(old).wrapping_add(val)),
                    )),
                    None => self.real.fetch_add(val, order),
                }
            }

            /// Wrapping subtract; returns the previous value.
            #[inline]
            pub fn fetch_sub(&self, val: $prim, order: Ordering) -> $prim {
                match self.model_id() {
                    Some(id) => Self::from_bits(kernel::atomic_rmw(
                        id,
                        || self.snapshot(),
                        order,
                        |old| Self::to_bits(Self::from_bits(old).wrapping_sub(val)),
                    )),
                    None => self.real.fetch_sub(val, order),
                }
            }

            /// Bitwise OR; returns the previous value.
            #[inline]
            pub fn fetch_or(&self, val: $prim, order: Ordering) -> $prim {
                match self.model_id() {
                    Some(id) => Self::from_bits(kernel::atomic_rmw(
                        id,
                        || self.snapshot(),
                        order,
                        |old| Self::to_bits(Self::from_bits(old) | val),
                    )),
                    None => self.real.fetch_or(val, order),
                }
            }

            /// Bitwise AND; returns the previous value.
            #[inline]
            pub fn fetch_and(&self, val: $prim, order: Ordering) -> $prim {
                match self.model_id() {
                    Some(id) => Self::from_bits(kernel::atomic_rmw(
                        id,
                        || self.snapshot(),
                        order,
                        |old| Self::to_bits(Self::from_bits(old) & val),
                    )),
                    None => self.real.fetch_and(val, order),
                }
            }

            /// Maximum; returns the previous value.
            #[inline]
            pub fn fetch_max(&self, val: $prim, order: Ordering) -> $prim {
                match self.model_id() {
                    Some(id) => Self::from_bits(kernel::atomic_rmw(
                        id,
                        || self.snapshot(),
                        order,
                        |old| Self::to_bits(Self::from_bits(old).max(val)),
                    )),
                    None => self.real.fetch_max(val, order),
                }
            }
        }
    };
}

model_atomic!(
    AtomicUsize,
    usize,
    real::AtomicUsize,
    "An unsigned pointer-sized model-aware atomic."
);
impl AtomicUsize {
    #[inline]
    fn to_bits(v: usize) -> u64 {
        v as u64
    }
    #[inline]
    fn from_bits(b: u64) -> usize {
        b as usize
    }
}
int_ops!(AtomicUsize, usize);

model_atomic!(
    AtomicU64,
    u64,
    real::AtomicU64,
    "A 64-bit unsigned model-aware atomic."
);
impl AtomicU64 {
    #[inline]
    fn to_bits(v: u64) -> u64 {
        v
    }
    #[inline]
    fn from_bits(b: u64) -> u64 {
        b
    }
}
int_ops!(AtomicU64, u64);

model_atomic!(
    AtomicIsize,
    isize,
    real::AtomicIsize,
    "A signed pointer-sized model-aware atomic."
);
impl AtomicIsize {
    #[inline]
    fn to_bits(v: isize) -> u64 {
        v as i64 as u64
    }
    #[inline]
    fn from_bits(b: u64) -> isize {
        b as i64 as isize
    }
}
int_ops!(AtomicIsize, isize);

model_atomic!(
    AtomicBool,
    bool,
    real::AtomicBool,
    "A boolean model-aware atomic."
);
impl AtomicBool {
    #[inline]
    fn to_bits(v: bool) -> u64 {
        v as u64
    }
    #[inline]
    fn from_bits(b: u64) -> bool {
        b != 0
    }
}

/// A raw-pointer model-aware atomic.
///
/// Drop-in model-aware replacement for `std::sync::atomic::AtomicPtr`
/// (see the module docs). Pointers round-trip through the model as
/// addresses; provenance is whatever the platform gives an
/// address-reconstituted pointer, which matches how the repo's lock-free
/// structures use tagged words.
#[derive(Debug)]
#[repr(C)]
pub struct AtomicPtr<T> {
    real: real::AtomicPtr<T>,
    slot: real::AtomicU64,
}

impl<T> AtomicPtr<T> {
    /// Creates a new atomic pointer (const, so statics work).
    #[inline]
    pub const fn new(p: *mut T) -> Self {
        AtomicPtr {
            real: real::AtomicPtr::new(p),
            slot: real::AtomicU64::new(0),
        }
    }

    #[inline]
    fn model_id(&self) -> Option<u64> {
        if !kernel::in_model() {
            return None;
        }
        let id = self.slot.load(Ordering::Relaxed);
        if id != 0 {
            return Some(id);
        }
        let fresh = kernel::fresh_loc_id();
        match self
            .slot
            .compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => Some(fresh),
            Err(raced) => Some(raced),
        }
    }

    #[inline]
    fn snapshot(&self) -> u64 {
        self.real.load(Ordering::Relaxed) as u64
    }

    /// Loads the pointer.
    #[inline]
    pub fn load(&self, order: Ordering) -> *mut T {
        match self.model_id() {
            Some(id) => kernel::atomic_load(id, || self.snapshot(), order) as *mut T,
            None => self.real.load(order),
        }
    }

    /// Stores `p`.
    #[inline]
    pub fn store(&self, p: *mut T, order: Ordering) {
        match self.model_id() {
            Some(id) => kernel::atomic_store(id, || self.snapshot(), p as u64, order),
            None => self.real.store(p, order),
        }
    }

    /// Swaps in `p`, returning the previous pointer.
    #[inline]
    pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
        match self.model_id() {
            Some(id) => kernel::atomic_rmw(id, || self.snapshot(), order, |_| p as u64) as *mut T,
            None => self.real.swap(p, order),
        }
    }

    /// Strong compare-exchange.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        match self.model_id() {
            Some(id) => kernel::atomic_cas(
                id,
                || self.snapshot(),
                current as u64,
                new as u64,
                success,
                failure,
            )
            .map(|b| b as *mut T)
            .map_err(|b| b as *mut T),
            None => self.real.compare_exchange(current, new, success, failure),
        }
    }

    /// Weak compare-exchange (modeled as strong — see the crate docs).
    #[inline]
    pub fn compare_exchange_weak(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        match self.model_id() {
            Some(_) => self.compare_exchange(current, new, success, failure),
            None => self
                .real
                .compare_exchange_weak(current, new, success, failure),
        }
    }

    /// Mutable access (collapses the modeled history first — see the
    /// integer wrappers).
    #[inline]
    pub fn get_mut(&mut self) -> &mut *mut T {
        self.collapse_into_real();
        self.real.get_mut()
    }

    /// Consumes the atomic, returning the pointer.
    #[inline]
    pub fn into_inner(mut self) -> *mut T {
        self.collapse_into_real();
        self.real.into_inner()
    }

    fn collapse_into_real(&mut self) {
        let id = self.slot.load(Ordering::Relaxed);
        if id != 0 {
            if let Some(bits) = kernel::collapse(id) {
                self.real.store(bits as *mut T, Ordering::Relaxed);
            }
            self.slot.store(0, Ordering::Relaxed);
        }
    }
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> Self {
        Self::new(std::ptr::null_mut())
    }
}

impl<T> From<*mut T> for AtomicPtr<T> {
    fn from(p: *mut T) -> Self {
        Self::new(p)
    }
}
