//! Model-aware thread spawn/join.
//!
//! Inside a model run, [`spawn`] registers the child with the kernel (a
//! schedule point) and runs the closure on a real OS thread that
//! participates in the scheduler turnstile; [`JoinHandle::join`] is a
//! blocking model operation that establishes the usual happens-before
//! edge from the child's completion. Outside a run both are thin
//! wrappers over `std::thread`.

use crate::kernel;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::thread as real;

/// Handle to a spawned thread; joinable exactly once.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    Real(real::JoinHandle<T>),
    Model {
        os: real::JoinHandle<()>,
        tid: usize,
        result: Arc<Mutex<Option<real::Result<T>>>>,
        kernel: Arc<kernel::Kernel>,
    },
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result.
    ///
    /// In a model run this blocks the calling *model* thread (freeing
    /// the scheduler to explore the child) and joins the child's final
    /// memory view into the caller's on success.
    pub fn join(self) -> real::Result<T> {
        match self.inner {
            Inner::Real(h) => h.join(),
            Inner::Model {
                os,
                tid,
                result,
                kernel,
            } => {
                let (_, me) = kernel::current_ctx()
                    .expect("joining a model thread from outside the model run");
                kernel::op_join(&kernel, me, tid);
                // The model-level join above guarantees the child has
                // passed its finish point; the OS-level join is then
                // bounded by the child's epilogue (TLS destructors).
                let _ = os.join();
                let res = result
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("model thread finished without storing a result");
                res
            }
        }
    }
}

/// Spawns a thread. Model-aware: see the module docs.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match kernel::spawn_ctx() {
        None => JoinHandle {
            inner: Inner::Real(real::spawn(f)),
        },
        Some((kernel, me)) => {
            let tid = kernel::op_spawn(&kernel, me);
            let result: Arc<Mutex<Option<real::Result<T>>>> = Arc::new(Mutex::new(None));
            let result2 = Arc::clone(&result);
            let kernel2 = Arc::clone(&kernel);
            let os = real::Builder::new()
                .name(format!("interleave-{tid}"))
                .spawn(move || {
                    kernel::enter_model_thread(&kernel2, tid);
                    let out = catch_unwind(AssertUnwindSafe(f));
                    kernel::leave_model_thread();
                    let panic_msg = match &out {
                        Ok(_) => None,
                        // `p` is `&Box<dyn Any>`; without the explicit
                        // `as_ref` the *box* would coerce to `&dyn Any` and
                        // the `&str`/`String` downcasts inside would miss.
                        Err(p) => Some(kernel::payload_msg(&**p)),
                    };
                    *result2.lock().unwrap_or_else(|e| e.into_inner()) = Some(match out {
                        Ok(v) => Ok(v),
                        Err(p) => Err(p),
                    });
                    kernel::finish_model_thread(&kernel2, tid, panic_msg);
                })
                .expect("failed to spawn model OS thread");
            JoinHandle {
                inner: Inner::Model {
                    os,
                    tid,
                    result,
                    kernel,
                },
            }
        }
    }
}

/// Yields: a voluntary (budget-free) schedule point in a model run,
/// `std::thread::yield_now` outside.
pub fn yield_now() {
    match kernel::current_ctx() {
        Some((kernel, me)) => kernel::op_yield(&kernel, me),
        None => real::yield_now(),
    }
}
