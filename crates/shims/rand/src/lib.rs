//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the tiny subset of the `rand` API the benchmark harness uses: a seedable
//! small PRNG ([`rngs::SmallRng`], here an xoshiro256++ generator) and
//! [`Rng::gen_range`] over half-open integer ranges. It is *not* a general
//! replacement for the real crate; swap the path dependency for the
//! crates.io `rand` when the build environment gains network access.

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface. Blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open integer range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Core source of randomness.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Ranges that can be sampled from (the `rand` crate's `SampleRange`).
pub trait SampleRange<T> {
    /// Samples one value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight
                // modulo bias of the plain variant is irrelevant for
                // benchmark key draws.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Pre-packaged generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256++ seeded through
    /// SplitMix64, matching the role (not the stream) of `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            SmallRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn stays_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn covers_small_ranges() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
