//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the tiny subset of the `rand` API the benchmark harness uses: a seedable
//! small PRNG ([`rngs::SmallRng`], here an xoshiro256++ generator) and
//! [`Rng::gen_range`] over half-open integer ranges. It is *not* a general
//! replacement for the real crate; swap the path dependency for the
//! crates.io `rand` when the build environment gains network access.

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface. Blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open integer range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Core source of randomness.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Ranges that can be sampled from (the `rand` crate's `SampleRange`).
pub trait SampleRange<T> {
    /// Samples one value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight
                // modulo bias of the plain variant is irrelevant for
                // benchmark key draws.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Distributions beyond the uniform ranges of [`Rng::gen_range`].
pub mod distributions {
    use super::RngCore;

    /// A Zipfian rank distribution over `0..n` (rank 0 is the hottest),
    /// using the rejection-free closed form of Gray et al. ("Quickly
    /// generating billion-record synthetic databases"), the same generator
    /// YCSB's zipfian workloads use.
    ///
    /// `theta` is the skew in `[0, 1)`: 0 degenerates to uniform, 0.99 is
    /// YCSB's default heavy skew. Construction computes the harmonic
    /// normalizer in O(n); sampling is O(1) and takes `&self`, so one
    /// instance can be shared by every worker thread of a benchmark.
    #[derive(Debug, Clone)]
    pub struct Zipf {
        n: u64,
        theta: f64,
        alpha: f64,
        zetan: f64,
        eta: f64,
        half_pow_theta: f64,
    }

    impl Zipf {
        /// A zipfian distribution over `0..n` with skew `theta`.
        ///
        /// # Panics
        ///
        /// Panics if `n == 0` or `theta` is outside `[0, 1)`.
        pub fn new(n: u64, theta: f64) -> Self {
            assert!(n > 0, "zipfian over an empty range");
            assert!(
                (0.0..1.0).contains(&theta),
                "theta must be in [0, 1), got {theta}"
            );
            let zetan = Self::zeta(n, theta);
            let zeta2 = Self::zeta(2.min(n), theta);
            let alpha = 1.0 / (1.0 - theta);
            let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
            Zipf {
                n,
                theta,
                alpha,
                zetan,
                eta,
                half_pow_theta: 0.5f64.powf(theta),
            }
        }

        fn zeta(n: u64, theta: f64) -> f64 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        }

        /// The size of the sampled range.
        pub fn n(&self) -> u64 {
            self.n
        }

        /// The skew this distribution was built with.
        pub fn theta(&self) -> f64 {
            self.theta
        }

        /// Draws one rank in `0..n`; smaller ranks are (exponentially) more
        /// likely.
        pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            // 53 uniform bits → u in [0, 1).
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let uz = u * self.zetan;
            if uz < 1.0 {
                return 0;
            }
            if self.n > 1 && uz < 1.0 + self.half_pow_theta {
                return 1;
            }
            let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
            r.min(self.n - 1)
        }
    }
}

/// Pre-packaged generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256++ seeded through
    /// SplitMix64, matching the role (not the stream) of `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            SmallRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::Zipf;
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn stays_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn covers_small_ranges() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zipf_rank_frequency_is_monotone() {
        // With heavy skew and enough samples, the expected frequency gaps
        // between well-separated ranks dwarf sampling noise, so strict
        // comparisons on those ranks are a safe monotonicity check.
        let zipf = Zipf::new(64, 0.99);
        let mut rng = SmallRng::seed_from_u64(0xD1CE);
        let mut counts = [0u64; 64];
        for _ in 0..200_000 {
            let r = zipf.sample(&mut rng) as usize;
            assert!(r < 64, "rank out of range");
            counts[r] += 1;
        }
        assert!(counts[0] > counts[3]);
        assert!(counts[3] > counts[15]);
        assert!(counts[15] > counts[63]);
        assert!(
            counts[0] > 10 * counts[63],
            "head dwarfs tail at theta=0.99"
        );
    }

    #[test]
    fn zipf_is_deterministic_for_a_seed() {
        let zipf = Zipf::new(1000, 0.6);
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = SmallRng::seed_from_u64(99);
        for _ in 0..200 {
            assert_eq!(zipf.sample(&mut a), zipf.sample(&mut b));
        }
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let zipf = Zipf::new(16, 0.0);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = [0u64; 16];
        for _ in 0..160_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (5_000..20_000).contains(&c),
                "rank count {c} far from uniform"
            );
        }
    }
}
