//! Minimal offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the subset of the criterion API the micro benchmark uses: benchmark
//! groups, `bench_function`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical machinery it
//! runs a warm-up phase followed by a timed loop and reports the mean
//! nanoseconds per iteration, one line per benchmark:
//!
//! ```text
//! ptr/ebr/load                time: [41.2 ns/iter]
//! ```
//!
//! Two environment knobs make CI smokes fast and deterministic in shape:
//! `BENCH_MS` caps both warm-up and measurement time (milliseconds), and
//! `BENCH_JSON` appends `{"name":..., "ns_per_iter":...}` lines to the given
//! file for baseline recording.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver (configuration + report sink).
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 30,
        }
    }
}

fn env_millis(var: &str) -> Option<Duration> {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .map(Duration::from_millis)
}

impl Criterion {
    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Accepted for API compatibility (this shim reports a single mean).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let warm_up = env_millis("BENCH_MS").unwrap_or(self.warm_up);
        let measurement = env_millis("BENCH_MS").unwrap_or(self.measurement);
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            warm_up,
            measurement,
        }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Times `routine` and prints one report line.
    pub fn bench_function(
        &mut self,
        id: impl AsRef<str>,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            ns_per_iter: None,
        };
        routine(&mut b);
        let full = format!("{}/{}", self.name, id.as_ref());
        match b.ns_per_iter {
            Some(ns) => {
                println!("{full:<40} time: [{ns:.1} ns/iter]");
                if let Ok(path) = std::env::var("BENCH_JSON") {
                    let mut line = String::new();
                    let _ = writeln!(line, "{{\"name\":\"{full}\",\"ns_per_iter\":{ns:.3}}}");
                    append_line(&path, &line);
                }
            }
            None => println!("{full:<40} time: [no measurement]"),
        }
        self
    }

    /// Ends the group (reports are printed eagerly; kept for API parity).
    pub fn finish(self) {}
}

fn append_line(path: &str, line: &str) {
    use std::io::Write;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = f.write_all(line.as_bytes());
    }
}

/// Handed to each benchmark closure; call [`iter`](Bencher::iter) once.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Runs `routine` in a warm-up phase and then a timed loop, recording
    /// the mean time per iteration.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let wu_deadline = Instant::now() + self.warm_up;
        while Instant::now() < wu_deadline {
            for _ in 0..64 {
                black_box(routine());
            }
        }
        let started = Instant::now();
        let mut iters: u64 = 0;
        loop {
            for _ in 0..64 {
                black_box(routine());
            }
            iters += 64;
            if started.elapsed() >= self.measurement {
                break;
            }
        }
        let ns = started.elapsed().as_nanos() as f64 / iters as f64;
        self.ns_per_iter = Some(ns);
    }
}

/// Bundles benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_reports_positive_mean() {
        std::env::set_var("BENCH_MS", "5");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        let mut hits = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                hits += 1;
            })
        });
        g.finish();
        assert!(hits > 0);
    }
}
