//! Wait-free *sticky* reference counters.
//!
//! This crate implements the constant-time, wait-free counter of Anderson,
//! Blelloch and Wei ("Turning Manual Concurrent Memory Reclamation into
//! Automatic Reference Counting", PLDI 2022, Figure 7). A sticky counter is an
//! atomic counter supporting three operations, each taking *O(1)* time in the
//! worst case using single-word atomic instructions:
//!
//! * [`increment_if_not_zero`](Counter::increment_if_not_zero) — add one,
//!   unless the counter has already reached zero, in which case the counter
//!   is left at zero ("stuck") and `false` is returned;
//! * [`decrement`](Counter::decrement) — subtract one, reporting whether this
//!   call was the one that brought the counter to zero;
//! * [`load`](Counter::load) — a linearizable read of the current value.
//!
//! Once a sticky counter reaches zero it stays at zero forever; this is
//! exactly the semantics needed by a *strong* reference count in the presence
//! of weak pointers: upgrading a weak pointer must never resurrect an object
//! whose count already hit zero.
//!
//! The traditional implementation of increment-if-not-zero is a CAS loop
//! (provided here as [`CasCounter`] for comparison), which is lock-free but
//! not wait-free and degrades under contention. The sticky counter instead
//! reserves the two highest bits of the word: the *zero flag* (the counter is
//! zero iff this bit is set — note that a stored value of numeric `0` does
//! **not** mean the counter is zero!) and the *help flag* used by readers to
//! help a pending decrement-to-zero complete.
//!
//! # Examples
//!
//! ```
//! use sticky::{Counter, StickyCounter};
//!
//! let c = StickyCounter::new(1);
//! assert!(c.increment_if_not_zero()); // 2
//! assert!(!c.decrement());            // 1: not the last
//! assert!(c.decrement());             // 0: this call zeroed it
//! assert!(!c.increment_if_not_zero()); // stuck at zero
//! assert_eq!(c.load(), 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use smr::sync::atomic::{fence, AtomicU64, Ordering};
use std::fmt;

/// The interface shared by the wait-free [`StickyCounter`] and the CAS-loop
/// [`CasCounter`] baseline.
///
/// Implementations are *sticky*: after a [`decrement`](Counter::decrement)
/// brings the value to zero, every later
/// [`increment_if_not_zero`](Counter::increment_if_not_zero) fails and every
/// [`load`](Counter::load) returns `0`.
pub trait Counter: Send + Sync {
    /// Creates a counter holding `initial` references.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is zero or exceeds [`MAX_COUNT`]: a counter is
    /// born alive — a "dead" counter can only arise by decrementing to zero.
    fn with_count(initial: u64) -> Self;

    /// Atomically increments the counter unless it is zero.
    ///
    /// Returns `true` if the increment took effect, `false` if the counter
    /// had already reached zero (in which case it remains zero).
    fn increment_if_not_zero(&self) -> bool;

    /// Atomically decrements the counter.
    ///
    /// Returns `true` iff this call brought the counter to zero; exactly one
    /// of the calls that race to zero a counter observes `true`. Callers must
    /// own one reference: calling `decrement` more times than the counter was
    /// incremented is a logic error.
    fn decrement(&self) -> bool;

    /// A linearizable read of the current count (zero once stuck).
    fn load(&self) -> u64;
}

/// Highest bit: set iff the counter has reached zero (is "stuck").
const ZERO_FLAG: u64 = 1 << 63;
/// Second-highest bit: set by a helping `load` so that one racing
/// `decrement` can still claim responsibility for the zero transition.
const HELP_FLAG: u64 = 1 << 62;

/// Largest representable reference count: two bits are reserved for flags.
pub const MAX_COUNT: u64 = HELP_FLAG - 1;

/// The wait-free sticky counter of PLDI 2022, Figure 7.
///
/// All three operations ([`increment_if_not_zero`](Counter::increment_if_not_zero),
/// [`decrement`](Counter::decrement), [`load`](Counter::load)) take constant
/// time in the worst case. A 64-bit word stores the count in the low 62 bits;
/// the two high bits are the zero flag and the help flag.
///
/// Memory ordering: the hot-path RMWs use the classic reference-count
/// discipline rather than the sequentially-consistent model the paper's
/// proof is carried out in — increments are `Relaxed` (the caller already
/// holds a reference or protection; every correctness decision is made from
/// the value the RMW itself returns), decrements are `Release` with an
/// `Acquire` fence on the zero transition. Every counter operation is an
/// RMW, so each `Release` decrement heads a release sequence that runs
/// through all later counter RMWs; the fence therefore synchronizes the
/// zero observer with *every* earlier decrement, and it is safe to destroy
/// the managed object after observing `true`. The relaxation is licensed by
/// the model-checked `sticky_release_decrement_is_sound` litmus, whose
/// `Relaxed` twin shows the boundary: without the `Release`, the disposer
/// can miss another owner's pre-decrement writes. The cold zero-transition
/// flag RMWs and `load` stay `SeqCst` (`load` advertises linearizability).
///
/// # Examples
///
/// ```
/// use sticky::{Counter, StickyCounter};
///
/// let c = StickyCounter::new(2);
/// assert_eq!(c.load(), 2);
/// assert!(!c.decrement());
/// assert!(c.decrement());
/// assert!(!c.increment_if_not_zero());
/// ```
pub struct StickyCounter {
    x: AtomicU64,
}

impl StickyCounter {
    /// Creates a counter holding `initial` references.
    ///
    /// # Panics
    ///
    /// Panics if `initial == 0` or `initial > MAX_COUNT`.
    pub fn new(initial: u64) -> Self {
        <Self as Counter>::with_count(initial)
    }

    /// Reads the raw representation (flags included). Test/debug aid.
    #[doc(hidden)]
    pub fn raw(&self) -> u64 {
        self.x.load(Ordering::SeqCst)
    }
}

impl Counter for StickyCounter {
    fn with_count(initial: u64) -> Self {
        assert!(initial > 0, "sticky counter must be born alive");
        assert!(initial <= MAX_COUNT, "initial count exceeds MAX_COUNT");
        StickyCounter {
            x: AtomicU64::new(initial),
        }
    }

    #[inline]
    fn increment_if_not_zero(&self) -> bool {
        // One unconditional fetch-add: if the zero flag was set, the counter
        // is stuck at zero and the stray +1 below the flag bits is harmless
        // (every reader interprets any value with ZERO_FLAG as zero).
        // Ordering: Relaxed — as in `Arc::clone`. The success decision is
        // made entirely from the value this RMW returns (RMW atomicity
        // totally orders all counter operations); payload visibility comes
        // from the reference or protection the caller already holds, never
        // from the count.
        let val = self.x.fetch_add(1, Ordering::Relaxed);
        (val & ZERO_FLAG) == 0
    }

    #[inline]
    fn decrement(&self) -> bool {
        // Ordering: Release — orders this owner's payload accesses before
        // the count drop, so the eventual zero observer's Acquire fence
        // (below) sees them before disposing. Licensed by the model-checked
        // `sticky_release_decrement_is_sound` litmus; its Relaxed twin shows
        // the disposer missing another owner's writes without it.
        if self.x.fetch_sub(1, Ordering::Release) == 1 {
            // Ordering: fence(Acquire) — this call zeroed the count, so it
            // read the previous decrement's RMW. Every counter op is an
            // RMW, so each Release decrement heads a release sequence
            // reaching that value; the fence joins them all, making every
            // other owner's pre-decrement payload accesses visible before
            // the caller destroys the object.
            fence(Ordering::Acquire);
            // We brought the stored value to numeric 0: attempt to make the
            // zero official by installing the zero flag.
            let mut e = 0u64;
            match self
                .x
                .compare_exchange(e, ZERO_FLAG, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return true,
                Err(cur) => e = cur,
            }
            // The CAS failed: either an increment resurrected the transient
            // zero (we then linearize after that increment and report false),
            // or a helping `load` already installed ZERO_FLAG | HELP_FLAG. In
            // the latter case one decrement must still take credit: remove
            // the help flag with an exchange; whoever observes the flag owns
            // the zero transition.
            if (e & HELP_FLAG) != 0 && (self.x.swap(ZERO_FLAG, Ordering::SeqCst) & HELP_FLAG) != 0 {
                return true;
            }
        }
        false
    }

    #[inline]
    fn load(&self) -> u64 {
        let e = self.x.load(Ordering::SeqCst);
        if e == 0 {
            // Transient zero: a decrement is between its fetch-sub and its
            // flag CAS. To stay wait-free we *help*: try to install the zero
            // flag ourselves (with the help flag so a decrement can still
            // claim credit). Success means the counter is now officially
            // zero; failure gives us the current value to decode instead.
            match self.x.compare_exchange(
                0,
                ZERO_FLAG | HELP_FLAG,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return 0,
                Err(cur) => {
                    return if (cur & ZERO_FLAG) != 0 { 0 } else { cur };
                }
            }
        }
        if (e & ZERO_FLAG) != 0 {
            0
        } else {
            e
        }
    }
}

impl fmt::Debug for StickyCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Ordering: Relaxed — diagnostic snapshot only; nothing is decided
        // from this value.
        let raw = self.x.load(Ordering::Relaxed);
        f.debug_struct("StickyCounter")
            .field("value", &self.load())
            .field("stuck", &((raw & ZERO_FLAG) != 0))
            .finish()
    }
}

/// The traditional CAS-loop implementation of increment-if-not-zero.
///
/// Lock-free but not wait-free: under contention from `P` concurrent
/// upgraders an increment can take `O(P)` amortized time (each failed CAS
/// retries against a fresh value). Included as the baseline for the §4.3
/// ablation benchmark.
///
/// # Examples
///
/// ```
/// use sticky::{CasCounter, Counter};
///
/// let c = CasCounter::with_count(1);
/// assert!(c.increment_if_not_zero());
/// assert!(!c.decrement());
/// assert!(c.decrement());
/// assert!(!c.increment_if_not_zero());
/// ```
pub struct CasCounter {
    x: AtomicU64,
}

impl Counter for CasCounter {
    fn with_count(initial: u64) -> Self {
        assert!(initial > 0, "counter must be born alive");
        assert!(initial <= MAX_COUNT, "initial count exceeds MAX_COUNT");
        CasCounter {
            x: AtomicU64::new(initial),
        }
    }

    #[inline]
    fn increment_if_not_zero(&self) -> bool {
        // Ordering: Relaxed — same discipline as the sticky counter's
        // increment: the zero check and the CAS validate against values the
        // atomics themselves return; a stale initial read only costs a
        // retry, and no payload access is ordered through the count.
        let mut cur = self.x.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                return false;
            }
            match self
                .x
                .compare_exchange_weak(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return true,
                Err(c) => cur = c,
            }
        }
    }

    #[inline]
    fn decrement(&self) -> bool {
        // Ordering: Release, with fence(Acquire) on the zero transition —
        // identical to `StickyCounter::decrement` (and `Arc::drop`): the
        // release sequence through the counter's RMWs carries every other
        // owner's pre-decrement accesses to the disposer.
        if self.x.fetch_sub(1, Ordering::Release) == 1 {
            fence(Ordering::Acquire);
            return true;
        }
        false
    }

    #[inline]
    fn load(&self) -> u64 {
        self.x.load(Ordering::SeqCst)
    }
}

impl fmt::Debug for CasCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CasCounter")
            .field("value", &self.load())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr::sync::atomic::AtomicU64;
    use std::sync::Arc;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn counters_are_send_sync() {
        assert_send_sync::<StickyCounter>();
        assert_send_sync::<CasCounter>();
    }

    #[test]
    fn basic_lifecycle_sticky() {
        let c = StickyCounter::new(1);
        assert_eq!(c.load(), 1);
        assert!(c.increment_if_not_zero());
        assert_eq!(c.load(), 2);
        assert!(!c.decrement());
        assert_eq!(c.load(), 1);
        assert!(c.decrement());
        assert_eq!(c.load(), 0);
        // Stuck: further increments fail, loads stay zero.
        for _ in 0..10 {
            assert!(!c.increment_if_not_zero());
            assert_eq!(c.load(), 0);
        }
    }

    #[test]
    fn basic_lifecycle_cas() {
        let c = CasCounter::with_count(1);
        assert_eq!(c.load(), 1);
        assert!(c.increment_if_not_zero());
        assert!(!c.decrement());
        assert!(c.decrement());
        assert!(!c.increment_if_not_zero());
        assert_eq!(c.load(), 0);
    }

    #[test]
    #[should_panic(expected = "born alive")]
    fn zero_initial_panics() {
        let _ = StickyCounter::new(0);
    }

    #[test]
    fn stored_zero_is_not_counter_zero() {
        // A freshly decremented-to-stored-zero counter must still admit a
        // racing increment; sequentially, the load() helper path makes the
        // zero official.
        let c = StickyCounter::new(1);
        assert!(c.decrement());
        assert_eq!(c.raw() & ZERO_FLAG, ZERO_FLAG);
    }

    #[test]
    fn load_helps_transient_zero() {
        // Simulate the window inside decrement(): stored value is numeric 0
        // but the zero flag is not yet installed.
        let c = StickyCounter::new(1);
        c.x.store(0, Ordering::SeqCst);
        assert_eq!(c.load(), 0);
        // The helper installed both flags.
        assert_eq!(c.raw() & (ZERO_FLAG | HELP_FLAG), ZERO_FLAG | HELP_FLAG);
        // A lagging decrement (whose fetch_sub already happened) now runs its
        // recovery path: it must take credit exactly once.
        let mut e = 0u64;
        let r =
            c.x.compare_exchange(e, ZERO_FLAG, Ordering::SeqCst, Ordering::SeqCst);
        assert!(r.is_err());
        e = r.unwrap_err();
        assert_ne!(e & HELP_FLAG, 0);
        assert_ne!(c.x.swap(ZERO_FLAG, Ordering::SeqCst) & HELP_FLAG, 0);
        // Help flag cleared; nobody else can also claim it.
        assert_eq!(c.raw(), ZERO_FLAG);
    }

    #[test]
    fn increment_after_stuck_keeps_zero_interpretation() {
        let c = StickyCounter::new(1);
        assert!(c.decrement());
        // Stray increments below the flag bits do not unstick the counter.
        for _ in 0..1000 {
            assert!(!c.increment_if_not_zero());
        }
        assert_eq!(c.load(), 0);
    }

    fn concurrent_ownership_discipline<C: Counter + 'static>() {
        // Each thread repeatedly "clones" (increment) and "drops" (decrement)
        // a reference it owns; the main thread owns the initial reference.
        // Exactly one decrement across the whole run may return true, and it
        // must be the final one.
        for _ in 0..20 {
            let c = Arc::new(C::with_count(1));
            let zeroed = Arc::new(AtomicU64::new(0));
            let threads: Vec<_> = (0..8)
                .map(|_| {
                    let c = Arc::clone(&c);
                    let zeroed = Arc::clone(&zeroed);
                    std::thread::spawn(move || {
                        for _ in 0..1000 {
                            if c.increment_if_not_zero() && c.decrement() {
                                zeroed.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            // Main still owns its reference: nobody can have zeroed it.
            assert_eq!(zeroed.load(Ordering::SeqCst), 0);
            assert_eq!(c.load(), 1);
            assert!(c.decrement());
            assert_eq!(c.load(), 0);
            assert!(!c.increment_if_not_zero());
        }
    }

    #[test]
    fn concurrent_ownership_sticky() {
        concurrent_ownership_discipline::<StickyCounter>();
    }

    #[test]
    fn concurrent_ownership_cas() {
        concurrent_ownership_discipline::<CasCounter>();
    }

    #[test]
    fn racing_decrements_and_upgrades_unique_zero() {
        // P threads each own one reference and drop it while Q threads
        // spin upgrading. Exactly one true decrement must be observed, and
        // every successful upgrade must be matched by its own decrement.
        for _ in 0..20 {
            let p = 4u64;
            let c = Arc::new(StickyCounter::new(p));
            let zeroed = Arc::new(AtomicU64::new(0));
            let mut handles = Vec::new();
            for _ in 0..p {
                let c = Arc::clone(&c);
                let zeroed = Arc::clone(&zeroed);
                handles.push(std::thread::spawn(move || {
                    if c.decrement() {
                        zeroed.fetch_add(1, Ordering::SeqCst);
                    }
                }));
            }
            for _ in 0..4 {
                let c = Arc::clone(&c);
                let zeroed = Arc::clone(&zeroed);
                handles.push(std::thread::spawn(move || {
                    for _ in 0..100 {
                        if c.increment_if_not_zero() {
                            if c.decrement() {
                                zeroed.fetch_add(1, Ordering::SeqCst);
                            }
                        } else {
                            // Once zero, always zero.
                            assert_eq!(c.load(), 0);
                            assert!(!c.increment_if_not_zero());
                        }
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(
                zeroed.load(Ordering::SeqCst),
                1,
                "exactly one zeroing decrement"
            );
            assert_eq!(c.load(), 0);
        }
    }

    #[test]
    fn concurrent_loads_never_see_garbage() {
        // Loads racing with the transient-zero window must only ever report
        // either a plausible count or zero — never a flag-polluted value.
        for _ in 0..10 {
            let c = Arc::new(StickyCounter::new(2));
            let loader = {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        let v = c.load();
                        assert!(v <= 16, "load leaked flag bits: {v:#x}");
                    }
                })
            };
            let churner = {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        if c.increment_if_not_zero() {
                            c.decrement();
                        }
                    }
                })
            };
            loader.join().unwrap();
            churner.join().unwrap();
        }
    }
}
