//! Property tests: sticky and CAS-loop counters against a sequential model.

use proptest::prelude::*;
use sticky::{CasCounter, Counter, StickyCounter};

#[derive(Debug, Clone, Copy)]
enum Op {
    IncIfNotZero,
    Decrement,
    Load,
}

/// Sequential reference model of a sticky counter.
#[derive(Debug)]
struct Model {
    value: u64,
    stuck: bool,
}

impl Model {
    fn new(initial: u64) -> Self {
        Model {
            value: initial,
            stuck: false,
        }
    }

    fn inc_if_not_zero(&mut self) -> bool {
        if self.stuck {
            false
        } else {
            self.value += 1;
            true
        }
    }

    /// Caller guarantees an owned reference exists (value > 0).
    fn decrement(&mut self) -> bool {
        assert!(self.value > 0 && !self.stuck);
        self.value -= 1;
        if self.value == 0 {
            self.stuck = true;
            true
        } else {
            false
        }
    }

    fn load(&self) -> u64 {
        if self.stuck {
            0
        } else {
            self.value
        }
    }
}

fn run_against_model<C: Counter>(initial: u64, ops: &[Op]) {
    let c = C::with_count(initial);
    let mut m = Model::new(initial);
    for &op in ops {
        match op {
            Op::IncIfNotZero => {
                assert_eq!(c.increment_if_not_zero(), m.inc_if_not_zero());
            }
            Op::Decrement => {
                // Respect the ownership discipline: only decrement while the
                // model still holds references.
                if m.value > 0 && !m.stuck {
                    assert_eq!(c.decrement(), m.decrement());
                }
            }
            Op::Load => {
                assert_eq!(c.load(), m.load());
            }
        }
    }
    assert_eq!(c.load(), m.load());
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![Just(Op::IncIfNotZero), Just(Op::Decrement), Just(Op::Load),]
}

proptest! {
    #[test]
    fn sticky_matches_model(initial in 1u64..20, ops in proptest::collection::vec(op_strategy(), 0..400)) {
        run_against_model::<StickyCounter>(initial, &ops);
    }

    #[test]
    fn cas_matches_model(initial in 1u64..20, ops in proptest::collection::vec(op_strategy(), 0..400)) {
        run_against_model::<CasCounter>(initial, &ops);
    }

    /// Draining a counter to zero always yields exactly one `true` decrement,
    /// regardless of how many failed upgrades are interleaved.
    #[test]
    fn exactly_one_true_decrement(initial in 1u64..50) {
        let c = StickyCounter::new(initial);
        let mut trues = 0;
        for _ in 0..initial {
            if c.decrement() {
                trues += 1;
            }
            let _ = c.load();
        }
        prop_assert_eq!(trues, 1);
        prop_assert_eq!(c.load(), 0);
        prop_assert!(!c.increment_if_not_zero());
    }
}
