//! Benchmark harness reproducing the CDRC paper's evaluation methodology
//! (§5): timed multi-threaded workloads over the `lockfree` structures,
//! measuring throughput (Mop/s) and memory overhead ("extra nodes" — nodes
//! allocated but not yet freed, beyond the live working set).
//!
//! Environment knobs (all optional):
//!
//! * `BENCH_MS` — milliseconds per (structure, scheme, threads) cell
//!   (default 300; the paper runs seconds — raise for stabler numbers);
//! * `BENCH_THREADS` — comma-separated thread counts (default: a power-of-
//!   two sweep up to 2× the hardware parallelism, exercising the paper's
//!   oversubscribed regime);
//! * `BENCH_SAMPLE_MS` — memory sampling period (default 10);
//! * `GUARD_BATCH` — operations per guard re-acquisition in the worker
//!   loops (default 64; 1 degenerates to one critical section per
//!   operation, the pre-guard-API behaviour).
//!
//! The environment knobs are read once per run by the `run_*` entry points;
//! tests and embedders should call the `*_for` variants with explicit
//! durations instead of mutating the process environment.

#![warn(missing_docs)]

use smr::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use lockfree::{ConcurrentMap, ConcurrentQueue};
use smr::fault::{self, FaultKind, FaultPlan};

/// Operation mix for a map workload, in parts per hundred. Updates are half
/// inserts, half deletes; the remainder of `100 - update_pct - rq_pct` is
/// point lookups.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Keys drawn uniformly from `[0, key_range)` (the paper uses twice the
    /// initial size).
    pub key_range: u64,
    /// Initial size — prefilled with this many random keys.
    pub initial_size: u64,
    /// Percentage of update operations (half insert, half delete).
    pub update_pct: u32,
    /// Percentage of range queries.
    pub rq_pct: u32,
    /// Keys scanned per range query (`[k, k + rq_size)`).
    pub rq_size: u64,
}

impl Workload {
    /// The paper's point-operation workload: N initial keys, key range 2N,
    /// `update_pct`% updates, rest lookups.
    pub fn points(initial_size: u64, update_pct: u32) -> Self {
        Workload {
            key_range: initial_size * 2,
            initial_size,
            update_pct,
            rq_pct: 0,
            rq_size: 0,
        }
    }

    /// The Fig. 11 workload: 50% updates, 50% range queries of size 64 over
    /// a 100K-key tree (key range 200K).
    pub fn fig11() -> Self {
        Workload {
            key_range: 200_000,
            initial_size: 100_000,
            update_pct: 50,
            rq_pct: 50,
            rq_size: 64,
        }
    }
}

/// One measured cell.
#[derive(Debug, Clone)]
pub struct Row {
    /// Figure / experiment id.
    pub figure: String,
    /// Data structure name.
    pub structure: String,
    /// Scheme / series name (e.g. "EBR", "RC (EBR)").
    pub scheme: String,
    /// Worker thread count.
    pub threads: usize,
    /// Millions of completed operations per second.
    pub mops: f64,
    /// Mean of sampled (in-flight − workload live set) node counts.
    pub extra_nodes_avg: u64,
    /// Peak of the same.
    pub extra_nodes_peak: u64,
}

impl Row {
    /// CSV form (matches [`print_header`]).
    pub fn csv(&self) -> String {
        format!(
            "{},{},{},{},{:.3},{},{}",
            self.figure,
            self.structure,
            self.scheme,
            self.threads,
            self.mops,
            self.extra_nodes_avg,
            self.extra_nodes_peak
        )
    }
}

/// Prints the CSV header used by every bench binary.
pub fn print_header() {
    println!("figure,structure,scheme,threads,mops,extra_nodes_avg,extra_nodes_peak");
}

/// Milliseconds each cell runs for (`BENCH_MS`, default 300).
pub fn bench_millis() -> u64 {
    std::env::var("BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

/// Operations per guard re-acquisition in the worker loops
/// (`GUARD_BATCH`, default 64 — the paper's methodology: one critical
/// section amortized over a batch of operations).
pub fn guard_batch() -> usize {
    std::env::var("GUARD_BATCH")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(64)
}

fn sample_millis() -> u64 {
    std::env::var("BENCH_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// The thread counts to sweep (`BENCH_THREADS`, default: powers of two up
/// to 2× hardware parallelism — the tail exercises oversubscription as in
/// the paper).
pub fn thread_counts() -> Vec<usize> {
    if let Ok(v) = std::env::var("BENCH_THREADS") {
        return v
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|&n| n > 0)
            .collect();
    }
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut out = vec![1];
    let mut n = 2;
    while n < 2 * hw {
        out.push(n);
        n *= 2;
    }
    out.push(2 * hw);
    out.dedup();
    out
}

/// Prefills `map` with `spec.initial_size` distinct random keys.
pub fn prefill<M: ConcurrentMap<u64, u64>>(map: &M, spec: &Workload) {
    let mut rng = SmallRng::seed_from_u64(0x5EED);
    let mut inserted = 0;
    while inserted < spec.initial_size {
        let k = rng.gen_range(0..spec.key_range);
        if map.insert(k, k) {
            inserted += 1;
        }
    }
}

/// Runs `spec` over `map` with `threads` workers for the configured
/// (`BENCH_MS`) duration; returns (Mop/s, extra-nodes mean, extra-nodes
/// peak). See [`run_map_for`] for an explicit duration.
pub fn run_map<M: ConcurrentMap<u64, u64>>(
    map: &M,
    spec: &Workload,
    threads: usize,
) -> (f64, u64, u64) {
    run_map_for(map, spec, threads, Duration::from_millis(bench_millis()))
}

/// Runs `spec` over `map` with `threads` workers for `dur`; returns
/// (Mop/s, extra-nodes mean, extra-nodes peak).
///
/// Worker loops are *guard-batched*: each worker re-acquires an operation
/// guard ([`ConcurrentMap::pin`]) every [`guard_batch`] operations (default
/// 64, the paper's methodology), amortizing the scheme's per-critical-
/// section fence while still letting reclamation proceed between batches.
pub fn run_map_for<M: ConcurrentMap<u64, u64>>(
    map: &M,
    spec: &Workload,
    threads: usize,
    dur: Duration,
) -> (f64, u64, u64) {
    run_map_batched(map, spec, threads, dur, guard_batch())
}

/// As [`run_map_for`] with an explicit guard batch size (`batch` = 1 means
/// one critical section per operation — the guard-free wrappers' cost —
/// which the guard-API micro-benchmark compares against larger batches).
///
/// The map must already be prefilled with `spec.initial_size` keys. The
/// "extra nodes" samples read the structure's own
/// [`in_flight_nodes`](ConcurrentMap::in_flight_nodes) and subtract its
/// value at the start of the run — the prefilled structure's real node
/// population (trees allocate ~2 nodes per key, so `initial_size` itself
/// would be wrong). The counter is per structure: each structure meters its
/// own reclamation domain (private [`NodeStats`](lockfree::NodeStats) for
/// the manual variants), so the baseline is exactly this structure's live
/// set, and structures on *separate* domains may run concurrently on one
/// scheme without polluting each other's samples. (Structures left on a
/// scheme's global default domain still share that domain's counter —
/// build them with the `new_in`/`with_buckets_in` constructors for
/// isolation.)
pub fn run_map_batched<M: ConcurrentMap<u64, u64>>(
    map: &M,
    spec: &Workload,
    threads: usize,
    dur: Duration,
    batch: usize,
) -> (f64, u64, u64) {
    let batch = batch.max(1);
    let stop = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let barrier = Barrier::new(threads + 1);
    // The structure's node count right after prefill: live set plus any
    // not-yet-collected prefill garbage, all of it this structure's own.
    let live_set = map.in_flight_nodes();

    let (elapsed, sum, peak, samples) = std::thread::scope(|s| {
        for tid in 0..threads {
            let stop = &stop;
            let total_ops = &total_ops;
            let barrier = &barrier;
            let map = &map;
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xC0FFEE + tid as u64);
                barrier.wait();
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // One guard per batch: the per-section fence is paid
                    // once for `batch` operations (§3.4).
                    let guard = map.pin();
                    for _ in 0..batch {
                        let k = rng.gen_range(0..spec.key_range);
                        let dice = rng.gen_range(0..100u32);
                        if dice < spec.update_pct {
                            if dice % 2 == 0 {
                                map.insert_with(k, k, &guard);
                            } else {
                                map.remove_with(&k, &guard);
                            }
                        } else if dice < spec.update_pct + spec.rq_pct {
                            let hi = k.saturating_add(spec.rq_size);
                            map.range_with(&k, &hi, spec.rq_size as usize, &guard);
                        } else {
                            map.get_with(&k, &guard);
                        }
                        ops += 1;
                    }
                    drop(guard);
                }
                total_ops.fetch_add(ops, Ordering::Relaxed);
            });
        }
        // Sampler doubles as the timer.
        barrier.wait();
        let started = Instant::now();
        let tick = Duration::from_millis(sample_millis());
        let mut sum = 0u128;
        let mut peak = 0u64;
        let mut samples = 0u64;
        while started.elapsed() < dur {
            std::thread::sleep(tick);
            let extra = map.in_flight_nodes().saturating_sub(live_set);
            sum += extra as u128;
            peak = peak.max(extra);
            samples += 1;
        }
        stop.store(true, Ordering::Relaxed);
        let elapsed = started.elapsed();
        // Scope joins the workers on exit; total_ops is complete after.
        (elapsed, sum, peak, samples)
    });
    let mops = total_ops.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64() / 1.0e6;
    let avg = (sum / samples.max(1) as u128) as u64;
    (mops, avg, peak)
}

/// Runs the Fig. 12 workload for the configured (`BENCH_MS`) duration; see
/// [`run_queue_for`].
pub fn run_queue<Q: ConcurrentQueue<u64>>(queue: &Q, threads: usize) -> f64 {
    run_queue_for(queue, threads, Duration::from_millis(bench_millis()))
}

/// Runs the Fig. 12 workload for `dur`: each thread repeatedly pops an
/// element and reinserts it; the queue is seeded with one element per
/// thread. Returns Mop/s over the *measured* elapsed time (each pop+push
/// pair counts as two operations, matching the paper's "operations per
/// second").
///
/// Workers re-acquire an operation guard ([`ConcurrentQueue::pin`]) every
/// [`guard_batch`] operations, as in [`run_map_for`].
pub fn run_queue_for<Q: ConcurrentQueue<u64>>(queue: &Q, threads: usize, dur: Duration) -> f64 {
    run_queue_batched(queue, threads, dur, guard_batch())
}

/// As [`run_queue_for`] with an explicit guard batch size (in operations;
/// each pop+push pair is two). `batch <= 1` drives the guard-free wrappers
/// directly — one critical section per *operation*, two per pair — so it is
/// a faithful baseline for what unbatched callers pay.
pub fn run_queue_batched<Q: ConcurrentQueue<u64>>(
    queue: &Q,
    threads: usize,
    dur: Duration,
    batch: usize,
) -> f64 {
    for i in 0..threads as u64 {
        queue.enqueue(i);
    }
    let pairs_per_batch = (batch / 2).max(1);
    let unbatched = batch <= 1;
    let stop = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let barrier = Barrier::new(threads + 1);
    let elapsed = std::thread::scope(|s| {
        for _ in 0..threads {
            let stop = &stop;
            let total_ops = &total_ops;
            let barrier = &barrier;
            let queue = &queue;
            s.spawn(move || {
                barrier.wait();
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if unbatched {
                        loop {
                            if let Some(v) = queue.dequeue() {
                                queue.enqueue(v);
                                ops += 2;
                                break;
                            }
                        }
                    } else {
                        let guard = queue.pin();
                        for _ in 0..pairs_per_batch {
                            loop {
                                if let Some(v) = queue.dequeue_with(&guard) {
                                    queue.enqueue_with(v, &guard);
                                    ops += 2;
                                    break;
                                }
                            }
                        }
                        drop(guard);
                    }
                }
                total_ops.fetch_add(ops, Ordering::Relaxed);
            });
        }
        barrier.wait();
        let started = Instant::now();
        std::thread::sleep(dur);
        stop.store(true, Ordering::Relaxed);
        // Divide by the *measured* window, as `run_map` does: `sleep` can
        // overshoot `dur` arbitrarily on a loaded machine, and dividing by
        // the configured duration overstated throughput by that overshoot.
        started.elapsed()
        // Scope joins the workers on exit; total_ops is complete after.
    });
    total_ops.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64() / 1.0e6
}

/// Sub-bucket resolution of [`LatencyHistogram`]: 2^5 = 32 sub-buckets per
/// power of two, bounding the relative quantization error at 1/32 ≈ 3%.
const HIST_SUB_BITS: u32 = 5;
const HIST_SUB: usize = 1 << HIST_SUB_BITS;
/// Values below 2^6 land in exact unit buckets (the first two "rows");
/// above that, each power of two gets [`HIST_SUB`] log-spaced sub-buckets,
/// up to the full `u64` range.
const HIST_BUCKETS: usize = (64 - HIST_SUB_BITS as usize) * HIST_SUB;

/// HDR-style log-bucketed latency histogram: fixed footprint, O(1)
/// `record`, ≤ ~3% relative error on reported quantiles.
///
/// Values (nanoseconds, in the service bench) below 64 are counted
/// exactly; a value in `[2^m, 2^{m+1})` falls into one of 32 sub-buckets
/// of width `2^{m-5}`, so the bucket's upper edge — what
/// [`percentile`](Self::percentile) reports — overstates the true value by
/// at most one part in 32. This is the same bucketing HdrHistogram uses
/// with 5 significant-value bits, rebuilt here because the build
/// environment vendors no external crates.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; HIST_BUCKETS]>,
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram (~15 KiB of buckets).
    pub fn new() -> Self {
        LatencyHistogram {
            counts: Box::new([0u64; HIST_BUCKETS]),
            total: 0,
        }
    }

    #[inline]
    fn index(v: u64) -> usize {
        if v < (2 * HIST_SUB) as u64 {
            return v as usize;
        }
        let m = 63 - v.leading_zeros(); // v >= 64, so m >= 6
        let sub = (v >> (m - HIST_SUB_BITS)) as usize - HIST_SUB;
        (m as usize - (HIST_SUB_BITS as usize - 1)) * HIST_SUB + sub
    }

    /// Upper edge of bucket `i` — the value [`percentile`](Self::percentile)
    /// reports for samples in it.
    fn bucket_high(i: usize) -> u64 {
        if i < 2 * HIST_SUB {
            return i as u64;
        }
        let m = (i / HIST_SUB + HIST_SUB_BITS as usize - 1) as u32;
        let sub = (i % HIST_SUB) as u64;
        let width = 1u64 << (m - HIST_SUB_BITS);
        (HIST_SUB as u64 + sub) * width + (width - 1)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::index(v)] += 1;
        self.total += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Folds `other` into `self` (per-thread histograms merge after join).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }

    /// The value at quantile `p` (in percent, e.g. `99.9`): the smallest
    /// bucket upper edge such that at least `p`% of samples fall at or
    /// below it. Returns 0 on an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_high(i);
            }
        }
        Self::bucket_high(HIST_BUCKETS - 1)
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("p50", &self.percentile(50.0))
            .field("p99", &self.percentile(99.0))
            .field("p999", &self.percentile(99.9))
            .finish()
    }
}

/// Operation mix for the kv-store service workload, in parts per hundred.
/// Must sum to 100; the driver asserts it.
#[derive(Debug, Clone, Copy)]
pub struct ServiceMix {
    /// Percentage of point lookups.
    pub get_pct: u32,
    /// Percentage of inserts/overwrites (an insert that loses to a present
    /// key counts as a completed put — kv-store "upsert" semantics are
    /// approximated by insert-if-absent here, as in the paper's workloads).
    pub put_pct: u32,
    /// Percentage of deletes.
    pub del_pct: u32,
}

impl ServiceMix {
    /// A read-heavy cache-like mix: 90% get, 5% put, 5% delete.
    pub fn read_heavy() -> Self {
        ServiceMix {
            get_pct: 90,
            put_pct: 5,
            del_pct: 5,
        }
    }

    /// An update-heavy session-store mix: 50% get, 30% put, 20% delete.
    pub fn update_heavy() -> Self {
        ServiceMix {
            get_pct: 50,
            put_pct: 30,
            del_pct: 20,
        }
    }
}

/// One measured service-bench cell: throughput plus tail latency and the
/// garbage high-water mark.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Millions of completed operations per second.
    pub mops: f64,
    /// Completed operations.
    pub ops: u64,
    /// Median per-operation latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile latency, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile latency, nanoseconds.
    pub p999_ns: u64,
    /// Mean of sampled (in-flight − post-prefill baseline) node counts.
    pub garbage_avg: u64,
    /// Peak of the same — the garbage high-water mark.
    pub garbage_peak: u64,
}

/// Runs the kv-store service workload for the configured (`BENCH_MS`)
/// duration; see [`run_service_for`].
pub fn run_service<M: ConcurrentMap<u64, u64>>(
    map: &M,
    keys: u64,
    theta: f64,
    mix: ServiceMix,
    threads: usize,
) -> ServiceReport {
    run_service_for(
        map,
        keys,
        theta,
        mix,
        threads,
        Duration::from_millis(bench_millis()),
    )
}

/// Long-running kv-store driver: `threads` workers issue a
/// get/put/delete `mix` against `map` for `dur`, with keys drawn from a
/// zipfian distribution over `0..keys` at skew `theta` (0 = uniform, 0.99
/// = YCSB's heavy default). Every operation is individually timed into a
/// per-thread [`LatencyHistogram`]; histograms merge after join, so the
/// tails include any stall a worker actually experienced.
///
/// The map is prefilled here (every key present, so the steady state is
/// hit-dominated), and the garbage samples subtract the post-prefill
/// baseline, as in [`run_map_batched`]. Worker loops are guard-batched per
/// [`guard_batch`], but latency brackets each *operation*, not the batch.
pub fn run_service_for<M: ConcurrentMap<u64, u64>>(
    map: &M,
    keys: u64,
    theta: f64,
    mix: ServiceMix,
    threads: usize,
    dur: Duration,
) -> ServiceReport {
    assert_eq!(
        mix.get_pct + mix.put_pct + mix.del_pct,
        100,
        "service mix must sum to 100"
    );
    let batch = guard_batch();
    // One generator shared by every worker: construction is O(keys) and
    // sampling takes `&self`.
    let zipf = rand::distributions::Zipf::new(keys, theta);
    {
        let guard = map.pin();
        for k in 0..keys {
            map.insert_with(k, k, &guard);
        }
    }
    let baseline = map.in_flight_nodes();

    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(threads + 1);
    let (elapsed, hist, g_sum, g_peak, g_samples) = std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|tid| {
                let stop = &stop;
                let barrier = &barrier;
                let map = &map;
                let zipf = &zipf;
                s.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(0x5E12_71CE + tid as u64);
                    let mut hist = LatencyHistogram::new();
                    barrier.wait();
                    while !stop.load(Ordering::Relaxed) {
                        let guard = map.pin();
                        for _ in 0..batch {
                            let k = zipf.sample(&mut rng);
                            let dice = rng.gen_range(0..100u32);
                            let t0 = Instant::now();
                            if dice < mix.get_pct {
                                map.get_with(&k, &guard);
                            } else if dice < mix.get_pct + mix.put_pct {
                                map.insert_with(k, k, &guard);
                            } else {
                                map.remove_with(&k, &guard);
                            }
                            hist.record(t0.elapsed().as_nanos() as u64);
                        }
                        drop(guard);
                    }
                    hist
                })
            })
            .collect();
        // Sampler doubles as the timer, as in `run_map_batched`.
        barrier.wait();
        let started = Instant::now();
        let tick = Duration::from_millis(sample_millis());
        let mut g_sum = 0u128;
        let mut g_peak = 0u64;
        let mut g_samples = 0u64;
        while started.elapsed() < dur {
            std::thread::sleep(tick);
            let extra = map.in_flight_nodes().saturating_sub(baseline);
            g_sum += extra as u128;
            g_peak = g_peak.max(extra);
            g_samples += 1;
        }
        stop.store(true, Ordering::Relaxed);
        let elapsed = started.elapsed();
        let mut hist = LatencyHistogram::new();
        for w in workers {
            hist.merge(&w.join().expect("service worker panicked"));
        }
        (elapsed, hist, g_sum, g_peak, g_samples)
    });
    ServiceReport {
        mops: hist.count() as f64 / elapsed.as_secs_f64() / 1.0e6,
        ops: hist.count(),
        p50_ns: hist.percentile(50.0),
        p99_ns: hist.percentile(99.0),
        p999_ns: hist.percentile(99.9),
        garbage_avg: (g_sum / g_samples.max(1) as u128) as u64,
        garbage_peak: g_peak,
    }
}

// ---------------------------------------------------------------------
// Adversarial fault-injection driver
// ---------------------------------------------------------------------

/// One adversarial run's measurements: the garbage-over-time curve a scheme
/// exhibits while a fault is active, and what recovery achieved.
#[derive(Debug, Clone)]
pub struct AdversaryOutcome {
    /// Millions of completed writer operations per second over the run.
    pub mops: f64,
    /// `(milliseconds since start, extra nodes)` samples covering the whole
    /// run: pre-fault baseline, fault window, and post-recovery tail.
    pub curve: Vec<(u64, u64)>,
    /// Garbage high-water mark over the run.
    pub garbage_peak: u64,
    /// The last sample of the run — after recovery for recoverable faults.
    pub garbage_final: u64,
    /// Whether the dead victim's slot was reclaimed; `None` for faults that
    /// kill no thread.
    pub recovered: Option<bool>,
    /// Stalls injected during this run.
    pub stalls: u64,
    /// Scans delayed during this run.
    pub scans_delayed: u64,
}

/// Drives `writers` update threads against `map` while injecting `plan`,
/// sampling per-structure unreclaimed garbage over time.
///
/// Timeline: the plan is armed for the whole run; at `fault_at` the victim
/// thread is spawned (a stalled reader pins its section for `plan.stall`; a
/// dead-thread victim opens a section — after half-filling its decrement
/// batch, for [`FaultKind::DropMidBatch`] — then abandons its registry slot
/// and exits without unregistering). At `recover_at` the plan is disarmed
/// and, for dead-thread faults, the victim is joined — establishing the
/// happens-before edge `smr::reclaim_orphaned_slot` requires — and its slot
/// reclaimed through the registry reaper chain. Writers run until `total`.
///
/// The map is prefilled here ([`prefill`]); samples subtract the
/// post-prefill baseline as in [`run_map_batched`]. Faults are
/// process-global, so concurrent `run_adversarial` calls panic in
/// [`smr::fault::arm`] — run cells sequentially.
///
/// Recovery requires the map's reclamation to be reachable from the
/// registry's orphan reapers; the `cdrc` domains register themselves, so
/// use the reference-counted structures (manual structures' private engine
/// instances are not reaped).
pub fn run_adversarial<M: ConcurrentMap<u64, u64>>(
    map: &M,
    plan: FaultPlan,
    spec: &Workload,
    writers: usize,
    total: Duration,
    fault_at: Duration,
    recover_at: Duration,
) -> AdversaryOutcome {
    let batch = guard_batch();
    prefill(map, spec);
    let baseline = map.in_flight_nodes();
    let has_victim = matches!(
        plan.kind,
        FaultKind::StalledReader | FaultKind::DeadThreadInSection | FaultKind::DropMidBatch
    );
    let needs_reclaim = matches!(
        plan.kind,
        FaultKind::DeadThreadInSection | FaultKind::DropMidBatch
    );
    let stalls_before = fault::stalls_injected();
    let scans_before = fault::scans_delayed();

    let stop = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let barrier = Barrier::new(writers + 1);
    let (tx, rx) = std::sync::mpsc::channel::<smr::Tid>();

    let (elapsed, curve, peak, recovered) = std::thread::scope(|s| {
        for tid in 0..writers {
            let stop = &stop;
            let total_ops = &total_ops;
            let barrier = &barrier;
            let map = &map;
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0x0ADE_5A27 + tid as u64);
                barrier.wait();
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let guard = map.pin();
                    for _ in 0..batch {
                        let k = rng.gen_range(0..spec.key_range);
                        let dice = rng.gen_range(0..100u32);
                        if dice < spec.update_pct {
                            // Dice parity, not key parity: keying the
                            // insert/remove choice on `k` would drive every
                            // key to a fixed state after one pass and stop
                            // the churn the fault is supposed to strand.
                            if dice % 2 == 0 {
                                map.insert_with(k, k, &guard);
                            } else {
                                map.remove_with(&k, &guard);
                            }
                        } else {
                            map.get_with(&k, &guard);
                        }
                        ops += 1;
                    }
                    drop(guard);
                }
                total_ops.fetch_add(ops, Ordering::Relaxed);
            });
        }
        barrier.wait();
        // Armed only after the writers exist: arming is process-global and
        // panics on double-arm, so the scope must not outlive this run.
        let mut scope = Some(fault::arm(plan));
        let started = Instant::now();
        let tick = Duration::from_millis(sample_millis());
        let mut curve = Vec::new();
        let mut peak = 0u64;
        let mut victim = None;
        let mut recovered = None;
        while started.elapsed() < total {
            std::thread::sleep(tick);
            let extra = map.in_flight_nodes().saturating_sub(baseline);
            curve.push((started.elapsed().as_millis() as u64, extra));
            peak = peak.max(extra);
            if victim.is_none() && has_victim && started.elapsed() >= fault_at {
                let tx = tx.clone();
                let map = &map;
                victim = Some(s.spawn(move || {
                    let t = smr::current_tid();
                    match plan.kind {
                        FaultKind::StalledReader => {
                            // The stall fires inside `pin` (after the
                            // announcement), pinning the section for
                            // `plan.stall`; the victim then exits cleanly.
                            fault::designate_victim(t);
                            drop(map.pin());
                        }
                        FaultKind::DeadThreadInSection | FaultKind::DropMidBatch => {
                            let guard = map.pin();
                            if plan.kind == FaultKind::DropMidBatch {
                                // Half-fill the deferred-decrement batch:
                                // each remove of a present key displaces one
                                // reference into it.
                                for k in 0..24u64 {
                                    map.insert_with(k, k, &guard);
                                    map.remove_with(&k, &guard);
                                }
                            }
                            // Simulated SIGKILL: the section stays open, the
                            // slot stays claimed, no exit callback runs.
                            std::mem::forget(guard);
                            let _ = tx.send(smr::abandon_current_slot());
                        }
                        _ => {}
                    }
                }));
            }
            if scope.is_some() && started.elapsed() >= recover_at {
                scope.take();
                if needs_reclaim {
                    if let Some(h) = victim.take() {
                        let _ = h.join();
                    }
                    recovered = Some(match rx.try_recv() {
                        // Safety: the victim was just joined, so its death
                        // happened-before this call and its slot can no
                        // longer be touched by its owner.
                        Ok(dead) => unsafe { smr::reclaim_orphaned_slot(dead) },
                        Err(_) => false,
                    });
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
        let elapsed = started.elapsed();
        (elapsed, curve, peak, recovered)
        // Scope joins writers (and a still-running stalled victim) on exit.
    });
    AdversaryOutcome {
        mops: total_ops.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64() / 1.0e6,
        garbage_peak: peak,
        garbage_final: curve.last().map(|&(_, g)| g).unwrap_or(0),
        curve,
        recovered,
        stalls: fault::stalls_injected() - stalls_before,
        scans_delayed: fault::scans_delayed() - scans_before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockfree::manual::DoubleLinkQueue;
    use lockfree::manual::HarrisMichaelList;
    use smr::Ebr;

    #[test]
    fn thread_counts_nonempty_and_sorted_unique() {
        let tc = thread_counts();
        assert!(!tc.is_empty());
        assert!(tc.iter().all(|&n| n >= 1));
    }

    #[test]
    fn prefill_reaches_target() {
        let spec = Workload::points(100, 10);
        let list: HarrisMichaelList<u64, u64, Ebr> = HarrisMichaelList::new();
        prefill(&list, &spec);
        assert_eq!(list.iter_count(), 100);
    }

    // Explicit durations throughout: mutating `BENCH_MS` via `set_var`
    // raced with sibling tests under the parallel test runner.
    #[test]
    fn run_map_produces_throughput() {
        let spec = Workload::points(64, 20);
        let list: HarrisMichaelList<u64, u64, Ebr> = HarrisMichaelList::new();
        prefill(&list, &spec);
        let (mops, _, _) = run_map_for(&list, &spec, 2, Duration::from_millis(50));
        assert!(mops > 0.0);
    }

    #[test]
    fn run_queue_produces_throughput() {
        let q: DoubleLinkQueue<u64, Ebr> = DoubleLinkQueue::new();
        let mops = run_queue_for(&q, 2, Duration::from_millis(50));
        assert!(mops > 0.0);
    }

    #[test]
    fn guard_batched_and_guard_free_results_agree() {
        // Drive the same structure through both call styles and check the
        // final contents agree with a sequential model.
        let list: HarrisMichaelList<u64, u64, Ebr> = HarrisMichaelList::new();
        let guard = list.pin();
        for k in 0..128u64 {
            assert!(list.insert_with(k, k, &guard));
        }
        drop(guard);
        for k in 0..128u64 {
            if k % 2 == 0 {
                assert!(list.remove(&k)); // guard-free wrapper
            }
        }
        let guard = list.pin();
        for k in 0..128u64 {
            let expect = if k % 2 == 0 { None } else { Some(k) };
            assert_eq!(list.get_with(&k, &guard), expect);
        }
    }

    #[test]
    fn histogram_is_exact_below_64() {
        let mut h = LatencyHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.percentile(100.0), 63);
        assert_eq!(h.percentile(50.0), 31);
    }

    #[test]
    fn histogram_error_is_bounded() {
        // Every reported edge must overstate its sample by at most 1/32.
        let mut h = LatencyHistogram::new();
        for shift in 6..40u64 {
            let v = (1u64 << shift) + (1 << (shift - 2));
            let mut one = LatencyHistogram::new();
            one.record(v);
            let got = one.percentile(100.0);
            assert!(got >= v, "edge below the sample: {got} < {v}");
            assert!(
                (got - v) as f64 <= v as f64 / 32.0,
                "error beyond 1/32 at {v}: {got}"
            );
            h.record(v);
        }
        assert_eq!(h.count(), 34);
    }

    #[test]
    fn histogram_merge_and_percentiles() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in 1..=1000u64 {
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        let p50 = a.percentile(50.0);
        assert!((480..=540).contains(&p50), "p50 = {p50}");
        let p99 = a.percentile(99.0);
        assert!((980..=1024).contains(&p99), "p99 = {p99}");
        assert_eq!(a.percentile(50.0), p50, "percentile is pure");
        assert_eq!(LatencyHistogram::new().percentile(99.0), 0);
    }

    #[test]
    fn run_service_produces_latencies() {
        let map: lockfree::manual::ResizableHashMap<u64, u64, Ebr> =
            lockfree::manual::ResizableHashMap::new();
        let r = run_service_for(
            &map,
            256,
            0.99,
            ServiceMix::update_heavy(),
            2,
            Duration::from_millis(50),
        );
        assert!(r.mops > 0.0, "no throughput");
        assert!(r.ops > 0, "empty histogram");
        assert!(
            r.p50_ns <= r.p99_ns && r.p99_ns <= r.p999_ns,
            "tails ordered"
        );
        assert!(map.buckets() > 1, "service prefill grew the table");
    }

    /// One test exercises both adversarial scenarios *sequentially*: fault
    /// plans are process-global and `fault::arm` panics on double-arm, so a
    /// second `run_adversarial` test in this binary would race it.
    #[test]
    fn run_adversarial_smoke() {
        use cdrc::{DomainRef, EbrScheme};
        use lockfree::rc::RcMichaelHashMap;

        let spec = Workload::points(128, 100);
        // Stalled reader: the victim pins its section for 60ms mid-run.
        let map: RcMichaelHashMap<u64, u64, EbrScheme> =
            RcMichaelHashMap::with_buckets_in(16, DomainRef::new());
        let out = run_adversarial(
            &map,
            FaultPlan::stalled_reader(Duration::from_millis(60)),
            &spec,
            2,
            Duration::from_millis(200),
            Duration::from_millis(40),
            Duration::from_millis(150),
        );
        assert!(out.mops > 0.0, "writers made no progress under stall");
        assert!(!out.curve.is_empty(), "no garbage samples");
        assert_eq!(out.stalls, 1, "exactly one stall should fire");
        assert_eq!(out.recovered, None, "stall kills no thread");

        // Dead thread in section: the victim's slot must be reclaimed.
        let map: RcMichaelHashMap<u64, u64, EbrScheme> =
            RcMichaelHashMap::with_buckets_in(16, DomainRef::new());
        let out = run_adversarial(
            &map,
            FaultPlan::dead_thread_in_section(),
            &spec,
            2,
            Duration::from_millis(200),
            Duration::from_millis(40),
            Duration::from_millis(120),
        );
        assert_eq!(out.recovered, Some(true), "orphaned slot not reclaimed");
        assert!(out.mops > 0.0);
    }

    #[test]
    fn workload_constructors() {
        let w = Workload::points(1000, 10);
        assert_eq!(w.key_range, 2000);
        assert_eq!(w.rq_pct, 0);
        let f = Workload::fig11();
        assert_eq!(f.update_pct + f.rq_pct, 100);
        assert_eq!(f.rq_size, 64);
    }
}
