//! Quickstart: the reference-counted pointer family in five minutes.
//!
//! Run with: `cargo run --release --example quickstart`

use cdrc::{AtomicSharedPtr, EbrScheme, Scheme, SharedPtr};

/// Pick a reclamation engine by type alias: EBR here — the paper's fastest.
/// Swap in `IbrScheme`, `HyalineScheme` or `HpScheme` and nothing else
/// changes.
type S = EbrScheme;

#[derive(Debug)]
struct Config {
    version: u64,
    greeting: String,
}

fn main() {
    // SharedPtr is an Arc-like owned strong reference, reclaimed through
    // deferred reference counting instead of immediate frees.
    let initial: SharedPtr<Config, S> = SharedPtr::new(Config {
        version: 1,
        greeting: "hello".into(),
    });

    // AtomicSharedPtr is a mutable shared slot — here, a hot-swappable
    // global configuration.
    let current: AtomicSharedPtr<Config, S> = AtomicSharedPtr::new(initial);

    // Readers on many threads take *snapshots*: protected views that do not
    // touch the reference count on the common path, which is what makes
    // reads as fast as manual reclamation (paper §3.4).
    std::thread::scope(|scope| {
        for reader in 0..4 {
            let current = &current;
            scope.spawn(move || {
                let domain = S::global_domain();
                for _ in 0..100_000 {
                    // Snapshots live inside a critical section.
                    let cs = domain.cs();
                    let snap = current.get_snapshot(&cs);
                    let cfg = snap.as_ref().expect("always set");
                    assert!(!cfg.greeting.is_empty());
                    std::hint::black_box(cfg.version);
                }
                println!("reader {reader} done");
            });
        }
        // One writer hot-swaps the config. The old versions are reclaimed
        // automatically once the last reader snapshot lets go.
        scope.spawn(|| {
            for v in 2..100u64 {
                current.store(SharedPtr::new(Config {
                    version: v,
                    greeting: format!("hello v{v}"),
                }));
            }
            println!("writer done");
        });
    });

    // Owned references can be cloned/shipped across threads like Arc.
    let last = current.load();
    println!(
        "final config: version={} greeting={:?}",
        last.as_ref().unwrap().version,
        last.as_ref().unwrap().greeting
    );

    // Weak pointers break cycles; upgrading is wait-free (sticky counter).
    let weak = last.downgrade();
    drop(last);
    drop(current);
    S::global_domain().process_deferred(smr::current_tid());
    assert!(
        weak.upgrade().is_none(),
        "config collected once unreachable"
    );
    println!("weak pointer observed collection — no leaks");
}
