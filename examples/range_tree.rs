//! The paper's motivating workload (Fig. 11): a concurrent ordered map with
//! point updates and range scans, on the Natarajan-Mittal tree.
//!
//! Run with: `cargo run --release --example range_tree`
//!
//! Every pointer in the tree is a `cdrc` reference-counted pointer — there
//! is not a single `retire` call in the data structure, yet memory is
//! reclaimed promptly (watch the in-flight counter at the end).

use cdrc::{EbrScheme, Scheme};
use lockfree::rc::RcNatarajanMittalTree;
use lockfree::ConcurrentMap;

type S = EbrScheme;

fn main() {
    let tree: RcNatarajanMittalTree<u64, u64, S> = RcNatarajanMittalTree::new();
    const KEYS: u64 = 20_000;

    // Prefill half the key range.
    for k in (0..KEYS).step_by(2) {
        tree.insert(k, k * 10);
    }
    println!("prefilled {} keys", KEYS / 2);

    std::thread::scope(|scope| {
        // Updaters: insert/delete random keys.
        for t in 0..3u64 {
            let tree = &tree;
            scope.spawn(move || {
                let mut state = 0x9E3779B97F4A7C15u64.wrapping_mul(t + 1);
                let mut inserted = 0u32;
                let mut removed = 0u32;
                for _ in 0..50_000 {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let k = (state >> 33) % KEYS;
                    if state.is_multiple_of(2) {
                        inserted += tree.insert(k, k * 10) as u32;
                    } else {
                        removed += tree.remove(&k) as u32;
                    }
                }
                println!("updater {t}: {inserted} inserts, {removed} removes");
            });
        }
        // Scanners: range queries of size 64, as in Fig. 11 — batched 16
        // scans per guard so the section fence is paid once per batch, not
        // once per scan.
        for t in 0..3u64 {
            let tree = &tree;
            scope.spawn(move || {
                let mut state = 0xD1B54A32D192ED03u64.wrapping_mul(t + 1);
                let mut total = 0usize;
                for _ in 0..125 {
                    let guard = tree.pin();
                    for _ in 0..16 {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let k = (state >> 33) % KEYS;
                        total += tree.range_with(&k, &(k + 64), 64, &guard).unwrap();
                    }
                    drop(guard);
                }
                println!("scanner {t}: saw {total} keys across 2000 scans");
            });
        }
    });

    // Spot-check consistency: every value is key*10.
    for k in 0..KEYS {
        if let Some(v) = tree.get(&k) {
            assert_eq!(v, k * 10);
        }
    }
    drop(tree);
    // Orderly shutdown: all worker threads are joined, so we may drain the
    // deferred work parked in their (now recycled) thread slots too.
    // Safety: no other thread is using this domain anymore.
    unsafe { S::global_domain().drain_and_apply_all(smr::current_tid()) };
    println!(
        "tree dropped; control blocks still in flight: {}",
        S::global_domain().in_flight()
    );
}
