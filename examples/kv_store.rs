//! A miniature concurrent key-value store on the *resizable*
//! (split-ordered) hash table, with the same code running over all four
//! reclamation engines.
//!
//! Run with: `cargo run --release --example kv_store`
//!
//! Demonstrates the paper's central claim from the user's chair: the
//! *automatic* table is a drop-in replacement for the *manual* one — same
//! algorithm, same interface — with the manual version's retire/eject
//! chores gone. The final section shows **reclamation domains**: two
//! stores on one scheme with private domains run concurrently with exact
//! per-store "in flight" metrics, while a third pair deliberately shares
//! one domain and meters jointly.

use cdrc::{DomainRef, EbrScheme, HpScheme, HyalineScheme, IbrScheme};
use lockfree::manual::ResizableHashMap;
use lockfree::rc::RcResizableHashMap;
use lockfree::ConcurrentMap;
use std::time::Instant;

fn drive<M: ConcurrentMap<u64, u64>>(store: &M, label: &str) {
    const OPS: u64 = 60_000;
    const BATCH: u64 = 64;
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let store = &store;
            scope.spawn(move || {
                let mut state = t.wrapping_mul(0xA076_1D64_78BD_642F) | 1;
                let mut i = 0u64;
                // Guard-batched loop: one `pin` per 64 operations amortizes
                // the scheme's per-critical-section fence (paper §3.4) —
                // the guard-free calls would open a section per operation.
                while i < OPS {
                    let guard = store.pin();
                    for _ in 0..BATCH.min(OPS - i) {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let k = (state >> 33) % 4096;
                        match i % 10 {
                            0 => {
                                store.insert_with(k, k * 3, &guard);
                            }
                            1 => {
                                store.remove_with(&k, &guard);
                            }
                            _ => {
                                if let Some(v) = store.get_with(&k, &guard) {
                                    assert_eq!(v, k * 3);
                                }
                            }
                        }
                        i += 1;
                    }
                    drop(guard); // reclamation catches up between batches
                }
            });
        }
    });
    println!(
        "{label:<22} {:>8.1} kops/s",
        (4 * OPS) as f64 / started.elapsed().as_secs_f64() / 1e3
    );
}

fn main() {
    // Every store below starts at a single bucket and grows itself to fit
    // the working set — no capacity guess at construction.
    println!("-- automatic (reference counted), one engine per run --");
    drive(
        &RcResizableHashMap::<u64, u64, EbrScheme>::new(),
        "RC (EBR)",
    );
    drive(
        &RcResizableHashMap::<u64, u64, IbrScheme>::new(),
        "RC (IBR)",
    );
    drive(&RcResizableHashMap::<u64, u64, HpScheme>::new(), "RC (HP)");
    drive(
        &RcResizableHashMap::<u64, u64, HyalineScheme>::new(),
        "RC (Hyaline)",
    );

    println!("-- manual (retire/eject by hand inside the structure) --");
    drive(&ResizableHashMap::<u64, u64, smr::Ebr>::new(), "manual EBR");
    drive(&ResizableHashMap::<u64, u64, smr::Hp>::new(), "manual HP");

    // ------------------------------------------------------------------
    // Reclamation domains: isolate or share, per structure.
    // ------------------------------------------------------------------
    println!("-- instance domains: two EBR stores, private vs shared --");
    let t = smr::current_tid();

    // Private domains: each store meters exactly its own nodes, and one
    // store's open guards never pin the other's garbage — even though both
    // run on the same scheme in the same process.
    let users_domain: DomainRef<EbrScheme> = DomainRef::new();
    let sessions_domain: DomainRef<EbrScheme> = DomainRef::new();
    let users = RcResizableHashMap::<u64, u64, EbrScheme>::new_in(users_domain.clone());
    let sessions = RcResizableHashMap::<u64, u64, EbrScheme>::new_in(sessions_domain.clone());
    std::thread::scope(|scope| {
        scope.spawn(|| drive(&users, "users (own domain)"));
        scope.spawn(|| drive(&sessions, "sessions (own domain)"));
    });
    // Worker threads are joined: drain their slots' deferred work too.
    // Safety: each domain is private to this example and nobody else is
    // using it anymore.
    unsafe {
        users_domain.drain_and_apply_all(t);
        sessions_domain.drain_and_apply_all(t);
    }
    println!(
        "users in flight: {}   sessions in flight: {}   (exact, no cross-pollution)",
        users.in_flight_nodes(),
        sessions.in_flight_nodes()
    );

    // Shared domain: a cache and its index reclaim — and are metered —
    // together; one guard covers operations on both.
    let shared: DomainRef<EbrScheme> = DomainRef::new();
    let cache = RcResizableHashMap::<u64, u64, EbrScheme>::new_in(shared.clone());
    let index = RcResizableHashMap::<u64, u64, EbrScheme>::new_in(shared.clone());
    let guard = cache.pin(); // same domain: also covers `index`
    for k in 0..1000u64 {
        cache.insert_with(k, k * 3, &guard);
        index.insert_with(k * 3, k, &guard);
    }
    drop(guard);
    shared.process_deferred(t);
    println!(
        "cache+index shared domain in flight: {} (joint metric by choice)",
        shared.in_flight()
    );

    drop((users, sessions, cache, index));
    // Structures flush their domains on drop; with the worker slots drained
    // above, every private domain balances exactly.
    assert_eq!(users_domain.allocated(), users_domain.freed());
    assert_eq!(sessions_domain.allocated(), sessions_domain.freed());
    assert_eq!(shared.allocated(), shared.freed());
    println!("all instance domains balanced (allocated == freed) — no leaks");
}
