//! A miniature concurrent key-value store on the Michael hash table, with
//! the same code running over all four reclamation engines.
//!
//! Run with: `cargo run --release --example kv_store`
//!
//! Demonstrates the paper's central claim from the user's chair: the
//! *automatic* table is a drop-in replacement for the *manual* one — same
//! algorithm, same interface — with the manual version's retire/eject
//! chores gone.

use cdrc::{EbrScheme, HpScheme, HyalineScheme, IbrScheme, Scheme};
use lockfree::manual::MichaelHashMap;
use lockfree::rc::RcMichaelHashMap;
use lockfree::ConcurrentMap;
use std::time::Instant;

fn drive<M: ConcurrentMap<u64, u64>>(store: &M, label: &str) {
    const OPS: u64 = 60_000;
    const BATCH: u64 = 64;
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let store = &store;
            scope.spawn(move || {
                let mut state = t.wrapping_mul(0xA076_1D64_78BD_642F) | 1;
                let mut i = 0u64;
                // Guard-batched loop: one `pin` per 64 operations amortizes
                // the scheme's per-critical-section fence (paper §3.4) —
                // the guard-free calls would open a section per operation.
                while i < OPS {
                    let guard = store.pin();
                    for _ in 0..BATCH.min(OPS - i) {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let k = (state >> 33) % 4096;
                        match i % 10 {
                            0 => {
                                store.insert_with(k, k * 3, &guard);
                            }
                            1 => {
                                store.remove_with(&k, &guard);
                            }
                            _ => {
                                if let Some(v) = store.get_with(&k, &guard) {
                                    assert_eq!(v, k * 3);
                                }
                            }
                        }
                        i += 1;
                    }
                    drop(guard); // reclamation catches up between batches
                }
            });
        }
    });
    println!(
        "{label:<22} {:>8.1} kops/s",
        (4 * OPS) as f64 / started.elapsed().as_secs_f64() / 1e3
    );
}

fn main() {
    println!("-- automatic (reference counted), one engine per run --");
    drive(
        &RcMichaelHashMap::<u64, u64, EbrScheme>::with_buckets(4096),
        "RC (EBR)",
    );
    drive(
        &RcMichaelHashMap::<u64, u64, IbrScheme>::with_buckets(4096),
        "RC (IBR)",
    );
    drive(
        &RcMichaelHashMap::<u64, u64, HpScheme>::with_buckets(4096),
        "RC (HP)",
    );
    drive(
        &RcMichaelHashMap::<u64, u64, HyalineScheme>::with_buckets(4096),
        "RC (Hyaline)",
    );

    println!("-- manual (retire/eject by hand inside the structure) --");
    drive(
        &MichaelHashMap::<u64, u64, smr::Ebr>::with_buckets(4096),
        "manual EBR",
    );
    drive(
        &MichaelHashMap::<u64, u64, smr::Hp>::with_buckets(4096),
        "manual HP",
    );

    // All worker threads are joined: drain deferred work from every slot.
    // Safety: no other thread is using the domain anymore.
    unsafe { EbrScheme::global_domain().drain_and_apply_all(smr::current_tid()) };
    println!(
        "EBR domain in flight after settle: {}",
        EbrScheme::global_domain().in_flight()
    );
}
