//! The paper's Fig. 10 in action: a doubly-linked queue whose back edges
//! are atomic *weak* pointers, so the prev/next cycle cannot leak.
//!
//! Run with: `cargo run --release --example weak_queue`
//!
//! Also demonstrates the weak-pointer API directly: upgrade, expiry, and
//! weak snapshots that stay readable while an object expires.

use cdrc::{AtomicWeakPtr, HpScheme, Scheme, SharedPtr};
use lockfree::rc::RcDoubleLinkQueue;
use lockfree::ConcurrentQueue;

// The paper powers the Fig. 12 queue with the hazard-pointer engine.
type S = HpScheme;

fn queue_demo() {
    let queue: RcDoubleLinkQueue<u64, S> = RcDoubleLinkQueue::new();
    let threads = 4u64;
    for i in 0..threads {
        queue.enqueue(i);
    }
    // Fig. 12's workload: pop one element, reinsert it, repeat — batched 32
    // pairs per full (weak) guard, amortizing all three per-section fences
    // (strong + weak + dispose) the weak-edge queue pays.
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let queue = &queue;
            scope.spawn(move || {
                for _ in 0..(50_000 / 32) {
                    let guard = queue.pin();
                    for _ in 0..32 {
                        loop {
                            if let Some(v) = queue.dequeue_with(&guard) {
                                queue.enqueue_with(v, &guard);
                                break;
                            }
                        }
                    }
                    drop(guard);
                }
            });
        }
    });
    let mut drained = Vec::new();
    while let Some(v) = queue.dequeue() {
        drained.push(v);
    }
    drained.sort_unstable();
    assert_eq!(drained, (0..threads).collect::<Vec<_>>());
    println!("queue conserved all {threads} elements through ~200k pop/push pairs");
}

fn weak_api_demo() {
    struct Sensor {
        id: u32,
        reading: f64,
    }
    let live: SharedPtr<Sensor, S> = SharedPtr::new(Sensor {
        id: 7,
        reading: 21.5,
    });
    // A registry slot that must not keep the sensor alive:
    let registry: AtomicWeakPtr<Sensor, S> = AtomicWeakPtr::null();
    registry.store(&live.downgrade());

    // While the sensor is alive, loads upgrade fine.
    let w = registry.load();
    assert_eq!(w.upgrade().map(|p| p.as_ref().unwrap().id), Some(7));

    // A weak snapshot can outlive the last strong reference and is still
    // readable — the object is disposed only after the snapshot drops.
    {
        let cs = S::global_domain().weak_cs();
        let snap = registry.get_snapshot(&cs);
        drop(live);
        let s = snap.as_ref().expect("still readable under snapshot");
        println!("sensor {} read {:.1} after expiry", s.id, s.reading);
        assert!(snap.expired());
        assert!(snap.try_promote().is_none(), "cannot resurrect");
    }
    S::global_domain().process_deferred(smr::current_tid());
    assert!(registry.load().upgrade().is_none());
    println!("registry slot expired cleanly — no leak, no dangling read");
}

fn main() {
    queue_demo();
    weak_api_demo();
}
