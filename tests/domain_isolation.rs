//! Domain isolation: two structures on the *same scheme* with separate
//! reclamation domains must not observe each other at all.
//!
//! Before instance-scoped domains, every RC structure on a scheme shared
//! `Scheme::global_domain()`: the "extra nodes" metric was polluted across
//! structures, and — worse for the paper's memory story — an open critical
//! section on one structure pinned the *other* structure's garbage (region
//! schemes protect everything retired during a section). These tests assert
//! the isolation properties directly, for all four schemes:
//!
//! 1. each structure reports exactly its own in-flight nodes;
//! 2. an open guard on one structure does not pin reclamation on a sibling;
//! 3. after teardown, every domain satisfies `allocated() == freed()`;
//! 4. concurrent churn on sibling structures keeps all of the above true.
//!
//! Fresh domains per test mean no cross-test serialization mutex is needed —
//! which is itself the feature under test.

use std::sync::Arc;

use cdrc::{DomainRef, EbrScheme, HpScheme, HyalineScheme, IbrScheme, Scheme};
use lockfree::rc::{
    RcDoubleLinkQueue, RcHarrisMichaelList, RcMichaelHashMap, RcNatarajanMittalTree,
};
use lockfree::{ConcurrentMap, ConcurrentQueue};

fn settle<S: Scheme>(d: &DomainRef<S>) {
    d.process_deferred(smr::current_tid());
}

/// Drains a domain after multi-threaded use (worker threads joined): their
/// retired lists live in per-slot state only `drain_and_apply_all` reaches.
fn drain<S: Scheme>(d: &DomainRef<S>) {
    // Safety: callers join every worker thread first, and each test owns
    // its private domains, so nobody else is using them.
    unsafe { d.drain_and_apply_all(smr::current_tid()) };
}

// ---------------------------------------------------------------------
// 1. Exact per-structure metric.
// ---------------------------------------------------------------------

fn exact_metric_two_lists<S: Scheme>() {
    let da: DomainRef<S> = DomainRef::new();
    let db: DomainRef<S> = DomainRef::new();
    let a: RcHarrisMichaelList<u64, u64, S> = RcHarrisMichaelList::new_in(da.clone());
    let b: RcHarrisMichaelList<u64, u64, S> = RcHarrisMichaelList::new_in(db.clone());

    for k in 0..100u64 {
        assert!(a.insert(k, k));
    }
    for k in 0..40u64 {
        assert!(b.insert(k, k));
    }
    settle(&da);
    settle(&db);
    assert_eq!(a.in_flight_nodes(), 100, "A meters exactly its own nodes");
    assert_eq!(b.in_flight_nodes(), 40, "B meters exactly its own nodes");

    // Churn on A must not move B's metric (and vice versa).
    for k in 0..50u64 {
        assert!(a.remove(&k));
    }
    settle(&da);
    assert_eq!(a.in_flight_nodes(), 50);
    assert_eq!(b.in_flight_nodes(), 40, "B unchanged by A's churn");

    drop(a);
    drop(b);
    assert_eq!(da.allocated(), da.freed(), "A's domain balances on drop");
    assert_eq!(db.allocated(), db.freed(), "B's domain balances on drop");
    assert_eq!(da.allocated(), 100);
    assert_eq!(db.allocated(), 40);
}

#[test]
fn exact_metric_two_lists_all_schemes() {
    exact_metric_two_lists::<EbrScheme>();
    exact_metric_two_lists::<IbrScheme>();
    exact_metric_two_lists::<HpScheme>();
    exact_metric_two_lists::<HyalineScheme>();
}

// ---------------------------------------------------------------------
// 2. An open guard on one structure does not pin the sibling's garbage.
//    (This is the property the global domain could not provide: a region
//    scheme's section pins everything retired into the same domain.)
// ---------------------------------------------------------------------

fn open_guard_does_not_pin_sibling<S: Scheme>() {
    let da: DomainRef<S> = DomainRef::new();
    let db: DomainRef<S> = DomainRef::new();
    let a: RcHarrisMichaelList<u64, u64, S> = RcHarrisMichaelList::new_in(da.clone());
    let b: RcHarrisMichaelList<u64, u64, S> = RcHarrisMichaelList::new_in(db.clone());
    assert!(a.insert(1, 1));

    // Hold A's section open (with a live operation on it for realism)...
    let guard = a.pin();
    assert_eq!(a.get_with(&1, &guard), Some(1));

    // ...while B churns through a full insert+remove cycle and settles.
    for k in 0..200u64 {
        assert!(b.insert(k, k));
    }
    for k in 0..200u64 {
        assert!(b.remove(&k));
    }
    settle(&db);
    assert_eq!(
        b.in_flight_nodes(),
        0,
        "A's open section must not pin B's reclamation ({})",
        S::scheme_name()
    );

    drop(guard);
    drop(a);
    drop(b);
    assert_eq!(da.allocated(), da.freed());
    assert_eq!(db.allocated(), db.freed());
}

#[test]
fn open_guard_does_not_pin_sibling_all_schemes() {
    open_guard_does_not_pin_sibling::<EbrScheme>();
    open_guard_does_not_pin_sibling::<IbrScheme>();
    open_guard_does_not_pin_sibling::<HpScheme>();
    open_guard_does_not_pin_sibling::<HyalineScheme>();
}

// ---------------------------------------------------------------------
// 3. Sibling epoch clocks are independent: traffic on one domain does not
//    advance the other's clock (epoch advancement was one of the shared
//    pressures the global domain leaked between structures).
// ---------------------------------------------------------------------

fn epochs_do_not_cross_advance<S: Scheme>() {
    let da: DomainRef<S> = DomainRef::new();
    let db: DomainRef<S> = DomainRef::new();
    let a: RcHarrisMichaelList<u64, u64, S> = RcHarrisMichaelList::new_in(da.clone());
    let _b: RcHarrisMichaelList<u64, u64, S> = RcHarrisMichaelList::new_in(db.clone());
    let epoch_b_before = db.epoch();
    for k in 0..500u64 {
        a.insert(k, k);
    }
    assert_eq!(
        db.epoch(),
        epoch_b_before,
        "allocations in A must not advance B's epoch clock"
    );
}

#[test]
fn epochs_do_not_cross_advance_all_schemes() {
    epochs_do_not_cross_advance::<EbrScheme>();
    epochs_do_not_cross_advance::<IbrScheme>();
    epochs_do_not_cross_advance::<HpScheme>();
    epochs_do_not_cross_advance::<HyalineScheme>();
}

// ---------------------------------------------------------------------
// 4. Concurrent churn on two same-scheme structures, each on its own
//    domain: workers hold guards on both structures in interleaved
//    batches; afterwards each domain balances independently.
// ---------------------------------------------------------------------

fn concurrent_churn_two_structures<S: Scheme>() {
    let da: DomainRef<S> = DomainRef::new();
    let db: DomainRef<S> = DomainRef::new();
    let a: Arc<RcMichaelHashMap<u64, u64, S>> =
        Arc::new(RcMichaelHashMap::with_buckets_in(32, da.clone()));
    let b: Arc<RcNatarajanMittalTree<u64, u64, S>> =
        Arc::new(RcNatarajanMittalTree::new_in(db.clone()));

    let hs: Vec<_> = (0..4u64)
        .map(|i| {
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            std::thread::spawn(move || {
                for batch in 0..20u64 {
                    // Guards over *different domains* held simultaneously.
                    let ga = a.pin();
                    let gb = b.pin();
                    for j in 0..32u64 {
                        let k = (i * 131 + batch * 7 + j) % 512;
                        if j % 2 == 0 {
                            a.insert_with(k, k, &ga);
                            b.insert_with(k, k, &gb);
                        } else {
                            a.remove_with(&k, &ga);
                            b.remove_with(&k, &gb);
                        }
                    }
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }

    // The sentinel structure of the tree plus whatever survived churn is
    // all that may remain; drain (workers joined) and drop.
    drain(&da);
    drain(&db);
    let live_a = a.in_flight_nodes();
    let live_b = b.in_flight_nodes();
    assert_eq!(da.allocated() - da.freed(), live_a);
    assert_eq!(db.allocated() - db.freed(), live_b);

    drop(a);
    drop(b);
    drain(&da);
    drain(&db);
    assert_eq!(
        da.allocated(),
        da.freed(),
        "hash domain balances after teardown ({})",
        S::scheme_name()
    );
    assert_eq!(
        db.allocated(),
        db.freed(),
        "tree domain balances after teardown ({})",
        S::scheme_name()
    );
}

#[test]
fn concurrent_churn_two_structures_all_schemes() {
    concurrent_churn_two_structures::<EbrScheme>();
    concurrent_churn_two_structures::<IbrScheme>();
    concurrent_churn_two_structures::<HpScheme>();
    concurrent_churn_two_structures::<HyalineScheme>();
}

// ---------------------------------------------------------------------
// 5. The weak-edge queue on its own domain: full (weak) guards on one
//    queue leave a sibling queue's reclamation untouched.
// ---------------------------------------------------------------------

fn queue_isolation<S: Scheme>() {
    let da: DomainRef<S> = DomainRef::new();
    let db: DomainRef<S> = DomainRef::new();
    let qa: RcDoubleLinkQueue<u64, S> = RcDoubleLinkQueue::new_in(da.clone());
    let qb: RcDoubleLinkQueue<u64, S> = RcDoubleLinkQueue::new_in(db.clone());

    qa.enqueue(1);
    let guard = qa.pin(); // full guard: strong + weak + dispose sections

    for i in 0..100u64 {
        qb.enqueue(i);
    }
    for _ in 0..100 {
        assert!(qb.dequeue().is_some());
    }
    settle(&db);
    // At rest the queue keeps two blocks: the current sentinel plus its
    // disposed predecessor, whose *memory* the sentinel's weak `prev` edge
    // legitimately holds (weak count ≥ 1). Everything else — 100 cycled
    // nodes — must have been reclaimed despite A's open full section.
    assert_eq!(
        qb.domain().in_flight(),
        2,
        "A's full guard must not pin B's queue nodes ({})",
        S::scheme_name()
    );

    drop(guard);
    drop(qa);
    drop(qb);
    assert_eq!(da.allocated(), da.freed());
    assert_eq!(db.allocated(), db.freed());
}

#[test]
fn queue_isolation_all_schemes() {
    queue_isolation::<EbrScheme>();
    queue_isolation::<IbrScheme>();
    queue_isolation::<HpScheme>();
    queue_isolation::<HyalineScheme>();
}

// ---------------------------------------------------------------------
// 6. Deliberate sharing still works: two lists on one explicit domain
//    meter jointly and reclaim through one machinery.
// ---------------------------------------------------------------------

#[test]
fn explicitly_shared_domain_meters_jointly() {
    let shared: DomainRef<EbrScheme> = DomainRef::new();
    let a: RcHarrisMichaelList<u64, u64, EbrScheme> = RcHarrisMichaelList::new_in(shared.clone());
    let b: RcHarrisMichaelList<u64, u64, EbrScheme> = RcHarrisMichaelList::new_in(shared.clone());
    for k in 0..30u64 {
        assert!(a.insert(k, k));
        assert!(b.insert(k, k));
    }
    settle(&shared);
    assert_eq!(a.in_flight_nodes(), 60, "shared domain meters both");
    assert_eq!(b.in_flight_nodes(), 60);
    assert!(a.domain().ptr_eq(b.domain()));
    // One guard covers both structures (same domain).
    let guard = a.pin();
    assert_eq!(a.get_with(&3, &guard), Some(3));
    assert_eq!(b.get_with(&3, &guard), Some(3));
    drop(guard);
    drop(a);
    drop(b);
    assert_eq!(shared.allocated(), shared.freed());
}

// ---------------------------------------------------------------------
// 7. Guard misuse across domains is caught in debug builds.
// ---------------------------------------------------------------------

#[test]
#[cfg(debug_assertions)]
#[should_panic(expected = "foreign domain")]
fn foreign_guard_is_caught_in_debug_builds() {
    let a: RcHarrisMichaelList<u64, u64, EbrScheme> = RcHarrisMichaelList::new_in(DomainRef::new());
    let b: RcHarrisMichaelList<u64, u64, EbrScheme> = RcHarrisMichaelList::new_in(DomainRef::new());
    let guard_a = a.pin();
    // Same scheme, different domain: must be rejected.
    b.insert_with(1, 1, &guard_a);
}

// ---------------------------------------------------------------------
// 8. `in_flight` only ever over-reports under concurrent churn: it folds
//    deferred decrements in before reading the allocation counters, so a
//    racing sample can miss a decrement (counting a block twice) but never
//    miss an increment. With K nodes provably live for the whole run,
//    every sample must read >= K — the property that makes the
//    adversarial garbage curves trustworthy while a stalled reader pins
//    reclamation.
// ---------------------------------------------------------------------

fn in_flight_never_under_reports<S: Scheme>() {
    use cdrc::{AtomicSharedPtr, SharedPtr};
    use smr::sync::atomic::{AtomicBool, Ordering};

    const FLOOR: usize = 1000;
    let d: DomainRef<S> = DomainRef::new();
    // The floor: FLOOR blocks owned by this thread for the whole test.
    let live: Vec<SharedPtr<u64, S>> = (0..FLOOR as u64)
        .map(|i| SharedPtr::new_in(i, &d))
        .collect();

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                let slot: AtomicSharedPtr<u64, S> = AtomicSharedPtr::null_in(&d);
                while !stop.load(Ordering::Relaxed) {
                    let _cs = d.cs();
                    // Displacing stores route the old block through the
                    // deferred-decrement path — the raciest counter traffic
                    // the domain has.
                    for i in 0..16u64 {
                        slot.store(SharedPtr::new_in(i, &d));
                    }
                    slot.store(SharedPtr::null());
                }
            });
        }
        for _ in 0..2000 {
            assert!(
                d.in_flight() >= FLOOR as u64,
                "{}: in_flight under-reported below the live floor",
                S::scheme_name()
            );
        }
        stop.store(true, Ordering::Relaxed);
    });
    drop(live);
    drain(&d);
    assert_eq!(d.allocated(), d.freed());
}

#[test]
fn in_flight_never_under_reports_all_schemes() {
    in_flight_never_under_reports::<EbrScheme>();
    in_flight_never_under_reports::<IbrScheme>();
    in_flight_never_under_reports::<HpScheme>();
    in_flight_never_under_reports::<HyalineScheme>();
}

// ---------------------------------------------------------------------
// 9. Cross-domain pointer installation panics (all builds): a foreign
//    pointer stored into a location would otherwise defer its reclamation
//    through an instance its readers never announce to.
// ---------------------------------------------------------------------

#[test]
#[should_panic(expected = "cross-domain")]
fn cross_domain_pointer_store_panics() {
    use cdrc::{AtomicSharedPtr, SharedPtr};
    let da: DomainRef<EbrScheme> = DomainRef::new();
    let db: DomainRef<EbrScheme> = DomainRef::new();
    let slot: AtomicSharedPtr<u64, EbrScheme> = AtomicSharedPtr::null_in(&da);
    slot.store(SharedPtr::new_in(7, &db));
}
