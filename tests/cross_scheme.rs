//! Integration: every data structure × every scheme × manual/automatic,
//! driven through the shared `ConcurrentMap`/`ConcurrentQueue` interfaces
//! against sequential models and under concurrency.

use std::collections::BTreeMap;
use std::sync::Arc;

use cdrc::{EbrScheme, HpScheme, HyalineScheme, IbrScheme, Scheme};
use lockfree::manual::{DoubleLinkQueue, HarrisMichaelList, MichaelHashMap, NatarajanMittalTree};
use lockfree::rc::{
    RcDoubleLinkQueue, RcHarrisMichaelList, RcMichaelHashMap, RcNatarajanMittalTree,
};
use lockfree::{ConcurrentMap, ConcurrentQueue};
use smr::AcquireRetire;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn model_check<M: ConcurrentMap<u64, u64>>(map: &M, seed: u64, keyspace: u64, steps: u32) {
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut state = seed | 1;
    for _ in 0..steps {
        let r = lcg(&mut state);
        let k = r % keyspace;
        match lcg(&mut state) % 3 {
            0 => assert_eq!(map.insert(k, k * 7), model.insert(k, k * 7).is_none()),
            1 => assert_eq!(map.remove(&k), model.remove(&k).is_some()),
            _ => assert_eq!(map.get(&k), model.get(&k).copied()),
        }
    }
    for k in 0..keyspace {
        assert_eq!(map.get(&k), model.get(&k).copied());
    }
}

fn concurrent_disjoint<M: ConcurrentMap<u64, u64> + 'static>(map: Arc<M>) {
    let hs: Vec<_> = (0..8u64)
        .map(|i| {
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                for j in 0..400u64 {
                    let k = i * 10_000 + j;
                    assert!(map.insert(k, k + 1));
                    assert_eq!(map.get(&k), Some(k + 1));
                    if j % 3 == 0 {
                        assert!(map.remove(&k));
                        assert_eq!(map.get(&k), None);
                    }
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    for i in 0..8u64 {
        for j in 0..400u64 {
            let k = i * 10_000 + j;
            let expect = if j % 3 == 0 { None } else { Some(k + 1) };
            assert_eq!(map.get(&k), expect);
        }
    }
}

macro_rules! scheme_matrix {
    ($name:ident, $body:tt) => {
        mod $name {
            use super::*;
            #[test]
            fn ebr() {
                run::<EbrScheme>();
            }
            #[test]
            fn ibr() {
                run::<IbrScheme>();
            }
            #[test]
            fn hp() {
                run::<HpScheme>();
            }
            #[test]
            fn hyaline() {
                run::<HyalineScheme>();
            }
            fn run<S: Scheme + AcquireRetire>() $body
        }
    };
}

scheme_matrix!(manual_list_model, {
    let list: HarrisMichaelList<u64, u64, S> = HarrisMichaelList::new();
    model_check(&list, 11, 48, 3000);
});

scheme_matrix!(rc_list_model, {
    let list: RcHarrisMichaelList<u64, u64, S> = RcHarrisMichaelList::new();
    model_check(&list, 12, 48, 3000);
});

scheme_matrix!(manual_hash_model, {
    let map: MichaelHashMap<u64, u64, S> = MichaelHashMap::with_buckets(16);
    model_check(&map, 13, 256, 3000);
});

scheme_matrix!(rc_hash_model, {
    let map: RcMichaelHashMap<u64, u64, S> = RcMichaelHashMap::with_buckets(16);
    model_check(&map, 14, 256, 3000);
});

scheme_matrix!(manual_tree_model, {
    let tree: NatarajanMittalTree<u64, u64, S> = NatarajanMittalTree::new();
    model_check(&tree, 15, 96, 3000);
});

scheme_matrix!(rc_tree_model, {
    let tree: RcNatarajanMittalTree<u64, u64, S> = RcNatarajanMittalTree::new();
    model_check(&tree, 16, 96, 3000);
});

scheme_matrix!(manual_tree_concurrent, {
    concurrent_disjoint(Arc::new(NatarajanMittalTree::<u64, u64, S>::new()));
});

scheme_matrix!(rc_tree_concurrent, {
    concurrent_disjoint(Arc::new(RcNatarajanMittalTree::<u64, u64, S>::new()));
});

scheme_matrix!(rc_list_concurrent, {
    concurrent_disjoint(Arc::new(RcHarrisMichaelList::<u64, u64, S>::new()));
});

fn queue_conservation<Q: ConcurrentQueue<u64> + 'static>(q: Arc<Q>) {
    let n = 6u64;
    for i in 0..n {
        q.enqueue(i);
    }
    let hs: Vec<_> = (0..n)
        .map(|_| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for _ in 0..1_000 {
                    loop {
                        if let Some(v) = q.dequeue() {
                            q.enqueue(v);
                            break;
                        }
                    }
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    let mut out = Vec::new();
    while let Some(v) = q.dequeue() {
        out.push(v);
    }
    out.sort_unstable();
    assert_eq!(out, (0..n).collect::<Vec<_>>());
}

scheme_matrix!(manual_queue_conserves, {
    queue_conservation(Arc::new(DoubleLinkQueue::<u64, S>::new()));
});

scheme_matrix!(rc_queue_conserves, {
    queue_conservation(Arc::new(RcDoubleLinkQueue::<u64, S>::new()));
});

#[test]
fn rc_range_queries_linear_with_point_ops() {
    let tree: RcNatarajanMittalTree<u64, u64, EbrScheme> = RcNatarajanMittalTree::new();
    for k in (0..1000).step_by(2) {
        tree.insert(k, k);
    }
    // [0, 1000) holds the 500 even keys.
    assert_eq!(tree.range(&0, &1000, usize::MAX), Some(500));
    assert_eq!(tree.range(&100, &200, usize::MAX), Some(50));
    tree.insert(101, 101);
    assert_eq!(tree.range(&100, &200, usize::MAX), Some(51));
    tree.remove(&100);
    assert_eq!(tree.range(&100, &200, usize::MAX), Some(50));
}

#[test]
fn mixed_structures_share_global_domains_safely() {
    // Several RC structures on the same scheme concurrently: the shared
    // global domain must keep them isolated.
    let list: Arc<RcHarrisMichaelList<u64, u64, HyalineScheme>> =
        Arc::new(RcHarrisMichaelList::new());
    let tree: Arc<RcNatarajanMittalTree<u64, u64, HyalineScheme>> =
        Arc::new(RcNatarajanMittalTree::new());
    let hs: Vec<_> = (0..6u64)
        .map(|i| {
            let list = Arc::clone(&list);
            let tree = Arc::clone(&tree);
            std::thread::spawn(move || {
                for j in 0..500u64 {
                    let k = i * 1000 + j;
                    list.insert(k, k);
                    tree.insert(k, k);
                    if j % 2 == 0 {
                        list.remove(&k);
                    } else {
                        tree.remove(&k);
                    }
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    for i in 0..6u64 {
        for j in 0..500u64 {
            let k = i * 1000 + j;
            assert_eq!(list.get(&k).is_some(), j % 2 != 0);
            assert_eq!(tree.get(&k).is_some(), j % 2 == 0);
        }
    }
}
