//! Property tests: randomized operation sequences against sequential
//! models, for every structure in both manual and automatic variants.

use std::collections::{BTreeMap, VecDeque};

use proptest::prelude::*;

use cdrc::{EbrScheme, HpScheme, Scheme};
use lockfree::manual::{DoubleLinkQueue, HarrisMichaelList, NatarajanMittalTree};
use lockfree::rc::{RcDoubleLinkQueue, RcHarrisMichaelList, RcNatarajanMittalTree};
use lockfree::{ConcurrentMap, ConcurrentQueue};
use smr::AcquireRetire;

#[derive(Debug, Clone, Copy)]
enum MapOp {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
    Range(u64, u64),
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (0u64..64, 0u64..1000).prop_map(|(k, v)| MapOp::Insert(k, v)),
        (0u64..64).prop_map(MapOp::Remove),
        (0u64..64).prop_map(MapOp::Get),
        (0u64..64, 1u64..32).prop_map(|(k, n)| MapOp::Range(k, n)),
    ]
}

fn check_map<M: ConcurrentMap<u64, u64>>(map: &M, ops: &[MapOp], ranges: bool) {
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for &op in ops {
        match op {
            MapOp::Insert(k, v) => {
                // Our maps are insert-if-absent (no value replacement).
                let absent = !model.contains_key(&k);
                if absent {
                    model.insert(k, v);
                }
                assert_eq!(map.insert(k, v), absent);
            }
            MapOp::Remove(k) => {
                assert_eq!(map.remove(&k), model.remove(&k).is_some());
            }
            MapOp::Get(k) => {
                assert_eq!(map.get(&k), model.get(&k).copied());
            }
            MapOp::Range(k, n) => {
                if ranges {
                    let hi = k + n;
                    let expect = model.range(k..hi).count();
                    if let Some(got) = map.range(&k, &hi, usize::MAX) {
                        assert_eq!(got, expect);
                    }
                }
            }
        }
    }
}

// Trim case counts: each case builds concurrent structures; default 256
// cases x several structures would dominate test time.
fn cfg() -> ProptestConfig {
    ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    }
}

proptest! {
    #![proptest_config(cfg())]

    #[test]
    fn manual_list_matches_model(ops in proptest::collection::vec(map_op(), 1..300)) {
        let list: HarrisMichaelList<u64, u64, smr::Ebr> = HarrisMichaelList::new();
        check_map(&list, &ops, false);
    }

    #[test]
    fn manual_list_hp_matches_model(ops in proptest::collection::vec(map_op(), 1..300)) {
        let list: HarrisMichaelList<u64, u64, smr::Hp> = HarrisMichaelList::new();
        check_map(&list, &ops, false);
    }

    #[test]
    fn rc_list_matches_model(ops in proptest::collection::vec(map_op(), 1..300)) {
        let list: RcHarrisMichaelList<u64, u64, EbrScheme> = RcHarrisMichaelList::new();
        check_map(&list, &ops, false);
    }

    #[test]
    fn rc_list_hp_matches_model(ops in proptest::collection::vec(map_op(), 1..300)) {
        let list: RcHarrisMichaelList<u64, u64, HpScheme> = RcHarrisMichaelList::new();
        check_map(&list, &ops, false);
    }

    #[test]
    fn manual_tree_matches_model(ops in proptest::collection::vec(map_op(), 1..300)) {
        let tree: NatarajanMittalTree<u64, u64, smr::Ebr> = NatarajanMittalTree::new();
        check_map(&tree, &ops, true);
    }

    #[test]
    fn manual_tree_hyaline_matches_model(ops in proptest::collection::vec(map_op(), 1..300)) {
        let tree: NatarajanMittalTree<u64, u64, smr::Hyaline> = NatarajanMittalTree::new();
        check_map(&tree, &ops, true);
    }

    #[test]
    fn rc_tree_matches_model(ops in proptest::collection::vec(map_op(), 1..300)) {
        let tree: RcNatarajanMittalTree<u64, u64, EbrScheme> = RcNatarajanMittalTree::new();
        check_map(&tree, &ops, true);
    }

    #[test]
    fn rc_tree_hp_matches_model(ops in proptest::collection::vec(map_op(), 1..300)) {
        let tree: RcNatarajanMittalTree<u64, u64, HpScheme> = RcNatarajanMittalTree::new();
        check_map(&tree, &ops, true);
    }

    #[test]
    fn manual_queue_matches_model(ops in proptest::collection::vec(proptest::option::of(0u64..1000), 1..300)) {
        let q: DoubleLinkQueue<u64, smr::Ibr> = DoubleLinkQueue::new();
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in ops {
            match op {
                Some(v) => { q.enqueue(v); model.push_back(v); }
                None => assert_eq!(q.dequeue(), model.pop_front()),
            }
        }
        while let Some(v) = model.pop_front() {
            prop_assert_eq!(q.dequeue(), Some(v));
        }
        prop_assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn rc_queue_matches_model(ops in proptest::collection::vec(proptest::option::of(0u64..1000), 1..300)) {
        let q: RcDoubleLinkQueue<u64, EbrScheme> = RcDoubleLinkQueue::new();
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in ops {
            match op {
                Some(v) => { q.enqueue(v); model.push_back(v); }
                None => assert_eq!(q.dequeue(), model.pop_front()),
            }
        }
        while let Some(v) = model.pop_front() {
            prop_assert_eq!(q.dequeue(), Some(v));
        }
        prop_assert_eq!(q.dequeue(), None);
    }

    /// The multi-retire bookkeeping invariant of §3.2, tested directly on
    /// the HP instance: a pointer retired `r` times and currently announced
    /// `a` times yields exactly `max(0, r - a)` ejects, and the remaining
    /// copies appear after release.
    #[test]
    fn hp_multi_retire_accounting(retires in 1usize..8, announces in 0usize..6) {
        use smr::{GlobalEpoch, Retired, SmrConfig};
        use std::sync::Arc;
        use smr::sync::atomic::AtomicUsize;

        let hp = smr::Hp::new(
            Arc::new(GlobalEpoch::new()),
            SmrConfig { hp_slots: 8, ..smr::Hp::default_config() },
        );
        let t = smr::current_tid();
        let src = AtomicUsize::new(0x8000);
        let guards: Vec<_> = (0..announces)
            .map(|_| hp.try_acquire(t, &src).unwrap().1)
            .collect();
        for _ in 0..retires {
            hp.retire(t, Retired::new(0x8000, 0));
        }
        hp.flush(t);
        let mut ejected = 0;
        while hp.eject(t).is_some() {
            ejected += 1;
        }
        prop_assert_eq!(ejected, retires.saturating_sub(announces));
        for g in guards {
            hp.release(t, g);
        }
        hp.flush(t);
        let mut rest = 0;
        while hp.eject(t).is_some() {
            rest += 1;
        }
        prop_assert_eq!(ejected + rest, retires);
    }

    /// Weak pointer count algebra: after arbitrary clone/downgrade/drop
    /// sequences, dropping every handle collects the object exactly once.
    #[test]
    fn weak_strong_handle_churn(script in proptest::collection::vec(0u8..6, 0..60)) {
        use smr::sync::atomic::{AtomicUsize as A, Ordering};
        use std::sync::Arc as StdArc;
        struct Probe(StdArc<A>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = StdArc::new(A::new(0));
        let first: cdrc::SharedPtr<Probe, EbrScheme> =
            cdrc::SharedPtr::new(Probe(StdArc::clone(&drops)));
        let mut strongs = vec![first];
        let mut weaks: Vec<cdrc::WeakPtr<Probe, EbrScheme>> = Vec::new();
        for step in script {
            match step {
                0 => {
                    if let Some(s) = strongs.first() {
                        strongs.push(s.clone());
                    }
                }
                1 => {
                    if let Some(s) = strongs.first() {
                        weaks.push(s.downgrade());
                    }
                }
                2 => {
                    if strongs.len() > 1 {
                        strongs.pop();
                    }
                }
                3 => {
                    weaks.pop();
                }
                4 => {
                    if let Some(w) = weaks.first() {
                        if let Some(up) = w.upgrade() {
                            strongs.push(up);
                        }
                    }
                }
                _ => {
                    if let Some(w) = weaks.first() {
                        let _ = w.expired();
                    }
                }
            }
            prop_assert_eq!(drops.load(Ordering::SeqCst), 0, "alive while strong handles exist");
        }
        drop(strongs);
        drop(weaks);
        EbrScheme::global_domain().process_deferred(smr::current_tid());
        prop_assert_eq!(drops.load(Ordering::SeqCst), 1, "collected exactly once");
    }
}
