//! Registry-level dead-thread recovery, end to end through the `cdrc`
//! domain reapers: a thread that dies *inside* an open critical section —
//! with a half-full deferred-decrement batch — leaves its slot claimed, its
//! announcements published (pinning every other thread's garbage), and its
//! batch orphaned. `smr::reclaim_orphaned_slot` must recover all three:
//! force-close the announcements, drain the batch, release the slot, and
//! leave the domain reclaimable to `allocated() == freed()`.

use cdrc::SharedPtr;
use cdrc::{AtomicSharedPtr, DomainRef, EbrScheme, HpScheme, HyalineScheme, IbrScheme, Scheme};

/// A victim dies mid-section with displaced-but-unflushed decrements; the
/// reaper chain recovers everything.
fn dead_in_section_recovers<S: Scheme>() {
    let d: DomainRef<S> = DomainRef::new();
    let slot: AtomicSharedPtr<u64, S> = AtomicSharedPtr::null_in(&d);
    let dead = std::thread::scope(|s| {
        let h = s.spawn(|| {
            let guard = d.cs();
            // Displacing stores: each batches one deferred strong
            // decrement; fewer than the batch capacity, so the entries sit
            // in this thread's buffer, unflushed.
            for i in 0..8 {
                slot.store(SharedPtr::new_in(i, &d));
            }
            // Simulated SIGKILL inside the section: the announcement stays
            // published, the exit callbacks never run, the slot stays
            // claimed.
            std::mem::forget(guard);
            smr::abandon_current_slot()
        });
        h.join().unwrap()
    });
    assert!(smr::slot_in_use(dead), "dead slot must still be claimed");
    assert!(smr::slot_abandoned(dead));
    // Region schemes publish a per-section announcement, so the dead
    // section is visible as non-quiescence. HP protects individual
    // pointers instead: a dead HP thread pins only what its hazard slots
    // name, and an idle section leaves the instance quiescent — that *is*
    // its fault-tolerance-by-construction story.
    if <S as smr::AcquireRetire>::PROTECTS_REGIONS {
        assert!(
            !d.quiescent(),
            "the dead thread's announcement must still be open"
        );
    }

    // Safety: the victim was joined (scope exit), so its death
    // happened-before this call.
    assert!(unsafe { smr::reclaim_orphaned_slot(dead) });
    assert!(!smr::slot_in_use(dead), "slot released for reuse");
    assert!(
        d.quiescent(),
        "recovery must force-close the dead announcement"
    );

    // The orphaned batch was drained into the deferred machinery; dropping
    // the last occupant and draining must reclaim every block.
    slot.store(SharedPtr::null());
    drop(slot);
    // Safety: single-threaded from here on; the domain is privately owned.
    unsafe { d.drain_and_apply_all(smr::current_tid()) };
    assert_eq!(
        d.allocated(),
        d.freed(),
        "{}: orphaned batch leaked through recovery",
        <S as smr::AcquireRetire>::scheme_name()
    );
}

macro_rules! scheme_tests {
    ($name:ident, $s:ty) => {
        mod $name {
            use super::*;

            #[test]
            fn dead_in_section() {
                dead_in_section_recovers::<$s>();
            }
        }
    };
}

scheme_tests!(ebr, EbrScheme);
scheme_tests!(ibr, IbrScheme);
scheme_tests!(hp, HpScheme);
scheme_tests!(hyaline, HyalineScheme);
