//! Weak-pointer semantics across schemes: upgrade/expiry races, weak
//! snapshot linearizability corners (§4.5), and the queue of Fig. 10.

use smr::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use cdrc::{
    AtomicSharedPtr, AtomicWeakPtr, EbrScheme, HpScheme, HyalineScheme, IbrScheme, Scheme,
    SharedPtr,
};

fn settle<S: Scheme>() {
    S::global_domain().process_deferred(smr::current_tid());
}

fn upgrade_expiry_race<S: Scheme>() {
    for round in 0..40u64 {
        let strong: SharedPtr<u64, S> = SharedPtr::new(round);
        let weak = strong.downgrade();
        let seen_value = Arc::new(AtomicU64::new(0));
        let dropper = std::thread::spawn(move || drop(strong));
        let upgrader = {
            let weak = weak.clone();
            let seen = Arc::clone(&seen_value);
            std::thread::spawn(move || {
                for _ in 0..50 {
                    match weak.upgrade() {
                        Some(p) => {
                            // An upgrade that succeeds must yield a fully
                            // alive object.
                            seen.store(*p.as_ref().unwrap() + 1, Ordering::SeqCst);
                        }
                        None => break, // once dead, always dead
                    }
                }
            })
        };
        dropper.join().unwrap();
        upgrader.join().unwrap();
        let seen = seen_value.load(Ordering::SeqCst);
        assert!(seen == 0 || seen == round + 1);
        settle::<S>();
        assert!(weak.upgrade().is_none());
    }
}

#[test]
fn upgrade_vs_drop_all_schemes() {
    upgrade_expiry_race::<EbrScheme>();
    upgrade_expiry_race::<IbrScheme>();
    upgrade_expiry_race::<HpScheme>();
    upgrade_expiry_race::<HyalineScheme>();
}

fn weak_snapshot_reads_stay_valid<S: Scheme>() {
    // A reader holds weak snapshots while a writer destroys the last strong
    // reference; every non-null snapshot must remain readable for its whole
    // lifetime.
    for _ in 0..30 {
        let slot: Arc<AtomicWeakPtr<String, S>> = Arc::new(AtomicWeakPtr::null());
        let strong: SharedPtr<String, S> = SharedPtr::new("payload".to_string());
        slot.store(&strong.downgrade());
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let slot = Arc::clone(&slot);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let d = S::global_domain();
                let mut reads = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let cs = d.weak_cs();
                    let snap = slot.get_snapshot(&cs);
                    if let Some(s) = snap.as_ref() {
                        assert_eq!(s, "payload");
                        reads += 1;
                    }
                }
                reads
            })
        };
        drop(strong);
        stop.store(true, Ordering::Relaxed);
        let _ = reader.join().unwrap();
        settle::<S>();
        let cs = S::global_domain().weak_cs();
        assert!(slot.get_snapshot(&cs).is_null());
    }
}

#[test]
fn weak_snapshot_expiry_all_schemes() {
    weak_snapshot_reads_stay_valid::<EbrScheme>();
    weak_snapshot_reads_stay_valid::<IbrScheme>();
    weak_snapshot_reads_stay_valid::<HpScheme>();
    weak_snapshot_reads_stay_valid::<HyalineScheme>();
}

#[test]
fn weak_snapshot_null_only_if_location_unchanged() {
    // §4.5: if the observed object expired but the location has been
    // replaced, get_snapshot must retry rather than report null. Driven
    // here by racing replacements of expiring objects.
    let slot: Arc<AtomicWeakPtr<u64, EbrScheme>> = Arc::new(AtomicWeakPtr::null());
    let keeper: Arc<AtomicSharedPtr<u64, EbrScheme>> = Arc::new(AtomicSharedPtr::null());
    let strong: SharedPtr<u64, EbrScheme> = SharedPtr::new(0);
    keeper.store(strong.clone());
    slot.store(&strong.downgrade());
    drop(strong);
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let slot = Arc::clone(&slot);
        let keeper = Arc::clone(&keeper);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut i = 1u64;
            while !stop.load(Ordering::Relaxed) {
                let fresh: SharedPtr<u64, EbrScheme> = SharedPtr::new(i);
                slot.store(&fresh.downgrade());
                keeper.store(fresh); // keeps the newest alive
                i += 1;
            }
        })
    };
    let d = EbrScheme::global_domain();
    for _ in 0..20_000 {
        let cs = d.weak_cs();
        let snap = slot.get_snapshot(&cs);
        // The slot always references the keeper-alive object (modulo the
        // instant between the two stores), so null snapshots must be rare
        // and — crucially — reads of non-null snapshots always valid.
        if let Some(v) = snap.as_ref() {
            std::hint::black_box(*v);
        }
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    settle::<EbrScheme>();
}

#[test]
fn downgrade_upgrade_identity() {
    fn run<S: Scheme>() {
        let p: SharedPtr<Vec<u32>, S> = SharedPtr::new(vec![1, 2, 3]);
        let w = p.downgrade();
        let q = w.upgrade().unwrap();
        assert!(p.ptr_eq(&q));
        assert_eq!(q.as_ref().unwrap(), &vec![1, 2, 3]);
        drop((p, q, w));
        settle::<S>();
    }
    run::<EbrScheme>();
    run::<HpScheme>();
}

#[test]
fn atomic_weak_cas_chain() {
    let a: SharedPtr<u8, IbrScheme> = SharedPtr::new(1);
    let b: SharedPtr<u8, IbrScheme> = SharedPtr::new(2);
    let slot: AtomicWeakPtr<u8, IbrScheme> = AtomicWeakPtr::null();
    let wa = a.downgrade();
    let wb = b.downgrade();
    // null -> a -> b chain of CASes.
    assert!(slot
        .compare_exchange(cdrc::TaggedPtr::null(), &wa)
        .expect("install into empty slot")
        .is_null());
    let cur = slot.load_tagged();
    let displaced = slot.compare_exchange(cur, &wb).expect("a -> b");
    assert!(displaced.ptr_eq(&wa), "displaced weak is the old occupant");
    drop(displaced);
    let w = slot
        .compare_exchange(cur, &wa)
        .expect_err("stale expected must fail");
    assert_eq!(w, slot.load_tagged(), "witness names the current occupant");
    assert_eq!(slot.load().upgrade().map(|p| *p.as_ref().unwrap()), Some(2));
    drop((a, b, wa, wb, slot));
    settle::<IbrScheme>();
}
