//! Bounded model checking of the engine protocol on the vendored
//! `interleave` checker (`cargo test --features model-check --test model_check`).
//!
//! Every scenario here is explored over **all interleavings** of 2–3 threads
//! under a small preemption bound, with the suite's atomics routed through
//! `smr::sync` onto the checker's C11 acquire/release + modification-order
//! semantics — weaker than the x86 the native tests run on. The scenarios
//! assert two properties across every explored schedule:
//!
//! * **no use-after-free** — an object a reader holds protected (hazard
//!   slot, announced epoch/interval, Hyaline reference) is never handed back
//!   by `eject`/`scan` while the reader still uses it; and
//! * **count balance** — every retired entry comes back exactly once
//!   (ejected or drained), and the cdrc domain ends with
//!   `allocated() == freed()`.
//!
//! "Freeing" is simulated: ejection sets an exempt side-table flag that the
//! reader asserts against, so a protocol violation becomes a checker-reported
//! panic instead of real undefined behaviour.
//!
//! Bounds (see `interleave::Config`): preemption bound 1–2 depending on the
//! scenario's op count, 1–2 shared words, ≤3 threads. The epoch-clock litmus
//! justifies the `GlobalEpoch::advance` SeqCst→AcqRel relaxation (PR 3's
//! ordering table); the IBR regression re-seeds the PR 5
//! `PROTECTS_SECTION_READS` hole and demonstrates the checker catches it.

use std::sync::{Arc, Barrier, Mutex, MutexGuard};

use cdrc::{AtomicSharedPtr, DomainRef, SharedPtr};
use interleave::thread as mthread;
use interleave::{try_check, Config, Report, Violation};
use smr::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use smr::sync::exempt;
use smr::{current_tid, AcquireRetire, Ebr, GlobalEpoch, Hp, Hyaline, Ibr, Retired, SmrConfig};

// ---------------------------------------------------------------------------
// Harness discipline
// ---------------------------------------------------------------------------

/// Serializes the tests in this binary *and* pins the registry's high-water
/// mark before any exploration starts.
///
/// Scheme scans iterate announcement slots `0..registered_high_water_mark()`,
/// and the mark only grows. If it grew *mid-exploration* (another test's
/// threads registering, or this scenario's own threads raising it on the
/// first iteration), the number of modeled loads per scan would differ
/// between a recorded tape and its replay — a spurious nondeterminism
/// report. Pre-warming with more concurrent registrations than any scenario
/// uses fixes the mark for the whole process; the mutex keeps other tests'
/// slot churn out of an in-progress exploration.
fn serial() -> MutexGuard<'static, ()> {
    static M: Mutex<()> = Mutex::new(());
    let g = M.lock().unwrap_or_else(|e| e.into_inner());
    let gate = Arc::new(Barrier::new(4));
    let warmers: Vec<_> = (0..4)
        .map(|_| {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let _ = current_tid();
                gate.wait();
            })
        })
        .collect();
    for w in warmers {
        w.join().unwrap();
    }
    g
}

fn cfg(preemptions: usize) -> Config {
    Config {
        preemption_bound: Some(preemptions),
        ..Config::default()
    }
}

/// Scheme tuning that makes every protocol edge reachable within the bounds:
/// the epoch clock ticks on every allocation, a single retired entry
/// triggers a scan, and Hyaline distributes one-node batches.
fn tight<S: AcquireRetire>() -> SmrConfig {
    let mut c = S::default_config();
    c.epoch_freq = 1;
    c.eject_threshold = 1;
    c.batch_size = 1;
    c.prefetch = false;
    c.max_garbage = None;
    c
}

/// Fake object addresses: nonzero, 8-aligned (no tag bits), and identical
/// across iterations so schedules replay deterministically. The schemes
/// treat retired words as opaque — nothing dereferences them.
const OBJ_A: usize = 8;
const OBJ_B: usize = 16;

fn obj_idx(w: usize) -> usize {
    w / 8 - 1
}

// ---------------------------------------------------------------------------
// Per-scheme announce/scan handshake: reader vs. retirer
// ---------------------------------------------------------------------------

/// One reader holds an acquired pointer inside a critical section while the
/// root swaps it out, retires it, and ejects everything a scan releases.
/// Across every interleaving: the reader's object is never ejected while
/// held, and both objects are handed back exactly once afterwards.
fn reader_vs_retirer<S: AcquireRetire + Send + Sync + 'static>() -> Result<Report, Violation> {
    try_check(cfg(2), || {
        let s = Arc::new(S::new(Arc::new(GlobalEpoch::new()), tight::<S>()));
        let t = current_tid();
        let birth_a = s.birth_epoch(t);
        let slot = Arc::new(AtomicUsize::new(OBJ_A));
        let ejected = Arc::new([AtomicBool::new(false), AtomicBool::new(false)]);

        let reader = {
            let s = Arc::clone(&s);
            let slot = Arc::clone(&slot);
            let ejected = Arc::clone(&ejected);
            mthread::spawn(move || {
                let t = current_tid();
                s.begin_critical_section(t);
                let (w, g) = s.acquire(t, &slot);
                if w != 0 {
                    // Let the retirer run a full retire/scan/eject pass
                    // while we still hold the protection.
                    mthread::yield_now();
                    let gone = exempt(|| ejected[obj_idx(w)].load(Ordering::Relaxed));
                    assert!(
                        !gone,
                        "{}: ejected an object a reader still holds acquired",
                        S::scheme_name()
                    );
                }
                s.release(t, g);
                s.end_critical_section(t);
            })
        };

        let birth_b = s.birth_epoch(t);
        let old = slot.swap(OBJ_B, Ordering::SeqCst);
        s.retire(
            t,
            Retired {
                addr: old,
                birth: birth_a,
            },
        );
        s.flush(t);
        while let Some(r) = s.eject(t) {
            exempt(|| ejected[obj_idx(r.addr)].store(true, Ordering::Relaxed));
        }
        reader.join().unwrap();

        // Quiesce: retire the survivor too, then every entry must come back
        // exactly once — via eject or the final drain, never both or neither.
        s.retire(
            t,
            Retired {
                addr: OBJ_B,
                birth: birth_b,
            },
        );
        s.flush(t);
        while let Some(r) = s.eject(t) {
            exempt(|| ejected[obj_idx(r.addr)].store(true, Ordering::Relaxed));
        }
        let drained = unsafe { s.drain_all() };
        let mut returns = [0usize; 2];
        for (i, flag) in ejected.iter().enumerate() {
            returns[i] += exempt(|| flag.load(Ordering::Relaxed)) as usize;
        }
        for r in &drained {
            returns[obj_idx(r.addr)] += 1;
        }
        assert_eq!(
            returns,
            [1, 1],
            "{}: retire/eject count imbalance",
            S::scheme_name()
        );
    })
}

#[test]
fn ebr_reader_vs_retirer_has_no_uaf() {
    let _s = serial();
    reader_vs_retirer::<Ebr>().expect("EBR handshake violates protection under some interleaving");
}

#[test]
fn ibr_reader_vs_retirer_has_no_uaf() {
    let _s = serial();
    reader_vs_retirer::<Ibr>().expect("IBR handshake violates protection under some interleaving");
}

#[test]
fn hp_reader_vs_retirer_has_no_uaf() {
    let _s = serial();
    reader_vs_retirer::<Hp>().expect("HP handshake violates protection under some interleaving");
}

#[test]
fn hyaline_reader_vs_retirer_has_no_uaf() {
    let _s = serial();
    reader_vs_retirer::<Hyaline>()
        .expect("Hyaline handshake violates protection under some interleaving");
}

// ---------------------------------------------------------------------------
// RcWord load / witness / install / retire through the full cdrc stack
// ---------------------------------------------------------------------------

/// A reader snapshots through a critical section while the root swaps in a
/// replacement and drops the displaced strong reference (decrement → retire
/// → scan in-model). After joining, a witness-seeded CAS retry exercises the
/// failure path, and the domain must balance its allocation ledger across
/// every interleaving.
fn rc_word_protocol<S: cdrc::Scheme + Send + Sync>() -> Result<Report, Violation> {
    try_check(cfg(1), || {
        let d: DomainRef<S> = DomainRef::with_config(tight::<S>());
        let t = current_tid();
        {
            let slot = Arc::new(AtomicSharedPtr::<u64, S>::new_in(
                SharedPtr::new_in(1, &d),
                &d,
            ));
            let stale = slot.load_tagged();

            let reader = {
                let d = d.clone();
                let slot = Arc::clone(&slot);
                mthread::spawn(move || {
                    let t = current_tid();
                    {
                        let cs = d.cs();
                        let snap = slot.get_snapshot(&cs);
                        if let Some(v) = snap.as_ref() {
                            let v = *v;
                            assert!(v == 1 || v == 2, "snapshot saw a never-installed value");
                        }
                    }
                    // Drain the decrement batch in-model: nothing protocol-
                    // relevant may run from real TLS destructors.
                    d.process_deferred(t);
                })
            };

            let two = SharedPtr::new_in(2, &d);
            let displaced = slot.swap(two.clone());
            drop(displaced);
            reader.join().unwrap();

            // Witness-seeded retry (single-threaded tail, so it costs no
            // schedule branching): the stale expected must fail and name the
            // current holder; retrying with the witness must succeed.
            let w = slot
                .compare_exchange(stale, &two)
                .expect_err("stale CAS must fail with a witness");
            let displaced = slot
                .compare_exchange(w, &two)
                .expect("witness-seeded retry must succeed");
            drop(displaced);
            drop(two);
            let Ok(slot) = Arc::try_unwrap(slot) else {
                panic!("reader clone was joined; the Arc must be unique");
            };
            drop(slot);
        }
        d.process_deferred(t);
        unsafe { d.drain_and_apply_all(t) };
        assert_eq!(
            d.allocated(),
            d.freed(),
            "{}: domain ledger unbalanced after quiescence",
            S::scheme_name()
        );
    })
}

#[test]
fn ebr_rc_word_protocol_balances() {
    let _s = serial();
    rc_word_protocol::<cdrc::EbrScheme>().expect("RcWord protocol violation under EBR");
}

#[test]
fn ibr_rc_word_protocol_balances() {
    let _s = serial();
    rc_word_protocol::<cdrc::IbrScheme>().expect("RcWord protocol violation under IBR");
}

#[test]
fn hp_rc_word_protocol_balances() {
    let _s = serial();
    rc_word_protocol::<cdrc::HpScheme>().expect("RcWord protocol violation under HP");
}

#[test]
fn hyaline_rc_word_protocol_balances() {
    let _s = serial();
    rc_word_protocol::<cdrc::HyalineScheme>().expect("RcWord protocol violation under Hyaline");
}

// ---------------------------------------------------------------------------
// Epoch-clock litmus: justifies `GlobalEpoch::advance` AcqRel
// ---------------------------------------------------------------------------

const NO_ANN: u64 = u64::MAX;

/// Distilled EBR eject race — advancer / announcing reader / unlink-scan
/// writer — with the clock advanced by `fetch_add(AcqRel)` exactly as
/// `GlobalEpoch::advance` now does. The writer stamps the retire epoch with
/// `stamp_order` and frees when the announcement is absent or newer than the
/// stamp. A SeqCst stamp participates in the total order with the reader's
/// SeqCst clock read, so a reader that announced an epoch the writer's stamp
/// predates is always visible; an Acquire stamp may read the clock stale and
/// under-stamp the retirement, freeing under a live announcement.
fn epoch_clock_litmus(stamp_order: Ordering) -> Result<Report, Violation> {
    try_check(cfg(2), move || {
        let clock = Arc::new(AtomicU64::new(0));
        let ann = Arc::new(AtomicU64::new(NO_ANN));
        let slot = Arc::new(AtomicUsize::new(1));
        let freed = Arc::new(AtomicBool::new(false));

        let advancer = {
            let clock = Arc::clone(&clock);
            // Ordering: AcqRel — mirrors `GlobalEpoch::advance`; the litmus
            // exists to show the *stamp load* is where SeqCst must remain.
            mthread::spawn(move || {
                clock.fetch_add(1, Ordering::AcqRel);
            })
        };

        let reader = {
            let clock = Arc::clone(&clock);
            let ann = Arc::clone(&ann);
            let slot = Arc::clone(&slot);
            let freed = Arc::clone(&freed);
            mthread::spawn(move || {
                // Section entry: announce the observed epoch, fence, then
                // trust subsequent reads (the `announce_fn!` idiom).
                let e = clock.load(Ordering::SeqCst);
                ann.store(e, Ordering::Relaxed);
                fence(Ordering::SeqCst);
                let p = slot.load(Ordering::Relaxed);
                if p == 1 {
                    // Still linked from our announced epoch's vantage:
                    // give the writer a chance to scan, then check we were
                    // not freed from under the announcement.
                    mthread::yield_now();
                    let gone = exempt(|| freed.load(Ordering::Relaxed));
                    assert!(!gone, "object freed while an announcement protected it");
                }
                ann.store(NO_ANN, Ordering::Release);
            })
        };

        // Writer: unlink, stamp the retirement, scan announcements.
        slot.store(0, Ordering::SeqCst);
        let stamp = clock.load(stamp_order);
        fence(Ordering::SeqCst);
        let a = ann.load(Ordering::Relaxed);
        if a == NO_ANN || stamp < a {
            exempt(|| freed.store(true, Ordering::Relaxed));
        }
        advancer.join().unwrap();
        reader.join().unwrap();
    })
}

/// The relaxation the checker licenses: with the clock advanced by AcqRel
/// RMWs, a **SeqCst** retire-stamp load keeps every interleaving sound —
/// `GlobalEpoch::advance` does not need its old SeqCst success ordering.
#[test]
fn epoch_clock_seqcst_load_is_sound() {
    let _s = serial();
    let report = epoch_clock_litmus(Ordering::SeqCst)
        .expect("SeqCst retire stamp must be sound under an AcqRel clock");
    assert!(report.iterations > 1, "litmus explored only one schedule");
}

/// The boundary of that relaxation: weakening the retire-stamp load itself
/// to Acquire lets the writer under-stamp and free under a live
/// announcement — the checker finds the interleaving. This is why
/// `GlobalEpoch::load` stays SeqCst.
#[test]
fn epoch_clock_acquire_load_is_unsound() {
    let _s = serial();
    let v = epoch_clock_litmus(Ordering::Acquire)
        .expect_err("Acquire retire stamp must be caught by the checker");
    assert!(
        v.message
            .contains("freed while an announcement protected it"),
        "unexpected violation: {v}"
    );
}

// ---------------------------------------------------------------------------
// IBR PROTECTS_SECTION_READS regression (the PR 5 hole, re-seeded)
// ---------------------------------------------------------------------------

/// IBR advertises `PROTECTS_SECTION_READS = false`: a critical section only
/// protects objects born at or before the announced interval's end. This
/// scenario installs an object born *after* the reader's entry announcement.
/// The buggy consumer reads it with a bare load (what the PR 5 hole did);
/// the correct consumer goes through `acquire`, which widens the announced
/// interval before trusting the read.
fn ibr_section_read(use_acquire: bool) -> Result<Report, Violation> {
    try_check(cfg(2), move || {
        let s = Arc::new(Ibr::new(Arc::new(GlobalEpoch::new()), tight::<Ibr>()));
        let t = current_tid();
        let slot = Arc::new(AtomicUsize::new(0));
        let ejected = Arc::new(AtomicBool::new(false));

        let reader = {
            let s = Arc::clone(&s);
            let slot = Arc::clone(&slot);
            let ejected = Arc::clone(&ejected);
            mthread::spawn(move || {
                let t = current_tid();
                s.begin_critical_section(t);
                // Let the writer allocate (advancing the epoch past our
                // announced interval) and install.
                mthread::yield_now();
                let (w, g) = if use_acquire {
                    s.acquire(t, &slot)
                } else {
                    // Re-seeded hole: trusting a section-time read without
                    // the acquire protocol. The interval announced at entry
                    // does not cover an object born after it.
                    (slot.load(Ordering::Acquire), Default::default())
                };
                if w != 0 {
                    mthread::yield_now();
                    let gone = exempt(|| ejected.load(Ordering::Relaxed));
                    assert!(
                        !gone,
                        "IBR ejected an object born beyond the announced bound"
                    );
                }
                s.release(t, g);
                s.end_critical_section(t);
            })
        };

        let birth_b = s.birth_epoch(t);
        slot.store(OBJ_B, Ordering::Release);
        mthread::yield_now();
        let old = slot.swap(0, Ordering::SeqCst);
        s.retire(
            t,
            Retired {
                addr: old,
                birth: birth_b,
            },
        );
        s.flush(t);
        while s.eject(t).is_some() {
            exempt(|| ejected.store(true, Ordering::Relaxed));
        }
        reader.join().unwrap();

        let drained = unsafe { s.drain_all() };
        let returns = exempt(|| ejected.load(Ordering::Relaxed)) as usize + drained.len();
        assert_eq!(returns, 1, "IBR retire/eject count imbalance");
    })
}

#[test]
fn ibr_section_reads_hole_is_detected() {
    let _s = serial();
    let v = ibr_section_read(false).expect_err("the checker must catch the section-reads hole");
    assert!(
        v.message.contains("born beyond the announced bound"),
        "unexpected violation: {v}"
    );
}

#[test]
fn ibr_acquire_closes_the_hole() {
    let _s = serial();
    ibr_section_read(true).expect("acquire-protocol reads must be protected in every schedule");
}
